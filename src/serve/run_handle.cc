#include "src/serve/run_handle.h"

#include "src/util/check.h"

namespace pfci {

bool RunHandle::done() const {
  PFCI_CHECK_MSG(valid(), "RunHandle::done on an invalid handle");
  return ticket_->latch.done();
}

const MiningResult& RunHandle::Wait() const {
  PFCI_CHECK_MSG(valid(), "RunHandle::Wait on an invalid handle");
  ticket_->latch.Wait();
  return ticket_->result;
}

bool RunHandle::TryGet(MiningResult* out) const {
  PFCI_CHECK_MSG(valid(), "RunHandle::TryGet on an invalid handle");
  if (!ticket_->latch.done()) return false;
  if (out != nullptr) *out = ticket_->result;
  return true;
}

void RunHandle::Cancel() {
  PFCI_CHECK_MSG(valid(), "RunHandle::Cancel on an invalid handle");
  ticket_->cancel.RequestCancel();
}

}  // namespace pfci
