#include "src/serve/batch_planner.h"

#include <map>
#include <utility>

#include "src/core/search/threshold_ladder.h"

namespace pfci {

BatchPlan PlanBatch(std::span<const MiningRequest> requests) {
  BatchPlan plan;
  plan.size = requests.size();
  // Key -> position in plan.groups; std::map only resolves repeats of a
  // key, group order itself is first-appearance (submission) order.
  std::map<std::pair<Algorithm, TidSetMode>, std::size_t> group_index;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const MiningRequest& request = requests[i];
    std::string error = ValidateRequest(request);
    if (error.empty() && !request.sweep_min_sup.empty()) {
      error = "a batch member may not carry sweep_min_sup (a member is "
              "exactly one run; expand the sweep before batching)";
    }
    if (!error.empty()) {
      plan.invalid.push_back(i);
      plan.invalid_reasons.push_back(std::move(error));
      continue;
    }
    const std::pair<Algorithm, TidSetMode> key(request.algorithm,
                                               request.params.tidset_mode);
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      it = group_index.emplace(key, plan.groups.size()).first;
      BatchGroup group;
      group.algorithm = request.algorithm;
      group.tidset_mode = request.params.tidset_mode;
      plan.groups.push_back(std::move(group));
    }
    plan.groups[it->second].members.push_back(i);
  }
  // Order each group on the kernel's threshold ladder: ascending
  // min_sup, stable in submission order, floor = the weakest member.
  for (BatchGroup& group : plan.groups) {
    std::vector<std::size_t> thresholds;
    thresholds.reserve(group.members.size());
    for (const std::size_t index : group.members) {
      thresholds.push_back(requests[index].params.min_sup);
    }
    const ThresholdLadder ladder = PlanThresholdLadder(thresholds);
    std::vector<std::size_t> ordered;
    ordered.reserve(group.members.size());
    for (const std::size_t position : ladder.order) {
      ordered.push_back(group.members[position]);
    }
    group.members = std::move(ordered);
    group.table_floor = ladder.table_floor;
  }
  return plan;
}

}  // namespace pfci
