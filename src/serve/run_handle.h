// RunHandle: the consumer's end of an asynchronous MiningSession run
// (DESIGN.md §15).
//
// MiningSession::Submit() returns immediately with a RunHandle; the run
// executes on a session worker thread and publishes its MiningResult
// through the handle. The handle is a value type over a shared ticket:
//
//     handle lifecycle        session worker
//     ----------------        --------------
//     Submit() ──────────────▶ admitted / queued
//       │ Cancel()  ─────────▶ (cooperative, any time)
//       │ TryGet()  ── false   run executes
//       │ Wait()    ── blocks  │
//       │                      publishes result, signals latch
//       ▼                      ▼
//     Wait()/TryGet() ◀─────── result (error-as-data: kInvalidRequest,
//                               kRejected, kCancelled, ... all arrive
//                               here, never as exceptions)
//
// The ticket is jointly owned by the handle and the worker, so a handle
// may outlive the session: ~MiningSession drains its workers first,
// which means a surviving handle always holds a completed result and
// Wait() returns without blocking. Cancel() after the session is gone
// is a harmless no-op on an already-finished run. Handles are copyable;
// every copy observes the same run.
#ifndef PFCI_SERVE_RUN_HANDLE_H_
#define PFCI_SERVE_RUN_HANDLE_H_

#include <memory>

#include "src/core/mining_result.h"
#include "src/util/completion.h"
#include "src/util/runtime.h"

namespace pfci {

namespace internal {

/// The shared rendezvous between one submitted run and its handles. The
/// worker writes `result` then signals `latch` (the latch's mutex orders
/// the publish before any consumer read); `cancel` is owned here so
/// RunHandle::Cancel works regardless of which side is still alive.
struct RunTicket {
  CompletionLatch latch;
  CancelToken cancel;
  MiningResult result;
};

}  // namespace internal

/// Handle to one submitted run. Default-constructed handles are invalid
/// (valid() == false); every accessor on an invalid handle CHECK-fails
/// except valid() itself.
class RunHandle {
 public:
  RunHandle() = default;

  /// Whether this handle refers to a submitted run.
  bool valid() const { return ticket_ != nullptr; }

  /// Non-blocking: whether the run has published its result.
  bool done() const;

  /// Blocks until the run finishes and returns its result. The reference
  /// stays valid for the handle's lifetime; safe to call repeatedly and
  /// from several threads.
  const MiningResult& Wait() const;

  /// Non-blocking poll: copies the result into `*out` and returns true
  /// when the run has finished, returns false (leaving `*out` untouched)
  /// while it is still running. `out` may be null to poll alone.
  bool TryGet(MiningResult* out) const;

  /// Requests cooperative cancellation. Before the run starts it is
  /// answered as kCancelled without running; mid-run the miners wind down
  /// at their next checkpoint (verified-prefix semantics); after the run
  /// finished it is a no-op. Idempotent.
  void Cancel();

 private:
  friend class MiningSession;
  explicit RunHandle(std::shared_ptr<internal::RunTicket> ticket)
      : ticket_(std::move(ticket)) {}

  std::shared_ptr<internal::RunTicket> ticket_;
};

}  // namespace pfci

#endif  // PFCI_SERVE_RUN_HANDLE_H_
