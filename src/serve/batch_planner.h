// BatchPlanner: shared-scan grouping of concurrent mining requests
// (DESIGN.md §15).
//
// Requests that differ only in min_sup share almost all of their work —
// the candidate-index build, the CandidateOracle::Qualify tid-set
// scans, and the Poisson-binomial tail tables are all computed over the
// same tidsets, and a tail table computed at the group's WEAKEST
// (largest) threshold answers every member via the EvalCache's monotone
// reuse rule. The planner makes that sharing explicit: it partitions a
// batch into compatibility groups keyed by (algorithm, tid-set mode),
// orders each group's members on the kernel's ThresholdLadder
// (ascending min_sup, stable), and assigns the group the ladder's
// table_floor so the first member's freshly computed tables are
// extended far enough to answer everyone behind it.
//
// Planning is pure and deterministic — same requests, same plan — and
// never changes results: grouping only decides who pays for shared DP
// work first, and cached values are bit-identical to cold computation.
#ifndef PFCI_SERVE_BATCH_PLANNER_H_
#define PFCI_SERVE_BATCH_PLANNER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/core/mine.h"

namespace pfci {

/// One compatibility group of a planned batch: members share one
/// algorithm and tid-set mode, so one shared pass serves all of them.
struct BatchGroup {
  Algorithm algorithm = Algorithm::kMpfci;
  TidSetMode tidset_mode = TidSetMode::kAdaptive;

  /// Request indexes (positions in the planned span) in execution
  /// order: ascending min_sup, ties in submission order. members[0] is
  /// the group leader — the run that pays for the shared index build
  /// and DP tables the others reuse.
  std::vector<std::size_t> members;

  /// The group's weakest (largest) threshold: every member runs with
  /// DP tail tables extended to it (SessionBindings::table_floor).
  std::size_t table_floor = 0;
};

/// A planned batch: execution groups plus the requests rejected at plan
/// time. Every request index appears exactly once — either in one
/// group's members or in `invalid`.
struct BatchPlan {
  /// Groups in first-appearance order of their (algorithm, mode) key,
  /// so the plan is deterministic in the submission order.
  std::vector<BatchGroup> groups;

  /// Requests rejected before execution, with the validation diagnosis
  /// (parallel vectors; reasons lack the "invalid MiningRequest: "
  /// prefix — the executor stamps it, matching Mine()).
  std::vector<std::size_t> invalid;
  std::vector<std::string> invalid_reasons;

  /// Total requests planned (groups' members + invalid).
  std::size_t size = 0;
};

/// Plans `requests` into compatibility groups. A request that fails
/// ValidateRequest — or carries its own sweep_min_sup grid: a batch
/// member is exactly one run; expand sweeps before batching — lands in
/// `invalid` instead of a group.
BatchPlan PlanBatch(std::span<const MiningRequest> requests);

}  // namespace pfci

#endif  // PFCI_SERVE_BATCH_PLANNER_H_
