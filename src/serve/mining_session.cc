#include "src/serve/mining_session.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace pfci {

std::string ValidateSessionOptions(const SessionOptions& options) {
  if (options.cache_bytes > 0 && options.cache_shards < 1) {
    return "cache_shards must be >= 1 when the cache is enabled";
  }
  if (options.max_queue_depth > 0 && options.max_inflight == 0) {
    return "max_queue_depth requires max_inflight > 0 (there is no queue "
           "without an execution limit)";
  }
  return "";
}

MiningSession MiningSession::Open(const UncertainDatabase& db,
                                  SessionOptions options) {
  const std::string error = ValidateSessionOptions(options);
  PFCI_CHECK_MSG(error.empty(), "invalid SessionOptions: " + error);
  auto state = std::make_unique<State>();
  state->db = &db;
  state->options = options;
  if (options.cache_bytes > 0) {
    EvalCache::Options cache_options;
    cache_options.max_bytes = options.cache_bytes;
    cache_options.shards = options.cache_shards;
    state->cache = std::make_unique<EvalCache>(cache_options);
  }
  if (options.warm_start) {
    state->warm = std::make_unique<ItemWarmStart>();
  }
  // Prepare the default-mode index up front: the session's first request
  // pays index cost at Open, not at serve time.
  state->indexes.emplace(TidSetMode::kAdaptive,
                         std::make_unique<VerticalIndex>(db, TidSetPolicy{}));
  return MiningSession(std::move(state));
}

const VerticalIndex& MiningSession::IndexFor(const MiningParams& params) {
  const TidSetPolicy policy = TidSetPolicyFor(params);
  std::lock_guard<std::mutex> lock(state_->index_mutex);
  auto it = state_->indexes.find(policy.mode);
  if (it == state_->indexes.end()) {
    it = state_->indexes
             .emplace(policy.mode,
                      std::make_unique<VerticalIndex>(*state_->db, policy))
             .first;
  }
  return *it->second;
}

MiningResult MiningSession::Mine(const MiningRequest& request) {
  return MineStep(request, /*table_floor=*/0);
}

MiningResult MiningSession::ResumeFrom(const std::string& path,
                                       const MiningRequest& request) {
  MiningRequest resuming = request;
  resuming.snapshot.resume_path = path;
  return MineStep(resuming, /*table_floor=*/0);
}

bool MiningSession::Admit(double deadline_seconds) {
  State& s = *state_;
  if (s.options.max_inflight == 0) return true;
  std::unique_lock<std::mutex> lock(s.admission_mutex);
  if (s.inflight < s.options.max_inflight) {
    ++s.inflight;
    return true;
  }
  // At capacity: queue if there is room, else reject immediately (this
  // path takes one uncontended mutex and no waits — sub-millisecond).
  if (s.queued >= s.options.max_queue_depth) {
    ++s.rejected;
    return false;
  }
  ++s.queued;
  const auto slot_free = [&s] {
    return s.inflight < s.options.max_inflight;
  };
  bool admitted;
  if (deadline_seconds > 0.0) {
    // Deadline-aware: a request that cannot get a slot within its own
    // deadline budget is rejected rather than started doomed.
    admitted = s.admission_cv.wait_for(
        lock, std::chrono::duration<double>(deadline_seconds), slot_free);
  } else {
    s.admission_cv.wait(lock, slot_free);
    admitted = true;
  }
  --s.queued;
  if (admitted) {
    ++s.inflight;
  } else {
    ++s.rejected;
  }
  return admitted;
}

void MiningSession::Release() {
  State& s = *state_;
  if (s.options.max_inflight == 0) return;
  {
    std::lock_guard<std::mutex> lock(s.admission_mutex);
    --s.inflight;
  }
  s.admission_cv.notify_one();
}

MiningResult MiningSession::MineStep(const MiningRequest& request,
                                     std::size_t table_floor) {
  if (!Admit(request.budget.deadline_seconds)) {
    MiningResult rejected;
    rejected.stats.outcome = Outcome::kRejected;
    rejected.stats.truncated = true;
    rejected.status_message =
        "rejected by admission control: session at max_inflight=" +
        std::to_string(state_->options.max_inflight) +
        " with a full queue (max_queue_depth=" +
        std::to_string(state_->options.max_queue_depth) + ")";
    return rejected;
  }
  // The slot is released on every exit path, including a throwing
  // failpoint action unwinding through the miner under test.
  struct SlotGuard {
    MiningSession* session;
    ~SlotGuard() { session->Release(); }
  } guard{this};
  SessionBindings bindings;
  bindings.index = &IndexFor(request.params);
  bindings.eval_cache = state_->cache.get();
  bindings.warm_start = state_->warm.get();
  bindings.table_floor = table_floor;
  MiningResult result = MineWithBindings(*state_->db, request, bindings);
  result.stats.cache_bytes = cache_bytes();
  return result;
}

std::vector<MiningResult> MiningSession::MineSweep(
    const MiningRequest& request) {
  std::vector<MiningResult> results;
  const std::string error = ValidateRequest(request);
  if (!error.empty() || request.sweep_min_sup.empty()) {
    MiningResult invalid;
    invalid.stats.outcome = Outcome::kInvalidRequest;
    invalid.status_message =
        "invalid MiningRequest: " +
        (error.empty() ? std::string("MineSweep requires a non-empty "
                                     "sweep_min_sup")
                       : error);
    results.push_back(std::move(invalid));
    return results;
  }
  // Lowest threshold first, with tail tables extended to the sweep's
  // largest threshold: the first run explores a superset of every later
  // run's candidates (anti-monotonicity), so its extended tables answer
  // all higher thresholds from the cache without re-running the DP.
  const std::size_t floor = request.sweep_min_sup.back();
  results.reserve(request.sweep_min_sup.size());
  for (const std::size_t min_sup : request.sweep_min_sup) {
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = min_sup;
    results.push_back(MineStep(step, floor));
  }
  return results;
}

std::uint64_t MiningSession::cache_bytes() const {
  return state_->cache != nullptr ? state_->cache->bytes() : 0;
}

std::uint64_t MiningSession::cache_entries() const {
  return state_->cache != nullptr ? state_->cache->entries() : 0;
}

std::uint64_t MiningSession::cache_evictions() const {
  return state_->cache != nullptr ? state_->cache->evictions() : 0;
}

std::size_t MiningSession::warm_items_recorded() const {
  return state_->warm != nullptr ? state_->warm->items_recorded() : 0;
}

std::size_t MiningSession::inflight() const {
  std::lock_guard<std::mutex> lock(state_->admission_mutex);
  return state_->inflight;
}

std::uint64_t MiningSession::admission_rejected() const {
  std::lock_guard<std::mutex> lock(state_->admission_mutex);
  return state_->rejected;
}

}  // namespace pfci
