#include "src/serve/mining_session.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace pfci {

std::string ValidateSessionOptions(const SessionOptions& options) {
  if (options.cache_bytes > 0 && options.cache_shards < 1) {
    return "cache_shards must be >= 1 when the cache is enabled";
  }
  return "";
}

MiningSession MiningSession::Open(const UncertainDatabase& db,
                                  SessionOptions options) {
  const std::string error = ValidateSessionOptions(options);
  PFCI_CHECK_MSG(error.empty(), "invalid SessionOptions: " + error);
  auto state = std::make_unique<State>();
  state->db = &db;
  state->options = options;
  if (options.cache_bytes > 0) {
    EvalCache::Options cache_options;
    cache_options.max_bytes = options.cache_bytes;
    cache_options.shards = options.cache_shards;
    state->cache = std::make_unique<EvalCache>(cache_options);
  }
  if (options.warm_start) {
    state->warm = std::make_unique<ItemWarmStart>();
  }
  // Prepare the default-mode index up front: the session's first request
  // pays index cost at Open, not at serve time.
  state->indexes.emplace(TidSetMode::kAdaptive,
                         std::make_unique<VerticalIndex>(db, TidSetPolicy{}));
  return MiningSession(std::move(state));
}

const VerticalIndex& MiningSession::IndexFor(const MiningParams& params) {
  const TidSetPolicy policy = TidSetPolicyFor(params);
  std::lock_guard<std::mutex> lock(state_->index_mutex);
  auto it = state_->indexes.find(policy.mode);
  if (it == state_->indexes.end()) {
    it = state_->indexes
             .emplace(policy.mode,
                      std::make_unique<VerticalIndex>(*state_->db, policy))
             .first;
  }
  return *it->second;
}

MiningResult MiningSession::Mine(const MiningRequest& request) {
  return MineStep(request, /*table_floor=*/0);
}

MiningResult MiningSession::MineStep(const MiningRequest& request,
                                     std::size_t table_floor) {
  SessionBindings bindings;
  bindings.index = &IndexFor(request.params);
  bindings.eval_cache = state_->cache.get();
  bindings.warm_start = state_->warm.get();
  bindings.table_floor = table_floor;
  MiningResult result = MineWithBindings(*state_->db, request, bindings);
  result.stats.cache_bytes = cache_bytes();
  return result;
}

std::vector<MiningResult> MiningSession::MineSweep(
    const MiningRequest& request) {
  std::vector<MiningResult> results;
  const std::string error = ValidateRequest(request);
  if (!error.empty() || request.sweep_min_sup.empty()) {
    MiningResult invalid;
    invalid.stats.outcome = Outcome::kInvalidRequest;
    invalid.status_message =
        "invalid MiningRequest: " +
        (error.empty() ? std::string("MineSweep requires a non-empty "
                                     "sweep_min_sup")
                       : error);
    results.push_back(std::move(invalid));
    return results;
  }
  // Lowest threshold first, with tail tables extended to the sweep's
  // largest threshold: the first run explores a superset of every later
  // run's candidates (anti-monotonicity), so its extended tables answer
  // all higher thresholds from the cache without re-running the DP.
  const std::size_t floor = request.sweep_min_sup.back();
  results.reserve(request.sweep_min_sup.size());
  for (const std::size_t min_sup : request.sweep_min_sup) {
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = min_sup;
    results.push_back(MineStep(step, floor));
  }
  return results;
}

std::uint64_t MiningSession::cache_bytes() const {
  return state_->cache != nullptr ? state_->cache->bytes() : 0;
}

std::uint64_t MiningSession::cache_entries() const {
  return state_->cache != nullptr ? state_->cache->entries() : 0;
}

std::uint64_t MiningSession::cache_evictions() const {
  return state_->cache != nullptr ? state_->cache->evictions() : 0;
}

std::size_t MiningSession::warm_items_recorded() const {
  return state_->warm != nullptr ? state_->warm->items_recorded() : 0;
}

}  // namespace pfci
