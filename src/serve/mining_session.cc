#include "src/serve/mining_session.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "src/serve/batch_planner.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"

namespace pfci {

namespace {

/// Pre-run rejection stamped by the session (admission control).
MiningResult RejectedResult(const SessionOptions& options) {
  MiningResult rejected;
  rejected.stats.outcome = Outcome::kRejected;
  rejected.stats.truncated = true;
  rejected.status_message =
      "rejected by admission control: session at max_inflight=" +
      std::to_string(options.max_inflight) +
      " with a full queue (max_queue_depth=" +
      std::to_string(options.max_queue_depth) + ")";
  return rejected;
}

/// Pre-run validation failure, matching Mine()'s message prefix.
MiningResult InvalidResult(const std::string& why) {
  MiningResult invalid;
  invalid.stats.outcome = Outcome::kInvalidRequest;
  invalid.status_message = "invalid MiningRequest: " + why;
  return invalid;
}

std::uint64_t Micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

std::string ValidateSessionOptions(const SessionOptions& options) {
  if (options.cache_bytes > 0 && options.cache_shards < 1) {
    return "cache_shards must be >= 1 when the cache is enabled";
  }
  if (options.max_queue_depth > 0 && options.max_inflight == 0) {
    return "max_queue_depth requires max_inflight > 0 (there is no queue "
           "without an execution limit)";
  }
  return "";
}

MiningSession MiningSession::Open(const UncertainDatabase& db,
                                  SessionOptions options) {
  const std::string error = ValidateSessionOptions(options);
  PFCI_CHECK_MSG(error.empty(), "invalid SessionOptions: " + error);
  auto state = std::make_unique<State>();
  state->db = &db;
  state->options = options;
  if (options.cache_bytes > 0) {
    EvalCache::Options cache_options;
    cache_options.max_bytes = options.cache_bytes;
    cache_options.shards = options.cache_shards;
    state->cache = std::make_unique<EvalCache>(cache_options);
  }
  if (options.warm_start) {
    state->warm = std::make_unique<ItemWarmStart>();
  }
  // Prepare the default-mode index up front: the session's first request
  // pays index cost at Open, not at serve time.
  state->indexes.emplace(TidSetMode::kAdaptive,
                         std::make_unique<VerticalIndex>(db, TidSetPolicy{}));
  return MiningSession(std::move(state));
}

MiningSession& MiningSession::operator=(MiningSession&& other) {
  if (this != &other) {
    if (state_ != nullptr) DrainSubmitted(*state_);
    state_ = std::move(other.state_);
  }
  return *this;
}

MiningSession::~MiningSession() {
  if (state_ != nullptr) DrainSubmitted(*state_);
}

void MiningSession::DrainSubmitted(State& state) {
  // Swap out under the lock, join outside it: a worker finishing during
  // the join must not deadlock trying to touch the thread list.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(state.submit_mutex);
    workers.swap(state.submit_threads);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

const VerticalIndex& MiningSession::IndexFor(State& state,
                                             const MiningParams& params) {
  const TidSetPolicy policy = TidSetPolicyFor(params);
  std::lock_guard<std::mutex> lock(state.index_mutex);
  auto it = state.indexes.find(policy.mode);
  if (it == state.indexes.end()) {
    it = state.indexes
             .emplace(policy.mode,
                      std::make_unique<VerticalIndex>(*state.db, policy))
             .first;
  }
  return *it->second;
}

MiningResult MiningSession::Mine(const MiningRequest& request) {
  return MineStep(*state_, request, /*table_floor=*/0);
}

MiningResult MiningSession::ResumeFrom(const std::string& path,
                                       const MiningRequest& request) {
  MiningRequest resuming = request;
  resuming.snapshot.resume_path = path;
  return MineStep(*state_, resuming, /*table_floor=*/0);
}

bool MiningSession::Admit(State& s, double deadline_seconds) {
  if (s.options.max_inflight == 0) return true;
  std::unique_lock<std::mutex> lock(s.admission_mutex);
  if (s.inflight < s.options.max_inflight) {
    ++s.inflight;
    return true;
  }
  // At capacity: queue if there is room, else reject immediately (this
  // path takes one uncontended mutex and no waits — sub-millisecond).
  if (s.queued >= s.options.max_queue_depth) {
    ++s.rejected;
    return false;
  }
  ++s.queued;
  const auto slot_free = [&s] {
    return s.inflight < s.options.max_inflight;
  };
  bool admitted;
  if (deadline_seconds > 0.0) {
    // Deadline-aware: a request that cannot get a slot within its own
    // deadline budget is rejected rather than started doomed.
    admitted = s.admission_cv.wait_for(
        lock, std::chrono::duration<double>(deadline_seconds), slot_free);
  } else {
    s.admission_cv.wait(lock, slot_free);
    admitted = true;
  }
  --s.queued;
  if (admitted) {
    ++s.inflight;
  } else {
    ++s.rejected;
  }
  return admitted;
}

void MiningSession::Release(State& s) {
  if (s.options.max_inflight == 0) return;
  {
    std::lock_guard<std::mutex> lock(s.admission_mutex);
    --s.inflight;
  }
  s.admission_cv.notify_one();
}

MiningResult MiningSession::MineStep(State& state,
                                     const MiningRequest& request,
                                     std::size_t table_floor) {
  if (!Admit(state, request.budget.deadline_seconds)) {
    return RejectedResult(state.options);
  }
  // The slot is released on every exit path, including a throwing
  // failpoint action unwinding through the miner under test.
  struct SlotGuard {
    State* state;
    ~SlotGuard() { Release(*state); }
  } guard{&state};
  SessionBindings bindings;
  bindings.index = &IndexFor(state, request.params);
  bindings.eval_cache = state.cache.get();
  bindings.warm_start = state.warm.get();
  bindings.table_floor = table_floor;
  MiningResult result = MineWithBindings(*state.db, request, bindings);
  result.stats.cache_bytes =
      state.cache != nullptr ? state.cache->bytes() : 0;
  return result;
}

void MiningSession::RunSubmitted(State* state,
                                 std::shared_ptr<internal::RunTicket> ticket,
                                 MiningRequest request, Stopwatch queued) {
  // Worker entry, before the cancel check: tests park here to make
  // cancel-before-start deterministic instead of racing thread start.
  PFCI_FAILPOINT("serve/submit_start");
  const std::uint64_t queued_micros = Micros(queued.ElapsedSeconds());
  MiningResult result;
  if (ticket->cancel.cancelled()) {
    // Cancelled before the run started: answered without touching the
    // index or caches, like an admission rejection.
    result.stats.outcome = Outcome::kCancelled;
    result.stats.truncated = true;
    result.status_message = "cancelled via RunHandle::Cancel before start";
  } else {
    request.cancel = &ticket->cancel;
    result = MineStep(*state, request, /*table_floor=*/0);
  }
  result.stats.queued_micros = queued_micros;
  ticket->result = std::move(result);
  // Publish happens-before the signal via the latch's mutex; consumers
  // that observe done() may read the result without further locking.
  ticket->latch.Signal();
}

RunHandle MiningSession::Submit(const MiningRequest& request) {
  auto ticket = std::make_shared<internal::RunTicket>();
  if (request.cancel != nullptr) {
    // Error-as-data on the async path: the handle owns cancellation, and
    // silently ignoring a caller's token would leave them a token that
    // never cancels anything.
    ticket->result = InvalidResult(
        "Submit owns cancellation through RunHandle::Cancel; submit "
        "without a request-level cancel token");
    ticket->latch.Signal();
    return RunHandle(std::move(ticket));
  }
  State* state = state_.get();
  std::thread worker(&MiningSession::RunSubmitted, state, ticket, request,
                     Stopwatch());
  {
    std::lock_guard<std::mutex> lock(state->submit_mutex);
    state->submit_threads.push_back(std::move(worker));
  }
  return RunHandle(std::move(ticket));
}

std::vector<MiningResult> MiningSession::MineBatch(
    std::span<const MiningRequest> requests) {
  State& state = *state_;
  const Stopwatch batch_clock;
  const BatchPlan plan = PlanBatch(requests);
  std::vector<MiningResult> results(requests.size());
  for (std::size_t i = 0; i < plan.invalid.size(); ++i) {
    results[plan.invalid[i]] = InvalidResult(plan.invalid_reasons[i]);
  }

  // Pin everything the batch inserts into the eval cache until the last
  // member finishes: the group leaders' extended tail tables are the
  // shared pass later members answer from, and LRU pressure from
  // concurrent traffic must not evict them mid-batch.
  EvalCache::PinScope pin(state.cache.get());

  // One runner per group, executing its members in ladder order; groups
  // beyond the first get their own thread so their work units interleave
  // on the shared work-stealing pool (fair-share UnitQuota keeps
  // per-request budgets scheduling-independent). The first group runs on
  // the calling thread — a single-group batch (every MineSweep) adds no
  // thread at all.
  const auto run_group = [&state, &batch_clock, &results,
                          &requests](const BatchGroup& group) {
    for (std::size_t position = 0; position < group.members.size();
         ++position) {
      const std::size_t index = group.members[position];
      const std::uint64_t queued_micros =
          Micros(batch_clock.ElapsedSeconds());
      MiningResult result =
          MineStep(state, requests[index], group.table_floor);
      result.stats.queued_micros = queued_micros;
      // The leader pays for the shared tables; followers' DP reuse is
      // the batch's shared-scan dividend.
      result.stats.shared_dp_hits =
          position > 0 ? result.stats.dp_reused : 0;
      results[index] = std::move(result);
    }
  };

  std::vector<std::thread> runners;
  runners.reserve(plan.groups.size() > 0 ? plan.groups.size() - 1 : 0);
  for (std::size_t g = 1; g < plan.groups.size(); ++g) {
    runners.emplace_back(run_group, std::cref(plan.groups[g]));
  }
  if (!plan.groups.empty()) run_group(plan.groups[0]);
  for (std::thread& runner : runners) runner.join();

  // Stamp the batch shape on every member (including invalid ones): the
  // counters describe the batch around the run, so they are identical
  // across members and never merged from task partials.
  for (MiningResult& result : results) {
    result.stats.batch_size = plan.size;
    result.stats.batch_groups = plan.groups.size();
  }
  return results;
}

std::vector<MiningResult> MiningSession::MineSweep(
    const MiningRequest& request) {
  std::vector<MiningResult> results;
  const std::string error = ValidateRequest(request);
  if (!error.empty() || request.sweep_min_sup.empty()) {
    results.push_back(InvalidResult(
        error.empty()
            ? std::string("MineSweep requires a non-empty sweep_min_sup")
            : error));
    return results;
  }
  // A sweep is a batch whose members differ only in min_sup: the planner
  // puts them in one group, lowest threshold first, with tail tables
  // extended to the sweep's largest threshold (anti-monotonicity makes
  // the first run's candidate set a superset of every later run's).
  std::vector<MiningRequest> steps;
  steps.reserve(request.sweep_min_sup.size());
  for (const std::size_t min_sup : request.sweep_min_sup) {
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = min_sup;
    steps.push_back(std::move(step));
  }
  return MineBatch(steps);
}

std::uint64_t MiningSession::cache_bytes() const {
  return state_->cache != nullptr ? state_->cache->bytes() : 0;
}

std::uint64_t MiningSession::cache_entries() const {
  return state_->cache != nullptr ? state_->cache->entries() : 0;
}

std::uint64_t MiningSession::cache_evictions() const {
  return state_->cache != nullptr ? state_->cache->evictions() : 0;
}

std::size_t MiningSession::warm_items_recorded() const {
  return state_->warm != nullptr ? state_->warm->items_recorded() : 0;
}

std::size_t MiningSession::inflight() const {
  std::lock_guard<std::mutex> lock(state_->admission_mutex);
  return state_->inflight;
}

std::uint64_t MiningSession::admission_rejected() const {
  std::lock_guard<std::mutex> lock(state_->admission_mutex);
  return state_->rejected;
}

}  // namespace pfci
