// MiningSession: an amortized serving layer over one uncertain database
// (DESIGN.md §11).
//
// Mine() is a single-shot API: every call builds a VerticalIndex, runs,
// and throws all derived state away. A MiningSession amortizes that work
// across requests against the SAME database — the dominant serving
// pattern (threshold sweeps, parameter exploration, dashboards):
//
//   * the tid-set index layer is built once per tid-set mode and shared
//     by every request (borrowed through ExecutionContext::shared_index);
//   * per-tidset evaluation results (expected support mu, Poisson-
//     binomial tail tables) persist in a bounded EvalCache; a tail table
//     computed at one min_sup answers every smaller min_sup without
//     re-running the DP (monotonicity-aware reuse);
//   * per-item infrequency proofs persist in an ItemWarmStart, letting
//     later runs at equal-or-higher min_sup reject items up front
//     (anti-monotonicity).
//
// Determinism: session state never changes results. Cached values are
// bit-identical to what a cold run computes (see FrequentProbability and
// PoissonBinomialTailTable), warm-start proofs only skip work whose
// outcome they already verified, and sampled FCP values are seed-derived
// per run and never cached. A session run differs from a cold run only in
// the work counters (dp_runs, cache_hits, cache_misses, dp_reused,
// cache_bytes).
//
// Beyond one-at-a-time Mine(), the session serves whole workloads
// (DESIGN.md §15): MineBatch() plans a set of requests into shared-scan
// groups (BatchPlanner) so compatible requests pay for candidate-index
// builds and DP tail tables once at the group's weakest threshold, and
// Submit() runs one request asynchronously behind a RunHandle. Both
// compose with admission control and keep every per-request result
// bit-identical to a standalone Mine() of the same request.
//
// Thread safety: one session may serve concurrent Mine() calls; the
// caches are internally synchronized and the index map is mutex-guarded.
// The database must outlive the session and stay unmodified.
#ifndef PFCI_SERVE_MINING_SESSION_H_
#define PFCI_SERVE_MINING_SESSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/mine.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"
#include "src/serve/run_handle.h"
#include "src/util/stopwatch.h"

namespace pfci {

/// Knobs fixed at session open.
struct SessionOptions {
  /// Byte budget of the evaluation cache (LRU-evicted). 0 disables the
  /// cache entirely (runs still share the prepared index).
  std::size_t cache_bytes = std::size_t{64} << 20;

  /// Lock shards of the evaluation cache (>= 1 when the cache is on).
  std::size_t cache_shards = 8;

  /// Keep per-item infrequency proofs across requests.
  bool warm_start = true;

  /// Admission control (DESIGN.md §14): maximum number of concurrently
  /// executing Mine()/MineSweep-step runs. 0 disables admission control
  /// (every request runs immediately). A request arriving with
  /// max_inflight runs already executing is queued if queue room exists,
  /// else rejected immediately (Outcome::kRejected, sub-millisecond, no
  /// effect on in-flight runs).
  std::size_t max_inflight = 0;

  /// Requests allowed to wait for an execution slot when the session is
  /// at max_inflight. 0: no queue — excess requests are rejected
  /// immediately. A queued request with a deadline budget waits at most
  /// its own deadline before coming back as kRejected (deadline-aware
  /// rejection: a request that would wake with no time left is refused
  /// rather than started doomed).
  std::size_t max_queue_depth = 0;
};

/// Checks `options`; empty string when valid.
std::string ValidateSessionOptions(const SessionOptions& options);

class MiningSession {
 public:
  /// Opens a session over `db` (kept by reference; must outlive the
  /// session) and prepares the default tid-set index layer up front.
  /// CHECK-fails on invalid options — validate first when they come from
  /// user input.
  static MiningSession Open(const UncertainDatabase& db,
                            SessionOptions options = SessionOptions{});

  MiningSession(MiningSession&&) = default;

  /// Drains the target session's submitted runs before replacing it (a
  /// joinable worker must never be dropped).
  MiningSession& operator=(MiningSession&& other);

  /// Joins every Submit() worker still running: a RunHandle that
  /// outlives its session therefore always holds a completed result and
  /// never dangles into freed session state.
  ~MiningSession();

  /// Serves one request with the session's shared index and caches.
  /// Identical results to Mine(db, request) — see the determinism note
  /// above — with stats.cache_* reporting the session's cache work.
  MiningResult Mine(const MiningRequest& request);

  /// Resumes a suspended run from the snapshot at `path` through the
  /// session's shared index and caches: serves `request` with
  /// snapshot.resume_path bound to `path`. Verification (algorithm +
  /// database/request fingerprint) and the bit-identical resume contract
  /// are Mine()'s (see SnapshotPolicy); a mismatch comes back as
  /// kInvalidRequest. Note the cross-request caches can change dp_runs
  /// relative to a cold resume — results are unaffected.
  MiningResult ResumeFrom(const std::string& path,
                          const MiningRequest& request);

  /// Submits one request for asynchronous execution and returns a handle
  /// immediately; the run executes on a session worker thread through
  /// the same admission control, index, and caches as Mine(). All
  /// failures are error-as-data through the handle (kInvalidRequest,
  /// kRejected, kCancelled, ...) — Submit itself never blocks on the
  /// run. The handle owns cancellation (RunHandle::Cancel), so a request
  /// carrying its own cancel token is answered kInvalidRequest. Results
  /// are bit-identical to a synchronous Mine() of the same request.
  RunHandle Submit(const MiningRequest& request);

  /// Serves a whole batch with shared-scan planning (DESIGN.md §15):
  /// PlanBatch groups compatible requests (same algorithm + tid-set
  /// mode), each group runs ascending-threshold with DP tail tables
  /// extended to the group's weakest threshold, and distinct groups run
  /// concurrently (their work units interleave on the shared
  /// work-stealing pool under fair-share UnitQuota). Results come back
  /// in submission order, each bit-identical to a standalone Mine() of
  /// that request; invalid members come back kInvalidRequest without
  /// perturbing the rest. Every result is stamped with the batch
  /// counters (stats.batch_size, batch_groups, shared_dp_hits,
  /// queued_micros; stats-json schema v6).
  std::vector<MiningResult> MineBatch(std::span<const MiningRequest> requests);

  /// Serves request.sweep_min_sup (strictly increasing min_sup values) as
  /// one request per threshold; results come back in sweep order. A thin
  /// wrapper over MineBatch(): the expanded per-threshold requests form
  /// one batch group, so the sweep runs lowest threshold first with DP
  /// tail tables extended to the sweep's largest threshold — the first
  /// run explores a superset of every later run's candidates
  /// (anti-monotonicity), and the higher thresholds are answered from
  /// the cache without re-running the DP. On an invalid request the
  /// vector holds a single kInvalidRequest result carrying the
  /// diagnosis.
  std::vector<MiningResult> MineSweep(const MiningRequest& request);

  const UncertainDatabase& db() const { return *state_->db; }
  const SessionOptions& options() const { return state_->options; }

  /// Session cache observability (zero with the cache disabled).
  std::uint64_t cache_bytes() const;
  std::uint64_t cache_entries() const;
  std::uint64_t cache_evictions() const;

  /// Items with a recorded warm-start proof (0 with warm_start off).
  std::size_t warm_items_recorded() const;

  /// Admission observability: currently executing runs / total requests
  /// rejected by admission control since Open.
  std::size_t inflight() const;
  std::uint64_t admission_rejected() const;

 private:
  /// All session state sits behind one pointer so the session is movable
  /// while runs hold stable addresses into it.
  struct State {
    const UncertainDatabase* db = nullptr;
    SessionOptions options;
    std::unique_ptr<EvalCache> cache;      ///< Null when cache_bytes == 0.
    std::unique_ptr<ItemWarmStart> warm;   ///< Null when warm_start off.

    /// One prepared index per tid-set mode, built on first use.
    std::mutex index_mutex;
    std::map<TidSetMode, std::unique_ptr<VerticalIndex>> indexes;

    /// Admission control state (all under admission_mutex). Admission
    /// never touches the caches or the index map, so a rejection can
    /// never perturb an in-flight run.
    std::mutex admission_mutex;
    std::condition_variable admission_cv;
    std::size_t inflight = 0;
    std::size_t queued = 0;
    std::uint64_t rejected = 0;

    /// Submit() worker threads, joined by DrainSubmitted (destructor /
    /// move-assignment). Guarded by submit_mutex.
    std::mutex submit_mutex;
    std::vector<std::thread> submit_threads;
  };

  explicit MiningSession(std::unique_ptr<State> state)
      : state_(std::move(state)) {}

  /// The session index for this request's tid-set policy (built under the
  /// mutex on first use; stable address afterwards).
  ///
  /// These helpers are static over State rather than members: Submit()
  /// workers and batch group threads outlast any particular `this` (the
  /// session is movable), so everything they touch goes through the
  /// stable State address.
  static const VerticalIndex& IndexFor(State& state,
                                       const MiningParams& params);

  /// One request with session bindings attached; `table_floor` extends
  /// freshly cached DP tables for sweep/batch prefilling (0 outside
  /// planned execution).
  static MiningResult MineStep(State& state, const MiningRequest& request,
                               std::size_t table_floor);

  /// Takes an execution slot (possibly waiting up to `deadline_seconds`
  /// in the admission queue); false means rejected. Always true with
  /// admission control off.
  static bool Admit(State& state, double deadline_seconds);
  static void Release(State& state);

  /// Body of one Submit() worker: waits out nothing, runs the request
  /// (unless cancelled before start), publishes through the ticket.
  static void RunSubmitted(State* state,
                           std::shared_ptr<internal::RunTicket> ticket,
                           MiningRequest request, Stopwatch queued);

  /// Joins every submitted worker (idempotent).
  static void DrainSubmitted(State& state);

  std::unique_ptr<State> state_;
};

}  // namespace pfci

#endif  // PFCI_SERVE_MINING_SESSION_H_
