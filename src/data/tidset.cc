#include "src/data/tidset.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

namespace tidset_internal {

namespace {

/// First index in [lo, nb) with b[index] >= key, found by exponential
/// search from `lo` (doubling steps, then binary search in the bracketed
/// range). O(log(result - lo)) — the whole point of galloping.
std::size_t GallopLowerBound(const Tid* b, std::size_t lo, std::size_t nb,
                             Tid key) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < nb && b[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > nb) hi = nb;
  return static_cast<std::size_t>(
      std::lower_bound(b + lo, b + hi, key) - b);
}

}  // namespace

std::size_t IntersectSorted(const Tid* a, std::size_t na, const Tid* b,
                            std::size_t nb, TidList* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  std::size_t count = 0;
  if (na == 0) return 0;
  if (na * kGallopSkewRatio <= nb) {
    // Galloping: each element of the short side is located in the long
    // side by exponential search resuming from the previous position.
    std::size_t pos = 0;
    for (std::size_t i = 0; i < na; ++i) {
      pos = GallopLowerBound(b, pos, nb, a[i]);
      if (pos == nb) break;
      if (b[pos] == a[i]) {
        ++count;
        if (out != nullptr) out->push_back(a[i]);
        ++pos;
      }
    }
    return count;
  }
  // Linear merge.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      if (out != nullptr) out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return count;
}

bool SubsetSorted(const Tid* a, std::size_t na, const Tid* b,
                  std::size_t nb) {
  if (na > nb) return false;
  if (na == 0) return true;
  if (na * kGallopSkewRatio <= nb) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < na; ++i) {
      pos = GallopLowerBound(b, pos, nb, a[i]);
      if (pos == nb || b[pos] != a[i]) return false;
      ++pos;
    }
    return true;
  }
  return std::includes(b, b + nb, a, a + na);
}

}  // namespace tidset_internal

namespace {

constexpr std::size_t kWordBits = 64;

std::size_t NumWords(std::size_t universe) {
  return (universe + kWordBits - 1) / kWordBits;
}

bool ShouldBeDense(std::size_t size, std::size_t universe,
                   const TidSetPolicy& policy) {
  switch (policy.mode) {
    case TidSetMode::kSparse:
      return false;
    case TidSetMode::kDense:
      return true;
    case TidSetMode::kAdaptive:
      return universe >= policy.min_dense_universe &&
             size * policy.dense_divisor >= universe;
  }
  return false;
}

/// Universes must agree, except that empty sets (including
/// default-constructed placeholders with universe 0) combine with
/// anything.
std::size_t CombinedUniverse(const TidSet& a, const TidSet& b) {
  PFCI_DCHECK(a.universe() == b.universe() || a.empty() || b.empty());
  return std::max(a.universe(), b.universe());
}

}  // namespace

const char* TidSetModeName(TidSetMode mode) {
  switch (mode) {
    case TidSetMode::kAdaptive:
      return "adaptive";
    case TidSetMode::kSparse:
      return "sparse";
    case TidSetMode::kDense:
      return "dense";
  }
  return "unknown";
}

bool ParseTidSetMode(const std::string& text, TidSetMode* mode) {
  if (text == "adaptive") {
    *mode = TidSetMode::kAdaptive;
  } else if (text == "sparse") {
    *mode = TidSetMode::kSparse;
  } else if (text == "dense") {
    *mode = TidSetMode::kDense;
  } else {
    return false;
  }
  return true;
}

TidSet::TidSet(TidList sorted_tids, std::size_t universe,
               const TidSetPolicy& policy)
    : universe_(universe),
      size_(sorted_tids.size()),
      policy_(policy),
      sparse_(std::move(sorted_tids)) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < sparse_.size(); ++i) {
    PFCI_DCHECK(sparse_[i] < universe_);
    PFCI_DCHECK(i == 0 || sparse_[i - 1] < sparse_[i]);
  }
#endif
  Normalize();
}

TidSet TidSet::All(std::size_t universe, const TidSetPolicy& policy) {
  TidSet set;
  set.universe_ = universe;
  set.size_ = universe;
  set.policy_ = policy;
  if (ShouldBeDense(universe, universe, policy)) {
    set.dense_ = true;
    set.words_.assign(NumWords(universe), ~std::uint64_t{0});
    if (universe % kWordBits != 0 && !set.words_.empty()) {
      set.words_.back() =
          (std::uint64_t{1} << (universe % kWordBits)) - 1;
    }
  } else {
    set.sparse_.resize(universe);
    for (std::size_t tid = 0; tid < universe; ++tid) {
      set.sparse_[tid] = static_cast<Tid>(tid);
    }
  }
  return set;
}

bool TidSet::Contains(Tid tid) const {
  if (tid >= universe_) return false;
  if (dense_) {
    return (words_[tid / kWordBits] >> (tid % kWordBits)) & 1;
  }
  return std::binary_search(sparse_.begin(), sparse_.end(), tid);
}

TidList TidSet::ToTidList() const {
  if (!dense_) return sparse_;
  TidList out;
  out.reserve(size_);
  ForEach([&out](Tid tid) { out.push_back(tid); });
  return out;
}

void TidSet::Normalize() {
  const bool want_dense = ShouldBeDense(size_, universe_, policy_);
  if (want_dense && !dense_) {
    ToDense();
  } else if (!want_dense && dense_) {
    ToSparse();
  }
}

void TidSet::ToDense() {
  words_.assign(NumWords(universe_), 0);
  for (Tid tid : sparse_) {
    words_[tid / kWordBits] |= std::uint64_t{1} << (tid % kWordBits);
  }
  sparse_.clear();
  sparse_.shrink_to_fit();
  dense_ = true;
}

void TidSet::ToSparse() {
  sparse_.clear();
  sparse_.reserve(size_);
  ForEach([this](Tid tid) { sparse_.push_back(tid); });
  words_.clear();
  words_.shrink_to_fit();
  dense_ = false;
}

TidSet Intersect(const TidSet& a, const TidSet& b) {
  TidSet out;
  out.universe_ = CombinedUniverse(a, b);
  out.policy_ = a.policy_;
  if (a.empty() || b.empty()) {
    out.Normalize();
    return out;
  }
  if (a.dense_ && b.dense_) {
    out.words_.resize(a.words_.size());
    std::size_t count = 0;
    for (std::size_t w = 0; w < a.words_.size(); ++w) {
      const std::uint64_t word = a.words_[w] & b.words_[w];
      out.words_[w] = word;
      count += static_cast<std::size_t>(std::popcount(word));
    }
    out.size_ = count;
    out.dense_ = true;
  } else if (a.dense_ != b.dense_) {
    const TidSet& sparse = a.dense_ ? b : a;
    const TidSet& dense = a.dense_ ? a : b;
    out.sparse_.reserve(sparse.size_);
    for (Tid tid : sparse.sparse_) {
      if (dense.Contains(tid)) out.sparse_.push_back(tid);
    }
    out.size_ = out.sparse_.size();
  } else {
    out.sparse_.reserve(std::min(a.size_, b.size_));
    tidset_internal::IntersectSorted(a.sparse_.data(), a.size_,
                                     b.sparse_.data(), b.size_,
                                     &out.sparse_);
    out.size_ = out.sparse_.size();
  }
  out.Normalize();
  return out;
}

std::size_t IntersectSize(const TidSet& a, const TidSet& b) {
  CombinedUniverse(a, b);  // Universe agreement DCHECK.
  if (a.empty() || b.empty()) return 0;
  if (a.dense_ && b.dense_) {
    std::size_t count = 0;
    for (std::size_t w = 0; w < a.words_.size(); ++w) {
      count +=
          static_cast<std::size_t>(std::popcount(a.words_[w] & b.words_[w]));
    }
    return count;
  }
  if (a.dense_ != b.dense_) {
    const TidSet& sparse = a.dense_ ? b : a;
    const TidSet& dense = a.dense_ ? a : b;
    std::size_t count = 0;
    for (Tid tid : sparse.sparse_) {
      if (dense.Contains(tid)) ++count;
    }
    return count;
  }
  return tidset_internal::IntersectSorted(a.sparse_.data(), a.size_,
                                          b.sparse_.data(), b.size_, nullptr);
}

TidSet Difference(const TidSet& a, const TidSet& b) {
  TidSet out;
  out.universe_ = CombinedUniverse(a, b);
  out.policy_ = a.policy_;
  if (a.empty() || b.empty()) {
    out.size_ = a.size_;
    out.dense_ = a.dense_;
    out.sparse_ = a.sparse_;
    out.words_ = a.words_;
    out.Normalize();
    return out;
  }
  if (a.dense_ && b.dense_) {
    out.words_.resize(a.words_.size());
    std::size_t count = 0;
    for (std::size_t w = 0; w < a.words_.size(); ++w) {
      const std::uint64_t word = a.words_[w] & ~b.words_[w];
      out.words_[w] = word;
      count += static_cast<std::size_t>(std::popcount(word));
    }
    out.size_ = count;
    out.dense_ = true;
  } else if (a.dense_) {
    // Dense minus sparse: copy the bitmap, clear the subtrahend's bits.
    out.words_ = a.words_;
    out.size_ = a.size_;
    out.dense_ = true;
    for (Tid tid : b.sparse_) {
      if (tid >= out.universe_) continue;
      std::uint64_t& word = out.words_[tid / kWordBits];
      const std::uint64_t bit = std::uint64_t{1} << (tid % kWordBits);
      if (word & bit) {
        word &= ~bit;
        --out.size_;
      }
    }
  } else if (b.dense_) {
    out.sparse_.reserve(a.size_);
    for (Tid tid : a.sparse_) {
      if (!b.Contains(tid)) out.sparse_.push_back(tid);
    }
    out.size_ = out.sparse_.size();
  } else {
    out.sparse_.reserve(a.size_);
    std::set_difference(a.sparse_.begin(), a.sparse_.end(),
                        b.sparse_.begin(), b.sparse_.end(),
                        std::back_inserter(out.sparse_));
    out.size_ = out.sparse_.size();
  }
  out.Normalize();
  return out;
}

bool IsSubsetOf(const TidSet& a, const TidSet& b) {
  CombinedUniverse(a, b);  // Universe agreement DCHECK.
  if (a.size_ > b.size_) return false;
  if (a.empty()) return true;
  if (a.dense_ && b.dense_) {
    for (std::size_t w = 0; w < a.words_.size(); ++w) {
      if ((a.words_[w] & ~b.words_[w]) != 0) return false;
    }
    return true;
  }
  if (!a.dense_ && b.dense_) {
    for (Tid tid : a.sparse_) {
      if (!b.Contains(tid)) return false;
    }
    return true;
  }
  if (a.dense_ && !b.dense_) {
    // Rare mixed case (only under hand-built sets): check each member.
    bool subset = true;
    a.ForEach([&](Tid tid) {
      if (subset && !std::binary_search(b.sparse_.begin(), b.sparse_.end(),
                                        tid)) {
        subset = false;
      }
    });
    return subset;
  }
  return tidset_internal::SubsetSorted(a.sparse_.data(), a.size_,
                                       b.sparse_.data(), b.size_);
}

bool operator==(const TidSet& a, const TidSet& b) {
  if (a.size_ != b.size_) return false;
  if (!a.dense_ && !b.dense_) return a.sparse_ == b.sparse_;
  if (a.dense_ && b.dense_ && a.words_.size() == b.words_.size()) {
    return a.words_ == b.words_;
  }
  return a.ToTidList() == b.ToTidList();
}

bool operator==(const TidSet& a, const TidList& b) {
  if (a.size() != b.size()) return false;
  return a.ToTidList() == b;
}

}  // namespace pfci
