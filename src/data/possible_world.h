// Possible worlds of an uncertain database.
#ifndef PFCI_DATA_POSSIBLE_WORLD_H_
#define PFCI_DATA_POSSIBLE_WORLD_H_

#include <cstdint>
#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// One possible world: a subset of the database's transactions (paper
/// Sec. I, possible-world semantics). Stored as a presence bitmap aligned
/// with the database's tids.
class PossibleWorld {
 public:
  /// Creates a world over `db_size` transactions, all absent.
  explicit PossibleWorld(std::size_t db_size) : present_(db_size, 0) {}

  /// Creates a world from an explicit presence bitmap.
  explicit PossibleWorld(std::vector<std::uint8_t> present)
      : present_(std::move(present)) {}

  std::size_t db_size() const { return present_.size(); }
  bool IsPresent(Tid tid) const { return present_[tid] != 0; }
  void SetPresent(Tid tid, bool present) { present_[tid] = present ? 1 : 0; }

  /// Tids of the present transactions, ascending.
  std::vector<Tid> PresentTids() const;

  /// Number of present transactions.
  std::size_t NumPresent() const;

  /// Probability of this world under `db`'s tuple-independence measure.
  double Probability(const UncertainDatabase& db) const;

  /// Support of X in this world: present transactions containing X.
  std::size_t Support(const UncertainDatabase& db, const Itemset& x) const;

  /// Whether X is closed in this world per Definition 3.6 and the paper's
  /// convention: X must appear (support >= 1) and no proper superset may
  /// have equal support. Equivalently, X equals the intersection of the
  /// present transactions containing it.
  bool IsClosed(const UncertainDatabase& db, const Itemset& x) const;

  /// Whether X is a frequent closed itemset in this world (Definition 3.3).
  bool IsFrequentClosed(const UncertainDatabase& db, const Itemset& x,
                        std::size_t min_sup) const;

 private:
  std::vector<std::uint8_t> present_;
};

}  // namespace pfci

#endif  // PFCI_DATA_POSSIBLE_WORLD_H_
