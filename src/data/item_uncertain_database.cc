#include "src/data/item_uncertain_database.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

double ItemUncertainTransaction::ContainmentProb(const Itemset& x) const {
  double prob = 1.0;
  auto it = items.begin();
  for (Item needed : x.items()) {
    while (it != items.end() && it->item < needed) ++it;
    if (it == items.end() || it->item != needed) return 0.0;
    prob *= it->prob;
  }
  return prob;
}

Itemset ItemUncertainTransaction::CertainItems() const {
  std::vector<Item> ids;
  ids.reserve(items.size());
  for (const ProbItem& occurrence : items) ids.push_back(occurrence.item);
  return Itemset(std::move(ids));
}

void ItemUncertainDatabase::Add(std::vector<ProbItem> items) {
  std::sort(items.begin(), items.end(),
            [](const ProbItem& a, const ProbItem& b) {
              return a.item < b.item;
            });
  for (std::size_t i = 0; i < items.size(); ++i) {
    PFCI_CHECK(items[i].prob > 0.0 && items[i].prob <= 1.0);
    if (i > 0) PFCI_CHECK(items[i - 1].item != items[i].item);
  }
  transactions_.push_back(ItemUncertainTransaction{std::move(items)});
}

std::vector<double> ItemUncertainDatabase::ContainmentProbs(
    const Itemset& x) const {
  std::vector<double> probs;
  probs.reserve(transactions_.size());
  for (const auto& t : transactions_) probs.push_back(t.ContainmentProb(x));
  return probs;
}

double ItemUncertainDatabase::ExpectedSupport(const Itemset& x) const {
  double esup = 0.0;
  for (const auto& t : transactions_) esup += t.ContainmentProb(x);
  return esup;
}

std::vector<Item> ItemUncertainDatabase::ItemUniverse() const {
  std::vector<Item> universe;
  for (const auto& t : transactions_) {
    for (const ProbItem& occurrence : t.items) {
      universe.push_back(occurrence.item);
    }
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  return universe;
}

}  // namespace pfci
