// Sorted transaction-id lists and their set algebra.
//
// The miners use an Eclat-style vertical representation: each itemset X is
// carried through the search together with Tids(X), the sorted list of
// transactions possibly containing X. Counts (Definition 4.2) are tid-list
// lengths, and extending X by an item is a tid-list intersection.
#ifndef PFCI_DATA_TIDLIST_H_
#define PFCI_DATA_TIDLIST_H_

#include <cstddef>
#include <vector>

#include "src/data/item.h"

namespace pfci {

/// Sorted, duplicate-free list of transaction ids.
using TidList = std::vector<Tid>;

/// Intersection of two sorted tid-lists.
TidList IntersectTids(const TidList& a, const TidList& b);

/// Size of the intersection without materializing it.
std::size_t IntersectTidsSize(const TidList& a, const TidList& b);

/// Elements of `a` not present in `b` (a \ b).
TidList DifferenceTids(const TidList& a, const TidList& b);

/// Whether `a` is a subset of `b`.
bool TidsSubset(const TidList& a, const TidList& b);

}  // namespace pfci

#endif  // PFCI_DATA_TIDLIST_H_
