#include "src/data/tidlist.h"

#include <algorithm>

namespace pfci {

TidList IntersectTids(const TidList& a, const TidList& b) {
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::size_t IntersectTidsSize(const TidList& a, const TidList& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

TidList DifferenceTids(const TidList& a, const TidList& b) {
  TidList out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool TidsSubset(const TidList& a, const TidList& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace pfci
