// Uncertain transaction database under the tuple-uncertainty model.
#ifndef PFCI_DATA_UNCERTAIN_DATABASE_H_
#define PFCI_DATA_UNCERTAIN_DATABASE_H_

#include <cstddef>
#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"

namespace pfci {

/// One uncertain transaction: an itemset that exists with probability
/// `prob`, independently of all other transactions (paper Sec. I/III,
/// tuple-uncertainty model of [22]).
struct UncertainTransaction {
  Itemset items;
  double prob = 1.0;
};

/// An ordered collection of uncertain transactions. Transaction ids (Tid)
/// are positions in this collection.
class UncertainDatabase {
 public:
  UncertainDatabase() = default;

  /// Appends a transaction. `prob` must lie in (0, 1]; zero-probability
  /// tuples are meaningless (never exist) and are rejected by CHECK.
  void Add(Itemset items, double prob);

  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  const UncertainTransaction& transaction(Tid tid) const {
    return transactions_[tid];
  }
  const std::vector<UncertainTransaction>& transactions() const {
    return transactions_;
  }

  /// Existence probability of transaction `tid`.
  double prob(Tid tid) const { return transactions_[tid].prob; }

  /// All distinct items, ascending.
  std::vector<Item> ItemUniverse() const;

  /// Largest item id + 1 (0 when empty); convenient for dense arrays.
  Item MaxItemPlusOne() const;

  /// Number of transactions whose itemset contains X ("count of an
  /// itemset", Definition 4.2).
  std::size_t Count(const Itemset& x) const;

  /// Expected support of X: sum of existence probabilities over the
  /// transactions containing X (the expected-support model of [9]).
  double ExpectedSupport(const Itemset& x) const;

 private:
  std::vector<UncertainTransaction> transactions_;
};

}  // namespace pfci

#endif  // PFCI_DATA_UNCERTAIN_DATABASE_H_
