// Exhaustive enumeration and i.i.d. sampling of possible worlds.
//
// Enumeration is exponential (2^n worlds) and exists for ground-truth
// oracles and tiny demonstrations (paper Table III); sampling powers the
// naive Monte-Carlo baseline discussed in Sec. IV.B.4.
#ifndef PFCI_DATA_WORLD_ENUMERATOR_H_
#define PFCI_DATA_WORLD_ENUMERATOR_H_

#include <cstdint>
#include <functional>

#include "src/data/possible_world.h"
#include "src/data/uncertain_database.h"
#include "src/util/random.h"

namespace pfci {

/// Largest database size accepted by EnumerateWorlds.
inline constexpr std::size_t kMaxEnumerableTransactions = 24;

/// Total number of possible worlds of `db` (2^db.size()). CHECKs that
/// db.size() <= kMaxEnumerableTransactions.
std::uint64_t NumWorlds(const UncertainDatabase& db);

/// Calls `visit(world, probability)` for every possible world of `db`,
/// including the empty one. Probabilities sum to 1. CHECKs that
/// db.size() <= kMaxEnumerableTransactions.
void EnumerateWorlds(
    const UncertainDatabase& db,
    const std::function<void(const PossibleWorld&, double)>& visit);

/// Like EnumerateWorlds, but visits only the worlds with indices in
/// [begin, end) — the world at index i realizes transaction t iff bit t
/// of i is set. Disjoint ranges partition the world space exactly, which
/// is what the parallel brute-force oracles build on. CHECKs that the
/// range lies within [0, NumWorlds(db)].
void EnumerateWorldsRange(
    const UncertainDatabase& db, std::uint64_t begin, std::uint64_t end,
    const std::function<void(const PossibleWorld&, double)>& visit);

/// Draws one world by flipping each transaction's existence coin.
PossibleWorld SampleWorld(const UncertainDatabase& db, Rng& rng);

}  // namespace pfci

#endif  // PFCI_DATA_WORLD_ENUMERATOR_H_
