#include "src/data/itemset.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

Itemset::Itemset(std::vector<Item> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<Item> items)
    : Itemset(std::vector<Item>(items)) {}

Item Itemset::LastItem() const {
  PFCI_CHECK(!items_.empty());
  return items_.back();
}

bool Itemset::Contains(Item item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return std::includes(other.items_.begin(), other.items_.end(),
                       items_.begin(), items_.end());
}

bool Itemset::IsProperSupersetOf(const Itemset& other) const {
  return items_.size() > other.items_.size() && other.IsSubsetOf(*this);
}

Itemset Itemset::WithItem(Item item) const {
  PFCI_DCHECK(!Contains(item));
  Itemset result;
  result.items_.reserve(items_.size() + 1);
  auto pos = std::lower_bound(items_.begin(), items_.end(), item);
  result.items_.insert(result.items_.end(), items_.begin(), pos);
  result.items_.push_back(item);
  result.items_.insert(result.items_.end(), pos, items_.end());
  return result;
}

Itemset Itemset::WithoutItem(Item item) const {
  Itemset result;
  result.items_.reserve(items_.size());
  for (Item existing : items_) {
    if (existing != item) result.items_.push_back(existing);
  }
  return result;
}

Itemset Itemset::UnionWith(const Itemset& other) const {
  Itemset result;
  result.items_.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(result.items_));
  return result;
}

Itemset Itemset::IntersectWith(const Itemset& other) const {
  Itemset result;
  std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(result.items_));
  return result;
}

std::string Itemset::ToString(bool letters) const {
  std::string out = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ' ';
    if (letters && items_[i] < 26) {
      out += static_cast<char>('a' + items_[i]);
    } else {
      out += std::to_string(items_[i]);
    }
  }
  out += '}';
  return out;
}

std::size_t ItemsetHash::operator()(const Itemset& itemset) const {
  // FNV-1a over the item ids.
  std::size_t hash = 1469598103934665603ULL;
  for (Item item : itemset.items()) {
    hash ^= item;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace pfci
