#include "src/data/possible_world.h"

#include "src/util/check.h"

namespace pfci {

std::vector<Tid> PossibleWorld::PresentTids() const {
  std::vector<Tid> tids;
  for (Tid tid = 0; tid < present_.size(); ++tid) {
    if (present_[tid]) tids.push_back(tid);
  }
  return tids;
}

std::size_t PossibleWorld::NumPresent() const {
  std::size_t count = 0;
  for (std::uint8_t p : present_) count += p;
  return count;
}

double PossibleWorld::Probability(const UncertainDatabase& db) const {
  PFCI_CHECK_EQ(db.size(), present_.size());
  double prob = 1.0;
  for (Tid tid = 0; tid < present_.size(); ++tid) {
    prob *= present_[tid] ? db.prob(tid) : 1.0 - db.prob(tid);
  }
  return prob;
}

std::size_t PossibleWorld::Support(const UncertainDatabase& db,
                                   const Itemset& x) const {
  std::size_t support = 0;
  for (Tid tid = 0; tid < present_.size(); ++tid) {
    if (present_[tid] && x.IsSubsetOf(db.transaction(tid).items)) ++support;
  }
  return support;
}

bool PossibleWorld::IsClosed(const UncertainDatabase& db,
                             const Itemset& x) const {
  // Closure = intersection of the present transactions containing X.
  bool any = false;
  Itemset closure;
  for (Tid tid = 0; tid < present_.size(); ++tid) {
    if (!present_[tid]) continue;
    const Itemset& t = db.transaction(tid).items;
    if (!x.IsSubsetOf(t)) continue;
    if (!any) {
      closure = t;
      any = true;
    } else {
      closure = closure.IntersectWith(t);
    }
  }
  return any && closure == x;
}

bool PossibleWorld::IsFrequentClosed(const UncertainDatabase& db,
                                     const Itemset& x,
                                     std::size_t min_sup) const {
  return Support(db, x) >= min_sup && IsClosed(db, x);
}

}  // namespace pfci
