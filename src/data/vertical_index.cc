#include "src/data/vertical_index.h"

#include <numeric>

namespace pfci {

VerticalIndex::VerticalIndex(const UncertainDatabase& db) : db_(&db) {
  tids_by_item_.resize(db.MaxItemPlusOne());
  for (Tid tid = 0; tid < db.size(); ++tid) {
    for (Item item : db.transaction(tid).items.items()) {
      tids_by_item_[item].push_back(tid);
    }
  }
  for (Item item = 0; item < tids_by_item_.size(); ++item) {
    if (!tids_by_item_[item].empty()) occurring_items_.push_back(item);
  }
  all_tids_.resize(db.size());
  std::iota(all_tids_.begin(), all_tids_.end(), Tid{0});
}

const TidList& VerticalIndex::TidsOfItem(Item item) const {
  if (item >= tids_by_item_.size()) return empty_;
  return tids_by_item_[item];
}

TidList VerticalIndex::TidsOf(const Itemset& x) const {
  if (x.empty()) return all_tids_;
  TidList tids = TidsOfItem(x[0]);
  for (std::size_t i = 1; i < x.size() && !tids.empty(); ++i) {
    tids = IntersectTids(tids, TidsOfItem(x[i]));
  }
  return tids;
}

std::size_t VerticalIndex::Count(const Itemset& x) const {
  return TidsOf(x).size();
}

std::vector<double> VerticalIndex::ProbsOf(const TidList& tids) const {
  std::vector<double> probs;
  probs.reserve(tids.size());
  for (Tid tid : tids) probs.push_back(db_->prob(tid));
  return probs;
}

}  // namespace pfci
