#include "src/data/vertical_index.h"

#include <utility>

namespace pfci {

VerticalIndex::VerticalIndex(const UncertainDatabase& db,
                             const TidSetPolicy& policy)
    : db_(&db), policy_(policy) {
  const std::size_t universe = db.size();
  std::vector<TidList> raw(db.MaxItemPlusOne());
  for (Tid tid = 0; tid < universe; ++tid) {
    for (Item item : db.transaction(tid).items.items()) {
      raw[item].push_back(tid);
    }
  }
  tids_by_item_.reserve(raw.size());
  for (Item item = 0; item < raw.size(); ++item) {
    if (!raw[item].empty()) occurring_items_.push_back(item);
    tids_by_item_.emplace_back(std::move(raw[item]), universe, policy_);
  }
  all_tids_ = TidSet::All(universe, policy_);
  empty_ = TidSet(TidList{}, universe, policy_);
  probs_.reserve(universe);
  for (Tid tid = 0; tid < universe; ++tid) probs_.push_back(db.prob(tid));
}

const TidSet& VerticalIndex::TidsOfItem(Item item) const {
  if (item >= tids_by_item_.size()) return empty_;
  return tids_by_item_[item];
}

TidSet VerticalIndex::TidsOf(const Itemset& x) const {
  if (x.empty()) return all_tids_;
  TidSet tids = TidsOfItem(x[0]);
  for (std::size_t i = 1; i < x.size() && !tids.empty(); ++i) {
    tids = Intersect(tids, TidsOfItem(x[i]));
  }
  return tids;
}

std::size_t VerticalIndex::Count(const Itemset& x) const {
  return TidsOf(x).size();
}

void VerticalIndex::GatherProbs(const TidSet& tids,
                                std::vector<double>* out) const {
  out->resize(tids.size());
  std::size_t i = 0;
  double* dst = out->data();
  tids.ForEach([&](Tid tid) { dst[i++] = probs_[tid]; });
}

std::vector<double> VerticalIndex::ProbsOf(const TidSet& tids) const {
  std::vector<double> probs;
  GatherProbs(tids, &probs);
  return probs;
}

std::vector<double> VerticalIndex::ProbsOf(const TidList& tids) const {
  std::vector<double> probs;
  probs.reserve(tids.size());
  for (Tid tid : tids) probs.push_back(db_->prob(tid));
  return probs;
}

std::size_t VerticalIndex::MemoryBytes() const {
  std::size_t bytes = probs_.capacity() * sizeof(double) +
                      occurring_items_.capacity() * sizeof(Item) +
                      all_tids_.MemoryBytes();
  for (const TidSet& tids : tids_by_item_) bytes += tids.MemoryBytes();
  return bytes;
}

double VerticalIndex::SumProbsOf(const TidSet& tids) const {
  double sum = 0.0;
  tids.ForEach([&](Tid tid) { sum += probs_[tid]; });
  return sum;
}

}  // namespace pfci
