// Text I/O for uncertain and exact transaction databases.
//
// Formats:
//  * `.utd` (uncertain): one transaction per line, `prob item item ...`,
//    `#`-prefixed comment lines ignored.
//  * `.dat` (exact, FIMI basket format): one transaction per line,
//    whitespace-separated item ids.
#ifndef PFCI_DATA_DATABASE_IO_H_
#define PFCI_DATA_DATABASE_IO_H_

#include <string>
#include <vector>

#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Writes `db` in `.utd` format. Returns false on I/O failure.
bool SaveUncertainDatabase(const UncertainDatabase& db,
                           const std::string& path);

/// Reads a `.utd` file. Returns false on I/O failure or malformed content;
/// on failure `*db` is left empty and `*error` (if non-null) describes the
/// first problem with its line number. Rejected content: probabilities
/// that are not finite numbers in (0, 1] (NaN, inf, 0, negative, > 1),
/// probability-only lines, non-numeric items, and duplicate items within
/// one transaction line.
bool LoadUncertainDatabase(const std::string& path, UncertainDatabase* db,
                           std::string* error = nullptr);

/// Writes exact transactions in `.dat` format.
bool SaveExactTransactions(const std::vector<Itemset>& transactions,
                           const std::string& path);

/// Reads a `.dat` file of exact transactions. Rejects non-numeric items
/// and duplicate items within one line, with line-numbered errors.
bool LoadExactTransactions(const std::string& path,
                           std::vector<Itemset>* transactions,
                           std::string* error = nullptr);

}  // namespace pfci

#endif  // PFCI_DATA_DATABASE_IO_H_
