#include "src/data/request_wire.h"

#include <fstream>
#include <istream>
#include <string_view>

#include "src/util/string_util.h"

namespace pfci {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool ParseRequestWire(std::istream& in, const std::string& origin,
                      std::vector<WireField>* fields, std::string* error) {
  fields->clear();
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, origin + " line " + std::to_string(line_number) +
                          ": expected key=value");
      return false;
    }
    WireField field;
    field.key = std::string(stripped.substr(0, eq));
    field.value = std::string(stripped.substr(eq + 1));
    field.line = line_number;
    fields->push_back(std::move(field));
  }
  return true;
}

bool LoadRequestWire(const std::string& path, std::vector<WireField>* fields,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  return ParseRequestWire(in, path, fields, error);
}

void AppendWireField(std::string* out, const std::string& key,
                     const std::string& value) {
  *out += key;
  *out += '=';
  *out += value;
  *out += '\n';
}

}  // namespace pfci
