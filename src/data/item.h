// Basic item and transaction-identifier types.
#ifndef PFCI_DATA_ITEM_H_
#define PFCI_DATA_ITEM_H_

#include <cstdint>

namespace pfci {

/// An item is a dense non-negative integer id. The paper's running example
/// items a, b, c, d map to 0, 1, 2, 3; the "alphabetic order" used by the
/// enumeration and the pruning lemmas is the natural order on these ids.
using Item = std::uint32_t;

/// Transaction identifier: index into an (uncertain) database.
using Tid = std::uint32_t;

}  // namespace pfci

#endif  // PFCI_DATA_ITEM_H_
