#include "src/data/database_stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/string_util.h"

namespace pfci {

std::string DatabaseStats::ToString() const {
  return "transactions=" + std::to_string(num_transactions) +
         " items=" + std::to_string(num_items) +
         " avg_len=" + FormatDouble(avg_length, 4) +
         " max_len=" + std::to_string(max_length) +
         " mean_prob=" + FormatDouble(mean_prob, 4) +
         " stddev_prob=" + FormatDouble(stddev_prob, 4);
}

DatabaseStats ComputeStats(const UncertainDatabase& db) {
  DatabaseStats stats;
  stats.num_transactions = db.size();
  stats.num_items = db.ItemUniverse().size();
  if (db.empty()) return stats;

  double total_length = 0.0;
  double sum_prob = 0.0;
  for (const auto& t : db.transactions()) {
    total_length += static_cast<double>(t.items.size());
    stats.max_length = std::max(stats.max_length, t.items.size());
    sum_prob += t.prob;
  }
  const double n = static_cast<double>(db.size());
  stats.avg_length = total_length / n;
  stats.mean_prob = sum_prob / n;

  double sum_sq = 0.0;
  for (const auto& t : db.transactions()) {
    const double d = t.prob - stats.mean_prob;
    sum_sq += d * d;
  }
  stats.stddev_prob = std::sqrt(sum_sq / n);
  return stats;
}

}  // namespace pfci
