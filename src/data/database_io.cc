#include "src/data/database_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/util/string_util.h"

namespace pfci {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Returns true and reports the offending item when a transaction line
/// lists the same item twice. The Itemset constructor would silently
/// dedupe, but a duplicate almost always means a corrupted or
/// mis-generated file, so the loaders reject it with a line number
/// instead of papering over it.
bool FindDuplicateItem(const std::vector<Item>& items, Item* duplicate) {
  std::vector<Item> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  const auto it = std::adjacent_find(sorted.begin(), sorted.end());
  if (it == sorted.end()) return false;
  *duplicate = *it;
  return true;
}

}  // namespace

bool SaveUncertainDatabase(const UncertainDatabase& db,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# pfci uncertain transaction database: prob item item ...\n";
  for (const auto& t : db.transactions()) {
    out << FormatDoubleRoundTrip(t.prob);
    for (Item item : t.items.items()) out << ' ' << item;
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadUncertainDatabase(const std::string& path, UncertainDatabase* db,
                           std::string* error) {
  *db = UncertainDatabase();
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> tokens = SplitTokens(stripped);
    double prob = 0.0;
    // The negated comparison also rejects NaN.
    if (!ParseDouble(tokens[0], &prob) || !(prob > 0.0 && prob <= 1.0)) {
      SetError(error, "line " + std::to_string(line_number) +
                          ": bad probability '" + tokens[0] + "'");
      *db = UncertainDatabase();
      return false;
    }
    if (tokens.size() == 1) {
      SetError(error, "line " + std::to_string(line_number) +
                          ": transaction has no items (probability-only "
                          "line)");
      *db = UncertainDatabase();
      return false;
    }
    std::vector<Item> items;
    items.reserve(tokens.size() - 1);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      unsigned int item = 0;
      if (!ParseUint32(tokens[i], &item)) {
        SetError(error, "line " + std::to_string(line_number) +
                            ": bad item '" + tokens[i] + "'");
        *db = UncertainDatabase();
        return false;
      }
      items.push_back(item);
    }
    Item duplicate = 0;
    if (FindDuplicateItem(items, &duplicate)) {
      SetError(error, "line " + std::to_string(line_number) +
                          ": duplicate item '" + std::to_string(duplicate) +
                          "' in transaction");
      *db = UncertainDatabase();
      return false;
    }
    db->Add(Itemset(std::move(items)), prob);
  }
  return true;
}

bool SaveExactTransactions(const std::vector<Itemset>& transactions,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const Itemset& t : transactions) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ' ';
      out << t[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadExactTransactions(const std::string& path,
                           std::vector<Itemset>* transactions,
                           std::string* error) {
  transactions->clear();
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<Item> items;
    for (const std::string& token : SplitTokens(stripped)) {
      unsigned int item = 0;
      if (!ParseUint32(token, &item)) {
        SetError(error, "line " + std::to_string(line_number) +
                            ": bad item '" + token + "'");
        transactions->clear();
        return false;
      }
      items.push_back(item);
    }
    Item duplicate = 0;
    if (FindDuplicateItem(items, &duplicate)) {
      SetError(error, "line " + std::to_string(line_number) +
                          ": duplicate item '" + std::to_string(duplicate) +
                          "' in transaction");
      transactions->clear();
      return false;
    }
    transactions->push_back(Itemset(std::move(items)));
  }
  return true;
}

}  // namespace pfci
