#include "src/data/world_enumerator.h"

#include <cstdint>

#include "src/util/check.h"

namespace pfci {

std::uint64_t NumWorlds(const UncertainDatabase& db) {
  PFCI_CHECK(db.size() <= kMaxEnumerableTransactions);
  return std::uint64_t{1} << db.size();
}

void EnumerateWorlds(
    const UncertainDatabase& db,
    const std::function<void(const PossibleWorld&, double)>& visit) {
  EnumerateWorldsRange(db, 0, NumWorlds(db), visit);
}

void EnumerateWorldsRange(
    const UncertainDatabase& db, std::uint64_t begin, std::uint64_t end,
    const std::function<void(const PossibleWorld&, double)>& visit) {
  const std::size_t n = db.size();
  PFCI_CHECK(begin <= end);
  PFCI_CHECK(end <= NumWorlds(db));
  PossibleWorld world(n);
  for (std::uint64_t mask = begin; mask < end; ++mask) {
    double prob = 1.0;
    for (Tid tid = 0; tid < n; ++tid) {
      const bool present = (mask >> tid) & 1;
      world.SetPresent(tid, present);
      prob *= present ? db.prob(tid) : 1.0 - db.prob(tid);
    }
    visit(world, prob);
  }
}

PossibleWorld SampleWorld(const UncertainDatabase& db, Rng& rng) {
  PossibleWorld world(db.size());
  for (Tid tid = 0; tid < db.size(); ++tid) {
    world.SetPresent(tid, rng.NextBernoulli(db.prob(tid)));
  }
  return world;
}

}  // namespace pfci
