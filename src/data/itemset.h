// Itemset: an ordered set of items.
#ifndef PFCI_DATA_ITEMSET_H_
#define PFCI_DATA_ITEMSET_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/data/item.h"

namespace pfci {

/// A set of items kept sorted ascending and duplicate-free.
///
/// Value type: copyable, movable, equality- and less-than-comparable
/// (lexicographic), hashable via ItemsetHash.
class Itemset {
 public:
  Itemset() = default;

  /// Builds from arbitrary items; sorts and deduplicates.
  explicit Itemset(std::vector<Item> items);
  Itemset(std::initializer_list<Item> items);

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<Item>& items() const { return items_; }
  Item operator[](std::size_t i) const { return items_[i]; }

  /// Largest item; itemset must be non-empty.
  Item LastItem() const;

  bool Contains(Item item) const;
  bool IsSubsetOf(const Itemset& other) const;
  bool IsProperSupersetOf(const Itemset& other) const;

  /// Returns a copy extended with `item` (which must not be contained).
  Itemset WithItem(Item item) const;

  /// Returns a copy with `item` removed (no-op if absent).
  Itemset WithoutItem(Item item) const;

  /// Set union / intersection.
  Itemset UnionWith(const Itemset& other) const;
  Itemset IntersectWith(const Itemset& other) const;

  /// Renders as "{a b c}" using item ids, or letters for ids < 26 when
  /// `letters` is true (matches the paper's examples).
  std::string ToString(bool letters = false) const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.items_ == b.items_;
  }
  friend bool operator<(const Itemset& a, const Itemset& b) {
    return a.items_ < b.items_;
  }

 private:
  std::vector<Item> items_;
};

/// Hash functor for unordered containers keyed by Itemset.
struct ItemsetHash {
  std::size_t operator()(const Itemset& itemset) const;
};

}  // namespace pfci

#endif  // PFCI_DATA_ITEMSET_H_
