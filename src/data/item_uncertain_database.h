// Attribute-level (item-level) uncertainty — the model of Chui et al. [9].
//
// The paper's own problem lives in the tuple-uncertainty model (whole
// transactions exist with a probability); the other interpretation its
// related work surveys attaches an independent existence probability to
// every item *occurrence*. Under that model a transaction contains
// itemset X with probability Π_{i∈X} p_{T,i}, and since transactions stay
// independent, support(X) is still Poisson-binomial — over the
// per-transaction containment probabilities — so the expected-support
// and probabilistic-frequent machinery carries over (see
// item_uncertain_miners.h). Closedness does NOT carry over: within one
// transaction the containment events of X and its supersets are
// dependent, which breaks the extension-event factorization the closed
// machinery relies on; this library therefore scopes the item-level model
// to frequency-style mining only.
#ifndef PFCI_DATA_ITEM_UNCERTAIN_DATABASE_H_
#define PFCI_DATA_ITEM_UNCERTAIN_DATABASE_H_

#include <cstddef>
#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"

namespace pfci {

/// One possibly-present item occurrence.
struct ProbItem {
  Item item = 0;
  double prob = 1.0;  ///< Existence probability, in (0, 1].
};

/// One item-uncertain transaction: occurrences sorted by item id,
/// duplicate-free.
struct ItemUncertainTransaction {
  std::vector<ProbItem> items;

  /// Probability that this transaction contains all of X
  /// (Π p over X's occurrences; 0 if some item of X never occurs here).
  double ContainmentProb(const Itemset& x) const;

  /// The items, probabilities dropped.
  Itemset CertainItems() const;
};

/// A database of item-uncertain transactions.
class ItemUncertainDatabase {
 public:
  ItemUncertainDatabase() = default;

  /// Appends a transaction; occurrences are sorted and must not repeat an
  /// item; probabilities must lie in (0, 1] (CHECKed).
  void Add(std::vector<ProbItem> items);

  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }
  const ItemUncertainTransaction& transaction(Tid tid) const {
    return transactions_[tid];
  }
  const std::vector<ItemUncertainTransaction>& transactions() const {
    return transactions_;
  }

  /// Per-transaction containment probabilities of X, in tid order
  /// (support(X) is Poisson-binomial over the non-zero entries).
  std::vector<double> ContainmentProbs(const Itemset& x) const;

  /// Expected support: Σ_T Pr{T contains X} ([9]'s frequency measure).
  double ExpectedSupport(const Itemset& x) const;

  /// All distinct items, ascending.
  std::vector<Item> ItemUniverse() const;

 private:
  std::vector<ItemUncertainTransaction> transactions_;
};

}  // namespace pfci

#endif  // PFCI_DATA_ITEM_UNCERTAIN_DATABASE_H_
