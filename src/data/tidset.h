// Adaptive transaction-id set: the columnar tid-set layer.
//
// Every vertical-mining operation (count(X) of Definition 4.2, the
// tid-list intersection that extends an itemset, Lemma 4.2's superset
// check) runs over sets of transaction ids drawn from one fixed universe
// [0, |db|). A TidSet stores such a set either as a sorted Tid vector
// (sparse) or as a word-aligned bitmap (dense), and picks the
// representation adaptively by density: dense sets get popcount-based
// counting and word-parallel intersect/difference/subset, sparse sets get
// merge intersection with a galloping (exponential-search) fallback when
// one side is much shorter than the other.
//
// Determinism: the representation affects memory layout only, never the
// set contents, iteration order (always ascending tid), or any derived
// floating-point value — forcing sparse-only or dense-only via
// TidSetPolicy yields bit-identical mining results (asserted by
// tests/parallel_determinism_test.cc).
#ifndef PFCI_DATA_TIDSET_H_
#define PFCI_DATA_TIDSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/data/item.h"
#include "src/data/tidlist.h"

namespace pfci {

/// Representation choice for TidSets derived from one index.
enum class TidSetMode : std::uint8_t {
  kAdaptive = 0,  ///< Per-set density rule (default).
  kSparse = 1,    ///< Force sorted-vector representation everywhere.
  kDense = 2,     ///< Force bitmap representation everywhere.
};

/// Display name ("adaptive", "sparse", "dense").
const char* TidSetModeName(TidSetMode mode);

/// Parses "adaptive" | "sparse" | "dense"; returns false on anything else.
bool ParseTidSetMode(const std::string& text, TidSetMode* mode);

/// Representation policy shared by all TidSets of one index. The adaptive
/// rule picks the bitmap when size * dense_divisor >= universe (a bitmap
/// of u bits costs u/64 words; a sparse set of s 32-bit tids costs ~s/2
/// words, so the bitmap is smaller from s >= u/32 on and its word-parallel
/// operations win a little earlier), but never for tiny universes where a
/// short merge beats any fixed setup cost.
struct TidSetPolicy {
  TidSetMode mode = TidSetMode::kAdaptive;
  std::uint32_t dense_divisor = 16;
  std::uint32_t min_dense_universe = 256;
};

/// A set of transaction ids over the universe [0, universe()).
///
/// Value type: copyable, movable. All operations keep the invariant that
/// iteration yields strictly increasing tids regardless of representation.
class TidSet {
 public:
  /// Empty set over an empty universe.
  TidSet() = default;

  /// Builds from a sorted, duplicate-free tid list; every tid must lie in
  /// [0, universe).
  TidSet(TidList sorted_tids, std::size_t universe,
         const TidSetPolicy& policy = TidSetPolicy{});

  /// The full set {0, ..., universe - 1}.
  static TidSet All(std::size_t universe,
                    const TidSetPolicy& policy = TidSetPolicy{});

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t universe() const { return universe_; }
  bool dense() const { return dense_; }
  const TidSetPolicy& policy() const { return policy_; }

  /// Membership test: O(1) dense, O(log size) sparse.
  bool Contains(Tid tid) const;

  /// Invokes `fn(Tid)` for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!dense_) {
      for (Tid tid : sparse_) fn(tid);
      return;
    }
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        fn(static_cast<Tid>(w * 64 +
                            static_cast<unsigned>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }

  /// Materializes the members as a sorted tid list.
  TidList ToTidList() const;

  /// Heap bytes held by this set's representation (the resource the
  /// RunBudget memory limit accounts; see src/util/runtime.h).
  std::size_t MemoryBytes() const {
    return sparse_.capacity() * sizeof(Tid) +
           words_.capacity() * sizeof(std::uint64_t);
  }

  friend TidSet Intersect(const TidSet& a, const TidSet& b);
  friend std::size_t IntersectSize(const TidSet& a, const TidSet& b);
  friend TidSet Difference(const TidSet& a, const TidSet& b);
  friend bool IsSubsetOf(const TidSet& a, const TidSet& b);
  friend bool operator==(const TidSet& a, const TidSet& b);

 private:
  /// Converts to the representation the policy prescribes for size().
  void Normalize();
  void ToDense();
  void ToSparse();

  std::size_t universe_ = 0;
  std::size_t size_ = 0;
  bool dense_ = false;
  TidSetPolicy policy_;
  TidList sparse_;                    ///< Sorted members (sparse rep).
  std::vector<std::uint64_t> words_;  ///< Bitmap (dense rep).
};

/// a ∩ b. The operands must share a universe (an empty set of any universe
/// is also accepted); the result carries `a`'s policy.
TidSet Intersect(const TidSet& a, const TidSet& b);

/// |a ∩ b| without materializing the intersection.
std::size_t IntersectSize(const TidSet& a, const TidSet& b);

/// a \ b.
TidSet Difference(const TidSet& a, const TidSet& b);

/// Whether a ⊆ b.
bool IsSubsetOf(const TidSet& a, const TidSet& b);

/// Content equality (representation-independent).
bool operator==(const TidSet& a, const TidSet& b);

/// Convenience for tests: compares contents against a sorted tid list.
bool operator==(const TidSet& a, const TidList& b);

namespace tidset_internal {

/// Size skew from which the sparse kernels switch from linear merge to
/// galloping: per-element exponential search costs ~2 log2(skew)
/// comparisons, which beats the merge's O(na + nb) scan when the long
/// side is a few dozen times the short side.
constexpr std::size_t kGallopSkewRatio = 32;

/// Sparse intersection kernel: appends a ∩ b to `out` (when non-null) and
/// returns |a ∩ b|. Exposed so the unit tests can exercise the merge and
/// galloping paths directly on either side of the crossover.
std::size_t IntersectSorted(const Tid* a, std::size_t na, const Tid* b,
                            std::size_t nb, TidList* out);

/// Sparse subset kernel: whether sorted `a` ⊆ sorted `b`, galloping under
/// the same skew rule.
bool SubsetSorted(const Tid* a, std::size_t na, const Tid* b, std::size_t nb);

}  // namespace tidset_internal

}  // namespace pfci

#endif  // PFCI_DATA_TIDSET_H_
