// The key=value request wire format shared by the CLI, the fuzz
// harness's repro sidecars, and batch submission (DESIGN.md §15).
//
// One field per line, `key=value`, no quoting; blank lines and `#`
// comments are skipped. The format is deliberately dumb — it is a
// lexer, not a schema: this layer splits lines into ordered
// (key, value, line) fields and reports malformed lines with their
// line number, while the meaning of each key lives with the consumer
// (src/core/request_io.h maps fields onto a MiningRequest; the oracle
// repro sidecar adds its own `check` key on top). Keeping the lexer in
// data/ lets every consumer share one dialect without the data layer
// knowing what a MiningRequest is.
#ifndef PFCI_DATA_REQUEST_WIRE_H_
#define PFCI_DATA_REQUEST_WIRE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace pfci {

/// One `key=value` line of a request wire file, in file order.
struct WireField {
  std::string key;
  std::string value;  ///< May be empty (`key=`); never contains '\n'.
  int line = 0;       ///< 1-based line number, for error messages.
};

/// Lexes `in` into fields. `origin` names the stream in diagnostics
/// (a path, or e.g. "<inline>"). Returns false with "`origin` line N:
/// ..." in `error` on a non-blank, non-comment line without '='.
bool ParseRequestWire(std::istream& in, const std::string& origin,
                      std::vector<WireField>* fields, std::string* error);

/// Opens and lexes the file at `path`. Returns false with a diagnostic
/// in `error` when the file cannot be opened or a line is malformed.
bool LoadRequestWire(const std::string& path, std::vector<WireField>* fields,
                     std::string* error);

/// Appends one wire line (`key=value\n`) to `out`. The inverse of the
/// lexer for writers that build sidecars field by field.
void AppendWireField(std::string* out, const std::string& key,
                     const std::string& value);

}  // namespace pfci

#endif  // PFCI_DATA_REQUEST_WIRE_H_
