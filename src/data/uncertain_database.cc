#include "src/data/uncertain_database.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

void UncertainDatabase::Add(Itemset items, double prob) {
  PFCI_CHECK(prob > 0.0 && prob <= 1.0);
  transactions_.push_back(UncertainTransaction{std::move(items), prob});
}

std::vector<Item> UncertainDatabase::ItemUniverse() const {
  std::vector<Item> universe;
  for (const auto& t : transactions_) {
    universe.insert(universe.end(), t.items.items().begin(),
                    t.items.items().end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  return universe;
}

Item UncertainDatabase::MaxItemPlusOne() const {
  Item max_plus_one = 0;
  for (const auto& t : transactions_) {
    if (!t.items.empty()) {
      max_plus_one = std::max(max_plus_one, t.items.LastItem() + 1);
    }
  }
  return max_plus_one;
}

std::size_t UncertainDatabase::Count(const Itemset& x) const {
  std::size_t count = 0;
  for (const auto& t : transactions_) {
    if (x.IsSubsetOf(t.items)) ++count;
  }
  return count;
}

double UncertainDatabase::ExpectedSupport(const Itemset& x) const {
  double esup = 0.0;
  for (const auto& t : transactions_) {
    if (x.IsSubsetOf(t.items)) esup += t.prob;
  }
  return esup;
}

}  // namespace pfci
