// Vertical (item -> tid-list) index over an uncertain database.
#ifndef PFCI_DATA_VERTICAL_INDEX_H_
#define PFCI_DATA_VERTICAL_INDEX_H_

#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"
#include "src/data/tidlist.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Precomputed per-item tid-lists plus helpers to derive Tids(X) for any
/// itemset X by intersection. Items absent from the database have empty
/// tid-lists.
class VerticalIndex {
 public:
  explicit VerticalIndex(const UncertainDatabase& db);

  /// Tid-list of a single item (empty if the item never occurs).
  const TidList& TidsOfItem(Item item) const;

  /// Tids(X): transactions possibly containing the whole itemset.
  /// The empty itemset maps to all transactions.
  TidList TidsOf(const Itemset& x) const;

  /// count(X) = |Tids(X)| (Definition 4.2).
  std::size_t Count(const Itemset& x) const;

  /// Items that occur in at least one transaction, ascending.
  const std::vector<Item>& occurring_items() const { return occurring_items_; }

  /// Existence probabilities of the given transactions, in tid order.
  std::vector<double> ProbsOf(const TidList& tids) const;

  const UncertainDatabase& db() const { return *db_; }

 private:
  const UncertainDatabase* db_;
  std::vector<TidList> tids_by_item_;
  std::vector<Item> occurring_items_;
  TidList all_tids_;
  TidList empty_;
};

}  // namespace pfci

#endif  // PFCI_DATA_VERTICAL_INDEX_H_
