// Vertical (item -> tid-set) index over an uncertain database.
#ifndef PFCI_DATA_VERTICAL_INDEX_H_
#define PFCI_DATA_VERTICAL_INDEX_H_

#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"
#include "src/data/tidlist.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Precomputed per-item TidSets plus helpers to derive Tids(X) for any
/// itemset X by intersection, and a contiguous tid-ordered copy of the
/// transaction existence probabilities so probability gathers are pure
/// copies with no per-node allocation. Items absent from the database
/// have empty tid-sets.
class VerticalIndex {
 public:
  explicit VerticalIndex(const UncertainDatabase& db,
                         const TidSetPolicy& policy = TidSetPolicy{});

  /// Tid-set of a single item (empty if the item never occurs).
  const TidSet& TidsOfItem(Item item) const;

  /// Tids(X): transactions possibly containing the whole itemset.
  /// The empty itemset maps to all transactions.
  TidSet TidsOf(const Itemset& x) const;

  /// count(X) = |Tids(X)| (Definition 4.2).
  std::size_t Count(const Itemset& x) const;

  /// Items that occur in at least one transaction, ascending.
  const std::vector<Item>& occurring_items() const { return occurring_items_; }

  /// Tid-set {0, ..., |db| - 1} of every transaction.
  const TidSet& all_tids() const { return all_tids_; }

  /// Copies the existence probabilities of the given transactions, in
  /// ascending tid order, into `*out` (resized to tids.size()). Allocates
  /// nothing once `*out` has reached capacity — the per-node fast path.
  void GatherProbs(const TidSet& tids, std::vector<double>* out) const;

  /// Existence probabilities of the given transactions, in tid order.
  /// Allocating convenience form of GatherProbs.
  std::vector<double> ProbsOf(const TidSet& tids) const;
  std::vector<double> ProbsOf(const TidList& tids) const;

  /// Sum of existence probabilities over `tids`, accumulated in ascending
  /// tid order (bit-identical to summing ProbsOf(tids) left to right).
  double SumProbsOf(const TidSet& tids) const;

  /// Heap bytes resident in the index (per-item tid-sets, the
  /// probability column, the all-tids set). Miners charge this into the
  /// RunController's memory budget right after construction.
  std::size_t MemoryBytes() const;

  const TidSetPolicy& policy() const { return policy_; }
  const UncertainDatabase& db() const { return *db_; }

 private:
  const UncertainDatabase* db_;
  TidSetPolicy policy_;
  std::vector<TidSet> tids_by_item_;
  std::vector<Item> occurring_items_;
  TidSet all_tids_;
  TidSet empty_;
  std::vector<double> probs_;  ///< probs_[tid] = Pr(transaction tid exists).
};

}  // namespace pfci

#endif  // PFCI_DATA_VERTICAL_INDEX_H_
