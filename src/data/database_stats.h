// Dataset characteristics (paper Table VIII).
#ifndef PFCI_DATA_DATABASE_STATS_H_
#define PFCI_DATA_DATABASE_STATS_H_

#include <cstddef>
#include <string>

#include "src/data/uncertain_database.h"

namespace pfci {

/// Summary statistics of an uncertain database, matching the columns of
/// the paper's Table VIII plus probability moments.
struct DatabaseStats {
  std::size_t num_transactions = 0;
  std::size_t num_items = 0;  ///< Distinct items.
  double avg_length = 0.0;
  std::size_t max_length = 0;
  double mean_prob = 0.0;
  double stddev_prob = 0.0;

  /// Renders a short human-readable summary line.
  std::string ToString() const;
};

/// Computes the statistics of `db`.
DatabaseStats ComputeStats(const UncertainDatabase& db);

}  // namespace pfci

#endif  // PFCI_DATA_DATABASE_STATS_H_
