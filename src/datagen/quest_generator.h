// IBM Quest-style synthetic basket data generator (Agrawal & Srikant).
//
// The paper's synthetic dataset T20I10D30KP40 is produced by the IBM
// dataset generator [5]: T = average transaction length, I = average
// length of the maximal potential patterns, D = number of transactions,
// and (per the paper's naming) P40 = 40 distinct items. That tool is not
// available offline, so this module reimplements the published generative
// process: a pool of weighted potential maximal itemsets with pairwise
// correlation, assembled into transactions with per-pattern corruption.
#ifndef PFCI_DATAGEN_QUEST_GENERATOR_H_
#define PFCI_DATAGEN_QUEST_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/exact/transaction_database.h"

namespace pfci {

/// Parameters of the Quest generative process.
struct QuestParams {
  std::size_t num_transactions = 30000;    ///< D
  double avg_transaction_length = 20.0;    ///< T
  double avg_pattern_length = 10.0;        ///< I
  std::size_t num_items = 40;              ///< N (paper: P40)
  std::size_t num_patterns = 40;           ///< |L|, pool of potential patterns
  double correlation = 0.5;                ///< Fraction of items reused from
                                           ///< the previous pattern.
  double corruption_mean = 0.5;            ///< Mean per-pattern corruption.
  double corruption_stddev = 0.1;
  std::uint64_t seed = 42;
};

/// Generates an exact transaction database per `params`. Deterministic for
/// a fixed seed.
TransactionDatabase GenerateQuest(const QuestParams& params);

}  // namespace pfci

#endif  // PFCI_DATAGEN_QUEST_GENERATOR_H_
