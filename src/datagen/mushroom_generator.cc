#include "src/datagen/mushroom_generator.h"

#include <vector>

#include "src/util/check.h"
#include "src/util/random.h"

namespace pfci {

TransactionDatabase GenerateMushroomLike(const MushroomParams& params) {
  PFCI_CHECK(params.num_attributes >= 1);
  PFCI_CHECK(params.values_per_attribute >= 1);
  PFCI_CHECK(params.num_species >= 1);
  PFCI_CHECK(params.num_universal_attributes <= params.num_attributes);
  Rng rng(params.seed);

  const std::size_t num_attrs = params.num_attributes;

  // Attribute domains: sizes vary around the average (mushroom's real
  // domains range from 1 to 12 values). The first
  // `num_universal_attributes` attributes have a single value — items
  // present in every transaction, like mushroom's veil-type.
  std::vector<std::size_t> domain_size(num_attrs);
  std::vector<Item> first_item(num_attrs);
  Item next_item = 0;
  for (std::size_t a = 0; a < num_attrs; ++a) {
    if (a < params.num_universal_attributes) {
      domain_size[a] = 1;
    } else {
      const long spread =
          static_cast<long>(params.values_per_attribute > 2
                                ? params.values_per_attribute - 2
                                : 0);
      const long size =
          static_cast<long>(params.values_per_attribute) +
          (spread > 0 ? rng.NextInRange(-spread / 2, spread) : 0);
      domain_size[a] = static_cast<std::size_t>(size < 2 ? 2 : size);
    }
    first_item[a] = next_item;
    next_item += static_cast<Item>(domain_size[a]);
  }

  // A `deterministic_fraction` of the multi-valued attributes is perfectly
  // species-determined; the rest deviates with `within_species_noise`.
  std::vector<bool> deterministic(num_attrs, false);
  for (std::size_t a = params.num_universal_attributes; a < num_attrs; ++a) {
    deterministic[a] = rng.NextBernoulli(params.deterministic_fraction);
  }

  // Each species prefers one value per attribute; species frequencies are
  // skewed (exponential weights) like real mushroom species counts.
  // Preferences are skewed towards low value indices, which yields the
  // globally dominant items mushroom exhibits.
  std::vector<std::vector<std::size_t>> preferred(
      params.num_species, std::vector<std::size_t>(num_attrs));
  for (std::size_t s = 0; s < params.num_species; ++s) {
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const double u = rng.NextDouble();
      const std::size_t value = static_cast<std::size_t>(
          u * u * static_cast<double>(domain_size[a]));
      preferred[s][a] = value < domain_size[a] ? value : domain_size[a] - 1;
    }
  }
  std::vector<double> species_weight(params.num_species);
  for (double& w : species_weight) w = rng.NextExponential(1.0);

  TransactionDatabase db;
  for (std::size_t t = 0; t < params.num_transactions; ++t) {
    const std::size_t species = rng.NextWeighted(species_weight);
    std::vector<Item> items;
    items.reserve(num_attrs);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      std::size_t value = preferred[species][a];
      if (!deterministic[a] &&
          rng.NextBernoulli(params.within_species_noise)) {
        value = static_cast<std::size_t>(rng.NextBelow(domain_size[a]));
      }
      items.push_back(first_item[a] + static_cast<Item>(value));
    }
    db.Add(Itemset(std::move(items)));
  }
  return db;
}

}  // namespace pfci
