#include "src/datagen/quest_generator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"

namespace pfci {

namespace {

/// One potential maximal pattern with its selection weight and corruption.
struct PotentialPattern {
  std::vector<Item> items;  ///< Sorted.
  double weight = 0.0;
  double corruption = 0.0;  ///< Probability of dropping each item.
};

std::vector<PotentialPattern> BuildPatternPool(const QuestParams& params,
                                               Rng& rng) {
  std::vector<PotentialPattern> pool;
  pool.reserve(params.num_patterns);
  std::vector<Item> previous;
  for (std::size_t p = 0; p < params.num_patterns; ++p) {
    PotentialPattern pattern;
    // Pattern length ~ Poisson(I), at least 1, at most N.
    std::size_t length = static_cast<std::size_t>(
        std::max(1, rng.NextPoisson(params.avg_pattern_length)));
    length = std::min(length, params.num_items);

    // A `correlation` fraction of items is borrowed from the previous
    // pattern; the rest is drawn uniformly.
    std::vector<Item> items;
    if (!previous.empty()) {
      std::vector<Item> shuffled = previous;
      rng.Shuffle(shuffled);
      const std::size_t reuse = std::min<std::size_t>(
          shuffled.size(),
          static_cast<std::size_t>(std::lround(params.correlation *
                                               static_cast<double>(length))));
      items.assign(shuffled.begin(), shuffled.begin() + reuse);
    }
    while (items.size() < length) {
      const Item candidate =
          static_cast<Item>(rng.NextBelow(params.num_items));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    std::sort(items.begin(), items.end());
    previous = items;

    pattern.items = std::move(items);
    // Exponentially distributed weights, normalized later by NextWeighted.
    pattern.weight = rng.NextExponential(1.0);
    pattern.corruption = std::clamp(
        rng.NextGaussian(params.corruption_mean, params.corruption_stddev),
        0.0, 0.95);
    pool.push_back(std::move(pattern));
  }
  return pool;
}

}  // namespace

TransactionDatabase GenerateQuest(const QuestParams& params) {
  PFCI_CHECK(params.num_items >= 1);
  PFCI_CHECK(params.num_patterns >= 1);
  PFCI_CHECK(params.avg_transaction_length >= 1.0);
  Rng rng(params.seed);

  const std::vector<PotentialPattern> pool = BuildPatternPool(params, rng);
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const auto& pattern : pool) weights.push_back(pattern.weight);

  TransactionDatabase db;
  for (std::size_t t = 0; t < params.num_transactions; ++t) {
    // Transaction size ~ Poisson(T), at least 1, capped by N.
    std::size_t target = static_cast<std::size_t>(
        std::max(1, rng.NextPoisson(params.avg_transaction_length)));
    target = std::min(target, params.num_items);

    std::vector<Item> items;
    // Keep adding (corrupted) patterns until the target size is reached;
    // a pattern overshooting the target by more than half is put back
    // (classic Quest rule), but always accept when the basket is empty to
    // guarantee progress.
    int attempts = 0;
    while (items.size() < target && attempts < 64) {
      ++attempts;
      const PotentialPattern& pattern = pool[rng.NextWeighted(weights)];
      std::vector<Item> kept;
      for (Item item : pattern.items) {
        if (!rng.NextBernoulli(pattern.corruption)) kept.push_back(item);
      }
      if (kept.empty()) continue;
      // Count genuinely new items.
      std::size_t novel = 0;
      for (Item item : kept) {
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          ++novel;
        }
      }
      const std::size_t projected = items.size() + novel;
      if (!items.empty() && projected > target + (novel + 1) / 2) continue;
      for (Item item : kept) {
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
    }
    if (items.empty()) {
      items.push_back(static_cast<Item>(rng.NextBelow(params.num_items)));
    }
    db.Add(Itemset(std::move(items)));
  }
  return db;
}

}  // namespace pfci
