// Turning an exact dataset into an uncertain one.
//
// The paper (following [22]) generates probabilistic datasets from certain
// ones "by assigning a probability generated from Gaussian distribution to
// each transaction" — e.g. Mushroom with mean 0.5 / spread 0.25 and
// T20I10D30KP40 with mean 0.8 / spread 0.1.
#ifndef PFCI_DATAGEN_PROBABILITY_ASSIGNER_H_
#define PFCI_DATAGEN_PROBABILITY_ASSIGNER_H_

#include <cstdint>

#include "src/data/uncertain_database.h"
#include "src/exact/transaction_database.h"

namespace pfci {

/// Gaussian existence-probability assignment.
///
/// `spread` is used as the standard deviation of the Gaussian (the paper
/// says "variance"; with the quoted values 0.25 / 0.1 the resulting
/// distributions only make sense as standard deviations, a reading most
/// reproductions adopt — see DESIGN.md). Draws are clamped into
/// [min_prob, 1].
struct GaussianAssignerParams {
  double mean = 0.5;
  double spread = 0.25;
  double min_prob = 0.01;
  std::uint64_t seed = 11;
};

/// Creates an uncertain database with one tuple per exact transaction.
UncertainDatabase AssignGaussianProbabilities(
    const TransactionDatabase& exact, const GaussianAssignerParams& params);

/// Convenience: assigns the same probability to every transaction.
UncertainDatabase AssignUniformProbability(const TransactionDatabase& exact,
                                           double prob);

}  // namespace pfci

#endif  // PFCI_DATAGEN_PROBABILITY_ASSIGNER_H_
