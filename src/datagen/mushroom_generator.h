// Mushroom-shaped categorical dataset generator.
//
// The paper's real dataset is UCI Mushroom: 8124 transactions, 119 items,
// every transaction exactly 23 items (one value per categorical
// attribute). The real file is not available offline, so this generator
// reproduces the structural properties that drive the algorithms: fixed
// transaction length, a modest item universe partitioned into attribute
// groups, and strong attribute correlations (latent "species" mixture)
// that create the heavy closed-itemset compression Mushroom is famous for.
#ifndef PFCI_DATAGEN_MUSHROOM_GENERATOR_H_
#define PFCI_DATAGEN_MUSHROOM_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "src/exact/transaction_database.h"

namespace pfci {

/// Parameters of the Mushroom-like generative process.
struct MushroomParams {
  std::size_t num_transactions = 8124;
  std::size_t num_attributes = 23;      ///< Transaction length.
  std::size_t values_per_attribute = 5; ///< Average domain size (~119 items).
  std::size_t num_species = 20;         ///< Latent mixture components.
  double within_species_noise = 0.15;   ///< Pr[attribute deviates from the
                                        ///< species' preferred value].
  /// Fraction of attributes that are perfectly species-determined
  /// (noise-free). Real mushroom has many deterministic attribute
  /// dependencies; these produce the equal-support itemset families that
  /// make closed mining compress so heavily.
  double deterministic_fraction = 0.35;
  /// Attributes with a single-value domain (items present in every
  /// transaction, like mushroom's veil-type).
  std::size_t num_universal_attributes = 1;
  std::uint64_t seed = 7;
};

/// Generates an exact categorical database. Item ids are grouped by
/// attribute: attribute a owns a contiguous id range. Deterministic for a
/// fixed seed.
TransactionDatabase GenerateMushroomLike(const MushroomParams& params);

}  // namespace pfci

#endif  // PFCI_DATAGEN_MUSHROOM_GENERATOR_H_
