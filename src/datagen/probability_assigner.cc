#include "src/datagen/probability_assigner.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/random.h"

namespace pfci {

UncertainDatabase AssignGaussianProbabilities(
    const TransactionDatabase& exact, const GaussianAssignerParams& params) {
  PFCI_CHECK(params.min_prob > 0.0 && params.min_prob <= 1.0);
  Rng rng(params.seed);
  UncertainDatabase db;
  for (const Itemset& t : exact.transactions()) {
    const double drawn = rng.NextGaussian(params.mean, params.spread);
    const double prob = std::clamp(drawn, params.min_prob, 1.0);
    db.Add(t, prob);
  }
  return db;
}

UncertainDatabase AssignUniformProbability(const TransactionDatabase& exact,
                                           double prob) {
  PFCI_CHECK(prob > 0.0 && prob <= 1.0);
  UncertainDatabase db;
  for (const Itemset& t : exact.transactions()) db.Add(t, prob);
  return db;
}

}  // namespace pfci
