// Small string helpers shared by I/O, logging and the bench harness.
#ifndef PFCI_UTIL_STRING_UTIL_H_
#define PFCI_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pfci {

/// Splits `text` on any of the characters in `delims`, dropping empty tokens.
std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims = " \t");

/// Joins string pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint32(std::string_view text, unsigned int* value);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* value);

/// Formats a double compactly (up to `precision` significant digits).
std::string FormatDouble(double value, int precision = 6);

/// Formats a double with the fewest significant digits (<= 17) that parse
/// back to the exact same bit pattern. Use for serialization that must
/// round-trip losslessly (e.g. SaveUncertainDatabase).
std::string FormatDoubleRoundTrip(double value);

}  // namespace pfci

#endif  // PFCI_UTIL_STRING_UTIL_H_
