// One-shot completion signaling for asynchronous run handles.
//
// A CompletionLatch is the minimal rendezvous between a producer that
// finishes exactly once and any number of consumers that wait for it:
// Signal() flips the latch permanently, Wait()/WaitFor() block until it
// flips, and done() polls without blocking. Unlike a condition variable
// used bare, the latch owns its predicate, so consumers can never miss a
// signal that happened before they started waiting.
//
// This is the primitive RunHandle (src/serve/run_handle.h) is built on:
// the serving layer signals the latch after publishing a finished
// MiningResult, and the publish is ordered before the signal by the
// latch's internal mutex, so a consumer that observed done() == true may
// read the result without further synchronization.
//
// Deliberately not a semaphore and not resettable: a mining run completes
// once, and a resettable primitive would reintroduce the missed-wakeup
// races the latch exists to rule out. All waits are condition-variable
// waits, never sleep polling (see tools/check_layering.py on raw sleeps).
#ifndef PFCI_UTIL_COMPLETION_H_
#define PFCI_UTIL_COMPLETION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace pfci {

/// One-shot event: starts unsignaled, Signal() flips it exactly once,
/// waiters (any number, before or after the signal) all see it. Thread-
/// safe; neither copyable nor movable (waiters hold its address).
class CompletionLatch {
 public:
  CompletionLatch() = default;
  CompletionLatch(const CompletionLatch&) = delete;
  CompletionLatch& operator=(const CompletionLatch&) = delete;

  /// Marks the latch done and wakes every waiter. Idempotent: a second
  /// Signal is a no-op, so producer shutdown paths can signal defensively.
  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until Signal() has been called (returns immediately if it
  /// already was).
  void Wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
  }

  /// Waits at most `seconds`; true when the latch is done, false on
  /// timeout. `seconds` <= 0 is a non-blocking poll.
  bool WaitFor(double seconds) const {
    std::unique_lock<std::mutex> lock(mutex_);
    if (seconds <= 0.0) return done_;
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return done_; });
  }

  /// Non-blocking: whether Signal() has been called. A true return also
  /// orders the producer's pre-Signal writes before the caller's
  /// subsequent reads (acquire via the internal mutex).
  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
};

}  // namespace pfci

#endif  // PFCI_UTIL_COMPLETION_H_
