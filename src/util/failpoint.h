// Deterministic fault-injection harness: named PFCI_FAILPOINT(...) sites
// compiled into the miners' early-exit checkpoints.
//
// Tests arm a site with a callback (typically: trigger a CancelToken,
// force a deadline, or charge a huge allocation into the RunController)
// and then assert that the run winds down through the intended fail-soft
// path. Unarmed sites cost one relaxed atomic load; with
// PFCI_FAILPOINTS=off at configure time the macro compiles to nothing
// (release builds carry no hooks at all).
//
// The registry is process-global and thread-safe: sites are hit from
// worker threads, armed/disarmed from the test thread. A callback may
// fire concurrently from several threads; keep callbacks idempotent
// (CancelToken::RequestCancel is).
#ifndef PFCI_UTIL_FAILPOINT_H_
#define PFCI_UTIL_FAILPOINT_H_

#include <cstdint>
#include <functional>

#if PFCI_FAILPOINTS_ENABLED

/// Marks a named early-exit site; runs the armed action (if any).
#define PFCI_FAILPOINT(name) ::pfci::failpoint::Hit(name)

#else

#define PFCI_FAILPOINT(name) \
  do {                       \
  } while (0)

#endif

namespace pfci::failpoint {

/// Whether failpoint hooks were compiled in (tests skip themselves
/// gracefully in a release configuration).
bool CompiledIn();

/// Arms `name`: every subsequent hit runs `action` (may be empty — a pure
/// counting probe) and increments the hit count. Re-arming replaces the
/// action and resets the count.
void Arm(const char* name, std::function<void()> action);

/// Counting probe: Arm with no action.
inline void Arm(const char* name) { Arm(name, nullptr); }

/// Disarms `name` (no-op when not armed).
void Disarm(const char* name);

/// Disarms every site (test teardown).
void DisarmAll();

/// Hits observed at `name` since it was (re-)armed; 0 when never armed.
std::uint64_t HitCount(const char* name);

/// Internal: called by PFCI_FAILPOINT. Near-free when nothing is armed.
void Hit(const char* name);

}  // namespace pfci::failpoint

#endif  // PFCI_UTIL_FAILPOINT_H_
