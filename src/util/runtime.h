// Fail-soft mining runtime: cancellation, deadlines, and resource budgets.
//
// Computing PrFC is #P-hard (Theorems 3.1/3.2), so a served deployment
// must survive requests whose exact inclusion-exclusion or
// world-enumeration paths blow up. Instead of running forever (or
// aborting), every miner carries a RunController and polls it at
// cooperative checkpoints — node expansion, sample-batch, and world-range
// boundaries — and returns a *verified partial* result when a limit
// trips: only fully-decided entries are emitted, and the stop reason is
// reported as an Outcome in the MiningResult.
//
// Determinism contract (extends DESIGN.md §7/§8 to partial results): in
// deterministic mode the logical budgets (max_nodes, max_samples) are
// enforced per unit of parallel work with a fair-share quota that is a
// pure function of the request, so an interrupted run is bit-identical
// across thread counts and tid-set modes. Wall-clock deadlines,
// cancellation, and the memory budget are inherently scheduling-dependent
// and carry no such guarantee — but the per-entry values of whatever was
// emitted still match an unbudgeted run, because truncation only ever
// cuts a suffix of each unit's deterministic work stream.
#ifndef PFCI_UTIL_RUNTIME_H_
#define PFCI_UTIL_RUNTIME_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "src/util/stopwatch.h"

namespace pfci {

/// How a mining run ended. Every value except kComplete means the result
/// holds a (possibly empty) verified prefix of the full answer.
enum class Outcome : std::uint8_t {
  kComplete = 0,          ///< Ran to completion; the result is the full answer.
  kBudgetExhausted = 1,   ///< A logical budget (nodes/samples/bytes) tripped.
  kDeadlineExceeded = 2,  ///< The wall-clock deadline passed.
  kCancelled = 3,         ///< The caller's CancelToken was triggered.
  kInvalidRequest = 4,    ///< Request validation failed; nothing ran.
};

/// Wire/display name ("complete", "budget_exhausted", "deadline_exceeded",
/// "cancelled", "invalid_request").
const char* OutcomeName(Outcome outcome);

/// Cooperative cancellation flag. The caller keeps the token (e.g. wired
/// to a signal handler or an RPC disconnect) and may trigger it from any
/// thread; miners poll it at checkpoints. A token can back several
/// sequential runs; it never resets itself.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits of one mining run. Zero (the default) disables the
/// corresponding limit.
struct RunBudget {
  /// Wall-clock limit in seconds, measured from Mine() entry. Best-effort:
  /// checked at checkpoints, so long atomic steps can overshoot.
  double deadline_seconds = 0.0;

  /// Maximum search-tree nodes. Deterministic: in deterministic mode the
  /// budget is split fair-share across the run's parallel work units
  /// (e.g. MPFCI first-level subtrees), making the truncation point a
  /// pure function of the request.
  std::uint64_t max_nodes = 0;

  /// Maximum ApproxFCP Monte-Carlo samples, fair-share split like
  /// max_nodes. An evaluation whose required sample count exceeds the
  /// unit's remaining quota is skipped whole (never run with fewer
  /// samples), so emitted estimates always carry the full FPRAS
  /// guarantee.
  std::uint64_t max_samples = 0;

  /// Maximum resident bytes of the run's tid-set structures (the
  /// VerticalIndex plus per-level / per-candidate materializations), as
  /// reported by the TidSet allocator accounting. Best-effort, like the
  /// deadline.
  std::uint64_t max_resident_bytes = 0;

  /// Degradation point: once elapsed time exceeds this fraction of
  /// deadline_seconds, MPFCI-family miners switch remaining FCP
  /// evaluations from exact inclusion-exclusion to the ApproxFCP sampler
  /// (cheaper, still FPRAS-guaranteed) before giving up entirely.
  double degrade_fraction = 0.5;

  /// True when no limit is set (the controller then never polls a clock).
  bool Unlimited() const {
    return deadline_seconds <= 0.0 && max_nodes == 0 && max_samples == 0 &&
           max_resident_bytes == 0;
  }
};

/// Sentinel for "no quota" in per-unit budget arithmetic.
inline constexpr std::uint64_t kUnlimitedQuota =
    std::numeric_limits<std::uint64_t>::max();

/// Fair-share split of a logical budget across `num_units` parallel work
/// units: unit `unit` may spend UnitQuota(total, unit, num_units) of it.
/// Returns kUnlimitedQuota when `total` is 0 (no budget). The shares
/// depend only on (total, unit, num_units) — never on thread count or
/// scheduling — which is what makes budget truncation deterministic.
std::uint64_t UnitQuota(std::uint64_t total, std::size_t unit,
                        std::size_t num_units);

/// Deterministic per-work-unit ledger of the logical budgets. Each
/// parallel unit (an MPFCI first-level subtree, one BFS/Naive evaluation,
/// the single unit of a sequential miner) owns one; its quotas come from
/// UnitQuota, so consumption is a pure function of the request. Not
/// thread-safe — one unit runs on one thread at a time.
struct WorkUnitBudget {
  std::uint64_t node_quota = kUnlimitedQuota;
  std::uint64_t sample_quota = kUnlimitedQuota;
  std::uint64_t nodes_used = 0;
  std::uint64_t samples_used = 0;

  /// True once any Take* was refused: the unit's remaining work is cut.
  bool truncated = false;

  /// Claims one search node; false (and truncated) when the quota is out.
  bool TakeNode() {
    if (nodes_used >= node_quota) {
      truncated = true;
      return false;
    }
    ++nodes_used;
    return true;
  }

  /// Claims `n` Monte-Carlo samples atomically-or-not-at-all: an FCP
  /// evaluation that cannot afford its full FPRAS sample count is skipped
  /// whole, never run shorter (emitted estimates always carry the full
  /// guarantee).
  bool TakeSamples(std::uint64_t n) {
    if (n > sample_quota - samples_used) {
      truncated = true;
      return false;
    }
    samples_used += n;
    return true;
  }
};

/// Shared per-run stop/outcome state polled by every miner. One instance
/// lives for the duration of one Mine() call (ExecutionContext::runtime);
/// a default-constructed controller is unlimited and never stops.
///
/// Thread-safe: checkpoints may run concurrently from worker threads.
class RunController {
 public:
  /// Unlimited, never stops (the wrappers' default).
  RunController() = default;

  /// Starts the run clock immediately.
  RunController(const RunBudget& budget, const CancelToken* cancel)
      : budget_(budget), cancel_(cancel) {}

  const RunBudget& budget() const { return budget_; }

  /// Whether any limit or token is attached (miners may skip budget
  /// arithmetic entirely when false).
  bool active() const { return cancel_ != nullptr || !budget_.Unlimited(); }

  /// Fair-share ledger for unit `unit` of `num_units` parallel work units
  /// (see UnitQuota). Sequential miners use UnitBudget(0, 1).
  WorkUnitBudget UnitBudget(std::size_t unit, std::size_t num_units) const {
    WorkUnitBudget ledger;
    ledger.node_quota = UnitQuota(budget_.max_nodes, unit, num_units);
    ledger.sample_quota = UnitQuota(budget_.max_samples, unit, num_units);
    return ledger;
  }

  /// Fast query: has a global stop (cancel/deadline/memory) been
  /// requested? Budget truncation of one work unit does NOT set this —
  /// other units continue to their own quotas.
  bool StopRequested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Cooperative checkpoint: polls the cancel token and the deadline and
  /// returns whether the caller should stop. Cheap when inactive.
  bool Checkpoint() {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      RecordStop(Outcome::kCancelled);
    } else if (budget_.deadline_seconds > 0.0 &&
               clock_.ElapsedSeconds() >= budget_.deadline_seconds) {
      RecordStop(Outcome::kDeadlineExceeded);
    }
    return StopRequested();
  }

  /// Records a global stop: every unit should wind down at its next
  /// checkpoint. The stickiest outcome wins (cancel > deadline > budget),
  /// so the reported reason is stable under races.
  void RecordStop(Outcome outcome) {
    RecordOutcome(outcome);
    stop_.store(true, std::memory_order_relaxed);
  }

  /// Records that one work unit exhausted its fair-share quota and was
  /// truncated. Does not stop other units (that would reintroduce
  /// scheduling dependence).
  void RecordTruncation(Outcome outcome) { RecordOutcome(outcome); }

  /// Whether any entry of the full answer may be missing.
  bool truncated() const {
    return outcome_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(Outcome::kComplete);
  }

  Outcome outcome() const {
    return static_cast<Outcome>(outcome_.load(std::memory_order_relaxed));
  }

  /// Deadline pressure: true once elapsed time exceeds degrade_fraction *
  /// deadline_seconds (false without a deadline). Latches on first trigger
  /// so the degradation decision never flips back.
  bool ShouldDegradeFcp() {
    if (degrade_.load(std::memory_order_relaxed)) return true;
    if (budget_.deadline_seconds <= 0.0) return false;
    if (clock_.ElapsedSeconds() >=
        budget_.degrade_fraction * budget_.deadline_seconds) {
      degrade_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Accounts `bytes` of newly resident tid-set storage; trips a global
  /// kBudgetExhausted stop when the high-water mark passes the memory
  /// budget. Pair with ReleaseBytes for structures that are freed
  /// mid-run.
  void ChargeBytes(std::uint64_t bytes) {
    const std::uint64_t now =
        resident_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget_.max_resident_bytes != 0 &&
        now > budget_.max_resident_bytes) {
      RecordStop(Outcome::kBudgetExhausted);
    }
  }

  void ReleaseBytes(std::uint64_t bytes) {
    resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// Keeps the highest-priority stop reason (enum order doubles as
  /// priority: cancelled > deadline > budget > complete).
  void RecordOutcome(Outcome outcome) {
    std::uint8_t current = outcome_.load(std::memory_order_relaxed);
    const std::uint8_t wanted = static_cast<std::uint8_t>(outcome);
    while (current < wanted &&
           !outcome_.compare_exchange_weak(current, wanted,
                                           std::memory_order_relaxed)) {
    }
  }

  RunBudget budget_;
  const CancelToken* cancel_ = nullptr;
  Stopwatch clock_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> degrade_{false};
  std::atomic<std::uint8_t> outcome_{
      static_cast<std::uint8_t>(Outcome::kComplete)};
  std::atomic<std::uint64_t> resident_bytes_{0};
};

/// Null-tolerant checkpoint helpers: miners carry an optional controller
/// (ExecutionContext::runtime may be null = unlimited), so every
/// cooperative poll site needs the same two-step dance. One spelling for
/// all of them.

/// Whether a global stop (cancel/deadline/memory) has been requested.
inline bool StopRequested(const RunController* rt) {
  return rt != nullptr && rt->StopRequested();
}

/// Polls the controller (deadline, cancellation); true means wind down.
inline bool CheckpointNow(RunController* rt) {
  return rt != nullptr && rt->Checkpoint();
}

/// Run-entry checkpoint: charges already made (e.g. the index build) can
/// trip an undersized memory budget before any search work starts.
inline void CheckpointAtRunStart(RunController* rt) {
  if (rt != nullptr && rt->active()) rt->Checkpoint();
}

}  // namespace pfci

#endif  // PFCI_UTIL_RUNTIME_H_
