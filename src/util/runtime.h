// Fail-soft mining runtime: cancellation, deadlines, and resource budgets.
//
// Computing PrFC is #P-hard (Theorems 3.1/3.2), so a served deployment
// must survive requests whose exact inclusion-exclusion or
// world-enumeration paths blow up. Instead of running forever (or
// aborting), every miner carries a RunController and polls it at
// cooperative checkpoints — node expansion, sample-batch, and world-range
// boundaries — and returns a *verified partial* result when a limit
// trips: only fully-decided entries are emitted, and the stop reason is
// reported as an Outcome in the MiningResult.
//
// Determinism contract (extends DESIGN.md §7/§8 to partial results): in
// deterministic mode the logical budgets (max_nodes, max_samples) are
// enforced per unit of parallel work with a fair-share quota that is a
// pure function of the request, so an interrupted run is bit-identical
// across thread counts and tid-set modes. Wall-clock deadlines,
// cancellation, and the memory budget are inherently scheduling-dependent
// and carry no such guarantee — but the per-entry values of whatever was
// emitted still match an unbudgeted run, because truncation only ever
// cuts a suffix of each unit's deterministic work stream.
#ifndef PFCI_UTIL_RUNTIME_H_
#define PFCI_UTIL_RUNTIME_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "src/util/stopwatch.h"

namespace pfci {

/// How a mining run ended. Every value except kComplete means the result
/// holds a (possibly empty) verified prefix of the full answer.
enum class Outcome : std::uint8_t {
  kComplete = 0,          ///< Ran to completion; the result is the full answer.
  kBudgetExhausted = 1,   ///< A logical budget (nodes/samples/bytes) tripped.
  kDeadlineExceeded = 2,  ///< The wall-clock deadline passed.
  kCancelled = 3,         ///< The caller's CancelToken was triggered.
  kInvalidRequest = 4,    ///< Request validation failed; nothing ran.
  kRejected = 5,          ///< Admission control refused the request; nothing
                          ///< ran. Stamped by MiningSession, never recorded
                          ///< through RunController::RecordStop.
};

/// Wire/display name ("complete", "budget_exhausted", "deadline_exceeded",
/// "cancelled", "invalid_request", "rejected").
const char* OutcomeName(Outcome outcome);

/// Cooperative cancellation flag. The caller keeps the token (e.g. wired
/// to a signal handler or an RPC disconnect) and may trigger it from any
/// thread; miners poll it at checkpoints. A token can back several
/// sequential runs; it never resets itself.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits of one mining run. Zero (the default) disables the
/// corresponding limit.
struct RunBudget {
  /// Wall-clock limit in seconds, measured from Mine() entry. Best-effort:
  /// checked at checkpoints, so long atomic steps can overshoot.
  double deadline_seconds = 0.0;

  /// Maximum search-tree nodes. Deterministic: in deterministic mode the
  /// budget is split fair-share across the run's parallel work units
  /// (e.g. MPFCI first-level subtrees), making the truncation point a
  /// pure function of the request.
  std::uint64_t max_nodes = 0;

  /// Maximum ApproxFCP Monte-Carlo samples, fair-share split like
  /// max_nodes. An evaluation whose required sample count exceeds the
  /// unit's remaining quota is skipped whole (never run with fewer
  /// samples), so emitted estimates always carry the full FPRAS
  /// guarantee.
  std::uint64_t max_samples = 0;

  /// Maximum resident bytes of the run's tid-set structures (the
  /// VerticalIndex plus per-level / per-candidate materializations), as
  /// reported by the TidSet allocator accounting. Best-effort, like the
  /// deadline.
  std::uint64_t max_resident_bytes = 0;

  /// Degradation point: once elapsed time exceeds this fraction of
  /// deadline_seconds, MPFCI-family miners switch remaining FCP
  /// evaluations from exact inclusion-exclusion to the ApproxFCP sampler
  /// (cheaper, still FPRAS-guaranteed) before giving up entirely.
  double degrade_fraction = 0.5;

  /// True when no limit is set (the controller then never polls a clock).
  bool Unlimited() const {
    return deadline_seconds <= 0.0 && max_nodes == 0 && max_samples == 0 &&
           max_resident_bytes == 0;
  }
};

/// Sentinel for "no quota" in per-unit budget arithmetic.
inline constexpr std::uint64_t kUnlimitedQuota =
    std::numeric_limits<std::uint64_t>::max();

/// Fair-share split of a logical budget across `num_units` parallel work
/// units: unit `unit` may spend UnitQuota(total, unit, num_units) of it.
/// Returns kUnlimitedQuota when `total` is 0 (no budget). The shares
/// depend only on (total, unit, num_units) — never on thread count or
/// scheduling — which is what makes budget truncation deterministic.
std::uint64_t UnitQuota(std::uint64_t total, std::size_t unit,
                        std::size_t num_units);

/// Deterministic per-work-unit ledger of the logical budgets. Each
/// parallel unit (an MPFCI first-level subtree, one BFS/Naive evaluation,
/// the single unit of a sequential miner) owns one; its quotas come from
/// UnitQuota, so consumption is a pure function of the request. Not
/// thread-safe — one unit runs on one thread at a time.
struct WorkUnitBudget {
  std::uint64_t node_quota = kUnlimitedQuota;
  std::uint64_t sample_quota = kUnlimitedQuota;
  std::uint64_t nodes_used = 0;
  std::uint64_t samples_used = 0;

  /// True once any Take* was refused: the unit's remaining work is cut.
  bool truncated = false;

  /// Claims one search node; false (and truncated) when the quota is out.
  bool TakeNode() {
    if (nodes_used >= node_quota) {
      truncated = true;
      return false;
    }
    ++nodes_used;
    return true;
  }

  /// Claims `n` Monte-Carlo samples atomically-or-not-at-all: an FCP
  /// evaluation that cannot afford its full FPRAS sample count is skipped
  /// whole, never run shorter (emitted estimates always carry the full
  /// guarantee).
  bool TakeSamples(std::uint64_t n) {
    if (n > sample_quota - samples_used) {
      truncated = true;
      return false;
    }
    samples_used += n;
    return true;
  }
};

/// Shared per-run stop/outcome state polled by every miner. One instance
/// lives for the duration of one Mine() call (ExecutionContext::runtime);
/// a default-constructed controller is unlimited and never stops.
///
/// Thread-safe: checkpoints may run concurrently from worker threads.
class RunController {
 public:
  /// Unlimited, never stops (the wrappers' default).
  RunController() = default;

  /// Starts the run clock immediately.
  RunController(const RunBudget& budget, const CancelToken* cancel)
      : budget_(budget), cancel_(cancel) {}

  const RunBudget& budget() const { return budget_; }

  /// Whether any limit or token is attached (miners may skip budget
  /// arithmetic entirely when false). A suspend-armed controller is
  /// always active: snapshot plumbing needs the controller wired through
  /// even when no limit is set.
  bool active() const {
    return cancel_ != nullptr || !budget_.Unlimited() || suspend_armed_;
  }

  /// Fair-share ledger for unit `unit` of `num_units` parallel work units
  /// (see UnitQuota). Sequential miners use UnitBudget(0, 1). In suspend
  /// mode (ArmSuspend) the ledger is unlimited: budgets then act at unit
  /// granularity through NoteUnitWork, never mid-unit, so every started
  /// unit runs to completion and a snapshot never holds half a unit.
  WorkUnitBudget UnitBudget(std::size_t unit, std::size_t num_units) const {
    WorkUnitBudget ledger;
    if (suspend_armed_) return ledger;
    ledger.node_quota = UnitQuota(budget_.max_nodes, unit, num_units);
    ledger.sample_quota = UnitQuota(budget_.max_samples, unit, num_units);
    return ledger;
  }

  /// Fast query: has a global stop (cancel/deadline/memory) been
  /// requested? Budget truncation of one work unit does NOT set this —
  /// other units continue to their own quotas.
  bool StopRequested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Cooperative checkpoint: polls the cancel token and the deadline and
  /// returns whether the caller should stop. Cheap when inactive.
  ///
  /// The deadline is checked against a cached steady_clock read rather
  /// than a syscall per call: the poll stride starts at 1 and doubles
  /// after every far-from-deadline poll up to kClockCheckStride, so the
  /// clock is read at calls 0, 1, 3, 7, 15, 31, then every 32. Slow runs
  /// (few, expensive checkpoints) still see an expired deadline within
  /// one step; hot loops (the per-node path) amortize to one clock read
  /// per 32 checkpoints. Once the cached elapsed time passes
  /// kClockAlwaysPollFraction of the deadline, every call polls so
  /// detection stays prompt near the limit. Poll-state races are benign:
  /// they only cause extra polls.
  bool Checkpoint() {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      RecordStop(Outcome::kCancelled);
      return StopRequested();
    }
    if (stop_.load(std::memory_order_relaxed)) return true;
    if (budget_.deadline_seconds > 0.0 &&
        !(suspend_armed_ && SuspendRequested())) {
      const std::uint64_t n =
          checkpoint_calls_.fetch_add(1, std::memory_order_relaxed);
      const bool poll =
          n >= next_clock_poll_.load(std::memory_order_relaxed) ||
          cached_elapsed_.load(std::memory_order_relaxed) >=
              kClockAlwaysPollFraction * budget_.deadline_seconds;
      if (poll) {
        const double elapsed = clock_.ElapsedSeconds();
        clock_polls_.fetch_add(1, std::memory_order_relaxed);
        cached_elapsed_.store(elapsed, std::memory_order_relaxed);
        if (elapsed >= budget_.deadline_seconds) {
          RecordStop(Outcome::kDeadlineExceeded);
        } else {
          const std::uint64_t stride =
              clock_stride_.load(std::memory_order_relaxed);
          if (stride < kClockCheckStride) {
            clock_stride_.store(stride * 2, std::memory_order_relaxed);
          }
          next_clock_poll_.store(n + stride, std::memory_order_relaxed);
        }
      }
    }
    return StopRequested();
  }

  /// Records a global stop: every unit should wind down at its next
  /// checkpoint. The stickiest outcome wins (cancel > deadline > budget),
  /// so the reported reason is stable under races.
  ///
  /// In suspend mode (ArmSuspend) a stop becomes a drain instead: the
  /// outcome is recorded and ShouldStartUnit() turns false, but stop_
  /// stays clear, so units already in flight run to their natural end.
  void RecordStop(Outcome outcome) {
    RecordOutcome(outcome);
    if (suspend_armed_) {
      suspend_.store(true, std::memory_order_relaxed);
    } else {
      stop_.store(true, std::memory_order_relaxed);
    }
  }

  /// Switches the controller to drain-at-unit-boundary semantics for
  /// snapshot-armed runs. Must be called before the run starts (not
  /// thread-safe against concurrent checkpoints). While armed:
  ///   * RecordStop sets suspend_ instead of stop_ — in-flight units
  ///     complete, new units are refused by ShouldStartUnit();
  ///   * UnitBudget() hands out unlimited ledgers — logical budgets act
  ///     through NoteUnitWork at unit completion instead (overshoot is at
  ///     most the in-flight units' work, documented in DESIGN.md §14).
  /// The suspension point is scheduling-dependent; the resume contract
  /// only requires that resuming converges to the bit-identical
  /// uninterrupted answer, which drain-at-unit-boundary guarantees
  /// because completed units are deterministic in isolation.
  void ArmSuspend() { suspend_armed_ = true; }

  bool suspend_armed() const { return suspend_armed_; }

  /// Whether a drain has been requested (armed mode only).
  bool SuspendRequested() const {
    return suspend_.load(std::memory_order_relaxed);
  }

  /// Gate at unit entry: false once a stop or a drain is pending. Units
  /// poll this before claiming work; in unarmed mode it is exactly
  /// !StopRequested().
  bool ShouldStartUnit() const {
    return !stop_.load(std::memory_order_relaxed) &&
           !suspend_.load(std::memory_order_relaxed);
  }

  /// Unit-completion accounting for suspend mode: accumulates the unit's
  /// node/sample consumption and requests a drain once a logical budget
  /// is exceeded. No-op when unarmed (the fair-share ledgers rule there).
  void NoteUnitWork(std::uint64_t nodes, std::uint64_t samples) {
    if (!suspend_armed_) return;
    const std::uint64_t total_nodes =
        noted_nodes_.fetch_add(nodes, std::memory_order_relaxed) + nodes;
    const std::uint64_t total_samples =
        noted_samples_.fetch_add(samples, std::memory_order_relaxed) + samples;
    if ((budget_.max_nodes != 0 && total_nodes >= budget_.max_nodes) ||
        (budget_.max_samples != 0 && total_samples >= budget_.max_samples)) {
      RecordStop(Outcome::kBudgetExhausted);
    }
  }

  /// Number of times Checkpoint() actually read the steady clock (the
  /// stride cache's effectiveness metric, asserted in bench and tests).
  std::uint64_t clock_polls() const {
    return clock_polls_.load(std::memory_order_relaxed);
  }

  /// Records that one work unit exhausted its fair-share quota and was
  /// truncated. Does not stop other units (that would reintroduce
  /// scheduling dependence).
  void RecordTruncation(Outcome outcome) { RecordOutcome(outcome); }

  /// Whether any entry of the full answer may be missing.
  bool truncated() const {
    return outcome_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(Outcome::kComplete);
  }

  Outcome outcome() const {
    return static_cast<Outcome>(outcome_.load(std::memory_order_relaxed));
  }

  /// Deadline pressure: true once elapsed time exceeds degrade_fraction *
  /// deadline_seconds (false without a deadline). Latches on first trigger
  /// so the degradation decision never flips back.
  bool ShouldDegradeFcp() {
    if (degrade_.load(std::memory_order_relaxed)) return true;
    if (budget_.deadline_seconds <= 0.0) return false;
    if (clock_.ElapsedSeconds() >=
        budget_.degrade_fraction * budget_.deadline_seconds) {
      degrade_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Accounts `bytes` of newly resident tid-set storage; trips a global
  /// kBudgetExhausted stop when the high-water mark passes the memory
  /// budget. Pair with ReleaseBytes for structures that are freed
  /// mid-run.
  void ChargeBytes(std::uint64_t bytes) {
    const std::uint64_t now =
        resident_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget_.max_resident_bytes != 0 &&
        now > budget_.max_resident_bytes) {
      RecordStop(Outcome::kBudgetExhausted);
    }
  }

  void ReleaseBytes(std::uint64_t bytes) {
    resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// Keeps the highest-priority stop reason (enum order doubles as
  /// priority: cancelled > deadline > budget > complete).
  void RecordOutcome(Outcome outcome) {
    std::uint8_t current = outcome_.load(std::memory_order_relaxed);
    const std::uint8_t wanted = static_cast<std::uint8_t>(outcome);
    while (current < wanted &&
           !outcome_.compare_exchange_weak(current, wanted,
                                           std::memory_order_relaxed)) {
    }
  }

  /// Upper bound of the doubling poll stride (see Checkpoint).
  static constexpr std::uint64_t kClockCheckStride = 32;
  /// Once the cached elapsed time reaches this fraction of the deadline,
  /// every checkpoint polls.
  static constexpr double kClockAlwaysPollFraction = 0.9;

  RunBudget budget_;
  const CancelToken* cancel_ = nullptr;
  Stopwatch clock_;
  bool suspend_armed_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> suspend_{false};
  std::atomic<bool> degrade_{false};
  std::atomic<std::uint8_t> outcome_{
      static_cast<std::uint8_t>(Outcome::kComplete)};
  std::atomic<std::uint64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> checkpoint_calls_{0};
  std::atomic<std::uint64_t> clock_polls_{0};
  std::atomic<std::uint64_t> next_clock_poll_{0};
  std::atomic<std::uint64_t> clock_stride_{1};
  std::atomic<double> cached_elapsed_{0.0};
  std::atomic<std::uint64_t> noted_nodes_{0};
  std::atomic<std::uint64_t> noted_samples_{0};
};

/// Null-tolerant checkpoint helpers: miners carry an optional controller
/// (ExecutionContext::runtime may be null = unlimited), so every
/// cooperative poll site needs the same two-step dance. One spelling for
/// all of them.

/// Whether a global stop (cancel/deadline/memory) has been requested.
inline bool StopRequested(const RunController* rt) {
  return rt != nullptr && rt->StopRequested();
}

/// Polls the controller (deadline, cancellation); true means wind down.
inline bool CheckpointNow(RunController* rt) {
  return rt != nullptr && rt->Checkpoint();
}

/// Run-entry checkpoint: charges already made (e.g. the index build) can
/// trip an undersized memory budget before any search work starts.
inline void CheckpointAtRunStart(RunController* rt) {
  if (rt != nullptr && rt->active()) rt->Checkpoint();
}

/// Unit-entry gate: false once a stop or (in suspend mode) a drain is
/// pending. Null controller = unlimited = always start.
inline bool ShouldStartUnit(const RunController* rt) {
  return rt == nullptr || rt->ShouldStartUnit();
}

/// Unit-completion accounting for suspend mode (no-op otherwise).
inline void NoteUnitWork(RunController* rt, std::uint64_t nodes,
                         std::uint64_t samples) {
  if (rt != nullptr) rt->NoteUnitWork(nodes, samples);
}

/// Whether the run is draining toward a snapshot.
inline bool SuspendRequested(const RunController* rt) {
  return rt != nullptr && rt->SuspendRequested();
}

}  // namespace pfci

#endif  // PFCI_UTIL_RUNTIME_H_
