#include "src/util/trace.h"

#include "src/util/string_util.h"

namespace pfci {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRunBegin:
      return "run_begin";
    case TraceEvent::Kind::kRunEnd:
      return "run_end";
    case TraceEvent::Kind::kSpan:
      return "span";
    case TraceEvent::Kind::kCounter:
      return "counter";
  }
  return "unknown";
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out = "{\"type\":\"";
  out += TraceEventKindName(event.kind);
  out += "\",\"name\":\"";
  out += event.name;  // Names are identifiers; no escaping needed.
  out += "\"";
  switch (event.kind) {
    case TraceEvent::Kind::kRunBegin:
      break;
    case TraceEvent::Kind::kRunEnd:
      out += ",\"value\":" + std::to_string(event.value);
      out += ",\"seconds\":" + FormatDouble(event.seconds, 6);
      break;
    case TraceEvent::Kind::kSpan:
      out += ",\"seconds\":" + FormatDouble(event.seconds, 6);
      break;
    case TraceEvent::Kind::kCounter:
      out += ",\"value\":" + std::to_string(event.value);
      break;
  }
  out += "}";
  return out;
}

JsonLinesTraceSink::JsonLinesTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

JsonLinesTraceSink::~JsonLinesTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonLinesTraceSink::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  const std::string line = TraceEventToJson(event);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void JsonLinesTraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void TraceCounter(TraceSink* sink, const char* name, std::uint64_t value) {
  if (sink == nullptr) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.name = name;
  event.value = value;
  sink->Emit(event);
}

void TraceRunBegin(TraceSink* sink, const char* algorithm) {
  if (sink == nullptr) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kRunBegin;
  event.name = algorithm;
  sink->Emit(event);
}

void TraceRunEnd(TraceSink* sink, const char* algorithm,
                 std::uint64_t itemsets, double seconds) {
  if (sink == nullptr) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kRunEnd;
  event.name = algorithm;
  event.value = itemsets;
  event.seconds = seconds;
  sink->Emit(event);
}

}  // namespace pfci
