// CSV emission for experiment results (consumed by external plotting).
#ifndef PFCI_UTIL_CSV_WRITER_H_
#define PFCI_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace pfci {

/// Writes rows of comma-separated values with minimal quoting.
///
/// Example:
///   CsvWriter csv("out.csv");
///   csv.WriteRow({"min_sup", "time_s"});
///   csv.WriteRow({"0.4", "1.25"});
class CsvWriter {
 public:
  /// Opens `path` for writing; Ok() reports whether the open succeeded.
  explicit CsvWriter(const std::string& path);

  /// Whether the underlying stream is usable.
  bool Ok() const { return static_cast<bool>(out_); }

  /// Writes one row; fields containing commas/quotes/newlines are quoted.
  void WriteRow(const std::vector<std::string>& fields);

  /// Number of rows written so far (including the header).
  int rows_written() const { return rows_written_; }

 private:
  std::ofstream out_;
  int rows_written_ = 0;
};

/// Escapes a single CSV field (exposed for testing).
std::string EscapeCsvField(const std::string& field);

}  // namespace pfci

#endif  // PFCI_UTIL_CSV_WRITER_H_
