#include "src/util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace pfci {

std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) tokens.emplace_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return tokens;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseUint32(std::string_view text, unsigned int* value) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  auto result = std::from_chars(text.data(), text.data() + text.size(), *value);
  return result.ec == std::errc() && result.ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* value) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  // std::from_chars for double is not available in all libstdc++ configs;
  // fall back to strtod on a bounded copy.
  std::string copy(text);
  char* end = nullptr;
  *value = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

std::string FormatDoubleRoundTrip(double value) {
  char buffer[64];
  // 17 significant digits always round-trip an IEEE double; try shorter
  // representations first and keep the first one that reparses exactly.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    char* end = nullptr;
    const double reparsed = std::strtod(buffer, &end);
    if (end != buffer && *end == '\0' &&
        std::memcmp(&reparsed, &value, sizeof(double)) == 0) {
      break;
    }
  }
  return buffer;
}

}  // namespace pfci
