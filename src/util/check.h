// Lightweight CHECK/DCHECK invariant macros.
//
// The library does not use exceptions (see DESIGN.md); internal invariant
// violations abort with a diagnostic, while expected failures are reported
// through return values.
#ifndef PFCI_UTIL_CHECK_H_
#define PFCI_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pfci::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void CheckFailedMsg(const char* file, int line,
                                        const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace pfci::internal

/// Aborts the process with a diagnostic if `expr` is false. Always enabled.
#define PFCI_CHECK(expr)                                       \
  do {                                                         \
    if (!(expr)) {                                             \
      ::pfci::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

/// CHECK with a caller-supplied message (e.g. a ValidateParams() error);
/// `msg` (const char* or std::string) is evaluated only on failure.
#define PFCI_CHECK_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::pfci::internal::CheckFailedMsg(__FILE__, __LINE__, (msg)); \
    }                                                              \
  } while (0)

/// CHECK for binary comparisons; kept simple (no value printing).
#define PFCI_CHECK_EQ(a, b) PFCI_CHECK((a) == (b))
#define PFCI_CHECK_NE(a, b) PFCI_CHECK((a) != (b))
#define PFCI_CHECK_LT(a, b) PFCI_CHECK((a) < (b))
#define PFCI_CHECK_LE(a, b) PFCI_CHECK((a) <= (b))
#define PFCI_CHECK_GT(a, b) PFCI_CHECK((a) > (b))
#define PFCI_CHECK_GE(a, b) PFCI_CHECK((a) >= (b))

/// Debug-only variant; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define PFCI_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define PFCI_DCHECK(expr) PFCI_CHECK(expr)
#endif

#endif  // PFCI_UTIL_CHECK_H_
