// Wall-clock stopwatch used by the experiment harness.
#ifndef PFCI_UTIL_STOPWATCH_H_
#define PFCI_UTIL_STOPWATCH_H_

#include <chrono>

namespace pfci {

/// Measures elapsed wall-clock time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pfci

#endif  // PFCI_UTIL_STOPWATCH_H_
