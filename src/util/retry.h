// Retry with exponential backoff and deterministic seeded jitter.
//
// The resilience layer (DESIGN.md §14) wraps transient failures —
// snapshot I/O, failpoint-injected faults — in a bounded retry loop.
// Two properties matter for this codebase and shape the API:
//
//   * Determinism: the jitter of attempt k is Rng(DeriveSeed(seed, k)),
//     a pure function of the policy, so tests replay the exact backoff
//     schedule and the fuzz harness can pin it.
//   * Testability: the sleep is injectable. Unit tests pass a recording
//     sleep_fn and assert the schedule without waiting; production
//     callers pass nothing and get a real sleep. This file's .cc is the
//     single place in the library allowed to call a sleep primitive
//     (enforced by tools/check_layering.py), so every backoff in the
//     tree goes through one audited implementation.
#ifndef PFCI_UTIL_RETRY_H_
#define PFCI_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

namespace pfci {

/// Knobs of one retry loop. Defaults suit local snapshot I/O: three
/// attempts, 10 ms initial backoff doubling to a 1 s cap, ±10% jitter.
struct RetryPolicy {
  /// Total attempts including the first (>= 1; values < 1 behave as 1).
  int max_attempts = 3;

  /// Backoff before the second attempt, in seconds.
  double initial_backoff_seconds = 0.01;

  /// Multiplier applied per subsequent failure (>= 1).
  double backoff_multiplier = 2.0;

  /// Upper bound on any single backoff, applied before jitter.
  double max_backoff_seconds = 1.0;

  /// Backoff k is scaled by a factor uniform in [1 - j, 1 + j). Zero
  /// disables jitter.
  double jitter_fraction = 0.1;

  /// Seed of the jitter stream; equal seeds replay equal schedules.
  std::uint64_t seed = 0;
};

/// Backoff slept after failed attempt `attempt` (1-based: attempt 1 is
/// the initial try). Deterministic in (policy, attempt); exposed
/// separately so tests and docs can tabulate the schedule.
double BackoffForAttempt(const RetryPolicy& policy, int attempt);

/// What a retry loop did, for logs and stats.
struct RetryResult {
  bool succeeded = false;
  int attempts = 0;                   ///< Attempts actually made.
  double total_backoff_seconds = 0.0; ///< Sum of backoffs requested.
  std::string last_error;             ///< Empty when succeeded.
};

/// Runs `op` up to policy.max_attempts times. `op` returns an empty
/// string on success and a diagnostic on transient failure. Between
/// attempts, `sleep_fn(seconds)` is called with the jittered backoff; a
/// null sleep_fn uses a real std::this_thread sleep. Never sleeps after
/// the final attempt.
RetryResult RetryWithBackoff(const RetryPolicy& policy,
                             const std::function<std::string()>& op,
                             const std::function<void(double)>& sleep_fn = {});

}  // namespace pfci

#endif  // PFCI_UTIL_RETRY_H_
