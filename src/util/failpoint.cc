#include "src/util/failpoint.h"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace pfci::failpoint {

namespace {

struct Site {
  std::function<void()> action;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives all users.
  return *registry;
}

/// Fast-path gate: number of currently armed sites. Hit() returns after a
/// single relaxed load while this is zero.
std::atomic<int> g_armed{0};

}  // namespace

bool CompiledIn() {
#if PFCI_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

void Arm(const char* name, std::function<void()> action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.sites.try_emplace(name);
  it->second.action = std::move(action);
  it->second.hits = 0;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  g_armed.fetch_sub(static_cast<int>(registry.sites.size()),
                    std::memory_order_relaxed);
  registry.sites.clear();
}

std::uint64_t HitCount(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

void Hit(const char* name) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return;
  std::function<void()> action;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.sites.find(name);
    if (it == registry.sites.end()) return;
    ++it->second.hits;
    action = it->second.action;  // Copy: run outside the lock.
  }
  if (action) action();
}

}  // namespace pfci::failpoint
