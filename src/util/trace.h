// Mining telemetry: trace sinks, span timers, and counter events.
//
// The paper's performance story (Sec. V) is about how much work each
// pruning rule avoids; this layer makes that observable. A miner that is
// handed a TraceSink emits
//   * one `span` event per phase (candidate build, search, merge, ...)
//     with its wall-clock duration, and
//   * one `counter` event per work counter (chernoff_pruned,
//     superset_pruned, samples_drawn, nodes_expanded, ...) after the
//     deterministic cross-thread merge, so counter values are
//     bit-identical for every thread count and tid-set mode.
//
// Zero overhead when off: the sink pointer lives in ExecutionContext and
// defaults to null; the hot path never checks it (counters accumulate in
// per-task MiningStats exactly as before), and the per-phase TraceSpan
// reads the clock only when a sink or an output slot is attached.
//
// All Emit calls of one mining run happen on the coordinating thread, in
// a deterministic order; sinks therefore need no locking to be used by a
// single run. MemoryTraceSink and JsonLinesTraceSink lock anyway so one
// sink can also aggregate several runs (e.g. a bench sweep).
#ifndef PFCI_UTIL_TRACE_H_
#define PFCI_UTIL_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/stopwatch.h"

namespace pfci {

/// One telemetry event (schema documented in docs/FORMATS.md).
struct TraceEvent {
  enum class Kind {
    kRunBegin,  ///< A mining run started; name = algorithm.
    kRunEnd,    ///< Run finished; value = itemsets, seconds = wall time.
    kSpan,      ///< A phase completed; name = phase, seconds = duration.
    kCounter,   ///< A merged work counter; name = counter, value = count.
  };

  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t value = 0;
  double seconds = 0.0;
};

/// Wire name of an event kind ("run_begin", "run_end", "span", "counter").
const char* TraceEventKindName(TraceEvent::Kind kind);

/// One compact JSON object (no trailing newline). `seconds` is omitted
/// for counters and `value` for spans, so lines stay greppable.
std::string TraceEventToJson(const TraceEvent& event);

/// Receives telemetry events. Implementations may assume calls from one
/// run are serialized (they come from the coordinating thread).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void Emit(const TraceEvent& event) = 0;

  /// Makes previously emitted events durable (file sinks). Default no-op.
  virtual void Flush() {}
};

/// Discards everything. Useful to measure tracing's own overhead and as
/// an explicit "tracing off" argument where null reads poorly.
class NullTraceSink final : public TraceSink {
 public:
  void Emit(const TraceEvent&) override {}
};

/// Buffers events in memory (tests, in-process consumers).
class MemoryTraceSink final : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  /// Snapshot of everything emitted so far.
  std::vector<TraceEvent> TakeSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Appends one JSON object per event to a file (the `--trace=FILE` sink).
class JsonLinesTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit JsonLinesTraceSink(const std::string& path);
  ~JsonLinesTraceSink() override;

  JsonLinesTraceSink(const JsonLinesTraceSink&) = delete;
  JsonLinesTraceSink& operator=(const JsonLinesTraceSink&) = delete;

  bool ok() const { return file_ != nullptr; }

  void Emit(const TraceEvent& event) override;
  void Flush() override;

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// RAII phase timer. Emits a span event to `sink` (if any) and stores the
/// duration into `out_seconds` (if any) when ended or destroyed; with
/// neither attached it never reads the clock.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name, double* out_seconds = nullptr)
      : sink_(sink), name_(name), out_seconds_(out_seconds) {
    if (armed()) stopwatch_.Reset();
  }

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Stops the timer and emits/stores the duration (idempotent).
  void End() {
    if (ended_ || !armed()) {
      ended_ = true;
      return;
    }
    ended_ = true;
    const double seconds = stopwatch_.ElapsedSeconds();
    if (out_seconds_ != nullptr) *out_seconds_ = seconds;
    if (sink_ != nullptr) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kSpan;
      event.name = name_;
      event.seconds = seconds;
      sink_->Emit(event);
    }
  }

 private:
  bool armed() const { return sink_ != nullptr || out_seconds_ != nullptr; }

  TraceSink* sink_;
  const char* name_;
  double* out_seconds_;
  Stopwatch stopwatch_;
  bool ended_ = false;
};

/// Emits one counter event (no-op when `sink` is null).
void TraceCounter(TraceSink* sink, const char* name, std::uint64_t value);

/// Emits a run_begin marker (no-op when `sink` is null).
void TraceRunBegin(TraceSink* sink, const char* algorithm);

/// Emits a run_end marker (no-op when `sink` is null).
void TraceRunEnd(TraceSink* sink, const char* algorithm,
                 std::uint64_t itemsets, double seconds);

}  // namespace pfci

#endif  // PFCI_UTIL_TRACE_H_
