// Work-stealing thread pool for the parallel mining paths.
//
// The pool owns `num_threads - 1` worker threads (the caller of
// ParallelFor is the remaining thread and always participates). Work is
// distributed as index chunks over per-worker deques: an owner pops from
// the back of its own deque (LIFO, cache-friendly for nested spawns) while
// idle workers steal from the front of a victim's deque (FIFO, oldest and
// therefore largest-granularity work first).
//
// ParallelFor may be called from inside a task (nested parallelism): the
// waiting thread never blocks on a condition variable while work is
// outstanding — it keeps executing pending tasks ("helping"), so nested
// waits cannot deadlock the pool.
//
// Determinism: the pool only decides *which thread* runs an index, never
// what the index computes. All mining-level reproducibility comes from
// per-task seeded Rngs and ordered reductions (see DESIGN.md §7).
#ifndef PFCI_UTIL_THREAD_POOL_H_
#define PFCI_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pfci {

/// Work-stealing pool; see file comment. Thread-safe after construction.
class ThreadPool {
 public:
  /// Creates a pool that runs ParallelFor on up to `num_threads` threads
  /// (including the calling thread). `num_threads == 0` means
  /// DefaultThreads(); `num_threads == 1` spawns no workers and makes
  /// ParallelFor run inline.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that may execute loop bodies (workers + caller).
  std::size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, count) and returns when all calls
  /// have completed. Indices are grouped into chunks of `grain` (0 = pick
  /// automatically); chunks are executed by the caller and the workers
  /// with dynamic load balancing. `body` must be safe to invoke
  /// concurrently from multiple threads. Reentrant: `body` may itself
  /// call ParallelFor on the same pool.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0);

  /// Hardware concurrency, at least 1.
  static std::size_t DefaultThreads();

  /// Lazily constructed process-wide pool with DefaultThreads() threads;
  /// used by the compatibility wrappers (MineMpfci & friends) so that they
  /// parallelize without spawning threads per call.
  static ThreadPool& Shared();

 private:
  /// One worker's task deque. Owners pop from the back, thieves from the
  /// front.
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t self);

  /// Pops and runs one pending task (own queue first, then steals).
  /// Returns false if every queue was empty.
  bool RunOneTask(std::size_t home);

  /// Pushes a task onto queue `slot % queues` and wakes one worker.
  void Push(std::size_t slot, std::function<void()> task);

  std::size_t num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_slot_{0};
};

}  // namespace pfci

#endif  // PFCI_UTIL_THREAD_POOL_H_
