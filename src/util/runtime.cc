#include "src/util/runtime.h"

namespace pfci {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kComplete:
      return "complete";
    case Outcome::kBudgetExhausted:
      return "budget_exhausted";
    case Outcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case Outcome::kCancelled:
      return "cancelled";
    case Outcome::kInvalidRequest:
      return "invalid_request";
    case Outcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::uint64_t UnitQuota(std::uint64_t total, std::size_t unit,
                        std::size_t num_units) {
  if (total == 0) return kUnlimitedQuota;
  if (num_units == 0) return total;
  const std::uint64_t units = static_cast<std::uint64_t>(num_units);
  return total / units + (static_cast<std::uint64_t>(unit) < total % units
                              ? std::uint64_t{1}
                              : std::uint64_t{0});
}

}  // namespace pfci
