#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/util/random.h"

namespace pfci {

double BackoffForAttempt(const RetryPolicy& policy, int attempt) {
  if (attempt < 1 || policy.initial_backoff_seconds <= 0.0) return 0.0;
  double backoff = policy.initial_backoff_seconds;
  const double multiplier = std::max(1.0, policy.backoff_multiplier);
  for (int k = 1; k < attempt; ++k) {
    backoff *= multiplier;
    if (backoff >= policy.max_backoff_seconds) break;
  }
  if (policy.max_backoff_seconds > 0.0) {
    backoff = std::min(backoff, policy.max_backoff_seconds);
  }
  if (policy.jitter_fraction > 0.0) {
    Rng rng(DeriveSeed(policy.seed, static_cast<std::uint64_t>(attempt)));
    const double factor =
        1.0 + policy.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
    backoff *= factor;
  }
  return std::max(0.0, backoff);
}

RetryResult RetryWithBackoff(const RetryPolicy& policy,
                             const std::function<std::string()>& op,
                             const std::function<void(double)>& sleep_fn) {
  RetryResult result;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++result.attempts;
    std::string error = op();
    if (error.empty()) {
      result.succeeded = true;
      result.last_error.clear();
      return result;
    }
    result.last_error = std::move(error);
    if (attempt == max_attempts) break;
    const double backoff = BackoffForAttempt(policy, attempt);
    if (backoff > 0.0) {
      result.total_backoff_seconds += backoff;
      if (sleep_fn) {
        sleep_fn(backoff);
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
  }
  return result;
}

}  // namespace pfci
