#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace pfci {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next64() {
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  PFCI_CHECK(bound >= 1);
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  PFCI_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

int Rng::NextPoisson(double mean) {
  PFCI_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    int k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation, adequate for data generation at large means.
  const double value = NextGaussian(mean, std::sqrt(mean));
  return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
}

double Rng::NextExponential(double rate) {
  PFCI_CHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t stream) {
  // Distinct golden-ratio multiples keep nearby (base, stream) pairs far
  // apart before the splitmix64 finalizer scrambles them.
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  PFCI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PFCI_CHECK(w >= 0.0);
    total += w;
  }
  PFCI_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numerical fallback.
}

}  // namespace pfci
