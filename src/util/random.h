// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (samplers, data generators) take
// an explicit `Rng&` so that experiments are reproducible from a seed.
// The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
#ifndef PFCI_UTIL_RANDOM_H_
#define PFCI_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pfci {

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  result_type operator()() { return Next64(); }

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased via rejection).
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Poisson-distributed count (Knuth's method for small mean, normal
  /// approximation with rounding for large mean).
  int NextPoisson(double mean);

  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Complete generator state, exposed so a suspended run can serialize
  /// its single shared stream (the top-k miner) and resume bit-identical.
  /// `gaussian_spare` is part of the state: NextGaussian generates pairs
  /// and banks one, so dropping it would shift every later draw.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_gaussian_spare = false;
    double gaussian_spare = 0.0;
  };

  State SaveState() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.has_gaussian_spare = has_spare_gaussian_;
    st.gaussian_spare = spare_gaussian_;
    return st;
  }

  void RestoreState(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_spare_gaussian_ = st.has_gaussian_spare;
    spare_gaussian_ = st.gaussian_spare;
  }

 private:
  std::uint64_t Next64();

  std::uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Derives an independent-stream seed from a base seed and a stream index
/// (splitmix64-style avalanche). The parallel miners seed one Rng per
/// subtree / sample batch with DeriveSeed(params.seed, stream) so that the
/// random stream of each unit of work is a pure function of the seed —
/// never of the thread count or scheduling order (see DESIGN.md §7).
std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t stream);

}  // namespace pfci

#endif  // PFCI_UTIL_RANDOM_H_
