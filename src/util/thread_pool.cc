#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pfci {

namespace {

/// Worker index + 1 of the current thread in its owning pool; 0 for
/// threads that are not pool workers (so external callers steal from
/// every queue with equal priority).
thread_local std::size_t tls_worker_slot = 0;

constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  num_threads_ = std::max<std::size_t>(1, num_threads);
  const std::size_t num_workers = num_threads_ - 1;
  queues_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pairs with the wait predicate: no worker can re-check the predicate
    // between our store and the notify and then sleep forever.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreads() {
  const unsigned int hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

void ThreadPool::Push(std::size_t slot, std::function<void()> task) {
  Queue& queue = *queues_[slot % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(std::size_t home) {
  const std::size_t num_queues = queues_.size();
  std::function<void()> task;
  for (std::size_t k = 0; k < num_queues; ++k) {
    const std::size_t index =
        home == kNotAWorker ? k : (home + k) % num_queues;
    Queue& queue = *queues_[index];
    {
      std::lock_guard<std::mutex> lock(queue.mutex);
      if (queue.tasks.empty()) continue;
      if (index == home) {
        task = std::move(queue.tasks.back());
        queue.tasks.pop_back();
      } else {
        task = std::move(queue.tasks.front());
        queue.tasks.pop_front();
      }
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  tls_worker_slot = self + 1;
  for (;;) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) {
      lock.unlock();
      // Drain leftovers so no enqueued task is stranded by shutdown.
      while (RunOneTask(self)) {
      }
      return;
    }
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (4 * num_threads_));
  }
  const std::size_t num_chunks = (count + grain - 1) / grain;

  // Remaining-index counter the caller spins on; shared_ptr so a task that
  // finishes after ParallelFor returns (impossible, but cheap to be safe
  // about) never touches a dead frame except through it.
  auto done = std::make_shared<std::atomic<std::size_t>>(0);
  // Scatter chunks across the worker deques, starting at this thread's
  // own deque when called from a worker (nested case: LIFO pop then gives
  // the freshly spawned chunks priority).
  const std::size_t first_slot = tls_worker_slot != 0
                                     ? tls_worker_slot - 1
                                     : next_slot_.fetch_add(
                                           1, std::memory_order_relaxed);
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::size_t begin = chunk * grain;
    const std::size_t end = std::min(count, begin + grain);
    Push(first_slot + chunk, [done, &body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
      done->fetch_add(end - begin, std::memory_order_acq_rel);
    });
  }

  const std::size_t home =
      tls_worker_slot != 0 ? tls_worker_slot - 1 : kNotAWorker;
  while (done->load(std::memory_order_acquire) < count) {
    // Help: run pending tasks (ours or anybody's) instead of blocking, so
    // nested ParallelFor calls cannot deadlock.
    if (!RunOneTask(home)) std::this_thread::yield();
  }
}

}  // namespace pfci
