#include "src/util/csv_writer.h"

namespace pfci {

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCsvField(fields[i]);
  }
  out_ << '\n';
  ++rows_written_;
}

}  // namespace pfci
