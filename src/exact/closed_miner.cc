#include "src/exact/closed_miner.h"

#include <algorithm>
#include <cstdint>

#include "src/data/tidset.h"
#include "src/exact/fp_growth.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

namespace pfci {

namespace {

/// Exact-data vertical index: tid-sets over a TransactionDatabase.
class ExactIndex {
 public:
  explicit ExactIndex(const TransactionDatabase& db) : db_(&db) {
    std::vector<TidList> raw(db.MaxItemPlusOne());
    for (std::size_t tid = 0; tid < db.size(); ++tid) {
      for (Item item : db.transaction(tid).items()) {
        raw[item].push_back(static_cast<Tid>(tid));
      }
    }
    tids_by_item_.reserve(raw.size());
    for (Item item = 0; item < raw.size(); ++item) {
      tids_by_item_.emplace_back(std::move(raw[item]), db.size());
    }
  }

  const TidSet& TidsOfItem(Item item) const { return tids_by_item_[item]; }

  std::size_t num_items() const { return tids_by_item_.size(); }

  /// Items contained in every transaction of `tids` (tids non-empty).
  std::vector<Item> ClosureOf(const TidSet& tids) const {
    PFCI_DCHECK(!tids.empty());
    std::vector<Item> closure;
    bool first = true;
    tids.ForEach([&](Tid tid) {
      const auto& t = db_->transaction(tid).items();
      if (first) {
        closure.assign(t.begin(), t.end());
        first = false;
        return;
      }
      if (closure.empty()) return;
      std::vector<Item> next;
      next.reserve(closure.size());
      std::set_intersection(closure.begin(), closure.end(), t.begin(),
                            t.end(), std::back_inserter(next));
      closure.swap(next);
    });
    return closure;
  }

 private:
  const TransactionDatabase* db_;
  std::vector<TidSet> tids_by_item_;
};

/// Work counters for the optional telemetry of one mining call.
struct DfsWork {
  std::uint64_t nodes = 0;
  std::uint64_t intersections = 0;
};

/// DFS over prefix-preserving closure extensions.
///
/// `closure` is the (sorted) closed itemset at this node, `tids` its
/// tid-list, and `core` the extension item that produced it (items <= core
/// may not newly appear in a child closure outside the current closure).
void Dfs(const ExactIndex& index, std::size_t min_sup,
         const std::vector<Item>& closure, const TidSet& tids, long core,
         const std::function<void(const Itemset&, std::size_t)>& emit,
         DfsWork& work, RunController* rt, WorkUnitBudget& unit) {
  // Node-expansion checkpoint: each emitted closed set is final the
  // moment it emits, so cutting here leaves a verified prefix.
  PFCI_FAILPOINT("closed/node");
  if (rt != nullptr && rt->Checkpoint()) return;
  if (!unit.TakeNode()) return;
  ++work.nodes;
  if (!closure.empty()) emit(Itemset(closure), tids.size());

  for (Item j = static_cast<Item>(core + 1); j < index.num_items(); ++j) {
    if (unit.truncated || (rt != nullptr && rt->StopRequested())) return;
    if (std::binary_search(closure.begin(), closure.end(), j)) continue;
    const TidSet child_tids = Intersect(tids, index.TidsOfItem(j));
    ++work.intersections;
    if (child_tids.size() < min_sup || child_tids.empty()) continue;
    std::vector<Item> child_closure = index.ClosureOf(child_tids);
    // Prefix-preservation test: the child closure must not introduce an
    // item smaller than j outside the parent closure, otherwise this
    // closed set is reachable (and emitted) from another branch.
    bool duplicate = false;
    for (Item k : child_closure) {
      if (k >= j) break;
      if (!std::binary_search(closure.begin(), closure.end(), k)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    Dfs(index, min_sup, child_closure, child_tids, static_cast<long>(j),
        emit, work, rt, unit);
  }
}

}  // namespace

void MineClosedItemsetsInto(
    const TransactionDatabase& db, std::size_t min_sup,
    const std::function<void(const Itemset&, std::size_t)>& emit,
    TraceSink* trace, RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  // No itemset can have support >= min_sup beyond the database size.
  if (db.empty() || db.size() < min_sup) return;
  DfsWork work;
  WorkUnitBudget unit =
      runtime != nullptr ? runtime->UnitBudget(0, 1) : WorkUnitBudget{};
  {
    TraceSpan span(trace, "closed_dfs");
    const ExactIndex index(db);
    if (runtime != nullptr && runtime->active()) runtime->Checkpoint();
    if (runtime == nullptr || !runtime->StopRequested()) {
      const TidSet all_tids = TidSet::All(db.size());
      const std::vector<Item> root_closure = index.ClosureOf(all_tids);
      Dfs(index, min_sup, root_closure, all_tids, -1, emit, work, runtime,
          unit);
    }
  }
  if (unit.truncated && runtime != nullptr) {
    runtime->RecordTruncation(Outcome::kBudgetExhausted);
  }
  TraceCounter(trace, "nodes_expanded", work.nodes);
  TraceCounter(trace, "intersections", work.intersections);
}

std::vector<SupportedItemset> MineClosedItemsets(const TransactionDatabase& db,
                                                 std::size_t min_sup,
                                                 TraceSink* trace) {
  std::vector<SupportedItemset> result;
  MineClosedItemsetsInto(
      db, min_sup,
      [&](const Itemset& itemset, std::size_t support) {
        result.push_back(SupportedItemset{itemset, support});
      },
      trace);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<SupportedItemset> MineClosedItemsetsBruteForce(
    const TransactionDatabase& db, std::size_t min_sup) {
  const std::vector<SupportedItemset> frequent =
      MineFrequentItemsets(db, min_sup);
  std::vector<SupportedItemset> closed;
  for (const auto& candidate : frequent) {
    bool is_closed = true;
    for (const auto& other : frequent) {
      if (other.support == candidate.support &&
          other.items.IsProperSupersetOf(candidate.items)) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(candidate);
  }
  std::sort(closed.begin(), closed.end());
  return closed;
}

}  // namespace pfci
