// FP-tree: the prefix-tree structure behind FP-growth [13].
#ifndef PFCI_EXACT_FP_TREE_H_
#define PFCI_EXACT_FP_TREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/data/item.h"

namespace pfci {

/// A transaction (already filtered and ordered) with a multiplicity,
/// as inserted into an FP-tree. Conditional pattern bases are weighted,
/// hence the count.
struct WeightedItemList {
  std::vector<Item> items;  ///< In tree insertion order.
  std::size_t count = 1;
};

/// Prefix tree with per-item node links and a header table.
class FpTree {
 public:
  struct Node {
    Item item = 0;
    std::size_t count = 0;
    Node* parent = nullptr;
    Node* next_same_item = nullptr;  ///< Node-link chain.
    std::vector<std::unique_ptr<Node>> children;

    Node* FindChild(Item child_item) const;
  };

  /// Header entry: an item, its total count in the tree, and the head of
  /// its node-link chain.
  struct HeaderEntry {
    Item item = 0;
    std::size_t total_count = 0;
    Node* head = nullptr;
  };

  /// Builds the tree from weighted item lists. Items inside each list must
  /// already be ordered consistently (the caller orders by descending
  /// global frequency, the classic FP-growth heuristic).
  explicit FpTree(const std::vector<WeightedItemList>& rows);

  const Node* root() const { return &root_; }

  /// Header entries present in this tree, in insertion order of the item
  /// ordering used by the caller (ascending item-rank).
  const std::vector<HeaderEntry>& header() const { return header_; }

  /// Whether the tree consists of a single path (enables the FP-growth
  /// single-path shortcut).
  bool IsSinglePath() const;

  /// The conditional pattern base of `item`: for every node carrying the
  /// item, the path from its parent up to the root (reversed into root-
  /// first order) weighted by the node count.
  std::vector<WeightedItemList> ConditionalPatternBase(Item item) const;

 private:
  void Insert(const std::vector<Item>& items, std::size_t count);

  Node root_;
  std::vector<HeaderEntry> header_;
  std::vector<int> header_slot_;  ///< item -> index into header_, or -1.
};

}  // namespace pfci

#endif  // PFCI_EXACT_FP_TREE_H_
