#include "src/exact/fp_tree.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

FpTree::Node* FpTree::Node::FindChild(Item child_item) const {
  for (const auto& child : children) {
    if (child->item == child_item) return child.get();
  }
  return nullptr;
}

FpTree::FpTree(const std::vector<WeightedItemList>& rows) {
  Item max_item_plus_one = 0;
  for (const auto& row : rows) {
    for (Item item : row.items) {
      max_item_plus_one = std::max(max_item_plus_one, item + 1);
    }
  }
  header_slot_.assign(max_item_plus_one, -1);
  for (const auto& row : rows) {
    if (!row.items.empty()) Insert(row.items, row.count);
  }
}

void FpTree::Insert(const std::vector<Item>& items, std::size_t count) {
  Node* node = &root_;
  for (Item item : items) {
    Node* child = node->FindChild(item);
    if (child == nullptr) {
      auto owned = std::make_unique<Node>();
      child = owned.get();
      child->item = item;
      child->parent = node;
      node->children.push_back(std::move(owned));
      // Thread the node into the header chain.
      int slot = header_slot_[item];
      if (slot < 0) {
        slot = static_cast<int>(header_.size());
        header_slot_[item] = slot;
        header_.push_back(HeaderEntry{item, 0, nullptr});
      }
      child->next_same_item = header_[slot].head;
      header_[slot].head = child;
    }
    child->count += count;
    header_[header_slot_[item]].total_count += count;
    node = child;
  }
}

bool FpTree::IsSinglePath() const {
  const Node* node = &root_;
  while (!node->children.empty()) {
    if (node->children.size() > 1) return false;
    node = node->children.front().get();
  }
  return true;
}

std::vector<WeightedItemList> FpTree::ConditionalPatternBase(Item item) const {
  std::vector<WeightedItemList> base;
  if (item >= header_slot_.size() || header_slot_[item] < 0) return base;
  for (const Node* node = header_[header_slot_[item]].head; node != nullptr;
       node = node->next_same_item) {
    WeightedItemList row;
    row.count = node->count;
    for (const Node* up = node->parent; up != nullptr && up->parent != nullptr;
         up = up->parent) {
      row.items.push_back(up->item);
    }
    std::reverse(row.items.begin(), row.items.end());
    if (!row.items.empty()) base.push_back(std::move(row));
  }
  return base;
}

}  // namespace pfci
