#include "src/exact/transaction_database.h"

#include <algorithm>

namespace pfci {

TransactionDatabase TransactionDatabase::FromUncertain(
    const UncertainDatabase& db) {
  TransactionDatabase out;
  for (const auto& t : db.transactions()) out.Add(t.items);
  return out;
}

TransactionDatabase TransactionDatabase::FromWorld(const UncertainDatabase& db,
                                                   const PossibleWorld& world) {
  TransactionDatabase out;
  for (Tid tid = 0; tid < db.size(); ++tid) {
    if (world.IsPresent(tid)) out.Add(db.transaction(tid).items);
  }
  return out;
}

std::size_t TransactionDatabase::Support(const Itemset& x) const {
  std::size_t support = 0;
  for (const Itemset& t : transactions_) {
    if (x.IsSubsetOf(t)) ++support;
  }
  return support;
}

std::vector<Item> TransactionDatabase::ItemUniverse() const {
  std::vector<Item> universe;
  for (const Itemset& t : transactions_) {
    universe.insert(universe.end(), t.items().begin(), t.items().end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  return universe;
}

Item TransactionDatabase::MaxItemPlusOne() const {
  Item max_plus_one = 0;
  for (const Itemset& t : transactions_) {
    if (!t.empty()) max_plus_one = std::max(max_plus_one, t.LastItem() + 1);
  }
  return max_plus_one;
}

}  // namespace pfci
