// FP-growth frequent itemset mining over exact data [13].
//
// Used by the compression-quality experiment (Fig. 10: the "FI" series is
// produced by FP-growth on the deterministic dataset) and by the
// possible-world oracles.
#ifndef PFCI_EXACT_FP_GROWTH_H_
#define PFCI_EXACT_FP_GROWTH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/exact/transaction_database.h"

namespace pfci {

/// Calls `emit(itemset, support)` once for every (non-empty) itemset with
/// support >= min_sup. min_sup must be >= 1. Emission order is
/// unspecified.
void FpGrowth(const TransactionDatabase& db, std::size_t min_sup,
              const std::function<void(const Itemset&, std::size_t)>& emit);

/// Convenience wrapper collecting all frequent itemsets, sorted.
std::vector<SupportedItemset> MineFrequentItemsets(
    const TransactionDatabase& db, std::size_t min_sup);

}  // namespace pfci

#endif  // PFCI_EXACT_FP_GROWTH_H_
