#include "src/exact/charm_miner.h"

#include <algorithm>
#include <unordered_map>

#include "src/data/tidset.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

namespace pfci {

namespace {

/// An IT-tree node: itemset with its tidset.
struct ItNode {
  Itemset items;
  TidSet tids;
  bool erased = false;
};

/// Hash of a tidset (order-independent since iteration is ascending).
std::uint64_t TidsetHash(const TidSet& tids) {
  std::uint64_t hash = 1469598103934665603ULL;
  tids.ForEach([&hash](Tid tid) {
    hash ^= tid + 0x9e3779b9;
    hash *= 1099511628211ULL;
  });
  return hash;
}

/// Mined closed sets, indexed by tidset hash for subsumption checks.
class ClosedSetStore {
 public:
  /// True if a stored closed set has the same support and contains X
  /// (then X is not closed: its closure was already mined).
  bool Subsumes(const Itemset& x, const TidSet& tids) const {
    const auto it = by_hash_.find(TidsetHash(tids));
    if (it == by_hash_.end()) return false;
    for (const SupportedItemset& closed : it->second) {
      if (closed.support == tids.size() && x.IsSubsetOf(closed.items)) {
        return true;
      }
    }
    return false;
  }

  void Insert(Itemset items, const TidSet& tids) {
    by_hash_[TidsetHash(tids)].push_back(
        SupportedItemset{std::move(items), tids.size()});
  }

  std::vector<SupportedItemset> TakeAll() {
    std::vector<SupportedItemset> all;
    for (auto& [hash, bucket] : by_hash_) {
      for (SupportedItemset& entry : bucket) all.push_back(std::move(entry));
    }
    std::sort(all.begin(), all.end());
    return all;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<SupportedItemset>> by_hash_;
};

/// Work counters for the optional telemetry of one mining call.
struct ExtendWork {
  std::uint64_t nodes = 0;
  std::uint64_t intersections = 0;
};

/// CHARM-EXTEND: processes a sibling group, applying the four tidset
/// properties, recursing into each node's children, then emitting the
/// (possibly extended) node if no mined closed set subsumes it.
void Extend(std::vector<ItNode>& group, std::size_t min_sup,
            ClosedSetStore* store, ExtendWork& work, RunController* rt,
            WorkUnitBudget& unit) {
  // Process in order of increasing tidset size (CHARM's heuristic, and
  // required so closures are mined before their subsumed subsets).
  std::sort(group.begin(), group.end(), [](const ItNode& a, const ItNode& b) {
    if (a.tids.size() != b.tids.size()) return a.tids.size() < b.tids.size();
    return a.items < b.items;
  });

  for (std::size_t i = 0; i < group.size(); ++i) {
    // Once truncated/stopped, no further insertion may happen: a set
    // inserted later could miss the earlier-branch subsumer that proves
    // it non-closed, so the store stays a verified prefix only if the
    // cut is sticky.
    PFCI_FAILPOINT("charm/node");
    if (rt != nullptr && rt->Checkpoint()) return;
    if (group[i].erased) continue;
    if (!unit.TakeNode()) return;
    ++work.nodes;
    ItNode& xi = group[i];
    std::vector<ItNode> children;
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      if (group[j].erased) continue;
      ItNode& xj = group[j];
      TidSet shared = Intersect(xi.tids, xj.tids);
      ++work.intersections;
      if (shared.size() < min_sup) continue;
      const bool covers_xi = shared.size() == xi.tids.size();
      const bool covers_xj = shared.size() == xj.tids.size();
      if (covers_xi && covers_xj) {
        // Property 1: identical tidsets — Xj's items always co-occur with
        // Xi; absorb them everywhere and drop Xj.
        xi.items = xi.items.UnionWith(xj.items);
        for (ItNode& child : children) {
          child.items = child.items.UnionWith(xj.items);
        }
        xj.erased = true;
      } else if (covers_xi) {
        // Property 2: T(Xi) ⊂ T(Xj) — Xi always co-occurs with Xj.
        xi.items = xi.items.UnionWith(xj.items);
        for (ItNode& child : children) {
          child.items = child.items.UnionWith(xj.items);
        }
      } else if (covers_xj) {
        // Property 3: T(Xj) ⊂ T(Xi) — Xj is replaced by the combination.
        children.push_back(
            ItNode{xi.items.UnionWith(xj.items), std::move(shared)});
        xj.erased = true;
      } else {
        // Property 4: incomparable tidsets.
        children.push_back(
            ItNode{xi.items.UnionWith(xj.items), std::move(shared)});
      }
    }
    if (!children.empty()) Extend(children, min_sup, store, work, rt, unit);
    if (unit.truncated || (rt != nullptr && rt->StopRequested())) return;
    if (!store->Subsumes(xi.items, xi.tids)) {
      store->Insert(xi.items, xi.tids);
    }
  }
}

}  // namespace

std::vector<SupportedItemset> CharmMineClosedItemsets(
    const TransactionDatabase& db, std::size_t min_sup, TraceSink* trace,
    RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  if (db.empty() || db.size() < min_sup) return {};

  ClosedSetStore store;
  ExtendWork work;
  WorkUnitBudget unit =
      runtime != nullptr ? runtime->UnitBudget(0, 1) : WorkUnitBudget{};
  {
    TraceSpan span(trace, "charm_extend");
    // Per-item tidsets.
    std::vector<TidList> tids_by_item(db.MaxItemPlusOne());
    for (std::size_t tid = 0; tid < db.size(); ++tid) {
      for (Item item : db.transaction(tid).items()) {
        tids_by_item[item].push_back(static_cast<Tid>(tid));
      }
    }
    std::vector<ItNode> roots;
    for (Item item = 0; item < tids_by_item.size(); ++item) {
      if (tids_by_item[item].size() >= min_sup) {
        roots.push_back(ItNode{
            Itemset{item}, TidSet(std::move(tids_by_item[item]), db.size())});
      }
    }
    if (!roots.empty()) Extend(roots, min_sup, &store, work, runtime, unit);
  }
  if (unit.truncated && runtime != nullptr) {
    runtime->RecordTruncation(Outcome::kBudgetExhausted);
  }
  TraceCounter(trace, "nodes_expanded", work.nodes);
  TraceCounter(trace, "intersections", work.intersections);
  return store.TakeAll();
}

}  // namespace pfci
