// Closed frequent itemset mining over exact data.
//
// Implements the closure-based depth-first enumeration with prefix-
// preservation tests (in the spirit of CLOSET+/LCM/DCI-Closed, the exact-
// data algorithms the paper's Fig. 10 compares against). Every closed
// frequent itemset is emitted exactly once.
#ifndef PFCI_EXACT_CLOSED_MINER_H_
#define PFCI_EXACT_CLOSED_MINER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/exact/transaction_database.h"
#include "src/util/runtime.h"
#include "src/util/trace.h"

namespace pfci {

/// Calls `emit(itemset, support)` once for every non-empty closed itemset
/// with support >= min_sup (min_sup >= 1). An itemset is closed iff no
/// proper superset has equal support (Definition 3.2). `trace` (optional)
/// receives a `closed_dfs` span plus `nodes_expanded`/`intersections`
/// counters, mirroring the probabilistic miners' telemetry. `runtime`
/// (optional) makes the DFS fail-soft: a stop or exhausted node quota
/// ends the enumeration after a prefix of the (still individually
/// correct) closed sets was emitted.
void MineClosedItemsetsInto(
    const TransactionDatabase& db, std::size_t min_sup,
    const std::function<void(const Itemset&, std::size_t)>& emit,
    TraceSink* trace = nullptr, RunController* runtime = nullptr);

/// Convenience wrapper collecting all frequent closed itemsets, sorted.
std::vector<SupportedItemset> MineClosedItemsets(const TransactionDatabase& db,
                                                 std::size_t min_sup,
                                                 TraceSink* trace = nullptr);

/// Reference oracle: filters MineFrequentItemsets output down to closed
/// sets by pairwise superset checks. Quadratic; tests only.
std::vector<SupportedItemset> MineClosedItemsetsBruteForce(
    const TransactionDatabase& db, std::size_t min_sup);

}  // namespace pfci

#endif  // PFCI_EXACT_CLOSED_MINER_H_
