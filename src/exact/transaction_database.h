// Deterministic (exact) transaction database.
//
// Substrate for the exact-mining baselines (FP-growth, CLOSET-style closed
// mining, Apriori) used by the compression-quality experiment (Fig. 10) and
// by the possible-world oracles.
#ifndef PFCI_EXACT_TRANSACTION_DATABASE_H_
#define PFCI_EXACT_TRANSACTION_DATABASE_H_

#include <cstddef>
#include <vector>

#include "src/data/item.h"
#include "src/data/itemset.h"
#include "src/data/possible_world.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// An ordered collection of exact transactions.
class TransactionDatabase {
 public:
  TransactionDatabase() = default;
  explicit TransactionDatabase(std::vector<Itemset> transactions)
      : transactions_(std::move(transactions)) {}

  /// The deterministic projection of an uncertain database: every
  /// transaction kept, probabilities dropped (used when mining the "exact"
  /// counterpart of an uncertain dataset, as in Fig. 10).
  static TransactionDatabase FromUncertain(const UncertainDatabase& db);

  /// The transactions present in one possible world.
  static TransactionDatabase FromWorld(const UncertainDatabase& db,
                                       const PossibleWorld& world);

  void Add(Itemset transaction) {
    transactions_.push_back(std::move(transaction));
  }

  std::size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }
  const Itemset& transaction(std::size_t i) const { return transactions_[i]; }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  /// Number of transactions containing X.
  std::size_t Support(const Itemset& x) const;

  /// All distinct items, ascending.
  std::vector<Item> ItemUniverse() const;

  /// Largest item id + 1 (0 when empty).
  Item MaxItemPlusOne() const;

 private:
  std::vector<Itemset> transactions_;
};

/// A mined itemset together with its support.
struct SupportedItemset {
  Itemset items;
  std::size_t support = 0;

  friend bool operator==(const SupportedItemset& a, const SupportedItemset& b) {
    return a.support == b.support && a.items == b.items;
  }
  friend bool operator<(const SupportedItemset& a, const SupportedItemset& b) {
    return a.items < b.items;
  }
};

}  // namespace pfci

#endif  // PFCI_EXACT_TRANSACTION_DATABASE_H_
