#include "src/exact/apriori.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

std::vector<Itemset> AprioriGenCandidates(
    const std::vector<Itemset>& frequent_k) {
  std::vector<Itemset> candidates;
  for (std::size_t a = 0; a < frequent_k.size(); ++a) {
    for (std::size_t b = a + 1; b < frequent_k.size(); ++b) {
      const auto& ia = frequent_k[a].items();
      const auto& ib = frequent_k[b].items();
      // Join requires equal (k-1)-prefixes; lists are sorted so the joinable
      // partners of `a` are contiguous.
      if (!std::equal(ia.begin(), ia.end() - 1, ib.begin(), ib.end() - 1)) {
        break;
      }
      Itemset candidate = frequent_k[a].WithItem(ib.back());
      // Downward-closure pruning: all k-subsets must be frequent.
      bool all_subsets_frequent = true;
      for (Item drop : candidate.items()) {
        const Itemset subset = candidate.WithoutItem(drop);
        if (!std::binary_search(frequent_k.begin(), frequent_k.end(),
                                subset)) {
          all_subsets_frequent = false;
          break;
        }
      }
      if (all_subsets_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

std::vector<SupportedItemset> AprioriMine(const TransactionDatabase& db,
                                          std::size_t min_sup) {
  PFCI_CHECK(min_sup >= 1);
  std::vector<SupportedItemset> result;

  // Level 1.
  std::vector<Itemset> level;
  for (Item item : db.ItemUniverse()) {
    const Itemset candidate{item};
    const std::size_t support = db.Support(candidate);
    if (support >= min_sup) {
      result.push_back(SupportedItemset{candidate, support});
      level.push_back(candidate);
    }
  }

  while (!level.empty()) {
    std::sort(level.begin(), level.end());
    std::vector<Itemset> next_level;
    for (const Itemset& candidate : AprioriGenCandidates(level)) {
      const std::size_t support = db.Support(candidate);
      if (support >= min_sup) {
        result.push_back(SupportedItemset{candidate, support});
        next_level.push_back(candidate);
      }
    }
    level.swap(next_level);
  }

  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pfci
