// CHARM-style closed frequent itemset mining (Zaki & Hsiao [29]).
//
// A second, independently-implemented closed-itemset algorithm: IT-tree
// search over (itemset, tidset) pairs with CHARM's four properties
// (tidset-equality merging) and subsumption checking against a hash of
// mined closed sets. Exists to cross-validate the LCM-style miner in
// closed_miner.h — two different algorithms agreeing over randomized
// inputs is the library's strongest exact-substrate guarantee.
#ifndef PFCI_EXACT_CHARM_MINER_H_
#define PFCI_EXACT_CHARM_MINER_H_

#include <cstddef>
#include <vector>

#include "src/exact/transaction_database.h"
#include "src/util/runtime.h"
#include "src/util/trace.h"

namespace pfci {

/// Mines all closed itemsets with support >= min_sup (min_sup >= 1),
/// returned sorted. Result is identical to MineClosedItemsets. `trace`
/// (optional) receives a `charm_extend` span plus
/// `nodes_expanded`/`intersections` counters. `runtime` (optional) makes
/// the search fail-soft: after a stop or an exhausted node quota no
/// further closed set is inserted, so every returned set is genuinely
/// closed (its subsumption prerequisites were fully processed).
std::vector<SupportedItemset> CharmMineClosedItemsets(
    const TransactionDatabase& db, std::size_t min_sup,
    TraceSink* trace = nullptr, RunController* runtime = nullptr);

}  // namespace pfci

#endif  // PFCI_EXACT_CHARM_MINER_H_
