#include "src/exact/fp_growth.h"

#include <algorithm>

#include "src/exact/fp_tree.h"
#include "src/util/check.h"

namespace pfci {

namespace {

/// Recursive FP-growth over a tree built from `rows`. `suffix` holds the
/// items conditioned on so far (as a sorted itemset is rebuilt at emit
/// time, internal order does not matter).
void Grow(const std::vector<WeightedItemList>& rows, std::size_t min_sup,
          std::vector<Item>& suffix,
          const std::function<void(const Itemset&, std::size_t)>& emit) {
  const FpTree tree(rows);
  for (const FpTree::HeaderEntry& entry : tree.header()) {
    if (entry.total_count < min_sup) continue;
    suffix.push_back(entry.item);
    emit(Itemset(suffix), entry.total_count);

    // Build the conditional base restricted to items still frequent there.
    std::vector<WeightedItemList> base = tree.ConditionalPatternBase(entry.item);
    if (!base.empty()) {
      // Count items in the conditional base and drop infrequent ones.
      Item max_item_plus_one = 0;
      for (const auto& row : base) {
        for (Item item : row.items) {
          max_item_plus_one = std::max(max_item_plus_one, item + 1);
        }
      }
      std::vector<std::size_t> counts(max_item_plus_one, 0);
      for (const auto& row : base) {
        for (Item item : row.items) counts[item] += row.count;
      }
      std::vector<WeightedItemList> filtered;
      filtered.reserve(base.size());
      for (auto& row : base) {
        WeightedItemList kept;
        kept.count = row.count;
        for (Item item : row.items) {
          if (counts[item] >= min_sup) kept.items.push_back(item);
        }
        if (!kept.items.empty()) filtered.push_back(std::move(kept));
      }
      if (!filtered.empty()) Grow(filtered, min_sup, suffix, emit);
    }
    suffix.pop_back();
  }
}

}  // namespace

void FpGrowth(const TransactionDatabase& db, std::size_t min_sup,
              const std::function<void(const Itemset&, std::size_t)>& emit) {
  PFCI_CHECK(min_sup >= 1);
  // Global item counts; order items by descending frequency (ties by id)
  // for compact trees.
  std::vector<std::size_t> counts(db.MaxItemPlusOne(), 0);
  for (const Itemset& t : db.transactions()) {
    for (Item item : t.items()) ++counts[item];
  }
  std::vector<Item> frequent_items;
  for (Item item = 0; item < counts.size(); ++item) {
    if (counts[item] >= min_sup) frequent_items.push_back(item);
  }
  std::sort(frequent_items.begin(), frequent_items.end(),
            [&](Item a, Item b) {
              if (counts[a] != counts[b]) return counts[a] > counts[b];
              return a < b;
            });
  std::vector<std::size_t> rank(counts.size(), 0);
  std::vector<bool> is_frequent(counts.size(), false);
  for (std::size_t r = 0; r < frequent_items.size(); ++r) {
    rank[frequent_items[r]] = r;
    is_frequent[frequent_items[r]] = true;
  }

  std::vector<WeightedItemList> rows;
  rows.reserve(db.size());
  for (const Itemset& t : db.transactions()) {
    WeightedItemList row;
    for (Item item : t.items()) {
      if (is_frequent[item]) row.items.push_back(item);
    }
    if (row.items.empty()) continue;
    std::sort(row.items.begin(), row.items.end(),
              [&](Item a, Item b) { return rank[a] < rank[b]; });
    rows.push_back(std::move(row));
  }

  std::vector<Item> suffix;
  Grow(rows, min_sup, suffix, emit);
}

std::vector<SupportedItemset> MineFrequentItemsets(
    const TransactionDatabase& db, std::size_t min_sup) {
  std::vector<SupportedItemset> result;
  FpGrowth(db, min_sup, [&](const Itemset& itemset, std::size_t support) {
    result.push_back(SupportedItemset{itemset, support});
  });
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pfci
