// Apriori levelwise frequent itemset mining [3].
//
// Reference baseline used to cross-validate FP-growth and as the template
// the probabilistic BFS miners follow.
#ifndef PFCI_EXACT_APRIORI_H_
#define PFCI_EXACT_APRIORI_H_

#include <cstddef>
#include <vector>

#include "src/exact/transaction_database.h"

namespace pfci {

/// Mines all itemsets with support >= min_sup (min_sup >= 1) by levelwise
/// candidate generation and returns them sorted.
std::vector<SupportedItemset> AprioriMine(const TransactionDatabase& db,
                                          std::size_t min_sup);

/// Generates the (k+1)-candidates from sorted frequent k-itemsets by
/// prefix join + subset pruning. Exposed for testing.
std::vector<Itemset> AprioriGenCandidates(
    const std::vector<Itemset>& frequent_k);

}  // namespace pfci

#endif  // PFCI_EXACT_APRIORI_H_
