// The algorithm variants of the paper's Table VII.
#ifndef PFCI_HARNESS_VARIANTS_H_
#define PFCI_HARNESS_VARIANTS_H_

#include <string>
#include <vector>

#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Every algorithm configuration evaluated in the paper.
enum class AlgorithmVariant {
  kMpfci,    ///< All prunings, DFS.
  kNoCh,     ///< Without Chernoff-Hoeffding pruning.
  kNoSuper,  ///< Without superset pruning.
  kNoSub,    ///< Without subset pruning.
  kNoBound,  ///< Without the Lemma 4.4 probability bounds.
  kBfs,      ///< Breadth-first framework (CH + bounds only).
  kNaive,    ///< PFI mining + per-itemset ApproxFCP.
};

/// Display name ("MPFCI", "MPFCI-NoCH", ...).
const char* VariantName(AlgorithmVariant variant);

/// The five DFS pruning variants of Fig. 6-9.
std::vector<AlgorithmVariant> PruningVariants();

/// Applies the variant's toggles to a base parameter set.
MiningParams ApplyVariant(AlgorithmVariant variant, MiningParams params);

/// Runs the variant (dispatching to the DFS, BFS, or naive miner).
MiningResult RunVariant(AlgorithmVariant variant, const UncertainDatabase& db,
                        const MiningParams& params);

/// Renders the Table VII feature matrix.
std::string VariantFeatureTable();

}  // namespace pfci

#endif  // PFCI_HARNESS_VARIANTS_H_
