#include "src/harness/variants.h"

#include "src/core/mine.h"

namespace pfci {

const char* VariantName(AlgorithmVariant variant) {
  switch (variant) {
    case AlgorithmVariant::kMpfci:
      return "MPFCI";
    case AlgorithmVariant::kNoCh:
      return "MPFCI-NoCH";
    case AlgorithmVariant::kNoSuper:
      return "MPFCI-NoSuper";
    case AlgorithmVariant::kNoSub:
      return "MPFCI-NoSub";
    case AlgorithmVariant::kNoBound:
      return "MPFCI-NoBound";
    case AlgorithmVariant::kBfs:
      return "MPFCI-BFS";
    case AlgorithmVariant::kNaive:
      return "Naive";
  }
  return "unknown";
}

std::vector<AlgorithmVariant> PruningVariants() {
  return {AlgorithmVariant::kMpfci, AlgorithmVariant::kNoCh,
          AlgorithmVariant::kNoSuper, AlgorithmVariant::kNoSub,
          AlgorithmVariant::kNoBound};
}

MiningParams ApplyVariant(AlgorithmVariant variant, MiningParams params) {
  switch (variant) {
    case AlgorithmVariant::kMpfci:
      break;
    case AlgorithmVariant::kNoCh:
      params.pruning.chernoff = false;
      break;
    case AlgorithmVariant::kNoSuper:
      params.pruning.superset = false;
      break;
    case AlgorithmVariant::kNoSub:
      params.pruning.subset = false;
      break;
    case AlgorithmVariant::kNoBound:
      params.pruning.fcp_bounds = false;
      break;
    case AlgorithmVariant::kBfs:
      // BFS cannot use superset/subset pruning (Table VII).
      params.pruning.superset = false;
      params.pruning.subset = false;
      break;
    case AlgorithmVariant::kNaive:
      params.pruning.superset = false;
      params.pruning.subset = false;
      params.pruning.fcp_bounds = false;
      break;
  }
  return params;
}

MiningResult RunVariant(AlgorithmVariant variant, const UncertainDatabase& db,
                        const MiningParams& params) {
  MiningRequest request;
  request.params = ApplyVariant(variant, params);
  switch (variant) {
    case AlgorithmVariant::kBfs:
      request.algorithm = Algorithm::kMpfciBfs;
      break;
    case AlgorithmVariant::kNaive:
      request.algorithm = Algorithm::kNaive;
      break;
    default:
      request.algorithm = Algorithm::kMpfci;
      break;
  }
  return Mine(db, request);
}

std::string VariantFeatureTable() {
  return
      "Algorithm      CH  Super  Sub  PB  Framework\n"
      "MPFCI          y   y      y    y   DFS\n"
      "MPFCI-NoCH     -   y      y    y   DFS\n"
      "MPFCI-NoBound  y   y      y    -   DFS\n"
      "MPFCI-NoSuper  y   -      y    y   DFS\n"
      "MPFCI-NoSub    y   y      -    y   DFS\n"
      "MPFCI-BFS      y   -      -    y   BFS\n";
}

}  // namespace pfci
