#include "src/harness/table_printer.h"

#include <algorithm>

namespace pfci {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  // Column widths over header + rows.
  std::size_t num_columns = header_.size();
  for (const auto& row : rows_) {
    num_columns = std::max(num_columns, row.size());
  }
  std::vector<std::size_t> width(num_columns, 0);
  const auto account = [&width](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size(), ' ');
      }
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < num_columns; ++c) {
      total += width[c] + (c > 0 ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace pfci
