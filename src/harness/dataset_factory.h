// Canonical datasets of the paper's experimental section.
#ifndef PFCI_HARNESS_DATASET_FACTORY_H_
#define PFCI_HARNESS_DATASET_FACTORY_H_

#include <cstddef>
#include <string>

#include "src/data/uncertain_database.h"
#include "src/exact/transaction_database.h"

namespace pfci {

/// Bench scale: `kQuick` (default) shrinks the datasets so every figure
/// binary finishes in seconds on a laptop; `kFull` matches the paper's
/// dataset sizes (Table VIII). Selected via PFCI_BENCH_SCALE=quick|full.
enum class BenchScale { kQuick, kFull };

/// Reads PFCI_BENCH_SCALE from the environment (default kQuick).
BenchScale ScaleFromEnv();

const char* ScaleName(BenchScale scale);

/// The paper's running example (Table II): T1 abcd .9, T2 abc .6,
/// T3 abc .7, T4 abcd .9 with items a..d = 0..3.
UncertainDatabase MakePaperExampleDb();

/// The extended example of Sec. II (Table IV): Table II plus
/// T5 ab .4 and T6 a .4.
UncertainDatabase MakeTable4Db();

/// Mushroom-shaped exact dataset (substitute for UCI Mushroom, see
/// DESIGN.md §3) at the requested scale.
TransactionDatabase MakeExactMushroom(BenchScale scale);

/// Quest-generated exact dataset shaped like T20I10D30KP40.
TransactionDatabase MakeExactQuest(BenchScale scale);

/// Uncertain Mushroom with Gaussian probabilities (paper default:
/// mean 0.5, spread 0.25).
UncertainDatabase MakeUncertainMushroom(BenchScale scale, double mean = 0.5,
                                        double spread = 0.25);

/// Uncertain Quest dataset (paper default: mean 0.8, spread 0.1).
UncertainDatabase MakeUncertainQuest(BenchScale scale, double mean = 0.8,
                                     double spread = 0.1);

/// Absolute support threshold from a relative one (fraction of |db|),
/// at least 1.
std::size_t AbsoluteMinSup(std::size_t num_transactions, double relative);

}  // namespace pfci

#endif  // PFCI_HARNESS_DATASET_FACTORY_H_
