// Fixed-width table rendering for bench output.
#ifndef PFCI_HARNESS_TABLE_PRINTER_H_
#define PFCI_HARNESS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace pfci {

/// Collects rows of cells and renders them column-aligned, mirroring the
/// row/series layout of the paper's tables and figures.
class TablePrinter {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (may have fewer cells than the header).
  void AddRow(std::vector<std::string> row);

  /// Renders the table with two-space column gaps and a separator line
  /// under the header.
  std::string Render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pfci

#endif  // PFCI_HARNESS_TABLE_PRINTER_H_
