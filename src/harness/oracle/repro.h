// Repro corpus format for shrunk oracle findings.
//
// A repro is a pair of files under tests/repros/: `<name>.utd` (the
// minimized database, standard uncertain-transaction format) and
// `<name>.request` (a key=value sidecar pinning the exact MiningRequest
// plus the violated check id). Both are plain text and byte-stable, so
// they diff cleanly and replay identically across platforms; the fuzz
// test replays every committed repro through the invariant catalog as a
// regression suite.
#ifndef PFCI_HARNESS_ORACLE_REPRO_H_
#define PFCI_HARNESS_ORACLE_REPRO_H_

#include <string>
#include <vector>

#include "src/core/mine.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// One replayable repro: the database, the request that exposed the
/// finding, and the stable check id it violated.
struct Repro {
  UncertainDatabase db;
  MiningRequest request;
  std::string check;
};

/// Renders the `.request` sidecar for `repro` (check id, algorithm and
/// every request field the oracle varies, one key=value per line, in
/// fixed order; doubles via FormatDoubleRoundTrip).
std::string FormatReproRequest(const Repro& repro);

/// Writes `<dir>/<name>.utd` + `<dir>/<name>.request`. Returns false
/// (with a diagnostic in `error`) when either file cannot be written.
bool SaveRepro(const std::string& dir, const std::string& name,
               const Repro& repro, std::string* error);

/// Loads the repro stored at `<utd_path>` and its `.request` sidecar
/// (the path with its extension replaced). Unknown sidecar keys are an
/// error — a typo in a committed repro must not silently replay a
/// default request.
bool LoadRepro(const std::string& utd_path, Repro* repro, std::string* error);

}  // namespace pfci

#endif  // PFCI_HARNESS_ORACLE_REPRO_H_
