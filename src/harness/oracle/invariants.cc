#include "src/harness/oracle/invariants.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "src/core/eval_cache.h"
#include "src/core/stream_miner.h"
#include "src/util/random.h"
#include "src/util/string_util.h"

namespace pfci {

namespace {

/// The interval a reported entry provably confines the true PrFC to:
/// exact evaluations pin it to a point, bounds-decided entries only to
/// their Lemma 4.4 interval.
struct FcpInterval {
  double lo = 0.0;
  double hi = 1.0;
};

FcpInterval IntervalOf(const PfciEntry& entry) {
  if (entry.method == FcpMethod::kExact ||
      entry.method == FcpMethod::kZeroByCount) {
    return {entry.fcp, entry.fcp};
  }
  return {entry.fcp_lower, entry.fcp_upper};
}

bool IntervalsConsistent(const FcpInterval& a, const FcpInterval& b,
                         double tol) {
  return a.lo <= b.hi + tol && b.lo <= a.hi + tol;
}

/// Whether the entry's provable interval straddles the qualification
/// threshold: membership may then legitimately differ between two
/// equally-sound evaluation orders.
bool StraddlesThreshold(const FcpInterval& interval, double pfct,
                        double tol) {
  return interval.lo <= pfct + tol && interval.hi >= pfct - tol;
}

MiningRequest MakeRequest(const MiningParams& params, Algorithm algorithm,
                          std::size_t top_k = 0) {
  MiningRequest request;
  request.params = params;
  request.algorithm = algorithm;
  request.execution.num_threads = 1;
  request.top_k = top_k;
  return request;
}

void AddFinding(std::vector<OracleFinding>* findings, const char* check,
                std::string detail, const MiningRequest& request) {
  OracleFinding finding;
  finding.check = check;
  finding.detail = std::move(detail);
  finding.request = request;
  findings->push_back(std::move(finding));
}

std::string EntryLabel(const PfciEntry& entry) {
  return entry.items.ToString() + " fcp=" + FormatDoubleRoundTrip(entry.fcp) +
         " [" + FormatDoubleRoundTrip(entry.fcp_lower) + ", " +
         FormatDoubleRoundTrip(entry.fcp_upper) + "] (" +
         FcpMethodName(entry.method) + ")";
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Strict comparison for the bit-identical contracts (thread count,
/// tid-set mode, eval cache, repeated run): every field of every entry
/// must match to the bit.
void CompareBitwise(const MiningResult& ref, const MiningResult& alt,
                    const char* check, const char* what,
                    const MiningRequest& alt_request,
                    std::vector<OracleFinding>* findings) {
  if (ref.itemsets.size() != alt.itemsets.size()) {
    AddFinding(findings, check,
               std::string(what) + ": " + std::to_string(ref.itemsets.size()) +
                   " vs " + std::to_string(alt.itemsets.size()) + " itemsets",
               alt_request);
    return;
  }
  for (std::size_t i = 0; i < ref.itemsets.size(); ++i) {
    const PfciEntry& a = ref.itemsets[i];
    const PfciEntry& b = alt.itemsets[i];
    if (a.items != b.items || !SameBits(a.fcp, b.fcp) ||
        !SameBits(a.pr_f, b.pr_f) || !SameBits(a.fcp_lower, b.fcp_lower) ||
        !SameBits(a.fcp_upper, b.fcp_upper) || a.method != b.method) {
      AddFinding(findings, check,
                 std::string(what) + ": entry " + std::to_string(i) +
                     " differs: " + EntryLabel(a) + " vs " + EntryLabel(b),
                 alt_request);
      return;
    }
  }
}

/// Tolerant comparison for runs that are mathematically equal but may
/// order floating-point work differently (DFS vs BFS, permuted
/// transactions, the brute-force world sum). Set membership must agree
/// except for entries whose provable interval straddles pfct; matched
/// entries must have consistent intervals (and equal fcp to `tol` when
/// both sides evaluated exactly).
void CompareExact(const MiningResult& ref, const MiningResult& alt,
                  double pfct, double tol, bool compare_pr_f,
                  const char* check, const char* what,
                  const MiningRequest& alt_request,
                  std::vector<OracleFinding>* findings) {
  std::map<Itemset, const PfciEntry*> alt_map;
  for (const PfciEntry& entry : alt.itemsets) alt_map[entry.items] = &entry;
  std::size_t matched = 0;
  for (const PfciEntry& a : ref.itemsets) {
    auto it = alt_map.find(a.items);
    if (it == alt_map.end()) {
      if (StraddlesThreshold(IntervalOf(a), pfct, tol)) continue;
      AddFinding(findings, check,
                 std::string(what) + ": " + EntryLabel(a) +
                     " missing from the other run",
                 alt_request);
      continue;
    }
    ++matched;
    const PfciEntry& b = *it->second;
    const FcpInterval ia = IntervalOf(a);
    const FcpInterval ib = IntervalOf(b);
    if (!IntervalsConsistent(ia, ib, tol)) {
      AddFinding(findings, check,
                 std::string(what) + ": inconsistent fcp for " +
                     EntryLabel(a) + " vs " + EntryLabel(b),
                 alt_request);
    } else if (ia.lo == ia.hi && ib.lo == ib.hi &&
               std::fabs(a.fcp - b.fcp) > tol) {
      AddFinding(findings, check,
                 std::string(what) + ": exact fcp mismatch for " +
                     EntryLabel(a) + " vs " + EntryLabel(b),
                 alt_request);
    }
    if (compare_pr_f && std::fabs(a.pr_f - b.pr_f) > tol) {
      AddFinding(findings, check,
                 std::string(what) + ": pr_f mismatch for " +
                     a.items.ToString() + ": " +
                     FormatDoubleRoundTrip(a.pr_f) + " vs " +
                     FormatDoubleRoundTrip(b.pr_f),
                 alt_request);
    }
  }
  if (matched != alt.itemsets.size()) {
    for (const PfciEntry& b : alt.itemsets) {
      if (alt_map.find(b.items) == alt_map.end()) continue;
      bool in_ref = false;
      for (const PfciEntry& a : ref.itemsets) {
        if (a.items == b.items) {
          in_ref = true;
          break;
        }
      }
      if (!in_ref && !StraddlesThreshold(IntervalOf(b), pfct, tol)) {
        AddFinding(findings, check,
                   std::string(what) + ": extra entry " + EntryLabel(b),
                   alt_request);
      }
    }
  }
}

/// The certain closure of X over its supporting transactions: the items
/// present in EVERY transaction containing X. A reported itemset with
/// PrFC > 0 must be a fixed point (otherwise a same-tidset superset
/// exists and X is closed in no possible world — Lemma 4.2's limit).
Itemset CertainClosure(const UncertainDatabase& db, const Itemset& x) {
  Itemset closure;
  bool first = true;
  for (const UncertainTransaction& t : db.transactions()) {
    if (!x.IsSubsetOf(t.items)) continue;
    closure = first ? t.items : closure.IntersectWith(t.items);
    first = false;
  }
  return first ? x : closure;
}

void CheckClosureFixedPoint(const UncertainDatabase& db,
                            const MiningResult& result,
                            const MiningRequest& request, const char* what,
                            std::vector<OracleFinding>* findings) {
  for (const PfciEntry& entry : result.itemsets) {
    const Itemset closure = CertainClosure(db, entry.items);
    if (!(closure == entry.items)) {
      AddFinding(findings, "meta/closure",
                 std::string(what) + ": reported " + EntryLabel(entry) +
                     " is not closure-idempotent (certain closure is " +
                     closure.ToString() + ", so PrFC is exactly 0)",
                 request);
    }
  }
}

UncertainDatabase PermuteTransactions(const UncertainDatabase& db,
                                      std::uint64_t seed) {
  std::vector<std::size_t> order(db.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(DeriveSeed(seed, 0x5e0f1e));
  rng.Shuffle(order);
  UncertainDatabase permuted;
  for (std::size_t i : order) {
    const UncertainTransaction& t = db.transaction(static_cast<Tid>(i));
    permuted.Add(t.items, t.prob);
  }
  return permuted;
}

}  // namespace

double SampledTolerance(double epsilon, std::size_t num_items) {
  // 6-sigma envelope of the Karp-Luby estimate Z * p_hat: sigma <=
  // Z / (2 sqrt(N)) with N = 4 m ln(2/delta) / eps^2 and Z <= m, so
  // sigma <= eps sqrt(m) / 4 (already at delta ~ 0.27). m is bounded by
  // the item count; the additive term absorbs degenerate cases.
  const double m = static_cast<double>(std::max<std::size_t>(1, num_items));
  return 1.5 * epsilon * std::sqrt(m) + 1e-6;
}

std::vector<OracleFinding> CheckDatabase(const UncertainDatabase& db,
                                         const MiningParams& params,
                                         const OracleOptions& options) {
  std::vector<OracleFinding> findings;
  const double tol = options.exact_tolerance;
  const double pfct = params.pfct;
  const std::size_t num_items = db.ItemUniverse().size();

  const MiningRequest base = MakeRequest(params, Algorithm::kMpfci);
  const MiningResult reference = Mine(db, base);
  if (reference.outcome() != Outcome::kComplete) {
    AddFinding(&findings, "run/incomplete",
               std::string("mpfci run did not complete: ") +
                   reference.status_message,
               base);
    return findings;
  }

  // --- Determinism: the same request must reproduce itself bit-exactly.
  CompareBitwise(reference, Mine(db, base), "determinism/rerun",
                 "identical request, second run", base, &findings);

  // --- Pruning-toggle invariance (the paper's Table VII variants): each
  // rule only skips work, never changes the answer. The bounds-off run
  // doubles as the catalog's high-precision reference: without Lemma 4.4
  // shortcuts every reported fcp is an exact point, so the comparisons
  // below bite at 1e-9 instead of at interval width.
  MiningParams no_bounds_params = params;
  no_bounds_params.pruning.fcp_bounds = false;
  const MiningRequest no_bounds =
      MakeRequest(no_bounds_params, Algorithm::kMpfci);
  const MiningResult exact_ref = Mine(db, no_bounds);
  CompareExact(reference, exact_ref, pfct, tol, /*compare_pr_f=*/true,
               "invariance/pruning", "fcp_bounds on vs off", no_bounds,
               &findings);
  for (int toggle = 0; toggle < 3; ++toggle) {
    MiningParams toggled = params;
    const char* what = nullptr;
    if (toggle == 0) {
      toggled.pruning.chernoff = false;
      what = "chernoff pruning on vs off";
    } else if (toggle == 1) {
      toggled.pruning.superset = false;
      what = "superset pruning on vs off";
    } else {
      toggled.pruning.subset = false;
      what = "subset pruning on vs off";
    }
    const MiningRequest request = MakeRequest(toggled, Algorithm::kMpfci);
    CompareExact(reference, Mine(db, request), pfct, tol,
                 /*compare_pr_f=*/true, "invariance/pruning", what, request,
                 &findings);
  }

  // --- Cross-algorithm: the BFS framework answers the same problem.
  const MiningRequest bfs = MakeRequest(params, Algorithm::kMpfciBfs);
  CompareExact(reference, Mine(db, bfs), pfct, tol, /*compare_pr_f=*/true,
               "cross/bfs", "mpfci vs bfs", bfs, &findings);

  // --- Ground truth: explicit possible-world enumeration on small inputs.
  // The default run is compared at interval consistency (bounds-decided
  // entries only pin an interval); the bounds-off run must then match
  // the enumerated PrFC point-for-point.
  if (db.size() <= options.brute_max_transactions) {
    const MiningRequest brute = MakeRequest(params, Algorithm::kBruteForce);
    const MiningResult truth = Mine(db, brute);
    // Brute-force entries carry no pr_f (the enumerator reports PrFC
    // only), so the frequency comparison is skipped.
    CompareExact(reference, truth, pfct, tol, /*compare_pr_f=*/false,
                 "cross/brute", "mpfci vs possible-world enumeration", brute,
                 &findings);
    CompareExact(exact_ref, truth, pfct, tol, /*compare_pr_f=*/false,
                 "cross/brute", "bounds-off mpfci vs possible-world "
                 "enumeration", brute, &findings);
    CheckClosureFixedPoint(db, truth, brute, "brute", &findings);
  }

  // --- PFI containment: every PFCI is probabilistically frequent.
  const MiningRequest pfi = MakeRequest(params, Algorithm::kPfi);
  const MiningResult pfi_result = Mine(db, pfi);
  {
    std::map<Itemset, double> pfi_prf;
    for (const PfciEntry& entry : pfi_result.itemsets) {
      pfi_prf[entry.items] = entry.pr_f;
    }
    for (const PfciEntry& entry : reference.itemsets) {
      auto it = pfi_prf.find(entry.items);
      if (it == pfi_prf.end()) {
        AddFinding(&findings, "pfi/superset",
                   "PFCI " + EntryLabel(entry) +
                       " is missing from the PFI result (PrFC <= PrF)",
                   pfi);
      } else if (std::fabs(it->second - entry.pr_f) > tol) {
        AddFinding(&findings, "pfi/superset",
                   "pr_f mismatch for " + entry.items.ToString() + ": pfi " +
                       FormatDoubleRoundTrip(it->second) + " vs mpfci " +
                       FormatDoubleRoundTrip(entry.pr_f),
                   pfi);
      }
    }
  }

  // --- Top-k is a fcp-ranked prefix of the full answer.
  {
    const MiningRequest topk =
        MakeRequest(params, Algorithm::kTopK, options.top_k);
    const MiningResult top = Mine(db, topk);
    const std::size_t expected =
        std::min(options.top_k, reference.itemsets.size());
    if (top.itemsets.size() != expected) {
      AddFinding(&findings, "topk/prefix",
                 "top-" + std::to_string(options.top_k) + " returned " +
                     std::to_string(top.itemsets.size()) + " entries, full "
                     "run has " +
                     std::to_string(reference.itemsets.size()),
                 topk);
    } else {
      std::map<Itemset, const PfciEntry*> full;
      for (const PfciEntry& entry : reference.itemsets) {
        full[entry.items] = &entry;
      }
      double min_selected_hi = 2.0;
      std::map<Itemset, bool> selected;
      for (const PfciEntry& entry : top.itemsets) {
        selected[entry.items] = true;
        auto it = full.find(entry.items);
        if (it == full.end()) {
          AddFinding(&findings, "topk/prefix",
                     "top-k entry " + EntryLabel(entry) +
                         " is absent from the full result",
                     topk);
          continue;
        }
        if (!IntervalsConsistent(IntervalOf(entry), IntervalOf(*it->second),
                                 tol)) {
          AddFinding(&findings, "topk/prefix",
                     "inconsistent fcp for " + EntryLabel(entry) + " vs " +
                         EntryLabel(*it->second),
                     topk);
        }
        min_selected_hi = std::min(min_selected_hi, IntervalOf(entry).hi);
      }
      for (const PfciEntry& entry : reference.itemsets) {
        if (selected.count(entry.items)) continue;
        if (IntervalOf(entry).lo > min_selected_hi + tol) {
          AddFinding(&findings, "topk/prefix",
                     "excluded entry " + EntryLabel(entry) +
                         " provably outranks a selected one",
                     topk);
        }
      }
    }
  }

  // --- Metamorphic: raising pfct can only shrink the result set.
  {
    MiningParams tighter = params;
    tighter.pfct = pfct + 0.5 * (1.0 - pfct);
    const MiningRequest tight = MakeRequest(tighter, Algorithm::kMpfci);
    const MiningResult shrunk = Mine(db, tight);
    std::map<Itemset, bool> in_base;
    for (const PfciEntry& entry : reference.itemsets) {
      in_base[entry.items] = true;
    }
    for (const PfciEntry& entry : shrunk.itemsets) {
      if (!in_base.count(entry.items)) {
        AddFinding(&findings, "meta/pfct",
                   "raising pfct " + FormatDoubleRoundTrip(pfct) + " -> " +
                       FormatDoubleRoundTrip(tighter.pfct) +
                       " grew the result set by " + EntryLabel(entry),
                   tight);
      }
    }
  }

  // --- Metamorphic: PrF (and the PFI set) is anti-monotone in min_sup.
  {
    MiningParams higher = params;
    higher.min_sup = params.min_sup + 1;
    const MiningRequest tight = MakeRequest(higher, Algorithm::kPfi);
    const MiningResult shrunk = Mine(db, tight);
    std::map<Itemset, double> base_prf;
    for (const PfciEntry& entry : pfi_result.itemsets) {
      base_prf[entry.items] = entry.pr_f;
    }
    for (const PfciEntry& entry : shrunk.itemsets) {
      auto it = base_prf.find(entry.items);
      if (it == base_prf.end()) {
        AddFinding(&findings, "meta/minsup",
                   "PFI at min_sup " + std::to_string(higher.min_sup) +
                       " contains " + entry.items.ToString() +
                       ", absent at min_sup " +
                       std::to_string(params.min_sup),
                   tight);
      } else if (entry.pr_f > it->second + 1e-12) {
        AddFinding(&findings, "meta/minsup",
                   "PrF(" + entry.items.ToString() + ") grew with min_sup: " +
                       FormatDoubleRoundTrip(it->second) + " -> " +
                       FormatDoubleRoundTrip(entry.pr_f),
                   tight);
      }
    }
  }

  // --- Metamorphic: reported itemsets are closure fixed points.
  CheckClosureFixedPoint(db, reference, base, "mpfci", &findings);

  // --- Invariance: transaction order is irrelevant (1e-9 — the DP's
  // summation order moves with the permutation).
  if (options.check_permutation && db.size() > 1) {
    const UncertainDatabase permuted = PermuteTransactions(db, params.seed);
    CompareExact(reference, Mine(permuted, base), pfct, tol,
                 /*compare_pr_f=*/true, "invariance/permutation",
                 "original vs permuted transactions", base, &findings);
  }

  // --- Invariance: thread count and tid-set mode are bit-identical.
  {
    MiningRequest threaded = base;
    threaded.execution.num_threads = options.alt_threads;
    CompareBitwise(reference, Mine(db, threaded), "invariance/threads",
                   "1 vs alt threads", threaded, &findings);
  }
  for (TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    MiningRequest moded = base;
    moded.params.tidset_mode = mode;
    CompareBitwise(reference, Mine(db, moded), "invariance/tidset",
                   mode == TidSetMode::kSparse ? "adaptive vs sparse"
                                               : "adaptive vs dense",
                   moded, &findings);
  }

  // --- Invariance: suspend → snapshot → resume equals uninterrupted
  // (DESIGN.md §14). A node budget drains the run at a unit boundary and
  // persists the frontier; resuming must reproduce the reference result
  // bit-for-bit with matching deterministic work counters (dp_runs and
  // the cache counters are per-run evaluator state, not snapshot state,
  // so they are exempt).
  if (options.check_resume && reference.stats.nodes_visited > 1) {
    const std::string snapshot_path =
        "/tmp/pfci_oracle_resume_" + std::to_string(::getpid()) + "_" +
        std::to_string(params.seed) + ".snapshot";
    MiningRequest suspending = base;
    suspending.budget.max_nodes = reference.stats.nodes_visited / 2;
    suspending.snapshot.save_path = snapshot_path;
    const MiningResult part = Mine(db, suspending);
    // A run whose first unit already covers the budget completes anyway;
    // there is then no snapshot to resume and nothing to check.
    if (!part.ok() && part.stats.snapshot_bytes > 0) {
      MiningRequest resuming = base;
      resuming.snapshot.resume_path = snapshot_path;
      const MiningResult resumed = Mine(db, resuming);
      CompareBitwise(reference, resumed, "invariance/resume",
                     "uninterrupted vs suspend+resume", resuming, &findings);
      const MiningStats& r = reference.stats;
      const MiningStats& s = resumed.stats;
      if (s.nodes_visited != r.nodes_visited ||
          s.intersections != r.intersections ||
          s.total_samples != r.total_samples ||
          s.sampled_fcp_computations != r.sampled_fcp_computations ||
          s.exact_fcp_computations != r.exact_fcp_computations) {
        AddFinding(&findings, "invariance/resume",
                   "suspend+resume counter drift: nodes " +
                       std::to_string(r.nodes_visited) + " vs " +
                       std::to_string(s.nodes_visited) + ", intersections " +
                       std::to_string(r.intersections) + " vs " +
                       std::to_string(s.intersections) + ", samples " +
                       std::to_string(r.total_samples) + " vs " +
                       std::to_string(s.total_samples),
                   resuming);
      }
    }
    std::remove(snapshot_path.c_str());
  }

  // --- Invariance: the session evaluation caches never change results
  // (cold fill, then a warm replay answered from the cache).
  if (options.check_session_cache) {
    EvalCache cache(EvalCache::Options{});
    ItemWarmStart warm_start;
    SessionBindings bindings;
    bindings.eval_cache = &cache;
    bindings.warm_start = &warm_start;
    bindings.table_floor = params.min_sup + 2;
    CompareBitwise(reference, MineWithBindings(db, base, bindings),
                   "invariance/cache", "unbound vs cold eval cache", base,
                   &findings);
    CompareBitwise(reference, MineWithBindings(db, base, bindings),
                   "invariance/cache", "unbound vs warm eval cache", base,
                   &findings);
  }

  // --- Invariance: a full streaming window equals direct mining. Exact
  // paths only (the stream advances its sampling seed by design).
  if (options.check_streaming && !db.empty() &&
      num_items <= params.exact_event_limit &&
      reference.stats.total_samples == 0) {
    StreamingPfciMiner stream(params, db.size());
    for (const UncertainTransaction& t : db.transactions()) {
      stream.Observe(t.items, t.prob);
    }
    const MiningResult windowed = stream.MineWindow();
    CompareBitwise(reference, windowed, "invariance/stream",
                   "direct vs full-window streaming", base, &findings);
  }

  // --- Cross-algorithm: the two expected-support miners agree exactly.
  {
    const MiningRequest esup = MakeRequest(params, Algorithm::kExpectedSupport);
    const MiningRequest esup_fp =
        MakeRequest(params, Algorithm::kExpectedSupportFpGrowth);
    const MiningResult a = Mine(db, esup);
    const MiningResult b = Mine(db, esup_fp);
    std::map<Itemset, double> fp_map;
    for (const PfciEntry& entry : b.itemsets) fp_map[entry.items] = entry.pr_f;
    if (a.itemsets.size() != b.itemsets.size()) {
      AddFinding(&findings, "cross/esup",
                 "esup found " + std::to_string(a.itemsets.size()) +
                     " itemsets, esup-fp " + std::to_string(b.itemsets.size()),
                 esup_fp);
    } else {
      for (const PfciEntry& entry : a.itemsets) {
        auto it = fp_map.find(entry.items);
        if (it == fp_map.end()) {
          AddFinding(&findings, "cross/esup",
                     "esup itemset " + entry.items.ToString() +
                         " missing from esup-fp",
                     esup_fp);
        } else if (std::fabs(it->second - entry.pr_f) > tol) {
          AddFinding(&findings, "cross/esup",
                     "expected support mismatch for " +
                         entry.items.ToString() + ": " +
                         FormatDoubleRoundTrip(entry.pr_f) + " vs " +
                         FormatDoubleRoundTrip(it->second),
                     esup_fp);
        }
      }
    }
  }

  // --- Cross-algorithm: the Naive baseline, at its statistical
  // tolerance. Its stage-1 PrF is an exact DP (tight check); its fcp is
  // a Karp-Luby estimate, so membership may flip only within tau of the
  // threshold and values must land within tau of the exact answer.
  if (options.check_naive) {
    MiningParams naive_params = params;
    naive_params.epsilon = options.naive_epsilon;
    naive_params.delta = options.naive_delta;
    const MiningRequest naive = MakeRequest(naive_params, Algorithm::kNaive);
    const MiningResult sampled = Mine(db, naive);
    const double tau = SampledTolerance(options.naive_epsilon, num_items);
    // The bounds-off run is the comparison baseline: its fcp values are
    // exact points, so the statistical envelope is anchored tightly.
    std::map<Itemset, const PfciEntry*> exact;
    for (const PfciEntry& entry : exact_ref.itemsets) {
      exact[entry.items] = &entry;
    }
    for (const PfciEntry& entry : sampled.itemsets) {
      auto it = exact.find(entry.items);
      if (it == exact.end()) {
        // A false positive: only tolerable when the estimate itself is
        // within tau of the threshold (true fcp <= pfct < estimate).
        if (entry.fcp > pfct + tau) {
          AddFinding(&findings, "cross/naive",
                     "naive reported " + EntryLabel(entry) +
                         " well above pfct, absent from the exact answer",
                     naive);
        }
        continue;
      }
      const FcpInterval truth = IntervalOf(*it->second);
      if (entry.fcp < truth.lo - tau || entry.fcp > truth.hi + tau) {
        AddFinding(&findings, "cross/naive",
                   "naive fcp estimate " + EntryLabel(entry) +
                       " outside the statistical envelope of " +
                       EntryLabel(*it->second),
                   naive);
      }
      if (std::fabs(entry.pr_f - it->second->pr_f) > tol) {
        AddFinding(&findings, "cross/naive",
                   "naive pr_f mismatch for " + entry.items.ToString() +
                       ": " + FormatDoubleRoundTrip(entry.pr_f) + " vs " +
                       FormatDoubleRoundTrip(it->second->pr_f),
                   naive);
      }
    }
    for (const PfciEntry& entry : reference.itemsets) {
      bool in_sampled = false;
      for (const PfciEntry& s : sampled.itemsets) {
        if (s.items == entry.items) {
          in_sampled = true;
          break;
        }
      }
      // A false negative: tolerable only when the exact fcp sits within
      // tau of the threshold.
      if (!in_sampled && IntervalOf(entry).lo > pfct + tau) {
        AddFinding(&findings, "cross/naive",
                   "naive missed " + EntryLabel(entry) +
                       " despite fcp well above pfct",
                   naive);
      }
    }
  }

  return findings;
}

std::string FindingsToString(const std::vector<OracleFinding>& findings) {
  std::string out;
  for (const OracleFinding& finding : findings) {
    out += finding.check + ": " + finding.detail + "\n";
  }
  return out;
}

}  // namespace pfci
