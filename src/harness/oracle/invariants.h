// Differential + metamorphic invariant catalog (DESIGN.md §13).
//
// One entry point, CheckDatabase, drives every algorithm reachable
// through Mine() over one database and cross-checks:
//
//   * cross-algorithm agreement — MPFCI vs BFS vs Naive vs TopK vs PFI
//     (plus the esup / esup-fp pair), each at the tolerance its
//     evaluation path earns: exact paths at 1e-9 absolute, the Naive
//     baseline's Karp-Luby stage at its statistical tolerance;
//   * possible-world ground truth — small databases replayed through
//     Algorithm::kBruteForce (Definitions 3.4-3.8 computed by explicit
//     enumeration);
//   * metamorphic invariants derived from the paper — the result set is
//     anti-monotone in pfct (Definition 3.8's strict comparison), PrF
//     per itemset and the PFI set are anti-monotone in min_sup
//     (Corollary 4.1), every reported itemset is a fixed point of the
//     certain closure over its tid-set (closure idempotence: an itemset
//     extendable at equal count is closed in no world, Lemma 4.2), and
//     top-k is a fcp-ranked prefix of the full answer;
//   * representation / execution invariance — transaction permutation
//     (1e-9: the DP's summation order moves), tid-set mode, thread
//     count, repeated runs, session eval-cache on/off and warm replay
//     (all bit-identical per the determinism contract), the streaming
//     window path (a full window must equal direct mining), and
//     checkpoint/resume replay (a budget-suspended run resumed from its
//     snapshot must equal the uninterrupted run, counters included);
//   * pruning-toggle invariance — each pruning rule (Lemma 4.1
//     Chernoff, 4.2 superset, 4.3 subset, 4.4 fcp-bounds) disabled
//     individually must not change the answer (the paper's Table VII
//     variants). The bounds-off run doubles as the catalog's
//     high-precision reference: its fcp values are exact points, so it
//     is compared at 1e-9 against the reference, the brute-force ground
//     truth, and the Naive baseline — interval-only comparison would
//     let value corruption hide behind bounds-decided entries.
//
// Every violated invariant comes back as an OracleFinding carrying the
// exact MiningRequest that exposed it, ready for the shrinker.
#ifndef PFCI_HARNESS_ORACLE_INVARIANTS_H_
#define PFCI_HARNESS_ORACLE_INVARIANTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/mine.h"
#include "src/core/mining_params.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Knobs of one oracle pass.
struct OracleOptions {
  /// Databases up to this many transactions are also checked against the
  /// possible-world enumerator (2^n worlds — keep it small).
  std::size_t brute_max_transactions = 10;

  /// Absolute tolerance for exact evaluation paths. Nonzero because
  /// equivalent runs may order the same floating-point sums differently
  /// (DFS vs BFS, permuted transactions).
  double exact_tolerance = 1e-9;

  /// Thread count compared against the single-thread run (bit-identical
  /// per the determinism contract).
  std::size_t alt_threads = 3;

  /// k for the top-k prefix invariant.
  std::size_t top_k = 3;

  /// Epsilon / delta for the Naive baseline's sampled stage. The
  /// membership and value tolerance granted to sampled results is
  /// derived from these (see SampledTolerance).
  double naive_epsilon = 0.05;
  double naive_delta = 0.02;

  /// Skips the Naive cross-check (its sample loops dominate the cost of
  /// a pass; fuzz drivers run it on a fraction of seeds).
  bool check_naive = true;

  /// Runs the session-binding checks (eval cache cold + warm, item
  /// warm start) — bit-identical to the unbound run.
  bool check_session_cache = true;

  /// Runs the transaction-permutation invariance check.
  bool check_permutation = true;

  /// Runs the streaming-window consistency check.
  bool check_streaming = true;

  /// Runs the checkpoint/resume invariance check: a budget-suspended run
  /// whose snapshot is resumed must equal the uninterrupted run
  /// bit-for-bit, including the deterministic work counters (DESIGN.md
  /// §14). Writes one transient snapshot file under /tmp.
  bool check_resume = true;
};

/// One violated invariant: a stable check id ("cross/brute",
/// "invariance/threads", ...), a human-readable diagnosis, and the exact
/// request that exposed it (re-runnable with Mine(db, request)).
struct OracleFinding {
  std::string check;
  std::string detail;
  MiningRequest request;
};

/// Statistical tolerance granted to a Karp-Luby-sampled fcp estimate: a
/// 6-sigma envelope of the estimator's variance bound, in terms of the
/// sampler's epsilon and the number of distinct items (an upper bound on
/// the event count). Gross misestimates still fail; in-contract noise
/// does not.
double SampledTolerance(double epsilon, std::size_t num_items);

/// Runs the full catalog over `db` at `params` (params.exact_event_limit
/// should exceed the item count so exact paths stay exact). Returns every
/// violated invariant; empty means the database survived the catalog.
std::vector<OracleFinding> CheckDatabase(const UncertainDatabase& db,
                                         const MiningParams& params,
                                         const OracleOptions& options);

/// Renders findings one per line (check, detail) for logs and test
/// failure messages.
std::string FindingsToString(const std::vector<OracleFinding>& findings);

}  // namespace pfci

#endif  // PFCI_HARNESS_ORACLE_INVARIANTS_H_
