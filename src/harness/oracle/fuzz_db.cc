#include "src/harness/oracle/fuzz_db.h"

#include <algorithm>
#include <vector>

#include "src/util/random.h"

namespace pfci {

namespace {

/// Draws one transaction existence probability from a mix of atoms: the
/// exact upper edge p == 1 (certain tuples drive the event machinery's
/// log(1-p) = -inf branches), a near-zero atom (mu ~ 0 stresses the
/// Chernoff/DP corner documented by Bernecker et al.), and two
/// continuous regimes.
double DrawProb(Rng& rng) {
  const double pick = rng.NextDouble();
  if (pick < 0.15) return 1.0;
  if (pick < 0.25) return 1e-12;
  if (pick < 0.40) return 0.9 + 0.1 * rng.NextDouble();
  return 0.05 + 0.95 * rng.NextDouble();
}

/// Items drawn with per-item inclusion probability `density[i]`; a row
/// never comes out empty (empty transactions are not representable in
/// the .utd format, and the loader rejects them).
Itemset DrawRow(Rng& rng, const std::vector<Item>& universe,
                const std::vector<double>& density) {
  std::vector<Item> items;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (rng.NextBernoulli(density[i])) items.push_back(universe[i]);
  }
  if (items.empty()) {
    items.push_back(universe[rng.NextBelow(universe.size())]);
  }
  return Itemset(std::move(items));
}

/// The item universe: usually contiguous 0..k-1, sometimes gapped ids
/// (dense per-item arrays sized by MaxItemPlusOne must tolerate holes).
std::vector<Item> DrawUniverse(Rng& rng, std::size_t count) {
  std::vector<Item> universe;
  if (rng.NextBernoulli(0.25)) {
    Item next = 0;
    for (std::size_t i = 0; i < count; ++i) {
      next = static_cast<Item>(next + 1 + rng.NextBelow(7));
      universe.push_back(next);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      universe.push_back(static_cast<Item>(i));
    }
  }
  return universe;
}

struct Shape {
  const char* name;
  void (*fill)(Rng& rng, UncertainDatabase* db);
};

void FillUniform(Rng& rng, UncertainDatabase* db) {
  const std::size_t n = 1 + rng.NextBelow(11);
  const std::vector<Item> universe = DrawUniverse(rng, 2 + rng.NextBelow(5));
  const double base = 0.25 + 0.6 * rng.NextDouble();
  const std::vector<double> density(universe.size(), base);
  for (std::size_t t = 0; t < n; ++t) {
    db->Add(DrawRow(rng, universe, density), DrawProb(rng));
  }
}

void FillSkewed(Rng& rng, UncertainDatabase* db) {
  // Zipf-ish per-item densities: the first items are near-certain to
  // appear, the tail is rare — the regime where frequency-ordered
  // candidate builders and their tie-breaks earn their keep.
  const std::size_t n = 2 + rng.NextBelow(10);
  const std::vector<Item> universe = DrawUniverse(rng, 3 + rng.NextBelow(4));
  std::vector<double> density(universe.size());
  for (std::size_t i = 0; i < density.size(); ++i) {
    density[i] = 0.95 / static_cast<double>(i + 1);
  }
  for (std::size_t t = 0; t < n; ++t) {
    db->Add(DrawRow(rng, universe, density), DrawProb(rng));
  }
}

void FillDuplicates(Rng& rng, UncertainDatabase* db) {
  // A few distinct rows, each repeated: duplicate transactions create
  // same-count supersets and tied supports everywhere.
  const std::size_t distinct = 1 + rng.NextBelow(3);
  const std::vector<Item> universe = DrawUniverse(rng, 2 + rng.NextBelow(4));
  const std::vector<double> density(universe.size(), 0.6);
  std::vector<Itemset> rows;
  for (std::size_t r = 0; r < distinct; ++r) {
    rows.push_back(DrawRow(rng, universe, density));
  }
  const std::size_t n = distinct + rng.NextBelow(9);
  for (std::size_t t = 0; t < n; ++t) {
    db->Add(rows[t % rows.size()], DrawProb(rng));
  }
}

void FillCertain(Rng& rng, UncertainDatabase* db) {
  // Every tuple exists with probability exactly 1: the database is
  // deterministic, so PrF and PrFC collapse to {0, 1} and every
  // tail-bound comparison sits on a boundary.
  const std::size_t n = 1 + rng.NextBelow(10);
  const std::vector<Item> universe = DrawUniverse(rng, 2 + rng.NextBelow(4));
  const std::vector<double> density(universe.size(), 0.55);
  for (std::size_t t = 0; t < n; ++t) {
    db->Add(DrawRow(rng, universe, density), 1.0);
  }
}

void FillSingletons(Rng& rng, UncertainDatabase* db) {
  // Mostly single-item rows plus one wide row: itemset lattices of
  // depth one with a single deep branch.
  const std::vector<Item> universe = DrawUniverse(rng, 2 + rng.NextBelow(5));
  const std::size_t n = 2 + rng.NextBelow(9);
  for (std::size_t t = 0; t < n; ++t) {
    const Item item = universe[rng.NextBelow(universe.size())];
    db->Add(Itemset{item}, DrawProb(rng));
  }
  std::vector<Item> all(universe.begin(), universe.end());
  db->Add(Itemset(std::move(all)), DrawProb(rng));
}

void FillNearZero(Rng& rng, UncertainDatabase* db) {
  // All existence probabilities at the near-zero atom except a couple of
  // anchors: mu barely above 0, every upper tail ~ 0.
  const std::size_t n = 2 + rng.NextBelow(8);
  const std::vector<Item> universe = DrawUniverse(rng, 2 + rng.NextBelow(4));
  const std::vector<double> density(universe.size(), 0.7);
  for (std::size_t t = 0; t < n; ++t) {
    const double prob = t < 2 ? 0.9 : 1e-12;
    db->Add(DrawRow(rng, universe, density), prob);
  }
}

void FillWide(Rng& rng, UncertainDatabase* db) {
  // Larger than the possible-world limit: cross-algorithm and
  // metamorphic checks only, no brute-force ground truth.
  const std::size_t n = 16 + rng.NextBelow(12);
  const std::vector<Item> universe = DrawUniverse(rng, 4 + rng.NextBelow(5));
  const double base = 0.2 + 0.5 * rng.NextDouble();
  const std::vector<double> density(universe.size(), base);
  for (std::size_t t = 0; t < n; ++t) {
    db->Add(DrawRow(rng, universe, density), DrawProb(rng));
  }
}

constexpr Shape kShapes[] = {
    {"uniform", FillUniform},       {"skewed", FillSkewed},
    {"duplicates", FillDuplicates}, {"certain", FillCertain},
    {"singletons", FillSingletons}, {"near-zero", FillNearZero},
    {"wide", FillWide},
};

}  // namespace

std::size_t FuzzShapeCount() { return std::size(kShapes); }

FuzzCase MakeFuzzCase(std::uint64_t seed) {
  FuzzCase fuzz;
  Rng rng(DeriveSeed(0xfca11ed5eedULL, seed));
  const Shape& shape = kShapes[seed % std::size(kShapes)];
  fuzz.shape = shape.name;
  shape.fill(rng, &fuzz.db);

  // Thresholds: min_sup spans 1..n+2 (past the database edge included),
  // pfct mixes the open-interval edges with interior draws.
  const std::size_t n = fuzz.db.size();
  fuzz.params.min_sup = 1 + rng.NextBelow(n + 2);
  const double pfct_pick = rng.NextDouble();
  if (pfct_pick < 0.15) {
    fuzz.params.pfct = 0.0;
  } else if (pfct_pick < 0.3) {
    fuzz.params.pfct = 0.99;
  } else {
    fuzz.params.pfct = 0.05 + 0.9 * rng.NextDouble();
  }
  // Exact inclusion-exclusion everywhere the event count permits: the
  // metamorphic invariants (permutation, pfct monotonicity) compare runs
  // whose sampling streams would otherwise legitimately differ.
  fuzz.params.exact_event_limit = 32;
  fuzz.params.seed = DeriveSeed(seed, 0x0bac1e);
  return fuzz;
}

}  // namespace pfci
