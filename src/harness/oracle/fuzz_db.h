// Seeded adversarial database generator for the differential oracle.
//
// Golden scenarios only pin behavior on hand-picked inputs; this
// generator produces the inputs nobody hand-picks: skewed item
// densities, probability atoms at the representable extremes (exactly
// 1.0 and near-zero), duplicated transactions, singleton rows,
// sparse/gapped item universes, and thresholds at or past the window
// edge (min_sup > |db|). Every case is a pure function of its seed, so
// a failing seed IS the repro.
#ifndef PFCI_HARNESS_ORACLE_FUZZ_DB_H_
#define PFCI_HARNESS_ORACLE_FUZZ_DB_H_

#include <cstdint>
#include <string>

#include "src/core/mining_params.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// One generated oracle input: a database, the mining parameters to probe
/// it with, and a human-readable shape label for diagnostics.
struct FuzzCase {
  UncertainDatabase db;
  MiningParams params;
  std::string shape;
};

/// Number of distinct generation shapes MakeFuzzCase cycles through.
std::size_t FuzzShapeCount();

/// Deterministically derives a case from `seed`: the shape rotates with
/// the seed and every quantity (sizes, densities, probability atoms,
/// thresholds) is drawn from an Rng seeded by it. Databases stay small
/// enough that a full metamorphic sweep per case is cheap; roughly one
/// case in three is small enough for possible-world ground truth.
FuzzCase MakeFuzzCase(std::uint64_t seed);

}  // namespace pfci

#endif  // PFCI_HARNESS_ORACLE_FUZZ_DB_H_
