#include "src/harness/oracle/repro.h"

#include <fstream>
#include <utility>
#include <vector>

#include "src/core/request_io.h"
#include "src/data/database_io.h"
#include "src/data/request_wire.h"

namespace pfci {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string SidecarPath(const std::string& utd_path) {
  const std::size_t dot = utd_path.rfind('.');
  const std::size_t slash = utd_path.rfind('/');
  const std::string stem =
      (dot != std::string::npos && (slash == std::string::npos || dot > slash))
          ? utd_path.substr(0, dot)
          : utd_path;
  return stem + ".request";
}

}  // namespace

std::string FormatReproRequest(const Repro& repro) {
  // The sidecar is the shared request wire format (src/core/request_io.h)
  // with the oracle's check id on top; everything below the first line is
  // a plain serialized MiningRequest any wire consumer can replay.
  std::string out;
  AppendWireField(&out, "check", repro.check);
  out += FormatRequestFields(repro.request);
  return out;
}

bool SaveRepro(const std::string& dir, const std::string& name,
               const Repro& repro, std::string* error) {
  const std::string utd_path = dir + "/" + name + ".utd";
  if (!SaveUncertainDatabase(repro.db, utd_path)) {
    SetError(error, "cannot write " + utd_path);
    return false;
  }
  const std::string request_path = dir + "/" + name + ".request";
  std::ofstream out(request_path);
  if (!out) {
    SetError(error, "cannot write " + request_path);
    return false;
  }
  out << "# pfci oracle repro: replay with Mine(LoadRepro(...)); see "
         "CONTRIBUTING.md\n";
  out << FormatReproRequest(repro);
  return static_cast<bool>(out);
}

bool LoadRepro(const std::string& utd_path, Repro* repro, std::string* error) {
  *repro = Repro();
  if (!LoadUncertainDatabase(utd_path, &repro->db, error)) return false;

  const std::string request_path = SidecarPath(utd_path);
  std::vector<WireField> fields;
  if (!LoadRequestWire(request_path, &fields, error)) return false;
  std::vector<WireField> request_fields;
  request_fields.reserve(fields.size());
  for (WireField& field : fields) {
    if (field.key == "check") {
      repro->check = field.value;
      continue;
    }
    request_fields.push_back(std::move(field));
  }
  return ApplyRequestFields(request_fields, request_path, &repro->request,
                            error);
}

}  // namespace pfci
