#include "src/harness/oracle/repro.h"

#include <cstdlib>
#include <fstream>

#include "src/data/database_io.h"
#include "src/util/string_util.h"

namespace pfci {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string SidecarPath(const std::string& utd_path) {
  const std::size_t dot = utd_path.rfind('.');
  const std::size_t slash = utd_path.rfind('/');
  const std::string stem =
      (dot != std::string::npos && (slash == std::string::npos || dot > slash))
          ? utd_path.substr(0, dot)
          : utd_path;
  return stem + ".request";
}

bool ParseUint64(const std::string& text, std::uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool ParseSize(const std::string& text, std::size_t* value) {
  std::uint64_t wide = 0;
  if (!ParseUint64(text, &wide)) return false;
  *value = static_cast<std::size_t>(wide);
  return true;
}

bool ParseBool01(const std::string& text, bool* value) {
  if (text == "0") {
    *value = false;
  } else if (text == "1") {
    *value = true;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FormatReproRequest(const Repro& repro) {
  const MiningRequest& r = repro.request;
  std::string out;
  out += "check=" + repro.check + "\n";
  out += std::string("algorithm=") + AlgorithmName(r.algorithm) + "\n";
  out += "min_sup=" + std::to_string(r.params.min_sup) + "\n";
  out += "pfct=" + FormatDoubleRoundTrip(r.params.pfct) + "\n";
  out += "epsilon=" + FormatDoubleRoundTrip(r.params.epsilon) + "\n";
  out += "delta=" + FormatDoubleRoundTrip(r.params.delta) + "\n";
  out += "exact_event_limit=" + std::to_string(r.params.exact_event_limit) +
         "\n";
  out += std::string("force_sampling=") +
         (r.params.force_sampling ? "1" : "0") + "\n";
  out += "seed=" + std::to_string(r.params.seed) + "\n";
  out += std::string("tidset_mode=") + TidSetModeName(r.params.tidset_mode) +
         "\n";
  out += std::string("prune_chernoff=") +
         (r.params.pruning.chernoff ? "1" : "0") + "\n";
  out += std::string("prune_superset=") +
         (r.params.pruning.superset ? "1" : "0") + "\n";
  out += std::string("prune_subset=") +
         (r.params.pruning.subset ? "1" : "0") + "\n";
  out += std::string("prune_fcp_bounds=") +
         (r.params.pruning.fcp_bounds ? "1" : "0") + "\n";
  out += "top_k=" + std::to_string(r.top_k) + "\n";
  out += "min_esup=" + FormatDoubleRoundTrip(r.min_esup) + "\n";
  out += "num_threads=" + std::to_string(r.execution.num_threads) + "\n";
  return out;
}

bool SaveRepro(const std::string& dir, const std::string& name,
               const Repro& repro, std::string* error) {
  const std::string utd_path = dir + "/" + name + ".utd";
  if (!SaveUncertainDatabase(repro.db, utd_path)) {
    SetError(error, "cannot write " + utd_path);
    return false;
  }
  const std::string request_path = dir + "/" + name + ".request";
  std::ofstream out(request_path);
  if (!out) {
    SetError(error, "cannot write " + request_path);
    return false;
  }
  out << "# pfci oracle repro: replay with Mine(LoadRepro(...)); see "
         "CONTRIBUTING.md\n";
  out << FormatReproRequest(repro);
  return static_cast<bool>(out);
}

bool LoadRepro(const std::string& utd_path, Repro* repro, std::string* error) {
  *repro = Repro();
  if (!LoadUncertainDatabase(utd_path, &repro->db, error)) return false;

  const std::string request_path = SidecarPath(utd_path);
  std::ifstream in(request_path);
  if (!in) {
    SetError(error, "cannot open " + request_path);
    return false;
  }
  MiningRequest& r = repro->request;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, request_path + " line " + std::to_string(line_number) +
                          ": expected key=value");
      return false;
    }
    const std::string key(stripped.substr(0, eq));
    const std::string value(stripped.substr(eq + 1));
    bool ok = true;
    if (key == "check") {
      repro->check = value;
    } else if (key == "algorithm") {
      ok = ParseAlgorithm(value, &r.algorithm);
    } else if (key == "min_sup") {
      ok = ParseSize(value, &r.params.min_sup);
    } else if (key == "pfct") {
      ok = ParseDouble(value, &r.params.pfct);
    } else if (key == "epsilon") {
      ok = ParseDouble(value, &r.params.epsilon);
    } else if (key == "delta") {
      ok = ParseDouble(value, &r.params.delta);
    } else if (key == "exact_event_limit") {
      ok = ParseSize(value, &r.params.exact_event_limit);
    } else if (key == "force_sampling") {
      ok = ParseBool01(value, &r.params.force_sampling);
    } else if (key == "seed") {
      ok = ParseUint64(value, &r.params.seed);
    } else if (key == "tidset_mode") {
      ok = ParseTidSetMode(value, &r.params.tidset_mode);
    } else if (key == "prune_chernoff") {
      ok = ParseBool01(value, &r.params.pruning.chernoff);
    } else if (key == "prune_superset") {
      ok = ParseBool01(value, &r.params.pruning.superset);
    } else if (key == "prune_subset") {
      ok = ParseBool01(value, &r.params.pruning.subset);
    } else if (key == "prune_fcp_bounds") {
      ok = ParseBool01(value, &r.params.pruning.fcp_bounds);
    } else if (key == "top_k") {
      ok = ParseSize(value, &r.top_k);
    } else if (key == "min_esup") {
      ok = ParseDouble(value, &r.min_esup);
    } else if (key == "num_threads") {
      ok = ParseSize(value, &r.execution.num_threads);
    } else {
      SetError(error, request_path + " line " + std::to_string(line_number) +
                          ": unknown key '" + key + "'");
      return false;
    }
    if (!ok) {
      SetError(error, request_path + " line " + std::to_string(line_number) +
                          ": bad value '" + value + "' for key '" + key + "'");
      return false;
    }
  }
  return true;
}

}  // namespace pfci
