// Delta-debugging reducer for oracle findings.
//
// Given a failing database and a predicate ("does the invariant catalog
// still flag this input?"), ShrinkCase searches for a locally minimal
// failing input: ddmin over transactions (drop chunks, halving the
// chunk size on a fixpoint), then per-transaction item removal, then
// probability simplification toward 1.0. The result is the database a
// human actually wants to stare at — typically one to three rows.
#ifndef PFCI_HARNESS_ORACLE_REDUCER_H_
#define PFCI_HARNESS_ORACLE_REDUCER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/mining_params.h"
#include "src/data/uncertain_database.h"
#include "src/harness/oracle/invariants.h"

namespace pfci {

/// Re-checks one candidate input. Returns the findings it triggers
/// (empty when the candidate no longer fails). The reducer treats any
/// non-empty answer as "still failing" — a shrink is allowed to morph
/// one finding into another as long as something stays broken.
using CaseOracle = std::function<std::vector<OracleFinding>(
    const UncertainDatabase& db, const MiningParams& params)>;

/// A minimized failing input plus the findings it still triggers and
/// how many oracle evaluations the search spent.
struct ReducedCase {
  UncertainDatabase db;
  MiningParams params;
  std::vector<OracleFinding> findings;
  std::size_t oracle_calls = 0;
};

/// Shrinks `db` under `oracle` to a locally minimal failing input.
/// `oracle(db, params)` must be non-empty on entry (the unshrunk input
/// fails); if it is not, the input is returned unchanged with empty
/// findings. `max_oracle_calls` caps the search (the catalog re-runs
/// every algorithm per probe); the best input found so far is returned
/// when the budget runs out.
ReducedCase ShrinkCase(const UncertainDatabase& db, const MiningParams& params,
                       const CaseOracle& oracle,
                       std::size_t max_oracle_calls = 400);

}  // namespace pfci

#endif  // PFCI_HARNESS_ORACLE_REDUCER_H_
