#include "src/harness/oracle/reducer.h"

#include <algorithm>
#include <utility>

namespace pfci {

namespace {

std::size_t TotalItems(const std::vector<UncertainTransaction>& rows) {
  std::size_t total = 0;
  for (const UncertainTransaction& row : rows) total += row.items.size();
  return total;
}

UncertainDatabase BuildDb(const std::vector<UncertainTransaction>& rows) {
  UncertainDatabase db;
  for (const UncertainTransaction& row : rows) db.Add(row.items, row.prob);
  return db;
}

/// The shared shrink state: the current failing row set, the findings it
/// triggers, and the probe budget.
struct Search {
  std::vector<UncertainTransaction> rows;
  std::vector<OracleFinding> findings;
  const CaseOracle* oracle = nullptr;
  const MiningParams* params = nullptr;
  std::size_t calls = 0;
  std::size_t max_calls = 0;

  bool Exhausted() const { return calls >= max_calls; }

  /// Probes a candidate row set; on failure (= the invariant still
  /// trips) adopts it as the new current input and returns true.
  bool Try(std::vector<UncertainTransaction> candidate) {
    if (Exhausted()) return false;
    ++calls;
    std::vector<OracleFinding> result =
        (*oracle)(BuildDb(candidate), *params);
    if (result.empty()) return false;
    rows = std::move(candidate);
    findings = std::move(result);
    return true;
  }
};

/// ddmin over transactions: drop `chunk` consecutive rows at a time,
/// halving the chunk size whenever a full pass removes nothing.
void ShrinkTransactions(Search& search) {
  std::size_t chunk = std::max<std::size_t>(1, search.rows.size() / 2);
  while (search.rows.size() > 1 && !search.Exhausted()) {
    bool removed = false;
    for (std::size_t start = 0;
         start < search.rows.size() && search.rows.size() > 1;) {
      const std::size_t take =
          std::min(chunk, search.rows.size() - start);
      if (take == search.rows.size()) {
        start += take;
        continue;  // never probe the empty database
      }
      std::vector<UncertainTransaction> candidate;
      candidate.reserve(search.rows.size() - take);
      candidate.insert(candidate.end(), search.rows.begin(),
                       search.rows.begin() + static_cast<long>(start));
      candidate.insert(candidate.end(),
                       search.rows.begin() + static_cast<long>(start + take),
                       search.rows.end());
      if (search.Try(std::move(candidate))) {
        removed = true;  // rows shifted down; retry the same offset
      } else {
        start += take;
      }
      if (search.Exhausted()) return;
    }
    if (!removed) {
      if (chunk == 1) return;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }
}

/// Per-transaction item removal (a row keeps at least one item — empty
/// transactions are not representable).
void ShrinkItems(Search& search) {
  for (std::size_t r = 0; r < search.rows.size(); ++r) {
    for (std::size_t i = 0; i < search.rows[r].items.size();) {
      if (search.rows[r].items.size() == 1 || search.Exhausted()) break;
      std::vector<UncertainTransaction> candidate = search.rows;
      std::vector<Item> kept;
      for (std::size_t j = 0; j < candidate[r].items.size(); ++j) {
        if (j != i) kept.push_back(candidate[r].items[j]);
      }
      candidate[r].items = Itemset(std::move(kept));
      if (!search.Try(std::move(candidate))) ++i;
    }
  }
}

/// Probability simplification: 1.0 if the failure survives it, else 0.5
/// — both render as short round-trip literals in the .utd repro.
void ShrinkProbs(Search& search) {
  for (std::size_t r = 0; r < search.rows.size(); ++r) {
    for (double target : {1.0, 0.5}) {
      if (search.rows[r].prob == target || search.Exhausted()) continue;
      std::vector<UncertainTransaction> candidate = search.rows;
      candidate[r].prob = target;
      if (search.Try(std::move(candidate))) break;
    }
  }
}

}  // namespace

ReducedCase ShrinkCase(const UncertainDatabase& db, const MiningParams& params,
                       const CaseOracle& oracle,
                       std::size_t max_oracle_calls) {
  Search search;
  search.rows.assign(db.transactions().begin(), db.transactions().end());
  search.oracle = &oracle;
  search.params = &params;
  search.max_calls = max_oracle_calls;

  // Confirm the unshrunk input fails; a flaky or already-clean input is
  // returned untouched so callers can tell the difference.
  ++search.calls;
  search.findings = oracle(db, params);
  ReducedCase out;
  out.params = params;
  if (search.findings.empty()) {
    out.db = BuildDb(search.rows);
    out.oracle_calls = search.calls;
    return out;
  }

  // Each phase can unlock the previous one (fewer rows make more item
  // removals viable and vice versa); loop to a combined fixpoint.
  std::size_t previous_size = 0;
  do {
    previous_size = search.rows.size() * 1000 + TotalItems(search.rows);
    ShrinkTransactions(search);
    ShrinkItems(search);
  } while (!search.Exhausted() &&
           search.rows.size() * 1000 + TotalItems(search.rows) <
               previous_size);
  ShrinkProbs(search);

  out.db = BuildDb(search.rows);
  out.findings = std::move(search.findings);
  out.oracle_calls = search.calls;
  return out;
}

}  // namespace pfci
