// Small helpers shared by the figure-regeneration binaries.
#ifndef PFCI_HARNESS_EXPERIMENT_H_
#define PFCI_HARNESS_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/mining_result.h"

namespace pfci {

/// Wall-clock time of one invocation of `fn`, in seconds.
double TimeRun(const std::function<void()>& fn);

/// Precision |FR ∩ TI| / |FR| of a result set against ground truth
/// (paper Sec. V.C); 1 when FR is empty.
double ResultPrecision(const std::vector<Itemset>& found,
                       const std::vector<Itemset>& truth);

/// Recall |FR ∩ TI| / |TI|; 1 when TI is empty.
double ResultRecall(const std::vector<Itemset>& found,
                    const std::vector<Itemset>& truth);

/// Extracts the itemsets of a mining result.
std::vector<Itemset> ItemsetsOf(const MiningResult& result);

/// Prints a standard experiment banner (figure id, dataset, scale).
void PrintBanner(const std::string& figure, const std::string& description);

}  // namespace pfci

#endif  // PFCI_HARNESS_EXPERIMENT_H_
