#include "src/harness/experiment.h"

#include <algorithm>
#include <cstdio>

#include "src/util/stopwatch.h"

namespace pfci {

double TimeRun(const std::function<void()>& fn) {
  Stopwatch timer;
  fn();
  return timer.ElapsedSeconds();
}

namespace {

std::size_t IntersectionSize(std::vector<Itemset> a, std::vector<Itemset> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace

double ResultPrecision(const std::vector<Itemset>& found,
                       const std::vector<Itemset>& truth) {
  if (found.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(found, truth)) /
         static_cast<double>(found.size());
}

double ResultRecall(const std::vector<Itemset>& found,
                    const std::vector<Itemset>& truth) {
  if (truth.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(found, truth)) /
         static_cast<double>(truth.size());
}

std::vector<Itemset> ItemsetsOf(const MiningResult& result) {
  std::vector<Itemset> itemsets;
  itemsets.reserve(result.itemsets.size());
  for (const PfciEntry& entry : result.itemsets) {
    itemsets.push_back(entry.items);
  }
  return itemsets;
}

void PrintBanner(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

}  // namespace pfci
