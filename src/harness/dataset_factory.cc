#include "src/harness/dataset_factory.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/datagen/mushroom_generator.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/util/check.h"

namespace pfci {

BenchScale ScaleFromEnv() {
  const char* value = std::getenv("PFCI_BENCH_SCALE");
  if (value != nullptr && std::strcmp(value, "full") == 0) {
    return BenchScale::kFull;
  }
  return BenchScale::kQuick;
}

const char* ScaleName(BenchScale scale) {
  return scale == BenchScale::kFull ? "full" : "quick";
}

UncertainDatabase MakePaperExampleDb() {
  UncertainDatabase db;
  db.Add(Itemset{0, 1, 2, 3}, 0.9);  // T1 a b c d
  db.Add(Itemset{0, 1, 2}, 0.6);     // T2 a b c
  db.Add(Itemset{0, 1, 2}, 0.7);     // T3 a b c
  db.Add(Itemset{0, 1, 2, 3}, 0.9);  // T4 a b c d
  return db;
}

UncertainDatabase MakeTable4Db() {
  UncertainDatabase db = MakePaperExampleDb();
  db.Add(Itemset{0, 1}, 0.4);  // T5 a b
  db.Add(Itemset{0}, 0.4);     // T6 a
  return db;
}

TransactionDatabase MakeExactMushroom(BenchScale scale) {
  MushroomParams params;
  if (scale == BenchScale::kQuick) {
    params.num_transactions = 2000;
    params.num_attributes = 14;
    params.values_per_attribute = 4;
    params.num_species = 10;
  }
  return GenerateMushroomLike(params);
}

TransactionDatabase MakeExactQuest(BenchScale scale) {
  QuestParams params;  // Defaults are the paper's T20I10D30KP40.
  if (scale == BenchScale::kQuick) {
    params.num_transactions = 3000;
    params.avg_transaction_length = 10.0;
    params.avg_pattern_length = 5.0;
    params.num_items = 30;
    params.num_patterns = 30;
  }
  return GenerateQuest(params);
}

UncertainDatabase MakeUncertainMushroom(BenchScale scale, double mean,
                                        double spread) {
  GaussianAssignerParams params;
  params.mean = mean;
  params.spread = spread;
  params.seed = 101;
  return AssignGaussianProbabilities(MakeExactMushroom(scale), params);
}

UncertainDatabase MakeUncertainQuest(BenchScale scale, double mean,
                                     double spread) {
  GaussianAssignerParams params;
  params.mean = mean;
  params.spread = spread;
  params.seed = 202;
  return AssignGaussianProbabilities(MakeExactQuest(scale), params);
}

std::size_t AbsoluteMinSup(std::size_t num_transactions, double relative) {
  PFCI_CHECK(relative > 0.0 && relative <= 1.0);
  const std::size_t abs = static_cast<std::size_t>(
      std::ceil(relative * static_cast<double>(num_transactions)));
  return abs < 1 ? 1 : abs;
}

}  // namespace pfci
