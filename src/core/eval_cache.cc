#include "src/core/eval_cache.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace pfci {

namespace {

/// Fixed per-entry overhead charged on top of the payload vectors: the
/// LRU node, the map slot, and the Entry struct itself. An estimate —
/// the budget bounds the order of magnitude, not malloc's exact ledger.
constexpr std::size_t kEntryOverheadBytes = 128;

/// Whether the stored tids equal the probe's contents. Walks the TidSet
/// in ascending order against the stored list without materializing.
bool SameTids(const TidSet& tids, const TidList& stored) {
  if (tids.size() != stored.size()) return false;
  std::size_t i = 0;
  bool equal = true;
  tids.ForEach([&](Tid tid) {
    if (equal && stored[i++] != tid) equal = false;
  });
  return equal;
}

}  // namespace

std::uint64_t TidSetFingerprint(const TidSet& tids) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
  tids.ForEach([&h](Tid tid) {
    h ^= static_cast<std::uint64_t>(tid) + 1;  // +1 keeps tid 0 mixing.
    h *= 1099511628211ull;
  });
  // Finalize so the low bits (shard selector) depend on every tid.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

std::size_t EvalCache::Entry::Bytes() const {
  return kEntryOverheadBytes + tids.capacity() * sizeof(Tid) +
         table.capacity() * sizeof(double);
}

EvalCache::EvalCache(const Options& options) : options_(options) {
  // Degenerate budgets are clamped, not aborted on: a cache is an
  // optimization, so "shards = 0" means "one shard" and "max_bytes = 0"
  // means "a budget no entry fits in" (every insert is rejected below).
  if (options_.shards == 0) options_.shards = 1;
  if (options_.max_bytes == 0) options_.max_bytes = 1;
  shards_ = std::vector<Shard>(options_.shards);
}

EvalCache::Lookup EvalCache::Probe(const TidSet& tids,
                                   std::size_t threshold) const {
  const std::uint64_t fp = TidSetFingerprint(tids);
  Shard& shard = ShardFor(fp);
  Lookup lookup;
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(fp);
  if (it == shard.map.end()) return lookup;
  const Entry& entry = it->second->second;
  // A fingerprint collision is treated as a miss: correctness never
  // depends on the hash.
  if (!SameTids(tids, entry.tids)) return lookup;
  lookup.found = true;
  lookup.mu = entry.mu;
  if (entry.table_threshold >= threshold) {
    lookup.has_table = true;
    lookup.tail = entry.table[threshold];
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // Touch.
  return lookup;
}

void EvalCache::Insert(const TidSet& tids, double mu,
                       std::size_t table_threshold,
                       std::vector<double> table) {
  PFCI_DCHECK(table.size() == table_threshold + 1);
  const std::uint64_t fp = TidSetFingerprint(tids);
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(fp);
  if (it != shard.map.end()) {
    Entry& entry = it->second->second;
    if (SameTids(tids, entry.tids)) {
      // Upgrade in place only when the new table answers more thresholds
      // AND the upgraded entry still fits the budget on its own; an
      // over-budget upgrade is rejected and the smaller entry kept (it
      // keeps answering what it already answered).
      if (table_threshold > entry.table_threshold) {
        const std::size_t upgraded_bytes =
            kEntryOverheadBytes + entry.tids.capacity() * sizeof(Tid) +
            table.capacity() * sizeof(double);
        if (upgraded_bytes > options_.max_bytes) {
          rejections_.fetch_add(1, std::memory_order_relaxed);
        } else {
          bytes_.fetch_sub(entry.Bytes(), std::memory_order_relaxed);
          entry.table_threshold = table_threshold;
          entry.table = std::move(table);
          bytes_.fetch_add(entry.Bytes(), std::memory_order_relaxed);
          // An upgrade during a batch is the shared-DP prefill later
          // members depend on — pin it for the batch lifetime.
          if (!entry.pinned &&
              pin_depth_.load(std::memory_order_relaxed) > 0) {
            entry.pinned = true;
            pinned_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      EvictLocked(shard);
      return;
    }
  }
  Entry entry;
  entry.tids = tids.ToTidList();
  entry.mu = mu;
  entry.table_threshold = table_threshold;
  entry.pinned = pin_depth_.load(std::memory_order_relaxed) > 0;
  entry.table = std::move(table);
  // An entry that alone exceeds the whole budget can never become
  // resident; admitting it would evict the entire shard and still leave
  // the cache over budget (the historical evict-everything-then-stay-
  // over-budget inconsistency). Reject it as a stats event instead,
  // before any existing entry is disturbed.
  if (entry.Bytes() > options_.max_bytes) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (it != shard.map.end()) {
    // Fingerprint collision with different contents: drop the old entry
    // (the slot can only hold one) — rare, and only a perf event.
    bytes_.fetch_sub(it->second->second.Bytes(), std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    if (it->second->second.pinned) {
      pinned_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  bytes_.fetch_add(entry.Bytes(), std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  if (entry.pinned) pinned_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.emplace_front(fp, std::move(entry));
  shard.map[fp] = shard.lru.begin();
  EvictLocked(shard);
}

void EvalCache::EvictLocked(Shard& shard) {
  // Global budget, shard-local eviction: each shard sheds its own LRU
  // tail while the aggregate is over budget. Never evicts the entry just
  // touched (front): it is the one the caller is actively using, and
  // over-budget pressure from other shards should not starve this one.
  // Pinned entries are skipped — the batch that pinned them still needs
  // their tables — so resident bytes may overshoot the budget by the
  // pinned working set until the pin scope closes and re-evicts.
  while (bytes_.load(std::memory_order_relaxed) > options_.max_bytes &&
         shard.lru.size() > 1) {
    auto victim = std::prev(shard.lru.end());
    while (victim != shard.lru.begin() && victim->second.pinned) {
      --victim;
    }
    if (victim == shard.lru.begin()) return;  // Only pinned (or front) left.
    bytes_.fetch_sub(victim->second.Bytes(), std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.map.erase(victim->first);
    shard.lru.erase(victim);
  }
}

void EvalCache::BeginPinScope() {
  pin_depth_.fetch_add(1, std::memory_order_relaxed);
}

void EvalCache::EndPinScope() {
  const std::uint64_t before =
      pin_depth_.fetch_sub(1, std::memory_order_acq_rel);
  PFCI_DCHECK(before > 0);
  if (before != 1) return;  // An enclosing scope is still open.
  // Last scope out: clear every pin, then re-enforce the byte budget the
  // pins were allowed to overshoot. Entries inserted by a scope that
  // races this sweep may stay pinned until the racer's own EndPinScope —
  // pinning is a retention hint, not a correctness property.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& node : shard.lru) {
      if (node.second.pinned) {
        node.second.pinned = false;
        pinned_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    EvictLocked(shard);
  }
}

void ItemWarmStart::RecordBound(Item item, std::size_t min_sup,
                                double bound) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Proof>& proofs = proofs_[item];
  // Dominated if an existing proof applies at least as widely (smaller or
  // equal min_sup) with an at-least-as-tight bound.
  for (const Proof& proof : proofs) {
    if (proof.min_sup <= min_sup && proof.bound <= bound) return;
  }
  // The new proof may dominate existing ones in turn.
  proofs.erase(std::remove_if(proofs.begin(), proofs.end(),
                              [&](const Proof& proof) {
                                return min_sup <= proof.min_sup &&
                                       bound <= proof.bound;
                              }),
               proofs.end());
  proofs.push_back(Proof{min_sup, bound});
}

double ItemWarmStart::BoundFor(Item item, std::size_t min_sup) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = proofs_.find(item);
  if (it == proofs_.end()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (const Proof& proof : it->second) {
    // Anti-monotonicity: a proof at min_sup s bounds every s' >= s.
    if (proof.min_sup <= min_sup) best = std::min(best, proof.bound);
  }
  return best;
}

std::size_t ItemWarmStart::items_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return proofs_.size();
}

}  // namespace pfci
