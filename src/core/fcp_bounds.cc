#include "src/core/fcp_bounds.h"

#include <algorithm>

namespace pfci {

FcpBounds ComputeFcpBounds(double pr_f, const ExtensionEventSet& events) {
  FcpBounds bounds;
  if (events.size() == 0) {
    // No superset can ever co-occur: PrFC == PrF exactly.
    bounds.union_lower = bounds.union_upper = 0.0;
    bounds.lower = bounds.upper = pr_f;
    return bounds;
  }
  const UnionBounds union_bounds = ComputeUnionBounds(events.BuildPairwise());
  bounds.union_lower = union_bounds.lower;
  bounds.union_upper = union_bounds.upper;
  bounds.lower = std::clamp(pr_f - union_bounds.upper, 0.0, 1.0);
  bounds.upper = std::clamp(pr_f - union_bounds.lower, 0.0, 1.0);
  if (bounds.upper < bounds.lower) bounds.upper = bounds.lower;
  return bounds;
}

}  // namespace pfci
