#include "src/core/extension_events.h"

#include <cmath>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace pfci {

namespace {

/// log Π (1 - p_T) over `tids`; returns -infinity when some p_T == 1
/// (a certain transaction can never be absent, the event is impossible).
double LogMissProbability(const VerticalIndex& index, const TidSet& tids) {
  double log_miss = 0.0;
  bool impossible = false;
  tids.ForEach([&](Tid tid) {
    if (impossible) return;
    const double p = index.db().prob(tid);
    if (p >= 1.0) {
      impossible = true;
      return;
    }
    log_miss += std::log1p(-p);
  });
  if (impossible) return -std::numeric_limits<double>::infinity();
  return log_miss;
}

}  // namespace

ExtensionEventSet::ExtensionEventSet(const VerticalIndex& index,
                                     const FrequentProbability& freq,
                                     const Itemset& x, const TidSet& x_tids,
                                     DpWorkspace* workspace,
                                     MiningStats* stats)
    : index_(&index), freq_(&freq), x_tids_(&x_tids) {
  DpWorkspace& ws = workspace != nullptr ? *workspace : LocalDpWorkspace();
  for (Item item : index.occurring_items()) {
    if (x.Contains(item)) continue;
    ExtensionEvent event;
    event.item = item;
    event.tids = Intersect(x_tids, index.TidsOfItem(item));
    if (stats != nullptr) ++stats->intersections;
    // support(X+e) can never reach min_sup >= 1: C_i is impossible.
    if (event.tids.size() < freq.min_sup()) continue;
    if (event.tids.size() == x_tids.size()) has_same_count_extension_ = true;
    const TidSet miss = Difference(x_tids, event.tids);
    if (stats != nullptr) ++stats->intersections;
    event.log_miss = LogMissProbability(index, miss);
    if (!std::isfinite(event.log_miss)) continue;
    event.pr_freq = freq.PrF(event.tids, ws);
    event.prob = std::exp(event.log_miss) * event.pr_freq;
    if (event.prob > 0.0) events_.push_back(std::move(event));
  }
}

double ExtensionEventSet::PrIntersection(
    const std::vector<std::size_t>& subset) const {
  PFCI_CHECK(!subset.empty());
  TidSet tids = events_[subset[0]].tids;
  for (std::size_t k = 1; k < subset.size() && !tids.empty(); ++k) {
    tids = Intersect(tids, events_[subset[k]].tids);
  }
  if (tids.size() < freq_->min_sup()) return 0.0;
  const TidSet miss = Difference(*x_tids_, tids);
  const double log_miss = LogMissProbability(*index_, miss);
  if (!std::isfinite(log_miss)) return 0.0;
  return std::exp(log_miss) * freq_->PrF(tids);
}

PairwiseProbabilities ExtensionEventSet::BuildPairwise() const {
  PairwiseProbabilities pairs(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    pairs.Set(i, i, events_[i].prob);
    for (std::size_t j = i + 1; j < events_.size(); ++j) {
      pairs.Set(i, j, PrIntersection({i, j}));
    }
  }
  return pairs;
}

}  // namespace pfci
