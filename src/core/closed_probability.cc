#include "src/core/closed_probability.h"

#include "src/core/extension_events.h"
#include "src/core/fcp_exact.h"
#include "src/core/frequent_probability.h"
#include "src/data/vertical_index.h"

namespace pfci {

double ExactClosedProbability(const UncertainDatabase& db, const Itemset& x) {
  const VerticalIndex index(db);
  const FrequentProbability freq(index, /*min_sup=*/1);
  const TidSet tids = index.TidsOf(x);
  const double pr_f = freq.PrF(tids);  // Pr{X appears at least once}.
  const ExtensionEventSet events(index, freq, x, tids);
  return ExactFcpByInclusionExclusion(pr_f, events);
}

ApproxFcpResult ApproxClosedProbability(const UncertainDatabase& db,
                                        const Itemset& x, double epsilon,
                                        double delta, Rng& rng) {
  const VerticalIndex index(db);
  const FrequentProbability freq(index, /*min_sup=*/1);
  const TidSet tids = index.TidsOf(x);
  const double pr_f = freq.PrF(tids);
  const ExtensionEventSet events(index, freq, x, tids);
  return ApproxFcp(pr_f, events, epsilon, delta, rng);
}

}  // namespace pfci
