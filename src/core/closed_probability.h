// Closed probability PrC(X) (Definition 3.6).
//
// With the paper's convention that an absent itemset is not closed,
// PrC(X) equals the frequent closed probability at min_sup = 1, so the
// whole FCP machinery (events, bounds, inclusion-exclusion, ApproxFCP)
// applies verbatim. Computing PrC exactly is #P-hard (Theorem 3.1).
#ifndef PFCI_CORE_CLOSED_PROBABILITY_H_
#define PFCI_CORE_CLOSED_PROBABILITY_H_

#include "src/core/fcp_sampler.h"
#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"
#include "src/util/random.h"

namespace pfci {

/// Exact PrC(X) by inclusion-exclusion over the active extension events.
/// Exponential in their number; CHECKs that it stays within
/// kMaxInclusionExclusionEvents.
double ExactClosedProbability(const UncertainDatabase& db, const Itemset& x);

/// FPRAS estimate of PrC(X) via ApproxFCP at min_sup = 1.
ApproxFcpResult ApproxClosedProbability(const UncertainDatabase& db,
                                        const Itemset& x, double epsilon,
                                        double delta, Rng& rng);

}  // namespace pfci

#endif  // PFCI_CORE_CLOSED_PROBABILITY_H_
