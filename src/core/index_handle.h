// Borrow-or-build handle for the per-run VerticalIndex.
//
// Standalone Mine() calls build a fresh index per run; a MiningSession
// prepares one per tid-set mode up front and shares it through
// ExecutionContext::shared_index. The handle borrows the shared index
// when it covers the request (same database object, same tid-set mode)
// and falls back to an owned build otherwise, so miners are oblivious to
// which serving mode they run under. Either way the index's resident
// bytes are charged to the run's memory budget for the handle's lifetime
// — a borrowed index is still resident while the run uses it.
#ifndef PFCI_CORE_INDEX_HANDLE_H_
#define PFCI_CORE_INDEX_HANDLE_H_

#include <optional>

#include "src/core/execution.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"

namespace pfci {

class IndexHandle {
 public:
  IndexHandle(const UncertainDatabase& db, const TidSetPolicy& policy,
              const ExecutionContext& exec)
      : runtime_(exec.runtime) {
    const VerticalIndex* shared = exec.shared_index;
    if (shared != nullptr && &shared->db() == &db &&
        shared->policy().mode == policy.mode) {
      index_ = shared;
    } else {
      owned_.emplace(db, policy);
      index_ = &*owned_;
    }
    if (runtime_ != nullptr) {
      charged_ = index_->MemoryBytes();
      runtime_->ChargeBytes(charged_);
    }
  }

  ~IndexHandle() {
    if (runtime_ != nullptr) runtime_->ReleaseBytes(charged_);
  }

  IndexHandle(const IndexHandle&) = delete;
  IndexHandle& operator=(const IndexHandle&) = delete;

  const VerticalIndex& get() const { return *index_; }
  const VerticalIndex& operator*() const { return *index_; }
  const VerticalIndex* operator->() const { return index_; }

  bool borrowed() const { return !owned_.has_value(); }

 private:
  std::optional<VerticalIndex> owned_;
  const VerticalIndex* index_ = nullptr;
  RunController* runtime_ = nullptr;
  std::uint64_t charged_ = 0;
};

}  // namespace pfci

#endif  // PFCI_CORE_INDEX_HANDLE_H_
