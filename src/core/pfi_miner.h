// Probabilistic frequent itemset (PFI) mining — the baseline of [22].
//
// Returns all itemsets with PrF(X) > pft (Definition 3.5). PrF is
// anti-monotone, so a depth-first enumeration with Chernoff-Hoeffding and
// exact-DP pruning is complete; this plays the role of the TODIS/DP
// algorithms of [22] as the first stage of the Naive baseline (Fig. 5)
// and as the "PFI" series of the compression experiment (Fig. 10).
#ifndef PFCI_CORE_PFI_MINER_H_
#define PFCI_CORE_PFI_MINER_H_

#include <vector>

#include "src/core/execution.h"
#include "src/core/mining_result.h"
#include "src/core/search/pfi_enumeration.h"  // PfiEntry, the enumeration.
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/prob/tail_approximations.h"
#include "src/util/runtime.h"

namespace pfci {

/// Mines all itemsets with PrF(X) > pft at support threshold min_sup.
/// `stats` (optional) accumulates pruning counters; `policy` selects the
/// tid-set representation (never affects results). `runtime` (optional)
/// makes the enumeration fail-soft: the DFS polls it at node expansion
/// and winds down with a verified prefix of the answer when a limit
/// trips (the caller reads the outcome off the controller). `session`
/// (optional) carries a MiningSession's shared index, evaluation cache,
/// and warm-start proofs (DESIGN.md §11); null mines standalone.
std::vector<PfiEntry> MinePfi(const UncertainDatabase& db,
                              std::size_t min_sup, double pft,
                              bool use_chernoff = true,
                              MiningStats* stats = nullptr,
                              const TidSetPolicy& policy = TidSetPolicy{},
                              RunController* runtime = nullptr,
                              const ExecutionContext* session = nullptr);

/// Approximate PFI mining in the spirit of [3]: the exact frequent-
/// probability DP is replaced by a distributional approximation of the
/// Poisson-binomial tail (normal, refined normal, or Poisson). Much
/// faster at large min_sup, at the price of possible misclassification of
/// borderline itemsets. kExactDp reproduces MinePfi.
std::vector<PfiEntry> MinePfiApproximate(const UncertainDatabase& db,
                                         std::size_t min_sup, double pft,
                                         FrequencyMode mode,
                                         MiningStats* stats = nullptr,
                                         const TidSetPolicy& policy =
                                             TidSetPolicy{},
                                         RunController* runtime = nullptr);

}  // namespace pfci

#endif  // PFCI_CORE_PFI_MINER_H_
