#include "src/core/pfi_miner.h"

#include <algorithm>

#include "src/core/frequent_probability.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

namespace pfci {

namespace {

class PfiSearch {
 public:
  PfiSearch(const UncertainDatabase& db, std::size_t min_sup, double pft,
            bool use_chernoff, FrequencyMode mode, MiningStats* stats,
            const TidSetPolicy& policy, RunController* runtime)
      : pft_(pft),
        use_chernoff_(use_chernoff),
        mode_(mode),
        stats_(stats),
        rt_(runtime),
        index_(db, policy),
        freq_(index_, min_sup) {}

  std::vector<PfiEntry> Run() {
    if (rt_ != nullptr && rt_->active()) {
      rt_->ChargeBytes(index_.MemoryBytes());
      rt_->Checkpoint();
    }
    // Sequential miner: one logical work unit owns the whole budget.
    unit_ = rt_ != nullptr ? rt_->UnitBudget(0, 1) : WorkUnitBudget{};

    if (rt_ == nullptr || !rt_->StopRequested()) {
      for (Item item : index_.occurring_items()) {
        TidSet tids = index_.TidsOfItem(item);
        const double pr_f = QualifyingPrF(tids);
        if (pr_f > pft_) {
          candidates_.push_back(item);
          Emit(Itemset{item}, std::move(tids), pr_f);
        }
      }
    }
    // The singleton pass above seeded `result_`; extend depth-first.
    const std::size_t num_singletons = result_.size();
    for (std::size_t s = 0; s < num_singletons && !Stopped(); ++s) {
      // Copy: Dfs appends to result_ and may reallocate.
      const PfiEntry seed = result_[s];
      Dfs(seed.items, seed.tids, IndexOfCandidate(seed.items.LastItem()));
    }
    if (unit_.truncated && rt_ != nullptr) {
      rt_->RecordTruncation(Outcome::kBudgetExhausted);
    }
    std::sort(result_.begin(), result_.end());
    return std::move(result_);
  }

 private:
  /// Whether the run should wind down (budget cut or global stop).
  bool Stopped() const {
    return unit_.truncated || (rt_ != nullptr && rt_->StopRequested());
  }
  std::size_t IndexOfCandidate(Item item) const {
    return static_cast<std::size_t>(
        std::lower_bound(candidates_.begin(), candidates_.end(), item) -
        candidates_.begin());
  }

  /// PrF if the itemset qualifies, otherwise a value <= pft (with pruning
  /// counters updated).
  double QualifyingPrF(const TidSet& tids) {
    if (tids.size() < freq_.min_sup()) {
      if (stats_ != nullptr) ++stats_->pruned_by_frequency;
      return 0.0;
    }
    if (use_chernoff_ && freq_.PrFUpperBound(tids) <= pft_) {
      if (stats_ != nullptr) ++stats_->pruned_by_chernoff;
      return 0.0;
    }
    double pr_f;
    if (mode_ == FrequencyMode::kExactDp) {
      pr_f = freq_.PrF(tids);
    } else {
      DpWorkspace& ws = LocalDpWorkspace();
      index_.GatherProbs(tids, &ws.probs);
      pr_f = TailAtLeastWithMode(ws.probs, freq_.min_sup(), mode_);
    }
    if (pr_f <= pft_ && stats_ != nullptr) ++stats_->pruned_by_frequency;
    return pr_f;
  }

  void Emit(Itemset items, TidSet tids, double pr_f) {
    PfiEntry entry;
    entry.items = std::move(items);
    entry.pr_f = pr_f;
    entry.tids = std::move(tids);
    result_.push_back(std::move(entry));
  }

  void Dfs(const Itemset& x, const TidSet& tids,
           std::size_t candidate_pos) {
    // Node-expansion checkpoint: PFIs emit before recursing, so cutting
    // here leaves a verified prefix in `result_`.
    PFCI_FAILPOINT("pfi/node");
    if (rt_ != nullptr && rt_->Checkpoint()) return;
    if (!unit_.TakeNode()) return;
    if (stats_ != nullptr) ++stats_->nodes_visited;
    for (std::size_t c = candidate_pos + 1; c < candidates_.size(); ++c) {
      if (Stopped()) return;
      const Item item = candidates_[c];
      TidSet child_tids = Intersect(tids, index_.TidsOfItem(item));
      if (stats_ != nullptr) ++stats_->intersections;
      const double pr_f = QualifyingPrF(child_tids);
      if (pr_f <= pft_) continue;
      const Itemset child = x.WithItem(item);
      Emit(child, child_tids, pr_f);
      Dfs(child, child_tids, c);
    }
  }

  double pft_;
  bool use_chernoff_;
  FrequencyMode mode_;
  MiningStats* stats_;
  RunController* rt_;
  WorkUnitBudget unit_;
  VerticalIndex index_;
  FrequentProbability freq_;
  std::vector<Item> candidates_;
  std::vector<PfiEntry> result_;
};

}  // namespace

std::vector<PfiEntry> MinePfi(const UncertainDatabase& db,
                              std::size_t min_sup, double pft,
                              bool use_chernoff, MiningStats* stats,
                              const TidSetPolicy& policy,
                              RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  PfiSearch search(db, min_sup, pft, use_chernoff, FrequencyMode::kExactDp,
                   stats, policy, runtime);
  return search.Run();
}

std::vector<PfiEntry> MinePfiApproximate(const UncertainDatabase& db,
                                         std::size_t min_sup, double pft,
                                         FrequencyMode mode,
                                         MiningStats* stats,
                                         const TidSetPolicy& policy,
                                         RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  // The Chernoff bound stays valid (it bounds the true tail, and every
  // approximation is consistent with it on the scales where it prunes).
  PfiSearch search(db, min_sup, pft, /*use_chernoff=*/true, mode, stats,
                   policy, runtime);
  return search.Run();
}

}  // namespace pfci
