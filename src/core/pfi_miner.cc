#include "src/core/pfi_miner.h"

#include <algorithm>

#include "src/core/eval_cache.h"
#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

namespace pfci {

namespace {

class PfiSearch {
 public:
  PfiSearch(const UncertainDatabase& db, std::size_t min_sup, double pft,
            bool use_chernoff, FrequencyMode mode, MiningStats* stats,
            const TidSetPolicy& policy, RunController* runtime,
            const ExecutionContext* session)
      : pft_(pft),
        use_chernoff_(use_chernoff),
        mode_(mode),
        stats_(stats),
        rt_(runtime),
        exec_(MakeContext(session, runtime)),
        warm_(mode == FrequencyMode::kExactDp ? exec_.warm_start : nullptr),
        index_(db, policy, exec_),
        freq_(index_.get(), min_sup, exec_.eval_cache, exec_.table_floor) {}

  std::vector<PfiEntry> Run() {
    // Index bytes were charged by the handle; fail an undersized memory
    // budget before any search work.
    if (rt_ != nullptr && rt_->active()) rt_->Checkpoint();
    // Sequential miner: one logical work unit owns the whole budget.
    unit_ = rt_ != nullptr ? rt_->UnitBudget(0, 1) : WorkUnitBudget{};

    if (rt_ == nullptr || !rt_->StopRequested()) {
      for (Item item : index_->occurring_items()) {
        TidSet tids = index_->TidsOfItem(item);
        const double pr_f = QualifyingPrF(tids, &item);
        if (pr_f > pft_) {
          candidates_.push_back(item);
          Emit(Itemset{item}, std::move(tids), pr_f);
        }
      }
    }
    // The singleton pass above seeded `result_`; extend depth-first.
    const std::size_t num_singletons = result_.size();
    for (std::size_t s = 0; s < num_singletons && !Stopped(); ++s) {
      // Copy: Dfs appends to result_ and may reallocate.
      const PfiEntry seed = result_[s];
      Dfs(seed.items, seed.tids, IndexOfCandidate(seed.items.LastItem()));
    }
    if (unit_.truncated && rt_ != nullptr) {
      rt_->RecordTruncation(Outcome::kBudgetExhausted);
    }
    if (stats_ != nullptr) {
      stats_->dp_runs += freq_.dp_runs();
      stats_->cache_hits += freq_.cache_hits();
      stats_->cache_misses += freq_.cache_misses();
      stats_->dp_reused += freq_.dp_reused();
    }
    std::sort(result_.begin(), result_.end());
    return std::move(result_);
  }

 private:
  /// Whether the run should wind down (budget cut or global stop).
  bool Stopped() const {
    return unit_.truncated || (rt_ != nullptr && rt_->StopRequested());
  }
  std::size_t IndexOfCandidate(Item item) const {
    return static_cast<std::size_t>(
        std::lower_bound(candidates_.begin(), candidates_.end(), item) -
        candidates_.begin());
  }

  /// The context the index handle and cache read session hooks from; the
  /// runtime is overridden so the handle charges the same controller the
  /// search polls.
  static ExecutionContext MakeContext(const ExecutionContext* session,
                                      RunController* runtime) {
    ExecutionContext exec = session != nullptr ? *session : ExecutionContext{};
    exec.runtime = runtime;
    return exec;
  }

  /// PrF if the itemset qualifies, otherwise a value <= pft (with pruning
  /// counters updated). Singletons pass their item so warm-start proofs
  /// apply (sound only against the exact DP, hence the kExactDp guard on
  /// `warm_`); rejections found the hard way are recorded.
  double QualifyingPrF(const TidSet& tids, const Item* warm_item = nullptr) {
    if (tids.size() < freq_.min_sup()) {
      if (stats_ != nullptr) ++stats_->pruned_by_frequency;
      return 0.0;
    }
    if (warm_ != nullptr && warm_item != nullptr &&
        warm_->BoundFor(*warm_item, freq_.min_sup()) <= pft_) {
      if (stats_ != nullptr) ++stats_->pruned_by_frequency;
      return 0.0;
    }
    if (use_chernoff_) {
      const double upper = freq_.PrFUpperBound(tids);
      if (upper <= pft_) {
        if (stats_ != nullptr) ++stats_->pruned_by_chernoff;
        if (warm_ != nullptr && warm_item != nullptr) {
          warm_->RecordBound(*warm_item, freq_.min_sup(), upper);
        }
        return 0.0;
      }
    }
    double pr_f;
    if (mode_ == FrequencyMode::kExactDp) {
      pr_f = freq_.PrF(tids);
    } else {
      DpWorkspace& ws = LocalDpWorkspace();
      index_->GatherProbs(tids, &ws.probs);
      pr_f = TailAtLeastWithMode(ws.probs, freq_.min_sup(), mode_);
    }
    if (pr_f <= pft_) {
      if (stats_ != nullptr) ++stats_->pruned_by_frequency;
      if (warm_ != nullptr && warm_item != nullptr) {
        warm_->RecordBound(*warm_item, freq_.min_sup(), pr_f);
      }
    }
    return pr_f;
  }

  void Emit(Itemset items, TidSet tids, double pr_f) {
    PfiEntry entry;
    entry.items = std::move(items);
    entry.pr_f = pr_f;
    entry.tids = std::move(tids);
    result_.push_back(std::move(entry));
  }

  void Dfs(const Itemset& x, const TidSet& tids,
           std::size_t candidate_pos) {
    // Node-expansion checkpoint: PFIs emit before recursing, so cutting
    // here leaves a verified prefix in `result_`.
    PFCI_FAILPOINT("pfi/node");
    if (rt_ != nullptr && rt_->Checkpoint()) return;
    if (!unit_.TakeNode()) return;
    if (stats_ != nullptr) ++stats_->nodes_visited;
    for (std::size_t c = candidate_pos + 1; c < candidates_.size(); ++c) {
      if (Stopped()) return;
      const Item item = candidates_[c];
      TidSet child_tids = Intersect(tids, index_->TidsOfItem(item));
      if (stats_ != nullptr) ++stats_->intersections;
      const double pr_f = QualifyingPrF(child_tids);
      if (pr_f <= pft_) continue;
      const Itemset child = x.WithItem(item);
      Emit(child, child_tids, pr_f);
      Dfs(child, child_tids, c);
    }
  }

  double pft_;
  bool use_chernoff_;
  FrequencyMode mode_;
  MiningStats* stats_;
  RunController* rt_;
  ExecutionContext exec_;
  ItemWarmStart* warm_;
  WorkUnitBudget unit_;
  IndexHandle index_;
  FrequentProbability freq_;
  std::vector<Item> candidates_;
  std::vector<PfiEntry> result_;
};

}  // namespace

std::vector<PfiEntry> MinePfi(const UncertainDatabase& db,
                              std::size_t min_sup, double pft,
                              bool use_chernoff, MiningStats* stats,
                              const TidSetPolicy& policy,
                              RunController* runtime,
                              const ExecutionContext* session) {
  PFCI_CHECK(min_sup >= 1);
  PfiSearch search(db, min_sup, pft, use_chernoff, FrequencyMode::kExactDp,
                   stats, policy, runtime, session);
  return search.Run();
}

std::vector<PfiEntry> MinePfiApproximate(const UncertainDatabase& db,
                                         std::size_t min_sup, double pft,
                                         FrequencyMode mode,
                                         MiningStats* stats,
                                         const TidSetPolicy& policy,
                                         RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  // The Chernoff bound stays valid (it bounds the true tail, and every
  // approximation is consistent with it on the scales where it prunes).
  PfiSearch search(db, min_sup, pft, /*use_chernoff=*/true, mode, stats,
                   policy, runtime, /*session=*/nullptr);
  return search.Run();
}

}  // namespace pfci
