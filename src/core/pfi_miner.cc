#include "src/core/pfi_miner.h"

#include "src/util/check.h"

namespace pfci {

std::vector<PfiEntry> MinePfi(const UncertainDatabase& db,
                              std::size_t min_sup, double pft,
                              bool use_chernoff, MiningStats* stats,
                              const TidSetPolicy& policy,
                              RunController* runtime,
                              const ExecutionContext* session) {
  PFCI_CHECK(min_sup >= 1);
  return EnumeratePfis(db, min_sup, pft, use_chernoff,
                       FrequencyMode::kExactDp, stats, policy, runtime,
                       session);
}

std::vector<PfiEntry> MinePfiApproximate(const UncertainDatabase& db,
                                         std::size_t min_sup, double pft,
                                         FrequencyMode mode,
                                         MiningStats* stats,
                                         const TidSetPolicy& policy,
                                         RunController* runtime) {
  PFCI_CHECK(min_sup >= 1);
  // The Chernoff bound stays valid (it bounds the true tail, and every
  // approximation is consistent with it on the scales where it prunes).
  return EnumeratePfis(db, min_sup, pft, /*use_chernoff=*/true, mode, stats,
                       policy, runtime, /*session=*/nullptr);
}

}  // namespace pfci
