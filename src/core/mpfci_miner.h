// MPFCI: the paper's depth-first mining algorithm (Sec. IV, Fig. 3).
//
// Enumerates itemsets in a set-enumeration tree ordered by item id (the
// paper's "alphabetic order"), applying, in order: superset pruning
// (Lemma 4.2) at node entry, Chernoff-Hoeffding pruning (Lemma 4.1) and
// exact frequent-probability pruning when generating children, subset
// pruning (Lemma 4.3) across siblings, and finally the bounding/checking
// pipeline of FcpEngine for surviving nodes. Toggling individual prunings
// off yields the MPFCI-NoCH / -NoSuper / -NoSub / -NoBound variants of the
// paper's Table VII; all variants return the same result set.
#ifndef PFCI_CORE_MPFCI_MINER_H_
#define PFCI_CORE_MPFCI_MINER_H_

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Mines all probabilistic frequent closed itemsets of `db`
/// (PrFC(X) > params.pfct with support threshold params.min_sup),
/// returning them sorted together with run statistics.
///
/// Deprecated shim: delegates to Mine() with Algorithm::kMpfci after the
/// historical CHECK on invalid params (unlike Mine()'s error-as-data).
/// Output parity with Mine() is pinned by api_contract_test; the shim is
/// removed next cycle.
[[deprecated("use Mine() with Algorithm::kMpfci")]]
MiningResult MineMpfci(const UncertainDatabase& db, const MiningParams& params);

/// Execution-aware variant used by Mine(): first-level candidate subtrees
/// of the set-enumeration tree are mined as independent work-stealing
/// tasks on `exec.pool`, each with its own Rng derived from params.seed
/// and the subtree's root item; per-task results are merged in candidate
/// order and re-sorted, so the output is bit-identical for any thread
/// count. `exec.pool == nullptr` runs sequentially.
MiningResult MineMpfci(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec);

}  // namespace pfci

#endif  // PFCI_CORE_MPFCI_MINER_H_
