#include "src/core/mpfci_miner.h"

#include "src/core/search/frontier_policies.h"
#include "src/core/search/search_driver.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace pfci {

MiningResult MineMpfci(const UncertainDatabase& db,
                       const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineMpfci(db, params, exec);
}

MiningResult MineMpfci(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  WorkStealingDfsFrontier frontier;
  return RunSearch(db, params, exec, frontier);
}

}  // namespace pfci
