#include "src/core/mpfci_miner.h"

#include <vector>

#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace pfci {

namespace {

/// DFS state shared across the whole run.
class MpfciSearch {
 public:
  MpfciSearch(const UncertainDatabase& db, const MiningParams& params)
      : params_(params),
        index_(db),
        freq_(index_, params.min_sup),
        engine_(index_, freq_, params),
        rng_(params.seed) {}

  MiningResult Run() {
    Stopwatch timer;
    BuildCandidates();
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
      const Item item = candidates_[c];
      Dfs(Itemset{item}, index_.TidsOfItem(item), candidate_pr_f_[c], c);
    }
    result_.stats.dp_runs = freq_.dp_runs();
    result_.stats.seconds = timer.ElapsedSeconds();
    result_.Sort();
    return std::move(result_);
  }

 private:
  /// Phase 1 of Fig. 1: the candidate set of probabilistic frequent
  /// single items (Lemma 4.1 + exact check).
  void BuildCandidates() {
    for (Item item : index_.occurring_items()) {
      const TidList& tids = index_.TidsOfItem(item);
      if (tids.size() < params_.min_sup) {
        ++result_.stats.pruned_by_frequency;
        continue;
      }
      if (params_.pruning.chernoff &&
          freq_.PrFUpperBound(tids) <= params_.pfct) {
        ++result_.stats.pruned_by_chernoff;
        continue;
      }
      const double pr_f = freq_.PrF(tids);
      if (pr_f <= params_.pfct) {
        ++result_.stats.pruned_by_frequency;
        continue;
      }
      candidates_.push_back(item);
      candidate_pr_f_.push_back(pr_f);
    }
  }

  /// Lemma 4.2: some item e < last(X), e not in X, has
  /// count(X+e) == count(X) -> X and its whole prefix subtree have
  /// frequent closed probability 0.
  bool SupersetPruned(const Itemset& x, const TidList& tids) const {
    const Item last = x.LastItem();
    for (Item item : index_.occurring_items()) {
      if (item >= last) break;
      if (x.Contains(item)) continue;
      const TidList& item_tids = index_.TidsOfItem(item);
      if (item_tids.size() < tids.size()) continue;
      if (IntersectTidsSize(tids, item_tids) == tids.size()) return true;
    }
    return false;
  }

  /// One node of the set-enumeration tree. `x` extends only with
  /// candidate items after position `last_candidate_pos`.
  void Dfs(const Itemset& x, const TidList& tids, double pr_f,
           std::size_t last_candidate_pos) {
    ++result_.stats.nodes_visited;

    if (params_.pruning.superset && SupersetPruned(x, tids)) {
      ++result_.stats.pruned_by_superset;
      return;
    }

    bool x_may_be_closed = true;
    for (std::size_t c = last_candidate_pos + 1; c < candidates_.size();
         ++c) {
      const Item item = candidates_[c];
      const TidList child_tids =
          IntersectTids(tids, index_.TidsOfItem(item));
      const bool same_count = child_tids.size() == tids.size();
      if (params_.pruning.subset && same_count) {
        // Lemma 4.3: X always co-occurs with X+item, so X is never
        // closed; and any sibling X+e_k (e_k > item) always co-occurs
        // with X+e_k+item, so the remaining branches are dead too.
        x_may_be_closed = false;
      }

      bool child_qualifies = child_tids.size() >= params_.min_sup;
      if (!child_qualifies) {
        ++result_.stats.pruned_by_frequency;
      } else if (params_.pruning.chernoff &&
                 freq_.PrFUpperBound(child_tids) <= params_.pfct) {
        ++result_.stats.pruned_by_chernoff;
        child_qualifies = false;
      }
      if (child_qualifies) {
        const double child_pr_f = freq_.PrF(child_tids);
        if (child_pr_f <= params_.pfct) {
          ++result_.stats.pruned_by_frequency;
        } else {
          Dfs(x.WithItem(item), child_tids, child_pr_f, c);
        }
      }
      if (params_.pruning.subset && same_count) break;
    }

    if (!x_may_be_closed) {
      ++result_.stats.pruned_by_subset;
      return;
    }
    const FcpComputation comp =
        engine_.Evaluate(x, tids, pr_f, rng_, &result_.stats);
    if (comp.is_pfci) {
      PfciEntry entry;
      entry.items = x;
      entry.fcp = comp.fcp;
      entry.pr_f = comp.pr_f;
      entry.fcp_lower = comp.bounds_computed ? comp.bounds.lower : 0.0;
      entry.fcp_upper = comp.bounds_computed ? comp.bounds.upper : comp.pr_f;
      entry.method = comp.method;
      result_.itemsets.push_back(std::move(entry));
    }
  }

  MiningParams params_;
  VerticalIndex index_;
  FrequentProbability freq_;
  FcpEngine engine_;
  Rng rng_;
  std::vector<Item> candidates_;
  std::vector<double> candidate_pr_f_;
  MiningResult result_;
};

}  // namespace

MiningResult MineMpfci(const UncertainDatabase& db,
                       const MiningParams& params) {
  PFCI_CHECK(params.min_sup >= 1);
  PFCI_CHECK(params.pfct >= 0.0 && params.pfct < 1.0);
  MpfciSearch search(db, params);
  return search.Run();
}

}  // namespace pfci
