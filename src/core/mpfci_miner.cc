#include "src/core/mpfci_miner.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/random.h"
#include "src/util/runtime.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// Shared read-only search state plus the per-subtree DFS.
///
/// Parallel structure: BuildCandidates runs once (sequentially), then each
/// first-level candidate's subtree is an independent task — the DFS below
/// candidate c only ever touches candidates after position c, the index,
/// and per-task state, so tasks never synchronize. Each task's Rng is
/// seeded by DeriveSeed(params.seed, root item), making every subtree's
/// sampling stream a pure function of the seed: the merged, re-sorted
/// output is bit-identical for any thread count.
class MpfciSearch {
 public:
  MpfciSearch(const UncertainDatabase& db, const MiningParams& params,
              const ExecutionContext& exec)
      : params_(params),
        exec_(exec),
        index_(db, TidSetPolicyFor(params), exec),
        freq_(index_.get(), params.min_sup, exec.eval_cache, exec.table_floor),
        engine_(index_.get(), freq_, params, exec) {}

  MiningResult Run() {
    Stopwatch timer;
    RunController* rt = exec_.runtime;
    // The index (built or session-borrowed) was charged into the memory
    // budget by the handle; checkpoint so an undersized budget fails
    // before any search work.
    if (rt != nullptr && rt->active()) rt->Checkpoint();

    if (rt == nullptr || !rt->StopRequested()) {
      TraceSpan span(exec_.trace, "candidate_build",
                     &result_.stats.candidate_seconds);
      BuildCandidates();
    }

    TraceSpan search_span(exec_.trace, "dfs", &result_.stats.search_seconds);
    const std::size_t n = candidates_.size();
    std::vector<MiningResult> subtree(n);
    const auto mine_subtree = [&](std::size_t c) {
      Rng rng(DeriveSeed(params_.seed, candidates_[c]));
      // Fair-share logical budgets: the quota depends only on the
      // request and the candidate count, never on scheduling.
      WorkUnitBudget unit =
          rt != nullptr ? rt->UnitBudget(c, n) : WorkUnitBudget{};
      // The executing thread's workspace: safe because a workspace is
      // only live within one PrF evaluation, which never suspends into
      // the helping scheduler.
      TaskState task{&subtree[c], &rng, &LocalDpWorkspace(), &unit};
      Dfs(task, Itemset{candidates_[c]}, index_->TidsOfItem(candidates_[c]),
          candidate_pr_f_[c], c);
      if (unit.truncated && rt != nullptr) {
        rt->RecordTruncation(Outcome::kBudgetExhausted);
      }
    };
    if (exec_.pool != nullptr && exec_.pool->num_threads() > 1) {
      // Grain 1: first-level subtrees vary wildly in cost; stealing at
      // single-subtree granularity is what balances them.
      exec_.pool->ParallelFor(n, mine_subtree, /*grain=*/1);
    } else {
      for (std::size_t c = 0; c < n; ++c) mine_subtree(c);
    }

    search_span.End();

    // Deterministic merge: candidate order, then the canonical sort.
    {
      TraceSpan span(exec_.trace, "merge", &result_.stats.merge_seconds);
      for (MiningResult& part : subtree) {
        for (PfciEntry& entry : part.itemsets) {
          result_.itemsets.push_back(std::move(entry));
        }
        AccumulateStats(part.stats);
      }
      result_.stats.dp_runs = freq_.dp_runs();
      result_.stats.cache_hits = freq_.cache_hits();
      result_.stats.cache_misses = freq_.cache_misses();
      result_.stats.dp_reused = freq_.dp_reused();
      result_.Sort();
    }
    if (rt != nullptr) {
      result_.stats.outcome = rt->outcome();
      result_.stats.truncated = rt->truncated();
    }
    result_.stats.seconds = timer.ElapsedSeconds();
    result_.stats.EmitTrace(exec_.trace);
    return std::move(result_);
  }

 private:
  /// Mutable state owned by one subtree task.
  struct TaskState {
    MiningResult* out;
    Rng* rng;
    DpWorkspace* ws;
    WorkUnitBudget* unit;
  };

  /// Phase 1 of Fig. 1: the candidate set of probabilistic frequent
  /// single items (Lemma 4.1 + exact check). With a session warm start,
  /// proofs recorded by earlier runs reject items up front (sound by
  /// anti-monotonicity: the cold run would reject them too, so the
  /// candidate set — and with it every downstream RNG stream — is
  /// unchanged); rejections found the hard way are recorded for later
  /// runs.
  void BuildCandidates() {
    ItemWarmStart* warm = exec_.warm_start;
    for (Item item : index_->occurring_items()) {
      const TidSet& tids = index_->TidsOfItem(item);
      if (tids.size() < params_.min_sup) {
        ++result_.stats.pruned_by_frequency;
        continue;
      }
      if (warm != nullptr &&
          warm->BoundFor(item, params_.min_sup) <= params_.pfct) {
        ++result_.stats.pruned_by_frequency;
        continue;
      }
      if (params_.pruning.chernoff) {
        const double upper = freq_.PrFUpperBound(tids);
        if (upper <= params_.pfct) {
          ++result_.stats.pruned_by_chernoff;
          if (warm != nullptr) {
            warm->RecordBound(item, params_.min_sup, upper);
          }
          continue;
        }
      }
      const double pr_f = freq_.PrF(tids);
      if (pr_f <= params_.pfct) {
        ++result_.stats.pruned_by_frequency;
        if (warm != nullptr) warm->RecordBound(item, params_.min_sup, pr_f);
        continue;
      }
      candidates_.push_back(item);
      candidate_pr_f_.push_back(pr_f);
    }
  }

  /// Lemma 4.2: some item e < last(X), e not in X, has
  /// count(X+e) == count(X) -> X and its whole prefix subtree have
  /// frequent closed probability 0.
  bool SupersetPruned(const Itemset& x, const TidSet& tids,
                      MiningStats& stats) const {
    const Item last = x.LastItem();
    for (Item item : index_->occurring_items()) {
      if (item >= last) break;
      if (x.Contains(item)) continue;
      const TidSet& item_tids = index_->TidsOfItem(item);
      if (item_tids.size() < tids.size()) continue;
      ++stats.intersections;
      if (IsSubsetOf(tids, item_tids)) return true;
    }
    return false;
  }

  /// One node of the set-enumeration tree. `x` extends only with
  /// candidate items after position `last_candidate_pos`.
  void Dfs(TaskState& task, const Itemset& x, const TidSet& tids,
           double pr_f, std::size_t last_candidate_pos) {
    MiningStats& stats = task.out->stats;
    // Node-expansion checkpoint (DESIGN.md §10). After any truncation the
    // unit winds down without evaluating anything further: a later
    // sampled evaluation would read a shifted RNG stream and no longer
    // match the unbudgeted run.
    PFCI_FAILPOINT("mpfci/node");
    RunController* rt = exec_.runtime;
    if (rt != nullptr && rt->Checkpoint()) return;
    if (!task.unit->TakeNode()) return;
    ++stats.nodes_visited;
    if (exec_.progress != nullptr) exec_.progress->AddNodes();

    if (params_.pruning.superset && SupersetPruned(x, tids, stats)) {
      ++stats.pruned_by_superset;
      return;
    }

    bool x_may_be_closed = true;
    for (std::size_t c = last_candidate_pos + 1; c < candidates_.size();
         ++c) {
      if (task.unit->truncated ||
          (rt != nullptr && rt->StopRequested())) {
        return;
      }
      const Item item = candidates_[c];
      const TidSet child_tids = Intersect(tids, index_->TidsOfItem(item));
      ++stats.intersections;
      const bool same_count = child_tids.size() == tids.size();
      if (params_.pruning.subset && same_count) {
        // Lemma 4.3: X always co-occurs with X+item, so X is never
        // closed; and any sibling X+e_k (e_k > item) always co-occurs
        // with X+e_k+item, so the remaining branches are dead too.
        x_may_be_closed = false;
      }

      bool child_qualifies = child_tids.size() >= params_.min_sup;
      if (!child_qualifies) {
        ++stats.pruned_by_frequency;
      } else if (params_.pruning.chernoff &&
                 freq_.PrFUpperBound(child_tids) <= params_.pfct) {
        ++stats.pruned_by_chernoff;
        child_qualifies = false;
      }
      if (child_qualifies) {
        const double child_pr_f = freq_.PrF(child_tids, *task.ws);
        if (child_pr_f <= params_.pfct) {
          ++stats.pruned_by_frequency;
        } else {
          Dfs(task, x.WithItem(item), child_tids, child_pr_f, c);
        }
      }
      if (params_.pruning.subset && same_count) break;
    }

    if (task.unit->truncated || (rt != nullptr && rt->StopRequested())) {
      return;
    }
    if (!x_may_be_closed) {
      ++stats.pruned_by_subset;
      return;
    }
    const FcpComputation comp = engine_.Evaluate(x, tids, pr_f, *task.rng,
                                                 &stats, task.ws, task.unit);
    if (comp.undecided) return;
    if (comp.is_pfci) {
      PfciEntry entry;
      entry.items = x;
      entry.fcp = comp.fcp;
      entry.pr_f = comp.pr_f;
      entry.fcp_lower = comp.bounds_computed ? comp.bounds.lower : 0.0;
      entry.fcp_upper = comp.bounds_computed ? comp.bounds.upper : comp.pr_f;
      entry.method = comp.method;
      task.out->itemsets.push_back(std::move(entry));
      if (exec_.progress != nullptr) exec_.progress->AddItemsets();
    }
  }

  /// Adds a subtree's counters into the run totals (dp_runs and seconds
  /// are owned by Run()).
  void AccumulateStats(const MiningStats& part) {
    MiningStats& total = result_.stats;
    total.nodes_visited += part.nodes_visited;
    total.pruned_by_chernoff += part.pruned_by_chernoff;
    total.pruned_by_frequency += part.pruned_by_frequency;
    total.pruned_by_superset += part.pruned_by_superset;
    total.pruned_by_subset += part.pruned_by_subset;
    total.decided_by_bounds += part.decided_by_bounds;
    total.zero_by_count += part.zero_by_count;
    total.exact_fcp_computations += part.exact_fcp_computations;
    total.sampled_fcp_computations += part.sampled_fcp_computations;
    total.total_samples += part.total_samples;
    total.intersections += part.intersections;
    total.degraded_fcp_evals += part.degraded_fcp_evals;
  }

  MiningParams params_;
  ExecutionContext exec_;
  IndexHandle index_;
  FrequentProbability freq_;
  FcpEngine engine_;
  std::vector<Item> candidates_;
  std::vector<double> candidate_pr_f_;
  MiningResult result_;
};

}  // namespace

MiningResult MineMpfci(const UncertainDatabase& db,
                       const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineMpfci(db, params, exec);
}

MiningResult MineMpfci(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  MpfciSearch search(db, params, exec);
  return search.Run();
}

}  // namespace pfci
