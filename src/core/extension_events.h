// Extension events C_i of an itemset X (paper Sec. IV.B.1).
//
// For each item e not in X, the event C_i states that "the superset X+e
// always appears together with X, at least min_sup times". The frequent
// non-closed probability of X is Pr(C_1 ∪ ... ∪ C_m) and, crucially, the
// probability of any intersection factorizes:
//
//   Pr(∩_{i∈S} C_i) = Π_{T ∈ Tids(X) \ Tids(X∪S)} (1 - p_T)
//                     * Pr{ PoissonBinomial(Tids(X∪S)) >= min_sup }
//
// because the forced-absent transactions and the support-carrying ones are
// disjoint. Events are built over ALL other items of the database —
// frequency pruning restricts what is enumerated, never what can destroy
// closedness.
#ifndef PFCI_CORE_EXTENSION_EVENTS_H_
#define PFCI_CORE_EXTENSION_EVENTS_H_

#include <cstddef>
#include <vector>

#include "src/core/frequent_probability.h"
#include "src/core/mining_result.h"
#include "src/data/itemset.h"
#include "src/data/tidset.h"
#include "src/data/vertical_index.h"
#include "src/prob/union_bounds.h"

namespace pfci {

/// One active extension event C_i.
struct ExtensionEvent {
  Item item = 0;        ///< The extending item e_i.
  TidSet tids;          ///< Tids(X + e_i).
  double log_miss = 0;  ///< log Π (1 - p_T) over Tids(X) \ Tids(X+e_i).
  double pr_freq = 0;   ///< Pr{support(X+e_i) >= min_sup}.
  double prob = 0;      ///< Pr(C_i) = exp(log_miss) * pr_freq.
};

/// The set of active (positive-probability) extension events of X.
class ExtensionEventSet {
 public:
  /// Builds the events. `x_tids` must equal index.TidsOf(x). When given,
  /// `workspace` supplies the PrF scratch buffers (otherwise the calling
  /// thread's LocalDpWorkspace() is used) and `stats` counts the tid-set
  /// operations performed.
  ExtensionEventSet(const VerticalIndex& index,
                    const FrequentProbability& freq, const Itemset& x,
                    const TidSet& x_tids, DpWorkspace* workspace = nullptr,
                    MiningStats* stats = nullptr);

  const std::vector<ExtensionEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  const TidSet& x_tids() const { return *x_tids_; }
  const VerticalIndex& index() const { return *index_; }
  std::size_t min_sup() const { return freq_->min_sup(); }

  /// Whether some item always co-occurs with X (count(X+e) == count(X)):
  /// then Pr(C_i) >= PrF(X), so PrFC(X) is exactly 0 (Lemmas 4.2/4.3).
  bool HasSameCountExtension() const { return has_same_count_extension_; }

  /// Pr(C_i) of event index i.
  double PrSingle(std::size_t i) const { return events_[i].prob; }

  /// Pr(∩_{i∈S} C_i) for sorted event indices S (|S| >= 1).
  double PrIntersection(const std::vector<std::size_t>& subset) const;

  /// All singles + pairwise intersections, as needed by Lemma 4.4.
  PairwiseProbabilities BuildPairwise() const;

 private:
  const VerticalIndex* index_;
  const FrequentProbability* freq_;
  const TidSet* x_tids_;
  std::vector<ExtensionEvent> events_;
  bool has_same_count_extension_ = false;
};

}  // namespace pfci

#endif  // PFCI_CORE_EXTENSION_EVENTS_H_
