#include "src/core/frequent_probability.h"

#include "src/prob/poisson_binomial.h"
#include "src/prob/tail_bounds.h"
#include "src/util/check.h"

namespace pfci {

namespace {

/// Tail-bound mass below which a probability is treated as exactly 0/1.
/// This is at the double rounding-noise level of the DP itself, so the
/// short circuit never changes a threshold comparison.
constexpr double kNegligible = 1e-15;

}  // namespace

FrequentProbability::FrequentProbability(const VerticalIndex& index,
                                         std::size_t min_sup)
    : index_(&index), min_sup_(min_sup) {
  PFCI_CHECK(min_sup >= 1);
}

double FrequentProbability::PrFFromProbs(const std::vector<double>& probs,
                                         std::vector<double>* dp_scratch) const {
  if (probs.size() < min_sup_) return 0.0;
  const double mu = PoissonBinomialMean(probs);
  const double s = static_cast<double>(min_sup_);
  // Upper-tail short circuit: Pr{S >= min_sup} ~ 0.
  if (BestUpperTailBound(mu, probs.size(), s) < kNegligible) return 0.0;
  // Lower-tail short circuit: Pr{S <= min_sup - 1} ~ 0 -> PrF ~ 1.
  if (ChernoffLowerTail(mu, s - 1.0) < kNegligible) return 1.0;
  dp_runs_.fetch_add(1, std::memory_order_relaxed);
  return PoissonBinomialTailAtLeast(probs.data(), probs.size(), min_sup_,
                                    dp_scratch);
}

double FrequentProbability::PrFFromProbs(
    const std::vector<double>& probs) const {
  return PrFFromProbs(probs, &LocalDpWorkspace().dp);
}

double FrequentProbability::PrF(const TidSet& tids,
                                DpWorkspace& workspace) const {
  if (tids.size() < min_sup_) return 0.0;
  index_->GatherProbs(tids, &workspace.probs);
  return PrFFromProbs(workspace.probs, &workspace.dp);
}

double FrequentProbability::PrF(const TidSet& tids) const {
  return PrF(tids, LocalDpWorkspace());
}

double FrequentProbability::PrFUpperBound(const TidSet& tids) const {
  if (tids.size() < min_sup_) return 0.0;
  return BestUpperTailBound(index_->SumProbsOf(tids), tids.size(),
                            static_cast<double>(min_sup_));
}

}  // namespace pfci
