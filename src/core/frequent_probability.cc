#include "src/core/frequent_probability.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/prob/poisson_binomial.h"
#include "src/prob/tail_bounds.h"
#include "src/util/check.h"

namespace pfci {

namespace {

/// Tail-bound mass below which a probability is treated as exactly 0/1.
/// This is at the double rounding-noise level of the DP itself, so the
/// short circuit never changes a threshold comparison.
constexpr double kNegligible = 1e-15;

}  // namespace

FrequentProbability::FrequentProbability(const VerticalIndex& index,
                                         std::size_t min_sup,
                                         EvalCache* cache,
                                         std::size_t table_floor)
    : index_(&index),
      min_sup_(min_sup),
      cache_(cache),
      table_floor_(table_floor) {
  PFCI_CHECK(min_sup >= 1);
}

double FrequentProbability::PrFFromProbs(const std::vector<double>& probs,
                                         std::vector<double>* dp_scratch) const {
  if (probs.size() < min_sup_) return 0.0;
  const double mu = PoissonBinomialMean(probs);
  const double s = static_cast<double>(min_sup_);
  // Upper-tail short circuit: Pr{S >= min_sup} ~ 0.
  if (BestUpperTailBound(mu, probs.size(), s) < kNegligible) return 0.0;
  // Lower-tail short circuit: Pr{S <= min_sup - 1} ~ 0 -> PrF ~ 1.
  if (ChernoffLowerTail(mu, s - 1.0) < kNegligible) return 1.0;
  dp_runs_.fetch_add(1, std::memory_order_relaxed);
  return PoissonBinomialTailAtLeast(probs.data(), probs.size(), min_sup_,
                                    dp_scratch);
}

double FrequentProbability::PrFFromProbs(
    const std::vector<double>& probs) const {
  return PrFFromProbs(probs, &LocalDpWorkspace().dp);
}

double FrequentProbability::PrF(const TidSet& tids,
                                DpWorkspace& workspace) const {
  if (tids.size() < min_sup_) return 0.0;
  if (cache_ != nullptr) return CachedPrF(tids, workspace);
  index_->GatherProbs(tids, &workspace.probs);
  return PrFFromProbs(workspace.probs, &workspace.dp);
}

double FrequentProbability::CachedPrF(const TidSet& tids,
                                      DpWorkspace& workspace) const {
  const double s = static_cast<double>(min_sup_);
  const EvalCache::Lookup lookup = cache_->Probe(tids, min_sup_);
  if (lookup.found) {
    // Replay the short circuits off the cached mu first: the tail table
    // holds raw DP values, but an uncached run that short-circuits never
    // reaches the DP, and bit-identity means matching that path too. The
    // cached mu is the ascending-tid-order sum, the same value
    // PoissonBinomialMean produces from the gathered probabilities.
    if (BestUpperTailBound(lookup.mu, tids.size(), s) < kNegligible) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return 0.0;
    }
    if (ChernoffLowerTail(lookup.mu, s - 1.0) < kNegligible) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return 1.0;
    }
    if (lookup.has_table) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      dp_reused_.fetch_add(1, std::memory_order_relaxed);
      return lookup.tail;
    }
  }
  // Miss, or a stored table truncated below this min_sup: gather and
  // compute the full tail table so this and every smaller threshold are
  // answered from the cache next time.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  index_->GatherProbs(tids, &workspace.probs);
  const std::vector<double>& probs = workspace.probs;
  const double mu =
      lookup.found ? lookup.mu : PoissonBinomialMean(probs);
  if (!lookup.found) {
    if (BestUpperTailBound(mu, probs.size(), s) < kNegligible) {
      // PrF ~ 0 here and even smaller at every higher threshold, where
      // the mu replay short-circuits again: no table needed.
      cache_->Insert(tids, mu, 0, {1.0});
      return 0.0;
    }
    if (ChernoffLowerTail(mu, s - 1.0) < kNegligible) {
      // PrF ~ 1 here, but a HIGHER threshold may not short-circuit; with
      // a floor set (sweep), prefill the table it will need — unless the
      // short circuit still fires at the floor itself, in which case it
      // fires at every threshold up to it (the lower-tail mass only
      // grows with the threshold) and the table would never be read.
      // The return value stays the short-circuit 1.0 either way.
      const std::size_t floor = std::min(table_floor_, probs.size());
      if (floor > min_sup_ &&
          ChernoffLowerTail(mu, static_cast<double>(floor) - 1.0) >=
              kNegligible) {
        dp_runs_.fetch_add(1, std::memory_order_relaxed);
        std::vector<double> table;
        PoissonBinomialTailTable(probs.data(), probs.size(), floor,
                                 &workspace.dp, &table);
        cache_->Insert(tids, mu, floor, std::move(table));
      } else {
        cache_->Insert(tids, mu, 0, {1.0});
      }
      return 1.0;
    }
  }
  dp_runs_.fetch_add(1, std::memory_order_relaxed);
  // Extend the table to the floor (clamped to |tids|: any probe above
  // that size is rejected by the tids.size() check before reaching the
  // cache). table[t] is bit-identical to a direct DP at t for every
  // t <= threshold, so the floor changes work done, never values.
  const std::size_t threshold =
      std::max(min_sup_, std::min(table_floor_, probs.size()));
  std::vector<double> table;
  PoissonBinomialTailTable(probs.data(), probs.size(), threshold,
                           &workspace.dp, &table);
  const double result = table[min_sup_];
  cache_->Insert(tids, mu, threshold, std::move(table));
  return result;
}

double FrequentProbability::PrF(const TidSet& tids) const {
  return PrF(tids, LocalDpWorkspace());
}

double FrequentProbability::PrFUpperBound(const TidSet& tids) const {
  if (tids.size() < min_sup_) return 0.0;
  return BestUpperTailBound(index_->SumProbsOf(tids), tids.size(),
                            static_cast<double>(min_sup_));
}

}  // namespace pfci
