#include "src/core/mine.h"

#include <cstddef>
#include <memory>
#include <utility>

#include "src/core/bfs_miner.h"
#include "src/core/brute_force.h"
#include "src/core/expected_support_miner.h"
#include "src/core/item_uncertain_miners.h"
#include "src/core/mpfci_miner.h"
#include "src/core/naive_miner.h"
#include "src/core/pfi_miner.h"
#include "src/core/search/run_snapshot.h"
#include "src/core/topk_miner.h"
#include "src/data/item_uncertain_database.h"
#include "src/data/world_enumerator.h"
#include "src/util/retry.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// The single name table behind AlgorithmName / ParseAlgorithm /
/// AllAlgorithms — adding an algorithm means adding one row here.
struct AlgorithmNameRow {
  Algorithm algorithm;
  const char* name;
};

constexpr AlgorithmNameRow kAlgorithmNames[] = {
    {Algorithm::kMpfci, "mpfci"},
    {Algorithm::kMpfciBfs, "bfs"},
    {Algorithm::kNaive, "naive"},
    {Algorithm::kTopK, "topk"},
    {Algorithm::kPfi, "pfi"},
    {Algorithm::kExpectedSupport, "esup"},
    {Algorithm::kExpectedSupportFpGrowth, "esup-fp"},
    {Algorithm::kBruteForce, "brute"},
    {Algorithm::kItemExpectedSupport, "item-esup"},
    {Algorithm::kItemPfi, "item-pfi"},
};

bool UsesMinEsup(Algorithm algorithm) {
  return algorithm == Algorithm::kExpectedSupport ||
         algorithm == Algorithm::kExpectedSupportFpGrowth ||
         algorithm == Algorithm::kItemExpectedSupport;
}

bool IsItemLevel(Algorithm algorithm) {
  return algorithm == Algorithm::kItemExpectedSupport ||
         algorithm == Algorithm::kItemPfi;
}

/// Algorithms whose frontier policies implement Save/RestoreState. The
/// others still honor snapshot.save_path with a restart-only marker
/// (has_frontier false: resuming reruns from scratch, which is trivially
/// bit-identical).
bool SupportsFrontierResume(Algorithm algorithm) {
  return algorithm == Algorithm::kMpfci ||
         algorithm == Algorithm::kMpfciBfs ||
         algorithm == Algorithm::kNaive || algorithm == Algorithm::kTopK;
}

bool UsesSnapshot(const MiningRequest& request) {
  return !request.snapshot.save_path.empty() ||
         !request.snapshot.resume_path.empty();
}

/// Fingerprint of everything that determines the result: the database
/// contents plus the result-relevant request fields. Execution policy
/// and tidset_mode are deliberately excluded (results are invariant to
/// both, so cross-thread / cross-mode resume is supported); progress,
/// trace, budget, and cancel never affect which entries a completed run
/// reports.
std::uint64_t RequestFingerprint(const UncertainDatabase& db,
                                 const MiningRequest& request) {
  const MiningParams& p = request.params;
  std::uint64_t h = FingerprintDatabase(db);
  h = FnvMixString(h, AlgorithmName(request.algorithm));
  h = FnvMix(h, static_cast<std::uint64_t>(p.min_sup));
  h = FnvMixDouble(h, p.pfct);
  h = FnvMixDouble(h, p.epsilon);
  h = FnvMixDouble(h, p.delta);
  h = FnvMix(h, static_cast<std::uint64_t>(p.pruning.chernoff) |
                    static_cast<std::uint64_t>(p.pruning.superset) << 1 |
                    static_cast<std::uint64_t>(p.pruning.subset) << 2 |
                    static_cast<std::uint64_t>(p.pruning.fcp_bounds) << 3);
  h = FnvMix(h, static_cast<std::uint64_t>(p.exact_event_limit));
  h = FnvMix(h, static_cast<std::uint64_t>(p.force_sampling));
  h = FnvMix(h, p.seed);
  h = FnvMix(h, static_cast<std::uint64_t>(request.top_k));
  h = FnvMixDouble(h, request.min_esup);
  return h;
}

/// min_esup <= 0 defaults to params.min_sup (the natural "same threshold,
/// other measure" reading).
double EffectiveMinEsup(const MiningRequest& request) {
  return request.min_esup > 0.0
             ? request.min_esup
             : static_cast<double>(request.params.min_sup);
}

/// An empty result carrying an API-boundary diagnosis as data.
MiningResult InvalidRequestResult(const std::string& why) {
  MiningResult result;
  result.stats.outcome = Outcome::kInvalidRequest;
  result.status_message = "invalid MiningRequest: " + why;
  return result;
}

/// Stamps the fail-soft outcome of a finished run into its stats.
void StampOutcome(MiningResult* result, const RunController* runtime) {
  if (runtime == nullptr) return;
  result->stats.outcome = runtime->outcome();
  result->stats.truncated = runtime->truncated();
}

/// PFI mining through the unified interface: entries carry pr_f, fcp 0.
MiningResult RunPfi(const UncertainDatabase& db, const MiningRequest& request,
                    const ExecutionContext& exec) {
  Stopwatch timer;
  MiningResult result;
  {
    TraceSpan span(exec.trace, "search", &result.stats.search_seconds);
    const std::vector<PfiEntry> pfis =
        MinePfi(db, request.params.min_sup, request.params.pfct,
                request.params.pruning.chernoff, &result.stats,
                TidSetPolicyFor(request.params), exec.runtime, &exec);
    result.itemsets.reserve(pfis.size());
    for (const PfiEntry& pfi : pfis) {
      PfciEntry entry;
      entry.items = pfi.items;
      entry.pr_f = pfi.pr_f;
      entry.fcp = 0.0;
      entry.fcp_upper = pfi.pr_f;
      result.itemsets.push_back(std::move(entry));
    }
  }
  if (exec.progress != nullptr) {
    exec.progress->AddItemsets(result.itemsets.size());
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.Sort();
  }
  StampOutcome(&result, exec.runtime);
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

/// Expected-support mining through the unified interface: the expected
/// support is reported in the pr_f field, fcp is 0. `fp_growth` selects
/// the weighted FP-growth baseline (same answer, no fail-soft hooks).
MiningResult RunExpectedSupport(const UncertainDatabase& db,
                                const MiningRequest& request,
                                const ExecutionContext& exec,
                                bool fp_growth) {
  Stopwatch timer;
  MiningResult result;
  const double min_esup = EffectiveMinEsup(request);
  {
    TraceSpan span(exec.trace, "search", &result.stats.search_seconds);
    const std::vector<ExpectedSupportEntry> entries =
        fp_growth ? internal::MineExpectedSupportFpGrowth(db, min_esup)
                  : MineExpectedSupport(db, min_esup, &result.stats,
                                        exec.runtime,
                                        TidSetPolicyFor(request.params),
                                        &exec);
    result.itemsets.reserve(entries.size());
    for (const ExpectedSupportEntry& in : entries) {
      PfciEntry entry;
      entry.items = in.items;
      entry.pr_f = in.expected_support;
      entry.fcp = 0.0;
      entry.fcp_upper = in.expected_support;
      result.itemsets.push_back(std::move(entry));
    }
  }
  if (exec.progress != nullptr) {
    exec.progress->AddItemsets(result.itemsets.size());
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.Sort();
  }
  StampOutcome(&result, exec.runtime);
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

/// Possible-world oracle through the unified interface: exact PrFC in
/// the fcp field. The caller already rejected oversized databases.
MiningResult RunBruteForce(const UncertainDatabase& db,
                           const MiningRequest& request,
                           const ExecutionContext& exec) {
  Stopwatch timer;
  MiningResult result;
  {
    TraceSpan span(exec.trace, "search", &result.stats.search_seconds);
    const std::vector<FcpGroundTruth> truths = internal::BruteForceMinePfci(
        db, request.params.min_sup, request.params.pfct, exec);
    result.itemsets.reserve(truths.size());
    for (const FcpGroundTruth& truth : truths) {
      PfciEntry entry;
      entry.items = truth.items;
      entry.fcp = truth.fcp;
      entry.fcp_lower = truth.fcp;
      entry.fcp_upper = truth.fcp;
      entry.method = FcpMethod::kExact;
      result.itemsets.push_back(std::move(entry));
    }
  }
  if (exec.progress != nullptr) {
    exec.progress->AddItemsets(result.itemsets.size());
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.Sort();
  }
  StampOutcome(&result, exec.runtime);
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

/// Flushes the run's sinks on every exit path (including invalid
/// requests and stopped runs): the final progress snapshot and any
/// buffered trace events must reach the caller no matter how Mine()
/// returns.
struct FlushOnExit {
  TraceSink* trace = nullptr;
  ProgressSink* progress = nullptr;

  ~FlushOnExit() {
    if (trace != nullptr) trace->Flush();
    if (progress != nullptr) progress->Flush();
  }
};

MiningResult MineImpl(const UncertainDatabase& db,
                      const MiningRequest& request,
                      const SessionBindings* bindings) {
  const std::string error = ValidateRequest(request);
  if (!error.empty()) {
    // API-boundary errors are reported as data, not aborts: the caller
    // gets an empty result carrying the diagnosis.
    return InvalidRequestResult(error);
  }
  if (IsItemLevel(request.algorithm)) {
    return InvalidRequestResult(
        std::string("algorithm ") + AlgorithmName(request.algorithm) +
        " mines an ItemUncertainDatabase; use the item-level Mine() "
        "overload");
  }
  if (!request.sweep_min_sup.empty()) {
    return InvalidRequestResult(
        "sweep_min_sup is served by MiningSession::MineSweep; single-shot "
        "Mine() requires it empty");
  }
  if (request.algorithm == Algorithm::kBruteForce &&
      db.size() > kMaxEnumerableTransactions) {
    return InvalidRequestResult(
        "algorithm brute enumerates all 2^n possible worlds and requires "
        "db.size() <= " +
        std::to_string(kMaxEnumerableTransactions) + " (got " +
        std::to_string(db.size()) + ")");
  }

  // Resume loads and verifies the snapshot before any work: a missing,
  // torn, or mismatched snapshot is an API-boundary error reported as
  // data, never a silent from-scratch rerun.
  const std::uint64_t fingerprint =
      UsesSnapshot(request) ? RequestFingerprint(db, request) : 0;
  RunSnapshot resume_snapshot;
  bool resuming = false;
  if (!request.snapshot.resume_path.empty()) {
    const std::string load_error =
        LoadRunSnapshot(request.snapshot.resume_path, &resume_snapshot);
    if (!load_error.empty()) {
      return InvalidRequestResult("snapshot.resume_path: " + load_error);
    }
    if (resume_snapshot.algorithm != AlgorithmName(request.algorithm)) {
      return InvalidRequestResult(
          "snapshot.resume_path: snapshot was written by algorithm '" +
          resume_snapshot.algorithm + "' but the request asks for '" +
          AlgorithmName(request.algorithm) + "'");
    }
    if (resume_snapshot.fingerprint != fingerprint) {
      return InvalidRequestResult(
          "snapshot.resume_path: fingerprint mismatch — the snapshot was "
          "written for a different database or different result-relevant "
          "parameters (thread count and tidset_mode may differ freely)");
    }
    resuming = true;
  }

  // Thread-count 0 means "library default": share the lazily-created
  // global pool. An explicit count gets a dedicated pool of that size so
  // the request's policy is honored exactly.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (request.execution.num_threads == 0) {
    pool = &ThreadPool::Shared();
  } else {
    owned_pool =
        std::make_unique<ThreadPool>(ResolveNumThreads(request.execution));
    pool = owned_pool.get();
  }

  std::unique_ptr<ProgressSink> sink;
  if (request.progress) {
    sink = std::make_unique<ProgressSink>(request.progress,
                                          request.progress_interval);
  }

  RunController controller(request.budget, request.cancel);

  // A save path arms drain-at-unit-boundary suspension for the
  // frontier-resumable algorithms: a stop request then lets in-flight
  // units finish (refusing new ones), so the captured frontier needs no
  // attribution surgery. Arming makes the controller active, so the
  // runtime is always wired when a snapshot may be written.
  RunSnapshot save_snapshot;
  const bool save_requested = !request.snapshot.save_path.empty();
  if (save_requested && SupportsFrontierResume(request.algorithm)) {
    controller.ArmSuspend();
  }

  ExecutionContext exec;
  exec.pool = pool;
  exec.deterministic = request.execution.deterministic;
  exec.progress = sink.get();
  exec.trace = request.trace;
  if (controller.active()) exec.runtime = &controller;
  if (resuming) exec.resume_snapshot = &resume_snapshot;
  if (save_requested) exec.save_snapshot = &save_snapshot;
  if (bindings != nullptr) {
    exec.shared_index = bindings->index;
    exec.eval_cache = bindings->eval_cache;
    exec.warm_start = bindings->warm_start;
    exec.table_floor = bindings->table_floor;
  }

  // Sinks flush on every exit path: a cancelled or deadline-stopped run
  // still delivers its final progress snapshot and buffered trace events.
  FlushOnExit flusher{exec.trace, sink.get()};

  TraceRunBegin(exec.trace, AlgorithmName(request.algorithm));
  MiningResult result;
  switch (request.algorithm) {
    case Algorithm::kMpfci:
      result = MineMpfci(db, request.params, exec);
      break;
    case Algorithm::kMpfciBfs:
      result = MineMpfciBfs(db, request.params, exec);
      break;
    case Algorithm::kNaive:
      result = MineNaive(db, request.params, exec);
      break;
    case Algorithm::kTopK:
      result = MineTopKPfci(db, request.params, request.top_k, exec);
      break;
    case Algorithm::kPfi:
      result = RunPfi(db, request, exec);
      break;
    case Algorithm::kExpectedSupport:
      result = RunExpectedSupport(db, request, exec, /*fp_growth=*/false);
      break;
    case Algorithm::kExpectedSupportFpGrowth:
      result = RunExpectedSupport(db, request, exec, /*fp_growth=*/true);
      break;
    case Algorithm::kBruteForce:
      result = RunBruteForce(db, request, exec);
      break;
    case Algorithm::kItemExpectedSupport:
    case Algorithm::kItemPfi:
      break;  // Rejected above.
  }

  if (resuming) result.stats.resumed = true;
  if (!result.ok() && result.status_message.empty()) {
    result.status_message =
        std::string("run stopped: ") + OutcomeName(result.outcome());
  }
  // A stopped run persists its state for a later resume. Algorithms
  // without frontier capture (or runs stopped before the first drain)
  // write a restart-only marker — resuming from it reruns from scratch,
  // which is trivially bit-identical. The atomic save is retried with
  // backoff; a persistent failure is reported in status_message but
  // never changes the run's outcome (the in-memory result is still a
  // verified partial answer).
  if (save_requested && !result.ok() &&
      result.outcome() != Outcome::kInvalidRequest) {
    save_snapshot.algorithm = AlgorithmName(request.algorithm);
    save_snapshot.fingerprint = fingerprint;
    RetryPolicy retry;
    retry.seed = request.params.seed;
    const RetryResult saved = RetryWithBackoff(retry, [&] {
      return SaveRunSnapshotAtomic(save_snapshot, request.snapshot.save_path);
    });
    if (saved.succeeded) {
      result.stats.snapshot_bytes = SerializeRunSnapshot(save_snapshot).size();
    } else {
      result.status_message += "; snapshot save failed after " +
                               std::to_string(saved.attempts) +
                               " attempts: " + saved.last_error;
    }
  }
  TraceRunEnd(exec.trace, AlgorithmName(request.algorithm),
              result.itemsets.size(), result.stats.seconds);
  return result;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  for (const AlgorithmNameRow& row : kAlgorithmNames) {
    if (row.algorithm == algorithm) return row.name;
  }
  return "unknown";
}

bool ParseAlgorithm(const std::string& name, Algorithm* algorithm) {
  for (const AlgorithmNameRow& row : kAlgorithmNames) {
    if (name == row.name) {
      *algorithm = row.algorithm;
      return true;
    }
  }
  return false;
}

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm> kAll = [] {
    std::vector<Algorithm> all;
    for (const AlgorithmNameRow& row : kAlgorithmNames) {
      all.push_back(row.algorithm);
    }
    return all;
  }();
  return kAll;
}

std::string ValidateRequest(const MiningRequest& request) {
  const std::string params_error = ValidateParams(request.params);
  if (!params_error.empty()) return params_error;
  if (request.algorithm == Algorithm::kTopK) {
    if (request.top_k < 1) {
      return "top_k must be >= 1 for Algorithm::kTopK";
    }
  } else if (request.top_k != 0) {
    return std::string("top_k only applies to Algorithm::kTopK; it must "
                       "stay 0 for algorithm ") +
           AlgorithmName(request.algorithm);
  }
  if (request.min_esup < 0.0) {
    return "min_esup must be >= 0";
  }
  if (request.min_esup > 0.0 && !UsesMinEsup(request.algorithm)) {
    return std::string("min_esup only applies to the expected-support "
                       "algorithms (esup, esup-fp, item-esup); it must "
                       "stay 0 for algorithm ") +
           AlgorithmName(request.algorithm);
  }
  for (std::size_t i = 0; i < request.sweep_min_sup.size(); ++i) {
    if (request.sweep_min_sup[i] < 1) {
      return "sweep_min_sup values must be >= 1";
    }
    if (i > 0 && request.sweep_min_sup[i] <= request.sweep_min_sup[i - 1]) {
      return "sweep_min_sup must be strictly increasing";
    }
  }
  if (request.progress && request.progress_interval < 1) {
    return "progress_interval must be >= 1";
  }
  if (request.budget.deadline_seconds < 0.0) {
    return "budget.deadline_seconds must be >= 0";
  }
  if (request.budget.degrade_fraction <= 0.0 ||
      request.budget.degrade_fraction > 1.0) {
    return "budget.degrade_fraction must be in (0, 1]";
  }
  if (UsesSnapshot(request) && !request.execution.deterministic) {
    return "snapshot.save_path / snapshot.resume_path require "
           "execution.deterministic (a nondeterministic run has no "
           "bit-identical continuation to resume)";
  }
  return "";
}

MiningResult Mine(const UncertainDatabase& db, const MiningRequest& request) {
  return MineImpl(db, request, /*bindings=*/nullptr);
}

MiningResult MineWithBindings(const UncertainDatabase& db,
                              const MiningRequest& request,
                              const SessionBindings& bindings) {
  return MineImpl(db, request, &bindings);
}

MiningResult Mine(const ItemUncertainDatabase& db,
                  const MiningRequest& request) {
  const std::string error = ValidateRequest(request);
  if (!error.empty()) return InvalidRequestResult(error);
  if (!IsItemLevel(request.algorithm)) {
    return InvalidRequestResult(
        std::string("algorithm ") + AlgorithmName(request.algorithm) +
        " mines a tuple-level UncertainDatabase; the item-level Mine() "
        "overload serves item-esup and item-pfi");
  }
  if (UsesSnapshot(request)) {
    return InvalidRequestResult(
        "snapshot save/resume applies to the tuple-level Mine() overload "
        "only");
  }
  if (!request.sweep_min_sup.empty()) {
    return InvalidRequestResult(
        "sweep_min_sup is served by MiningSession::MineSweep; single-shot "
        "Mine() requires it empty");
  }

  FlushOnExit flusher{request.trace, nullptr};
  TraceRunBegin(request.trace, AlgorithmName(request.algorithm));
  Stopwatch timer;
  MiningResult result;
  if (request.algorithm == Algorithm::kItemExpectedSupport) {
    const std::vector<ExpectedSupportEntry> entries =
        internal::MineExpectedSupportItemLevel(db, EffectiveMinEsup(request));
    result.itemsets.reserve(entries.size());
    for (const ExpectedSupportEntry& in : entries) {
      PfciEntry entry;
      entry.items = in.items;
      entry.pr_f = in.expected_support;
      entry.fcp = 0.0;
      entry.fcp_upper = in.expected_support;
      result.itemsets.push_back(std::move(entry));
    }
  } else {
    const std::vector<ItemPfiEntry> entries = internal::MinePfiItemLevel(
        db, request.params.min_sup, request.params.pfct);
    result.itemsets.reserve(entries.size());
    for (const ItemPfiEntry& in : entries) {
      PfciEntry entry;
      entry.items = in.items;
      entry.pr_f = in.pr_f;
      entry.fcp = 0.0;
      entry.fcp_upper = in.pr_f;
      result.itemsets.push_back(std::move(entry));
    }
  }
  result.Sort();
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(request.trace);
  TraceRunEnd(request.trace, AlgorithmName(request.algorithm),
              result.itemsets.size(), result.stats.seconds);
  return result;
}

}  // namespace pfci
