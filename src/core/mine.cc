#include "src/core/mine.h"

#include <memory>
#include <utility>

#include "src/core/bfs_miner.h"
#include "src/core/expected_support_miner.h"
#include "src/core/mpfci_miner.h"
#include "src/core/naive_miner.h"
#include "src/core/pfi_miner.h"
#include "src/core/topk_miner.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// Stamps the fail-soft outcome of a finished run into its stats.
void StampOutcome(MiningResult* result, const RunController* runtime) {
  if (runtime == nullptr) return;
  result->stats.outcome = runtime->outcome();
  result->stats.truncated = runtime->truncated();
}

/// PFI mining through the unified interface: entries carry pr_f, fcp 0.
MiningResult RunPfi(const UncertainDatabase& db, const MiningRequest& request,
                    const ExecutionContext& exec) {
  Stopwatch timer;
  MiningResult result;
  {
    TraceSpan span(exec.trace, "search", &result.stats.search_seconds);
    const std::vector<PfiEntry> pfis =
        MinePfi(db, request.params.min_sup, request.params.pfct,
                request.params.pruning.chernoff, &result.stats,
                TidSetPolicyFor(request.params), exec.runtime);
    result.itemsets.reserve(pfis.size());
    for (const PfiEntry& pfi : pfis) {
      PfciEntry entry;
      entry.items = pfi.items;
      entry.pr_f = pfi.pr_f;
      entry.fcp = 0.0;
      entry.fcp_upper = pfi.pr_f;
      result.itemsets.push_back(std::move(entry));
    }
  }
  if (exec.progress != nullptr) {
    exec.progress->AddItemsets(result.itemsets.size());
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.Sort();
  }
  StampOutcome(&result, exec.runtime);
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

/// Expected-support mining through the unified interface: the expected
/// support is reported in the pr_f field, fcp is 0.
MiningResult RunExpectedSupport(const UncertainDatabase& db,
                                const MiningRequest& request,
                                const ExecutionContext& exec) {
  Stopwatch timer;
  MiningResult result;
  const double min_esup = request.min_esup > 0.0
                              ? request.min_esup
                              : static_cast<double>(request.params.min_sup);
  {
    TraceSpan span(exec.trace, "search", &result.stats.search_seconds);
    const std::vector<ExpectedSupportEntry> entries =
        MineExpectedSupport(db, min_esup, &result.stats, exec.runtime);
    result.itemsets.reserve(entries.size());
    for (const ExpectedSupportEntry& in : entries) {
      PfciEntry entry;
      entry.items = in.items;
      entry.pr_f = in.expected_support;
      entry.fcp = 0.0;
      entry.fcp_upper = in.expected_support;
      result.itemsets.push_back(std::move(entry));
    }
  }
  if (exec.progress != nullptr) {
    exec.progress->AddItemsets(result.itemsets.size());
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.Sort();
  }
  StampOutcome(&result, exec.runtime);
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

/// Flushes the run's sinks on every exit path (including invalid
/// requests and stopped runs): the final progress snapshot and any
/// buffered trace events must reach the caller no matter how Mine()
/// returns.
struct FlushOnExit {
  TraceSink* trace = nullptr;
  ProgressSink* progress = nullptr;

  ~FlushOnExit() {
    if (trace != nullptr) trace->Flush();
    if (progress != nullptr) progress->Flush();
  }
};

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMpfci:
      return "mpfci";
    case Algorithm::kMpfciBfs:
      return "bfs";
    case Algorithm::kNaive:
      return "naive";
    case Algorithm::kTopK:
      return "topk";
    case Algorithm::kPfi:
      return "pfi";
    case Algorithm::kExpectedSupport:
      return "esup";
  }
  return "unknown";
}

std::string ValidateRequest(const MiningRequest& request) {
  const std::string params_error = ValidateParams(request.params);
  if (!params_error.empty()) return params_error;
  if (request.algorithm == Algorithm::kTopK && request.top_k < 1) {
    return "top_k must be >= 1 for Algorithm::kTopK";
  }
  if (request.min_esup < 0.0) {
    return "min_esup must be >= 0";
  }
  if (request.progress && request.progress_interval < 1) {
    return "progress_interval must be >= 1";
  }
  if (request.budget.deadline_seconds < 0.0) {
    return "budget.deadline_seconds must be >= 0";
  }
  if (request.budget.degrade_fraction <= 0.0 ||
      request.budget.degrade_fraction > 1.0) {
    return "budget.degrade_fraction must be in (0, 1]";
  }
  return "";
}

MiningResult Mine(const UncertainDatabase& db, const MiningRequest& request) {
  const std::string error = ValidateRequest(request);
  if (!error.empty()) {
    // API-boundary errors are reported as data, not aborts: the caller
    // gets an empty result carrying the diagnosis.
    MiningResult result;
    result.stats.outcome = Outcome::kInvalidRequest;
    result.status_message = "invalid MiningRequest: " + error;
    return result;
  }

  // Thread-count 0 means "library default": share the lazily-created
  // global pool. An explicit count gets a dedicated pool of that size so
  // the request's policy is honored exactly.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (request.execution.num_threads == 0) {
    pool = &ThreadPool::Shared();
  } else {
    owned_pool =
        std::make_unique<ThreadPool>(ResolveNumThreads(request.execution));
    pool = owned_pool.get();
  }

  std::unique_ptr<ProgressSink> sink;
  if (request.progress) {
    sink = std::make_unique<ProgressSink>(request.progress,
                                          request.progress_interval);
  }

  RunController controller(request.budget, request.cancel);

  ExecutionContext exec;
  exec.pool = pool;
  exec.deterministic = request.execution.deterministic;
  exec.progress = sink.get();
  exec.trace = request.trace;
  if (controller.active()) exec.runtime = &controller;

  // Sinks flush on every exit path: a cancelled or deadline-stopped run
  // still delivers its final progress snapshot and buffered trace events.
  FlushOnExit flusher{exec.trace, sink.get()};

  TraceRunBegin(exec.trace, AlgorithmName(request.algorithm));
  MiningResult result;
  switch (request.algorithm) {
    case Algorithm::kMpfci:
      result = MineMpfci(db, request.params, exec);
      break;
    case Algorithm::kMpfciBfs:
      result = MineMpfciBfs(db, request.params, exec);
      break;
    case Algorithm::kNaive:
      result = MineNaive(db, request.params, exec);
      break;
    case Algorithm::kTopK:
      result = MineTopKPfci(db, request.params, request.top_k, exec);
      break;
    case Algorithm::kPfi:
      result = RunPfi(db, request, exec);
      break;
    case Algorithm::kExpectedSupport:
      result = RunExpectedSupport(db, request, exec);
      break;
  }

  if (!result.ok() && result.status_message.empty()) {
    result.status_message =
        std::string("run stopped: ") + OutcomeName(result.outcome());
  }
  TraceRunEnd(exec.trace, AlgorithmName(request.algorithm),
              result.itemsets.size(), result.stats.seconds);
  return result;
}

}  // namespace pfci
