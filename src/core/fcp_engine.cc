#include "src/core/fcp_engine.h"

#include <algorithm>

#include "src/core/fcp_exact.h"
#include "src/core/fcp_sampler.h"
#include "src/prob/inclusion_exclusion.h"

namespace pfci {

namespace {

/// Bounds closer than this are treated as having met ("upper == lower" in
/// the paper's Fig. 3, line 9).
constexpr double kBoundsMeetTolerance = 1e-12;

}  // namespace

FcpEngine::FcpEngine(const VerticalIndex& index,
                     const FrequentProbability& freq,
                     const MiningParams& params, const ExecutionContext& exec)
    : index_(&index), freq_(&freq), params_(params), exec_(exec) {}

FcpComputation FcpEngine::Evaluate(const Itemset& x, const TidSet& tids,
                                   double pr_f, Rng& rng, MiningStats* stats,
                                   DpWorkspace* workspace) const {
  return EvaluateInternal(x, tids, pr_f, params_.pfct, rng, stats, workspace);
}

FcpComputation FcpEngine::ComputeFcp(const Itemset& x, Rng& rng) const {
  const TidSet tids = index_->TidsOf(x);
  const double pr_f = freq_->PrF(tids);
  // pfct = -1 disables every threshold-based early exit.
  return EvaluateInternal(x, tids, pr_f, -1.0, rng, nullptr, nullptr);
}

FcpComputation FcpEngine::EvaluateInternal(const Itemset& x,
                                           const TidSet& tids, double pr_f,
                                           double pfct, Rng& rng,
                                           MiningStats* stats,
                                           DpWorkspace* workspace) const {
  FcpComputation out;
  out.pr_f = pr_f;
  // PrFC <= PrF: an infrequent itemset can never qualify.
  if (pr_f <= pfct) {
    out.is_pfci = false;
    return out;
  }

  const ExtensionEventSet events(*index_, *freq_, x, tids, workspace, stats);

  // Lemmas 4.2/4.3 endgame: a same-count superset forces PrFC(X) = 0.
  if (events.HasSameCountExtension()) {
    out.fcp = 0.0;
    out.method = FcpMethod::kZeroByCount;
    out.is_pfci = false;
    if (stats != nullptr) ++stats->zero_by_count;
    return out;
  }

  if (params_.pruning.fcp_bounds) {
    out.bounds = ComputeFcpBounds(pr_f, events);
    out.bounds_computed = true;
    if (out.bounds.upper <= pfct) {
      out.fcp = out.bounds.upper;
      out.method = FcpMethod::kBoundsDecided;
      out.is_pfci = false;
      if (stats != nullptr) ++stats->decided_by_bounds;
      return out;
    }
    if (out.bounds.upper - out.bounds.lower < kBoundsMeetTolerance) {
      out.fcp = 0.5 * (out.bounds.upper + out.bounds.lower);
      out.method = FcpMethod::kBoundsDecided;
      out.is_pfci = out.fcp > pfct;
      if (stats != nullptr) ++stats->decided_by_bounds;
      return out;
    }
  }

  if (!params_.force_sampling && events.size() <= params_.exact_event_limit &&
      events.size() <= kMaxInclusionExclusionEvents) {
    out.fcp = ExactFcpByInclusionExclusion(pr_f, events);
    out.method = FcpMethod::kExact;
    if (stats != nullptr) ++stats->exact_fcp_computations;
  } else {
    const ApproxFcpResult approx =
        ApproxFcp(pr_f, events, params_.epsilon, params_.delta, rng,
                  exec_.pool, exec_.deterministic);
    out.fcp = approx.fcp;
    out.samples = approx.samples;
    out.method = FcpMethod::kSampled;
    if (out.bounds_computed) {
      out.fcp = std::clamp(out.fcp, out.bounds.lower, out.bounds.upper);
    }
    if (stats != nullptr) {
      ++stats->sampled_fcp_computations;
      stats->total_samples += approx.samples;
    }
  }
  out.is_pfci = out.fcp > pfct;
  return out;
}

}  // namespace pfci
