#include "src/core/fcp_engine.h"

#include <algorithm>

#include "src/core/fcp_exact.h"
#include "src/core/fcp_sampler.h"
#include "src/prob/inclusion_exclusion.h"
#include "src/prob/karp_luby.h"

namespace pfci {

namespace {

/// Bounds closer than this are treated as having met ("upper == lower" in
/// the paper's Fig. 3, line 9).
constexpr double kBoundsMeetTolerance = 1e-12;

}  // namespace

FcpEngine::FcpEngine(const VerticalIndex& index,
                     const FrequentProbability& freq,
                     const MiningParams& params, const ExecutionContext& exec)
    : index_(&index), freq_(&freq), params_(params), exec_(exec) {}

FcpComputation FcpEngine::Evaluate(const Itemset& x, const TidSet& tids,
                                   double pr_f, Rng& rng, MiningStats* stats,
                                   DpWorkspace* workspace,
                                   WorkUnitBudget* unit) const {
  return EvaluateInternal(x, tids, pr_f, params_.pfct, rng, stats, workspace,
                          unit);
}

FcpComputation FcpEngine::EvaluateAt(double threshold, const Itemset& x,
                                     const TidSet& tids, double pr_f, Rng& rng,
                                     MiningStats* stats,
                                     DpWorkspace* workspace,
                                     WorkUnitBudget* unit) const {
  return EvaluateInternal(x, tids, pr_f, threshold, rng, stats, workspace,
                          unit);
}

FcpComputation FcpEngine::ComputeFcp(const Itemset& x, Rng& rng) const {
  const TidSet tids = index_->TidsOf(x);
  const double pr_f = freq_->PrF(tids);
  // pfct = -1 disables every threshold-based early exit.
  return EvaluateInternal(x, tids, pr_f, -1.0, rng, nullptr, nullptr, nullptr);
}

FcpComputation FcpEngine::EvaluateInternal(const Itemset& x,
                                           const TidSet& tids, double pr_f,
                                           double pfct, Rng& rng,
                                           MiningStats* stats,
                                           DpWorkspace* workspace,
                                           WorkUnitBudget* unit) const {
  FcpComputation out;
  out.pr_f = pr_f;
  // PrFC <= PrF: an infrequent itemset can never qualify.
  if (pr_f <= pfct) {
    out.is_pfci = false;
    return out;
  }

  const ExtensionEventSet events(*index_, *freq_, x, tids, workspace, stats);

  // Lemmas 4.2/4.3 endgame: a same-count superset forces PrFC(X) = 0.
  if (events.HasSameCountExtension()) {
    out.fcp = 0.0;
    out.method = FcpMethod::kZeroByCount;
    out.is_pfci = false;
    if (stats != nullptr) ++stats->zero_by_count;
    return out;
  }

  if (params_.pruning.fcp_bounds) {
    out.bounds = ComputeFcpBounds(pr_f, events);
    out.bounds_computed = true;
    if (out.bounds.upper <= pfct) {
      out.fcp = out.bounds.upper;
      out.method = FcpMethod::kBoundsDecided;
      out.is_pfci = false;
      if (stats != nullptr) ++stats->decided_by_bounds;
      return out;
    }
    if (out.bounds.upper - out.bounds.lower < kBoundsMeetTolerance) {
      out.fcp = 0.5 * (out.bounds.upper + out.bounds.lower);
      out.method = FcpMethod::kBoundsDecided;
      out.is_pfci = out.fcp > pfct;
      if (stats != nullptr) ++stats->decided_by_bounds;
      return out;
    }
  }

  // Deadline degradation (DESIGN.md §10): once the run has burned the
  // degrade fraction of its deadline, exact inclusion-exclusion — whose
  // cost is exponential in the event count — gives way to the sampler so
  // the remaining wall-clock buys more decided itemsets.
  const bool exact_eligible =
      !params_.force_sampling && events.size() <= params_.exact_event_limit &&
      events.size() <= kMaxInclusionExclusionEvents;
  const bool degraded = exact_eligible && exec_.runtime != nullptr &&
                        exec_.runtime->ShouldDegradeFcp();
  if (exact_eligible && !degraded) {
    out.fcp = ExactFcpByInclusionExclusion(pr_f, events);
    out.method = FcpMethod::kExact;
    if (stats != nullptr) ++stats->exact_fcp_computations;
  } else {
    // Pre-claim the full Karp-Luby sample requirement from the logical
    // ledger so an estimate is complete or never attempted. A refusal
    // leaves `rng` untouched (the sampler never runs), so everything the
    // unit emitted before this point matches an unbudgeted run
    // bit-for-bit; the caller must then wind the unit down.
    if (unit != nullptr && events.size() > 0 &&
        !unit->TakeSamples(KarpLubyRequiredSamples(
            events.size(), params_.epsilon, params_.delta))) {
      out.undecided = true;
      return out;
    }
    const ApproxFcpResult approx =
        ApproxFcp(pr_f, events, params_.epsilon, params_.delta, rng,
                  exec_.pool, exec_.deterministic, exec_.runtime);
    if (approx.aborted) {
      // A global stop interrupted the batches: the estimate carries no
      // FPRAS guarantee, so the itemset stays undecided and unemitted.
      out.undecided = true;
      return out;
    }
    out.fcp = approx.fcp;
    out.samples = approx.samples;
    out.method = FcpMethod::kSampled;
    if (out.bounds_computed) {
      out.fcp = std::clamp(out.fcp, out.bounds.lower, out.bounds.upper);
    }
    if (stats != nullptr) {
      ++stats->sampled_fcp_computations;
      stats->total_samples += approx.samples;
      if (degraded) ++stats->degraded_fcp_evals;
    }
  }
  out.is_pfci = out.fcp > pfct;
  return out;
}

}  // namespace pfci
