#include "src/core/expected_support_miner.h"

#include <algorithm>
#include <memory>

#include "src/core/eval_cache.h"
#include "src/core/index_handle.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

namespace pfci {

namespace {

/// Expected-support evaluation with optional cross-request mu caching:
/// the cached mu is the same ascending-tid-order sum SumProbsOf computes,
/// so cache on/off returns bit-identical values (and one entry serves
/// both esup requests and PrF short circuits).
class EsupEvaluator {
 public:
  EsupEvaluator(const VerticalIndex& index, EvalCache* cache)
      : index_(index), cache_(cache) {}

  double Esup(const TidSet& tids) {
    if (cache_ == nullptr) return index_.SumProbsOf(tids);
    const EvalCache::Lookup hit = cache_->Probe(tids, 0);
    if (hit.found) {
      ++hits_;
      return hit.mu;
    }
    ++misses_;
    const double mu = index_.SumProbsOf(tids);
    cache_->Insert(tids, mu, 0, {1.0});
    return mu;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  const VerticalIndex& index_;
  EvalCache* cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Whether the fail-soft run should wind down.
bool EsupStopped(RunController* rt, const WorkUnitBudget& unit) {
  return unit.truncated || (rt != nullptr && rt->StopRequested());
}

void Dfs(const VerticalIndex& index, EsupEvaluator& ev, double min_esup,
         const std::vector<Item>& candidates, const Itemset& x,
         const TidSet& tids, std::size_t candidate_pos,
         std::vector<ExpectedSupportEntry>* out, MiningStats* stats,
         RunController* rt, WorkUnitBudget& unit) {
  // Node-expansion checkpoint: entries emit before recursing, so cutting
  // here leaves a verified prefix in `*out`.
  PFCI_FAILPOINT("esup/node");
  if (rt != nullptr && rt->Checkpoint()) return;
  if (!unit.TakeNode()) return;
  if (stats != nullptr) ++stats->nodes_visited;
  for (std::size_t c = candidate_pos + 1; c < candidates.size(); ++c) {
    if (EsupStopped(rt, unit)) return;
    const Item item = candidates[c];
    TidSet child_tids = Intersect(tids, index.TidsOfItem(item));
    if (stats != nullptr) ++stats->intersections;
    const double esup = ev.Esup(child_tids);
    if (esup < min_esup) {
      if (stats != nullptr) ++stats->pruned_by_frequency;
      continue;
    }
    const Itemset child = x.WithItem(item);
    out->push_back(ExpectedSupportEntry{child, esup});
    Dfs(index, ev, min_esup, candidates, child, child_tids, c, out, stats,
        rt, unit);
  }
}

// ---------------------------------------------------------------------
// UF-growth-style weighted FP-growth.
// ---------------------------------------------------------------------

/// A weighted item list: a (reordered, filtered) transaction or
/// conditional-pattern-base row with a real-valued weight.
struct WeightedRow {
  std::vector<Item> items;
  double weight = 0.0;
};

/// Prefix tree with real-valued counts (the UF-growth generalization).
class WeightedFpTree {
 public:
  struct Node {
    Item item = 0;
    double weight = 0.0;
    Node* parent = nullptr;
    Node* next_same_item = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  struct HeaderEntry {
    Item item = 0;
    double total_weight = 0.0;
    Node* head = nullptr;
  };

  explicit WeightedFpTree(const std::vector<WeightedRow>& rows) {
    Item max_item_plus_one = 0;
    for (const auto& row : rows) {
      for (Item item : row.items) {
        max_item_plus_one = std::max(max_item_plus_one, item + 1);
      }
    }
    header_slot_.assign(max_item_plus_one, -1);
    for (const auto& row : rows) {
      if (!row.items.empty()) Insert(row.items, row.weight);
    }
  }

  const std::vector<HeaderEntry>& header() const { return header_; }

  std::vector<WeightedRow> ConditionalPatternBase(Item item) const {
    std::vector<WeightedRow> base;
    if (item >= header_slot_.size() || header_slot_[item] < 0) return base;
    for (const Node* node = header_[header_slot_[item]].head; node != nullptr;
         node = node->next_same_item) {
      WeightedRow row;
      row.weight = node->weight;
      for (const Node* up = node->parent;
           up != nullptr && up->parent != nullptr; up = up->parent) {
        row.items.push_back(up->item);
      }
      std::reverse(row.items.begin(), row.items.end());
      if (!row.items.empty()) base.push_back(std::move(row));
    }
    return base;
  }

 private:
  void Insert(const std::vector<Item>& items, double weight) {
    Node* node = &root_;
    for (Item item : items) {
      Node* child = nullptr;
      for (const auto& existing : node->children) {
        if (existing->item == item) {
          child = existing.get();
          break;
        }
      }
      if (child == nullptr) {
        auto owned = std::make_unique<Node>();
        child = owned.get();
        child->item = item;
        child->parent = node;
        node->children.push_back(std::move(owned));
        int slot = header_slot_[item];
        if (slot < 0) {
          slot = static_cast<int>(header_.size());
          header_slot_[item] = slot;
          header_.push_back(HeaderEntry{item, 0.0, nullptr});
        }
        child->next_same_item = header_[slot].head;
        header_[slot].head = child;
      }
      child->weight += weight;
      header_[header_slot_[item]].total_weight += weight;
      node = child;
    }
  }

  Node root_;
  std::vector<HeaderEntry> header_;
  std::vector<int> header_slot_;
};

void WeightedGrow(const std::vector<WeightedRow>& rows, double min_esup,
                  std::vector<Item>& suffix,
                  std::vector<ExpectedSupportEntry>* out) {
  const WeightedFpTree tree(rows);
  for (const WeightedFpTree::HeaderEntry& entry : tree.header()) {
    if (entry.total_weight < min_esup) continue;
    suffix.push_back(entry.item);
    out->push_back(
        ExpectedSupportEntry{Itemset(suffix), entry.total_weight});

    std::vector<WeightedRow> base = tree.ConditionalPatternBase(entry.item);
    if (!base.empty()) {
      Item max_item_plus_one = 0;
      for (const auto& row : base) {
        for (Item item : row.items) {
          max_item_plus_one = std::max(max_item_plus_one, item + 1);
        }
      }
      std::vector<double> weights(max_item_plus_one, 0.0);
      for (const auto& row : base) {
        for (Item item : row.items) weights[item] += row.weight;
      }
      std::vector<WeightedRow> filtered;
      filtered.reserve(base.size());
      for (auto& row : base) {
        WeightedRow kept;
        kept.weight = row.weight;
        for (Item item : row.items) {
          if (weights[item] >= min_esup) kept.items.push_back(item);
        }
        if (!kept.items.empty()) filtered.push_back(std::move(kept));
      }
      if (!filtered.empty()) WeightedGrow(filtered, min_esup, suffix, out);
    }
    suffix.pop_back();
  }
}

}  // namespace

namespace internal {

std::vector<ExpectedSupportEntry> MineExpectedSupportFpGrowth(
    const UncertainDatabase& db, double min_esup) {
  PFCI_CHECK(min_esup > 0.0);
  // Global expected supports; order items by descending esup for compact
  // trees (the classic FP-growth heuristic, weighted).
  std::vector<double> esup(db.MaxItemPlusOne(), 0.0);
  for (const auto& t : db.transactions()) {
    for (Item item : t.items.items()) esup[item] += t.prob;
  }
  std::vector<Item> frequent_items;
  for (Item item = 0; item < esup.size(); ++item) {
    if (esup[item] >= min_esup) frequent_items.push_back(item);
  }
  std::sort(frequent_items.begin(), frequent_items.end(),
            [&](Item a, Item b) {
              if (esup[a] != esup[b]) return esup[a] > esup[b];
              return a < b;
            });
  std::vector<std::size_t> rank(esup.size(), 0);
  std::vector<bool> is_frequent(esup.size(), false);
  for (std::size_t r = 0; r < frequent_items.size(); ++r) {
    rank[frequent_items[r]] = r;
    is_frequent[frequent_items[r]] = true;
  }

  std::vector<WeightedRow> rows;
  rows.reserve(db.size());
  for (const auto& t : db.transactions()) {
    WeightedRow row;
    row.weight = t.prob;
    for (Item item : t.items.items()) {
      if (is_frequent[item]) row.items.push_back(item);
    }
    if (row.items.empty()) continue;
    std::sort(row.items.begin(), row.items.end(),
              [&](Item a, Item b) { return rank[a] < rank[b]; });
    rows.push_back(std::move(row));
  }

  std::vector<ExpectedSupportEntry> result;
  std::vector<Item> suffix;
  WeightedGrow(rows, min_esup, suffix, &result);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace internal

std::vector<ExpectedSupportEntry> MineExpectedSupport(
    const UncertainDatabase& db, double min_esup, MiningStats* stats,
    RunController* runtime, const TidSetPolicy& policy,
    const ExecutionContext* session) {
  PFCI_CHECK(min_esup > 0.0);
  ExecutionContext exec = session != nullptr ? *session : ExecutionContext{};
  exec.runtime = runtime;
  const IndexHandle index_handle(db, policy, exec);
  const VerticalIndex& index = index_handle.get();
  EsupEvaluator ev(index, exec.eval_cache);
  // Index bytes were charged by the handle; fail an undersized memory
  // budget before any search work.
  if (runtime != nullptr && runtime->active()) runtime->Checkpoint();
  WorkUnitBudget unit =
      runtime != nullptr ? runtime->UnitBudget(0, 1) : WorkUnitBudget{};
  std::vector<ExpectedSupportEntry> result;
  std::vector<Item> candidates;
  if (runtime == nullptr || !runtime->StopRequested()) {
    for (Item item : index.occurring_items()) {
      const double esup = ev.Esup(index.TidsOfItem(item));
      if (esup >= min_esup) {
        candidates.push_back(item);
        result.push_back(ExpectedSupportEntry{Itemset{item}, esup});
      } else if (stats != nullptr) {
        ++stats->pruned_by_frequency;
      }
    }
  }
  const std::size_t num_singletons = result.size();
  for (std::size_t s = 0;
       s < num_singletons && !EsupStopped(runtime, unit); ++s) {
    const ExpectedSupportEntry seed = result[s];
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(candidates.begin(), candidates.end(),
                         seed.items.LastItem()) -
        candidates.begin());
    Dfs(index, ev, min_esup, candidates, seed.items,
        index.TidsOfItem(seed.items.LastItem()), pos, &result, stats,
        runtime, unit);
  }
  if (unit.truncated && runtime != nullptr) {
    runtime->RecordTruncation(Outcome::kBudgetExhausted);
  }
  if (stats != nullptr) {
    stats->cache_hits += ev.hits();
    stats->cache_misses += ev.misses();
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pfci
