// Two-sided bounds on the frequent closed probability (Lemma 4.4).
//
// PrFC(X) = PrF(X) - Pr(∪ C_i), so de Caen's lower bound on the union
// yields an upper bound on PrFC, and Kwerel's upper bound yields a lower
// bound. These bounds let the miner accept or reject an itemset against
// pfct without ever running the #P-hard exact computation or the sampler.
#ifndef PFCI_CORE_FCP_BOUNDS_H_
#define PFCI_CORE_FCP_BOUNDS_H_

#include "src/core/extension_events.h"

namespace pfci {

/// Bounds on PrFC(X) (and the underlying union bounds, for diagnostics).
struct FcpBounds {
  double lower = 0.0;
  double upper = 1.0;
  double union_lower = 0.0;  ///< Lower bound on Pr(∪ C_i) (de Caen et al.).
  double union_upper = 1.0;  ///< Upper bound on Pr(∪ C_i) (Kwerel et al.).
};

/// Computes Lemma 4.4's bounds from PrF(X) and the extension events.
/// Cost: O(m^2) pairwise intersection probabilities.
FcpBounds ComputeFcpBounds(double pr_f, const ExtensionEventSet& events);

}  // namespace pfci

#endif  // PFCI_CORE_FCP_BOUNDS_H_
