// ApproxFCP: the paper's FPRAS for the frequent closed probability
// (Sec. IV.B.4, Fig. 2).
//
// The frequent non-closed probability Pr(∪ C_i) is estimated by the
// Karp-Luby coverage scheme: an event C_i is drawn with probability
// Pr(C_i)/Z, a possible world is drawn from the conditional distribution
// given C_i (transactions of Tids(X) \ Tids(X+e_i) forced absent, the
// Tids(X+e_i) indicators drawn conditioned on their sum reaching min_sup),
// and the sample counts iff no earlier event also covers the world. With
// N = ceil(4 k ln(2/δ) / ε²) samples the estimate is within relative error
// ε of Pr(∪ C_i) with probability 1 - δ.
#ifndef PFCI_CORE_FCP_SAMPLER_H_
#define PFCI_CORE_FCP_SAMPLER_H_

#include <cstdint>

#include "src/core/extension_events.h"
#include "src/util/random.h"
#include "src/util/runtime.h"

namespace pfci {

class ThreadPool;

/// Result of one ApproxFCP run.
struct ApproxFcpResult {
  double fcp = 0.0;             ///< Estimated PrFC(X), clamped to [0, 1].
  double fnc = 0.0;             ///< Estimated Pr(∪ C_i).
  std::uint64_t samples = 0;    ///< Monte-Carlo samples drawn.
  std::uint64_t successes = 0;  ///< Canonical hits.

  /// True when a global stop (cancel/deadline/memory) interrupted the
  /// sample batches: the estimate misses samples and carries no FPRAS
  /// guarantee — callers must treat the evaluation as undecided and must
  /// not emit it.
  bool aborted = false;
};

/// Runs ApproxFCP. `pr_f` is the exact frequent probability of X;
/// `epsilon`/`delta` control the sample count as in the paper.
///
/// The Monte-Carlo loop runs as independently seeded sample batches whose
/// partial counts reduce in a fixed order: batch b's Rng derives from one
/// draw of `rng` and the batch index, so the estimate is a pure function
/// of the rng state — identical whether batches run sequentially
/// (`pool == nullptr`) or on any number of threads. Exactly one value is
/// consumed from `rng` per call (when events is non-empty). With
/// `deterministic` false the batch count may adapt to the pool's thread
/// count instead of the fixed default (reproducible only per thread
/// count).
///
/// `runtime`, when set, is polled at sample-batch boundaries: a global
/// stop abandons the remaining batches and returns with `aborted` set
/// (fail-soft checkpoints, DESIGN.md §10). Logical sample budgets are NOT
/// enforced here — callers pre-claim the full required sample count from
/// their WorkUnitBudget before calling (see FcpEngine), so an estimate is
/// either complete or skipped whole.
ApproxFcpResult ApproxFcp(double pr_f, const ExtensionEventSet& events,
                          double epsilon, double delta, Rng& rng,
                          ThreadPool* pool = nullptr,
                          bool deterministic = true,
                          RunController* runtime = nullptr);

}  // namespace pfci

#endif  // PFCI_CORE_FCP_SAMPLER_H_
