#include "src/core/item_uncertain_miners.h"

#include <algorithm>

#include "src/prob/poisson_binomial.h"
#include "src/prob/tail_bounds.h"
#include "src/util/check.h"

namespace pfci {

namespace {

/// The DFS carries, per node, the list of (tid, containment probability)
/// pairs with positive probability — the item-level analogue of a
/// tid-list. Extending X by item e multiplies each entry by p_{T,e}
/// (dropping transactions where e never occurs).
struct ProbList {
  std::vector<Tid> tids;
  std::vector<double> probs;

  double Sum() const {
    double total = 0.0;
    for (double p : probs) total += p;
    return total;
  }
};

/// Per-item occurrence probability lookup for one database.
class OccurrenceIndex {
 public:
  explicit OccurrenceIndex(const ItemUncertainDatabase& db) : db_(&db) {}

  /// probs of `base` multiplied by the occurrence probability of `item`
  /// in each transaction (entries without the item are dropped).
  ProbList Extend(const ProbList& base, Item item) const {
    ProbList out;
    out.tids.reserve(base.tids.size());
    out.probs.reserve(base.tids.size());
    for (std::size_t k = 0; k < base.tids.size(); ++k) {
      const auto& occurrences = db_->transaction(base.tids[k]).items;
      const auto it = std::lower_bound(
          occurrences.begin(), occurrences.end(), item,
          [](const ProbItem& occurrence, Item target) {
            return occurrence.item < target;
          });
      if (it == occurrences.end() || it->item != item) continue;
      out.tids.push_back(base.tids[k]);
      out.probs.push_back(base.probs[k] * it->prob);
    }
    return out;
  }

  ProbList Root() const {
    ProbList root;
    root.tids.resize(db_->size());
    root.probs.assign(db_->size(), 1.0);
    for (Tid tid = 0; tid < db_->size(); ++tid) root.tids[tid] = tid;
    return root;
  }

 private:
  const ItemUncertainDatabase* db_;
};

void EsupDfs(const OccurrenceIndex& index, const std::vector<Item>& universe,
             double min_esup, const Itemset& x, const ProbList& problist,
             std::size_t next_pos, std::vector<ExpectedSupportEntry>* out) {
  for (std::size_t pos = next_pos; pos < universe.size(); ++pos) {
    const ProbList child = index.Extend(problist, universe[pos]);
    const double esup = child.Sum();
    if (esup < min_esup) continue;
    const Itemset child_items = x.WithItem(universe[pos]);
    out->push_back(ExpectedSupportEntry{child_items, esup});
    EsupDfs(index, universe, min_esup, child_items, child, pos + 1, out);
  }
}

void PfiDfs(const OccurrenceIndex& index, const std::vector<Item>& universe,
            std::size_t min_sup, double pft, const Itemset& x,
            const ProbList& problist, std::size_t next_pos,
            std::vector<ItemPfiEntry>* out) {
  for (std::size_t pos = next_pos; pos < universe.size(); ++pos) {
    const ProbList child = index.Extend(problist, universe[pos]);
    if (child.tids.size() < min_sup) continue;
    // Chernoff-Hoeffding pre-filter, then the exact DP — both valid
    // because support is Poisson-binomial over child.probs.
    const double mu = PoissonBinomialMean(child.probs);
    if (BestUpperTailBound(mu, child.probs.size(),
                           static_cast<double>(min_sup)) <= pft) {
      continue;
    }
    const double pr_f = PoissonBinomialTailAtLeast(child.probs, min_sup);
    if (pr_f <= pft) continue;
    const Itemset child_items = x.WithItem(universe[pos]);
    out->push_back(ItemPfiEntry{child_items, pr_f});
    PfiDfs(index, universe, min_sup, pft, child_items, child, pos + 1, out);
  }
}

}  // namespace

namespace internal {

std::vector<ExpectedSupportEntry> MineExpectedSupportItemLevel(
    const ItemUncertainDatabase& db, double min_esup) {
  PFCI_CHECK(min_esup > 0.0);
  const OccurrenceIndex index(db);
  const std::vector<Item> universe = db.ItemUniverse();
  std::vector<ExpectedSupportEntry> result;
  EsupDfs(index, universe, min_esup, Itemset{}, index.Root(), 0, &result);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ItemPfiEntry> MinePfiItemLevel(const ItemUncertainDatabase& db,
                                           std::size_t min_sup, double pft) {
  PFCI_CHECK(min_sup >= 1);
  const OccurrenceIndex index(db);
  const std::vector<Item> universe = db.ItemUniverse();
  std::vector<ItemPfiEntry> result;
  PfiDfs(index, universe, min_sup, pft, Itemset{}, index.Root(), 0, &result);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace internal

}  // namespace pfci
