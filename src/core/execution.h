// Execution policy and progress plumbing shared by every miner.
//
// The public knobs live in ExecutionPolicy (how many threads, whether the
// run must be bit-reproducible across thread counts); the runtime state a
// miner actually carries around lives in ExecutionContext (a pool to run
// on, a progress sink to report into). Mine() translates the former into
// the latter; the compatibility wrappers build a default context.
#ifndef PFCI_CORE_EXECUTION_H_
#define PFCI_CORE_EXECUTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/runtime.h"
#include "src/util/trace.h"

namespace pfci {

class ThreadPool;
class VerticalIndex;
class EvalCache;
class ItemWarmStart;
struct RunSnapshot;

/// How a mining request is executed.
struct ExecutionPolicy {
  /// Threads the run may use; 0 means "all hardware threads". 1 runs
  /// strictly sequentially on the calling thread.
  std::size_t num_threads = 0;

  /// When true (default), results are bit-identical for every value of
  /// num_threads: subtree/batch RNGs are derived from the seed alone and
  /// reductions happen in a fixed order. When false, sampling batch
  /// granularity may adapt to the thread count (slightly less scheduling
  /// overhead, reproducible only for a fixed num_threads).
  bool deterministic = true;
};

/// Snapshot handed to a progress callback.
struct MiningProgress {
  std::uint64_t nodes_visited = 0;   ///< Search-tree nodes expanded so far.
  std::uint64_t itemsets_found = 0;  ///< Qualifying itemsets emitted so far.
};

/// Observer invoked (at a bounded rate, possibly from worker threads, but
/// never concurrently with itself) while a mining run progresses.
using ProgressCallback = std::function<void(const MiningProgress&)>;

/// Thread-safe, rate-bounded fan-in for progress reporting: miners count
/// events from any thread; the callback fires at most once per `interval`
/// nodes, serialized by an internal mutex.
class ProgressSink {
 public:
  /// `interval` >= 1: minimum node count between callback invocations.
  ProgressSink(ProgressCallback callback, std::uint64_t interval)
      : callback_(std::move(callback)),
        interval_(interval == 0 ? 1 : interval) {}

  /// Records `n` expanded nodes; may fire the callback.
  void AddNodes(std::uint64_t n = 1) {
    const std::uint64_t total =
        nodes_.fetch_add(n, std::memory_order_relaxed) + n;
    MaybeFire(total / interval_);
  }

  /// Records `n` emitted itemsets (never fires by itself; the next node
  /// tick reports it).
  void AddItemsets(std::uint64_t n = 1) {
    itemsets_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Unconditionally reports the final counts (end of the run).
  void Flush() {
    std::lock_guard<std::mutex> lock(fire_mutex_);
    callback_(Snapshot());
  }

 private:
  MiningProgress Snapshot() const {
    MiningProgress progress;
    progress.nodes_visited = nodes_.load(std::memory_order_relaxed);
    progress.itemsets_found = itemsets_.load(std::memory_order_relaxed);
    return progress;
  }

  void MaybeFire(std::uint64_t tick) {
    if (tick <= last_tick_.load(std::memory_order_relaxed)) return;
    // Losing the race just delays the report to the next tick.
    if (!fire_mutex_.try_lock()) return;
    if (last_tick_.load(std::memory_order_relaxed) < tick) {
      last_tick_.store(tick, std::memory_order_relaxed);
      callback_(Snapshot());
    }
    fire_mutex_.unlock();
  }

  ProgressCallback callback_;
  std::uint64_t interval_;
  std::atomic<std::uint64_t> nodes_{0};
  std::atomic<std::uint64_t> itemsets_{0};
  std::atomic<std::uint64_t> last_tick_{0};
  std::mutex fire_mutex_;
};

/// Runtime execution state threaded through the miners. Copyable; all
/// referenced objects are owned by the caller and must outlive the run.
struct ExecutionContext {
  ThreadPool* pool = nullptr;        ///< Null: run sequentially.
  bool deterministic = true;         ///< See ExecutionPolicy.
  ProgressSink* progress = nullptr;  ///< Null: no progress reporting.

  /// Telemetry sink; null (default) disables tracing at zero cost. All
  /// events of one run are emitted from the coordinating thread after the
  /// deterministic merge, so counter values are bit-identical across
  /// thread counts and tid-set modes (see docs/FORMATS.md for the
  /// schema and DESIGN.md §9 for the architecture).
  TraceSink* trace = nullptr;

  /// Fail-soft runtime state (cancellation, deadline, budgets); null
  /// means unlimited. Miners poll it at cooperative checkpoints and wind
  /// down with a verified partial result when it says stop (DESIGN.md
  /// §10).
  RunController* runtime = nullptr;

  /// Session-provided VerticalIndex over the run's database (DESIGN.md
  /// §11); null means "build your own". Miners borrow it when its
  /// database and tid-set mode match the request, skipping the per-run
  /// index build.
  const VerticalIndex* shared_index = nullptr;

  /// Cross-request PrF/esup evaluation cache; null (default) disables
  /// caching. Cached values are exact — results are bit-identical with
  /// the cache on or off; only work counters (dp_runs, cache_hits, ...)
  /// differ.
  EvalCache* eval_cache = nullptr;

  /// Cross-request per-item infrequency proofs; null disables
  /// warm-starting. Like the cache, affects work done, never results.
  ItemWarmStart* warm_start = nullptr;

  /// Minimum threshold up to which freshly computed DP tail tables are
  /// extended before being cached (0: just the run's min_sup). A sweep
  /// sets this to its largest threshold so the first (lowest-threshold)
  /// run prefills tables that answer every later threshold without
  /// re-running the DP. Truncation-invariance keeps table[t] bit-identical
  /// to a direct DP at t, so this affects work done, never results.
  std::size_t table_floor = 0;

  /// Snapshot to resume the run from; null starts fresh. Owned by the
  /// caller (Mine() loads and fingerprint-checks it); the search driver
  /// hands it to the frontier policy's RestoreState (DESIGN.md §14).
  const RunSnapshot* resume_snapshot = nullptr;

  /// Where the search driver deposits frontier + decided-entry state
  /// when a suspend-armed run drains; null disables state capture. Mine()
  /// owns the object and persists it after the run returns.
  RunSnapshot* save_snapshot = nullptr;
};

/// Threads a policy resolves to on this machine (>= 1).
std::size_t ResolveNumThreads(const ExecutionPolicy& policy);

/// Reusable scratch buffers for one PrF evaluation: the gathered
/// transaction probabilities and the truncated Poisson-binomial DP row.
/// Buffers grow to the run's high-water mark and are then reused, so the
/// per-node cost of PrF is a copy + DP with zero heap allocation.
struct DpWorkspace {
  std::vector<double> probs;  ///< ProbsOf(Tids(X)) gather target.
  std::vector<double> dp;     ///< DP row of length min_sup.
};

/// The calling thread's workspace (thread_local, allocated on first use).
///
/// Safe under the work-stealing helping scheduler because a workspace's
/// contents are only live inside a single PrF evaluation, which never
/// suspends: a task that blocks in ParallelFor and "helps" by running
/// another task on the same thread can only reach this workspace between
/// PrF calls, when its contents are dead.
DpWorkspace& LocalDpWorkspace();

}  // namespace pfci

#endif  // PFCI_CORE_EXECUTION_H_
