// Brute-force oracles over explicit possible-world enumeration.
//
// The naive method of Sec. I ("first enumerates all possible worlds ...
// and mines all frequent closed itemsets in each possible world").
// Exponential in the number of transactions — these exist as ground truth
// for tests and the tiny paper examples (Table III).
#ifndef PFCI_CORE_BRUTE_FORCE_H_
#define PFCI_CORE_BRUTE_FORCE_H_

#include <cstddef>
#include <vector>

#include "src/core/execution.h"
#include "src/core/mining_result.h"
#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Exact per-itemset probabilities accumulated over all possible worlds.
struct WorldProbabilities {
  double pr_f = 0.0;   ///< Frequent probability (Definition 3.4).
  double pr_c = 0.0;   ///< Closed probability (Definition 3.6).
  double pr_fc = 0.0;  ///< Frequent closed probability (Definition 3.7).
};

/// Computes PrF / PrC / PrFC of a single itemset exactly. The world space
/// is partitioned into fixed index ranges that fan out over `exec.pool`;
/// partial sums merge in range order, so the result does not depend on
/// the thread count.
///
/// Fail-soft: `exec.runtime`, when set, is polled at world-range
/// boundaries. A sum missing worlds would simply be wrong — no partial
/// answer exists here — so a stopped run returns a zeroed/empty result
/// (the caller reads the stop reason off the controller).
WorldProbabilities BruteForceItemsetProbabilities(
    const UncertainDatabase& db, const Itemset& x, std::size_t min_sup,
    const ExecutionContext& exec = ExecutionContext{});

/// An itemset with its exact frequent closed probability.
struct FcpGroundTruth {
  Itemset items;
  double fcp = 0.0;

  friend bool operator<(const FcpGroundTruth& a, const FcpGroundTruth& b) {
    return a.items < b.items;
  }
};

/// Exact PrFC of every itemset that is frequent closed in at least one
/// possible world, obtained by mining each world. Parallelized like
/// BruteForceItemsetProbabilities (fixed ranges, in-order merge).
std::vector<FcpGroundTruth> BruteForceAllFcp(
    const UncertainDatabase& db, std::size_t min_sup,
    const ExecutionContext& exec = ExecutionContext{});

namespace internal {
/// Exact probabilistic frequent closed itemsets: PrFC(X) > pfct.
/// Reached through Mine() with Algorithm::kBruteForce (which also
/// enforces the kMaxEnumerableTransactions guard as request validation).
std::vector<FcpGroundTruth> BruteForceMinePfci(
    const UncertainDatabase& db, std::size_t min_sup, double pfct,
    const ExecutionContext& exec = ExecutionContext{});
}  // namespace internal

[[deprecated("use Mine() with Algorithm::kBruteForce")]]
inline std::vector<FcpGroundTruth> BruteForceMinePfci(
    const UncertainDatabase& db, std::size_t min_sup, double pfct,
    const ExecutionContext& exec = ExecutionContext{}) {
  return internal::BruteForceMinePfci(db, min_sup, pfct, exec);
}

}  // namespace pfci

#endif  // PFCI_CORE_BRUTE_FORCE_H_
