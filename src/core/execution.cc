#include "src/core/execution.h"

#include "src/util/thread_pool.h"

namespace pfci {

std::size_t ResolveNumThreads(const ExecutionPolicy& policy) {
  if (policy.num_threads == 0) return ThreadPool::DefaultThreads();
  return policy.num_threads;
}

DpWorkspace& LocalDpWorkspace() {
  thread_local DpWorkspace workspace;
  return workspace;
}

}  // namespace pfci
