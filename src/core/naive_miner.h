// The Naive baseline of the paper's Fig. 5.
//
// First mines all probabilistic frequent itemsets with the DP-based PFI
// miner (the role TODIS [22] plays in the paper), then directly runs the
// ApproxFCP sampler on every single one of them — no bounding, no
// superset/subset pruning, no search-space sharing. This is the strawman
// whose cost explodes as min_sup decreases.
#ifndef PFCI_CORE_NAIVE_MINER_H_
#define PFCI_CORE_NAIVE_MINER_H_

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Mines probabilistic frequent closed itemsets the naive way. Returns the
/// same itemsets as the MPFCI miners (up to sampling noise on borderline
/// itemsets), but does exhaustive per-itemset work.
///
/// Deprecated shim: delegates to Mine() with Algorithm::kNaive after the
/// historical CHECK on invalid params (unlike Mine()'s error-as-data).
/// Parity pinned by api_contract_test; removed next cycle.
[[deprecated("use Mine() with Algorithm::kNaive")]]
MiningResult MineNaive(const UncertainDatabase& db,
                       const MiningParams& params);

/// Execution-aware variant used by Mine(): the per-PFI ApproxFCP checks of
/// stage 2 (the dominant cost) run as parallel tasks, each seeded from
/// params.seed and the PFI's position, merged in PFI order — output is
/// bit-identical for any thread count.
MiningResult MineNaive(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec);

}  // namespace pfci

#endif  // PFCI_CORE_NAIVE_MINER_H_
