#include "src/core/mining_result.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace pfci {

const char* FcpMethodName(FcpMethod method) {
  switch (method) {
    case FcpMethod::kUndecided:
      return "undecided";
    case FcpMethod::kZeroByCount:
      return "zero-by-count";
    case FcpMethod::kBoundsDecided:
      return "bounds";
    case FcpMethod::kExact:
      return "exact";
    case FcpMethod::kSampled:
      return "sampled";
  }
  return "unknown";
}

// Counter-count guard for MergeCounters: 22 std::uint64_t counters + 4
// doubles + (Outcome + 2 bools, padded to one word). Adding a field
// changes the size and fails this assert — update MergeCounters (and
// ToString / ToJson / EmitTrace) before adjusting the constant, so a new
// counter can never silently skip the merge. The batch_* / queued_micros
// quartet (schema v6) is deliberately NOT merged: the serving layer
// stamps it once per member after the deterministic merge.
static_assert(sizeof(MiningStats) ==
                  22 * sizeof(std::uint64_t) + 4 * sizeof(double) + 8,
              "MiningStats layout changed: audit MergeCounters, ToString, "
              "ToJson, and EmitTrace, then update this size guard");

void MiningStats::MergeCounters(const MiningStats& part) {
  nodes_visited += part.nodes_visited;
  pruned_by_chernoff += part.pruned_by_chernoff;
  pruned_by_frequency += part.pruned_by_frequency;
  pruned_by_superset += part.pruned_by_superset;
  pruned_by_subset += part.pruned_by_subset;
  decided_by_bounds += part.decided_by_bounds;
  zero_by_count += part.zero_by_count;
  exact_fcp_computations += part.exact_fcp_computations;
  sampled_fcp_computations += part.sampled_fcp_computations;
  total_samples += part.total_samples;
  intersections += part.intersections;
  degraded_fcp_evals += part.degraded_fcp_evals;
}

std::string MiningStats::ToString() const {
  return "nodes=" + std::to_string(nodes_visited) +
         " ch_pruned=" + std::to_string(pruned_by_chernoff) +
         " freq_pruned=" + std::to_string(pruned_by_frequency) +
         " super_pruned=" + std::to_string(pruned_by_superset) +
         " sub_pruned=" + std::to_string(pruned_by_subset) +
         " bounds_decided=" + std::to_string(decided_by_bounds) +
         " zero_by_count=" + std::to_string(zero_by_count) +
         " exact_fcp=" + std::to_string(exact_fcp_computations) +
         " sampled_fcp=" + std::to_string(sampled_fcp_computations) +
         " samples=" + std::to_string(total_samples) +
         " dp_runs=" + std::to_string(dp_runs) +
         " intersections=" + std::to_string(intersections) +
         " degraded_fcp=" + std::to_string(degraded_fcp_evals) +
         " cache_hits=" + std::to_string(cache_hits) +
         " cache_misses=" + std::to_string(cache_misses) +
         " dp_reused=" + std::to_string(dp_reused) +
         " outcome=" + OutcomeName(outcome) +
         (resumed ? " resumed=1" : "") +
         (snapshot_bytes > 0
              ? " snapshot_bytes=" + std::to_string(snapshot_bytes)
              : "") +
         (batch_size > 0
              ? " batch=" + std::to_string(batch_size) + "/" +
                    std::to_string(batch_groups) +
                    " shared_dp_hits=" + std::to_string(shared_dp_hits) +
                    " queued_micros=" + std::to_string(queued_micros)
              : "") +
         " time=" + FormatDouble(seconds, 4) + "s";
}

std::string MiningStats::ToJson() const {
  std::string out = "{";
  const auto field = [&out](const char* name, std::uint64_t value) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += name;
    out += "\":" + std::to_string(value);
  };
  field("schema", 6);
  field("nodes_visited", nodes_visited);
  field("pruned_by_chernoff", pruned_by_chernoff);
  field("pruned_by_frequency", pruned_by_frequency);
  field("pruned_by_superset", pruned_by_superset);
  field("pruned_by_subset", pruned_by_subset);
  field("decided_by_bounds", decided_by_bounds);
  field("zero_by_count", zero_by_count);
  field("exact_fcp_computations", exact_fcp_computations);
  field("sampled_fcp_computations", sampled_fcp_computations);
  field("total_samples", total_samples);
  field("dp_runs", dp_runs);
  field("intersections", intersections);
  field("degraded_fcp_evals", degraded_fcp_evals);
  field("cache_hits", cache_hits);
  field("cache_misses", cache_misses);
  field("dp_reused", dp_reused);
  field("cache_bytes", cache_bytes);
  field("snapshot_bytes", snapshot_bytes);
  field("batch_size", batch_size);
  field("batch_groups", batch_groups);
  field("shared_dp_hits", shared_dp_hits);
  field("queued_micros", queued_micros);
  out += ",\"outcome\":\"";
  out += OutcomeName(outcome);
  out += "\"";
  out += ",\"truncated\":";
  out += truncated ? "true" : "false";
  out += ",\"resumed\":";
  out += resumed ? "true" : "false";
  // Round-trip formatting keeps the JSON byte-stable across platforms:
  // the shortest digit string that reparses to the exact double, rather
  // than a fixed precision that can round differently at the boundary.
  out += ",\"seconds\":" + FormatDoubleRoundTrip(seconds);
  out += ",\"candidate_seconds\":" + FormatDoubleRoundTrip(candidate_seconds);
  out += ",\"search_seconds\":" + FormatDoubleRoundTrip(search_seconds);
  out += ",\"merge_seconds\":" + FormatDoubleRoundTrip(merge_seconds);
  out += "}";
  return out;
}

void MiningStats::EmitTrace(TraceSink* sink) const {
  if (sink == nullptr) return;
  // The paper's per-rule pruning attribution, under stable wire names
  // (pruned_by_frequency is "threshold_pruned": the exact PrF <= pfct
  // rejection; total_samples is "samples_drawn": the FPRAS budget).
  TraceCounter(sink, "nodes_expanded", nodes_visited);
  TraceCounter(sink, "chernoff_pruned", pruned_by_chernoff);
  TraceCounter(sink, "threshold_pruned", pruned_by_frequency);
  TraceCounter(sink, "superset_pruned", pruned_by_superset);
  TraceCounter(sink, "subset_pruned", pruned_by_subset);
  TraceCounter(sink, "bounds_decided", decided_by_bounds);
  TraceCounter(sink, "zero_by_count", zero_by_count);
  TraceCounter(sink, "exact_fcp", exact_fcp_computations);
  TraceCounter(sink, "sampled_fcp", sampled_fcp_computations);
  TraceCounter(sink, "samples_drawn", total_samples);
  TraceCounter(sink, "dp_runs", dp_runs);
  TraceCounter(sink, "intersections", intersections);
  TraceCounter(sink, "degraded_fcp_evals", degraded_fcp_evals);
  TraceCounter(sink, "truncated", truncated ? 1 : 0);
}

void MiningResult::Sort() {
  std::sort(itemsets.begin(), itemsets.end());
}

const PfciEntry* MiningResult::Find(const Itemset& items) const {
  for (const PfciEntry& entry : itemsets) {
    if (entry.items == items) return &entry;
  }
  return nullptr;
}

std::string MiningResult::ToString(bool letters) const {
  std::string out;
  for (const PfciEntry& entry : itemsets) {
    out += entry.items.ToString(letters);
    out += " fcp=" + FormatDouble(entry.fcp, 6);
    out += " prF=" + FormatDouble(entry.pr_f, 6);
    out += " [";
    out += FcpMethodName(entry.method);
    out += "]\n";
  }
  return out;
}

}  // namespace pfci
