#include "src/core/mining_result.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace pfci {

const char* FcpMethodName(FcpMethod method) {
  switch (method) {
    case FcpMethod::kUndecided:
      return "undecided";
    case FcpMethod::kZeroByCount:
      return "zero-by-count";
    case FcpMethod::kBoundsDecided:
      return "bounds";
    case FcpMethod::kExact:
      return "exact";
    case FcpMethod::kSampled:
      return "sampled";
  }
  return "unknown";
}

std::string MiningStats::ToString() const {
  return "nodes=" + std::to_string(nodes_visited) +
         " ch_pruned=" + std::to_string(pruned_by_chernoff) +
         " freq_pruned=" + std::to_string(pruned_by_frequency) +
         " super_pruned=" + std::to_string(pruned_by_superset) +
         " sub_pruned=" + std::to_string(pruned_by_subset) +
         " bounds_decided=" + std::to_string(decided_by_bounds) +
         " zero_by_count=" + std::to_string(zero_by_count) +
         " exact_fcp=" + std::to_string(exact_fcp_computations) +
         " sampled_fcp=" + std::to_string(sampled_fcp_computations) +
         " samples=" + std::to_string(total_samples) +
         " dp_runs=" + std::to_string(dp_runs) +
         " time=" + FormatDouble(seconds, 4) + "s";
}

void MiningResult::Sort() {
  std::sort(itemsets.begin(), itemsets.end());
}

const PfciEntry* MiningResult::Find(const Itemset& items) const {
  for (const PfciEntry& entry : itemsets) {
    if (entry.items == items) return &entry;
  }
  return nullptr;
}

std::string MiningResult::ToString(bool letters) const {
  std::string out;
  for (const PfciEntry& entry : itemsets) {
    out += entry.items.ToString(letters);
    out += " fcp=" + FormatDouble(entry.fcp, 6);
    out += " prF=" + FormatDouble(entry.pr_f, 6);
    out += " [";
    out += FcpMethodName(entry.method);
    out += "]\n";
  }
  return out;
}

}  // namespace pfci
