#include "src/core/fcp_sampler.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/prob/conditional_sampler.h"
#include "src/prob/karp_luby.h"
#include "src/util/check.h"

namespace pfci {

namespace {

/// Bitmask over the dense positions of Tids(X).
class PositionMask {
 public:
  explicit PositionMask(std::size_t num_positions)
      : blocks_((num_positions + 63) / 64, 0) {}

  void Set(std::size_t pos) {
    blocks_[pos / 64] |= std::uint64_t{1} << (pos % 64);
  }

  /// Whether every set bit of `other` is also set here.
  bool Covers(const PositionMask& other) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if ((other.blocks_[b] & ~blocks_[b]) != 0) return false;
    }
    return true;
  }

  void Clear() { std::fill(blocks_.begin(), blocks_.end(), 0); }

 private:
  std::vector<std::uint64_t> blocks_;
};

}  // namespace

ApproxFcpResult ApproxFcp(double pr_f, const ExtensionEventSet& events,
                          double epsilon, double delta, Rng& rng) {
  ApproxFcpResult result;
  const std::size_t m = events.size();
  if (m == 0) {
    // No superset can co-occur with X: PrFC == PrF exactly.
    result.fcp = pr_f;
    return result;
  }

  const TidList& x_tids = events.x_tids();
  const VerticalIndex& index = events.index();
  const std::size_t min_sup = events.min_sup();

  // Dense position of a tid within the sorted Tids(X).
  const auto position_of = [&x_tids](Tid tid) {
    return static_cast<std::size_t>(
        std::lower_bound(x_tids.begin(), x_tids.end(), tid) - x_tids.begin());
  };

  // Per-event membership masks over the positions of Tids(X); a sampled
  // world ω (also a mask) lies in C_j iff mask_j covers ω (all present
  // transactions contain e_j; the support condition then follows from the
  // conditioning, which guarantees >= min_sup present transactions).
  std::vector<PositionMask> event_mask;
  event_mask.reserve(m);
  for (const ExtensionEvent& event : events.events()) {
    PositionMask mask(x_tids.size());
    for (Tid tid : event.tids) mask.Set(position_of(tid));
    event_mask.push_back(std::move(mask));
  }

  // Conditional world samplers, built lazily per event: an event that is
  // never drawn never pays the O(|tids| * min_sup) table construction.
  std::vector<std::unique_ptr<ConditionalBernoulliSampler>> samplers(m);

  std::vector<double> event_probs;
  event_probs.reserve(m);
  for (const ExtensionEvent& event : events.events()) {
    event_probs.push_back(event.prob);
  }

  PositionMask world(x_tids.size());
  std::vector<std::uint8_t> indicator;
  const auto sample_is_canonical = [&](std::size_t i, Rng& sample_rng) {
    const ExtensionEvent& event = events.events()[i];
    if (samplers[i] == nullptr) {
      samplers[i] = std::make_unique<ConditionalBernoulliSampler>(
          index.ProbsOf(event.tids), min_sup);
      PFCI_CHECK(samplers[i]->Feasible());
    }
    // Conditional world given C_i: transactions of Tids(X) \ Tids(X+e_i)
    // are forced absent, the Tids(X+e_i) indicators are drawn conditioned
    // on reaching min_sup.
    samplers[i]->Sample(sample_rng, &indicator);
    world.Clear();
    for (std::size_t k = 0; k < event.tids.size(); ++k) {
      if (indicator[k]) world.Set(position_of(event.tids[k]));
    }
    // Canonical iff no earlier event also covers the world.
    for (std::size_t j = 0; j < i; ++j) {
      if (event_probs[j] > 0.0 && event_mask[j].Covers(world)) return false;
    }
    return true;
  };

  const std::uint64_t num_samples = KarpLubyRequiredSamples(m, epsilon, delta);
  const KarpLubyResult kl =
      KarpLubyUnionEstimate(event_probs, num_samples, rng, sample_is_canonical);

  result.fnc = kl.estimate;
  result.samples = kl.samples;
  result.successes = kl.successes;
  result.fcp = std::clamp(pr_f - kl.estimate, 0.0, 1.0);
  return result;
}

}  // namespace pfci
