#include "src/core/fcp_sampler.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/prob/conditional_sampler.h"
#include "src/prob/karp_luby.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// Fixed number of sample batches in deterministic mode. Independent of
/// the thread count by design: the batch split defines the RNG streams, so
/// it must be a constant for results to be reproducible on any machine.
/// 32 keeps per-batch work large (required sample counts are in the
/// thousands) while oversubscribing typical core counts for stealing.
constexpr std::size_t kDeterministicBatches = 32;

/// Bitmask over the dense positions of Tids(X).
class PositionMask {
 public:
  explicit PositionMask(std::size_t num_positions)
      : blocks_((num_positions + 63) / 64, 0) {}

  void Set(std::size_t pos) {
    blocks_[pos / 64] |= std::uint64_t{1} << (pos % 64);
  }

  /// Whether every set bit of `other` is also set here.
  bool Covers(const PositionMask& other) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if ((other.blocks_[b] & ~blocks_[b]) != 0) return false;
    }
    return true;
  }

  void Clear() { std::fill(blocks_.begin(), blocks_.end(), 0); }

 private:
  std::vector<std::uint64_t> blocks_;
};

}  // namespace

ApproxFcpResult ApproxFcp(double pr_f, const ExtensionEventSet& events,
                          double epsilon, double delta, Rng& rng,
                          ThreadPool* pool, bool deterministic,
                          RunController* runtime) {
  ApproxFcpResult result;
  const std::size_t m = events.size();
  if (m == 0) {
    // No superset can co-occur with X: PrFC == PrF exactly.
    result.fcp = pr_f;
    return result;
  }

  // The sampler's per-sample loops index tids by dense position, so the
  // tid-sets are materialized as sorted vectors once per call — a few
  // allocations amortized over thousands of samples.
  const TidList x_tids = events.x_tids().ToTidList();
  const VerticalIndex& index = events.index();
  const std::size_t min_sup = events.min_sup();

  // Dense position of a tid within the sorted Tids(X).
  const auto position_of = [&x_tids](Tid tid) {
    return static_cast<std::size_t>(
        std::lower_bound(x_tids.begin(), x_tids.end(), tid) - x_tids.begin());
  };

  std::vector<TidList> event_tids;
  event_tids.reserve(m);
  for (const ExtensionEvent& event : events.events()) {
    event_tids.push_back(event.tids.ToTidList());
  }

  // Per-event membership masks over the positions of Tids(X); a sampled
  // world ω (also a mask) lies in C_j iff mask_j covers ω (all present
  // transactions contain e_j; the support condition then follows from the
  // conditioning, which guarantees >= min_sup present transactions).
  std::vector<PositionMask> event_mask;
  event_mask.reserve(m);
  for (const TidList& tids : event_tids) {
    PositionMask mask(x_tids.size());
    for (Tid tid : tids) mask.Set(position_of(tid));
    event_mask.push_back(std::move(mask));
  }

  // Conditional world samplers, built lazily per event: an event that is
  // never drawn never pays the O(|tids| * min_sup) table construction.
  // Shared across batches (construction is deterministic and does not
  // consume randomness); call_once makes the lazy build race-free.
  std::vector<std::unique_ptr<ConditionalBernoulliSampler>> samplers(m);
  std::unique_ptr<std::once_flag[]> sampler_once(new std::once_flag[m]);
  const auto sampler_of = [&](std::size_t i)
      -> const ConditionalBernoulliSampler& {
    std::call_once(sampler_once[i], [&] {
      const ExtensionEvent& event = events.events()[i];
      samplers[i] = std::make_unique<ConditionalBernoulliSampler>(
          index.ProbsOf(event.tids), min_sup);
      PFCI_CHECK(samplers[i]->Feasible());
    });
    return *samplers[i];
  };

  std::vector<double> event_probs;
  event_probs.reserve(m);
  for (const ExtensionEvent& event : events.events()) {
    event_probs.push_back(event.prob);
  }

  const std::uint64_t num_samples = KarpLubyRequiredSamples(m, epsilon, delta);

  // Batch split: one base value from the caller's rng defines every
  // batch's stream; the split itself depends only on the sample count (in
  // deterministic mode), never on the thread count.
  const std::uint64_t base_seed = rng();
  std::size_t num_batches = kDeterministicBatches;
  if (!deterministic && pool != nullptr) {
    num_batches = pool->num_threads() * 4;
  }
  num_batches = static_cast<std::size_t>(
      std::min<std::uint64_t>(num_batches, std::max<std::uint64_t>(
                                               1, num_samples)));

  std::vector<KarpLubyResult> batch(num_batches);
  std::atomic<bool> aborted{false};
  const auto run_batch = [&](std::size_t b) {
    // Sample-batch checkpoint: a cancelled/expired run abandons its
    // remaining batches; the whole estimate is then discarded (aborted).
    PFCI_FAILPOINT("sampler/batch");
    if (runtime != nullptr && runtime->Checkpoint()) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }
    const std::uint64_t batch_samples =
        num_samples / num_batches + (b < num_samples % num_batches ? 1 : 0);
    Rng batch_rng(DeriveSeed(base_seed, b));
    // Per-batch scratch: one world mask and indicator buffer, reused
    // across the batch's samples.
    PositionMask world(x_tids.size());
    std::vector<std::uint8_t> indicator;
    const auto sample_is_canonical = [&](std::size_t i, Rng& sample_rng) {
      const TidList& tids = event_tids[i];
      // Conditional world given C_i: transactions of Tids(X) \ Tids(X+e_i)
      // are forced absent, the Tids(X+e_i) indicators are drawn
      // conditioned on reaching min_sup.
      sampler_of(i).Sample(sample_rng, &indicator);
      world.Clear();
      for (std::size_t k = 0; k < tids.size(); ++k) {
        if (indicator[k]) world.Set(position_of(tids[k]));
      }
      // Canonical iff no earlier event also covers the world.
      for (std::size_t j = 0; j < i; ++j) {
        if (event_probs[j] > 0.0 && event_mask[j].Covers(world)) return false;
      }
      return true;
    };
    batch[b] = KarpLubyUnionEstimate(event_probs, batch_samples, batch_rng,
                                     sample_is_canonical);
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_batches > 1) {
    pool->ParallelFor(num_batches, run_batch, /*grain=*/1);
  } else {
    for (std::size_t b = 0; b < num_batches; ++b) run_batch(b);
  }

  // Reduce in batch order (fixed regardless of which thread ran what).
  // Each batch estimate is z * successes_b / samples_b, so the combined
  // estimate z * Σ successes / Σ samples is the samples-weighted mean.
  double weighted = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t successes = 0;
  for (const KarpLubyResult& kl : batch) {
    weighted += kl.estimate * static_cast<double>(kl.samples);
    samples += kl.samples;
    successes += kl.successes;
  }
  const double estimate =
      samples == 0 ? 0.0 : weighted / static_cast<double>(samples);

  result.fnc = estimate;
  result.samples = samples;
  result.successes = successes;
  result.fcp = std::clamp(pr_f - estimate, 0.0, 1.0);
  result.aborted = aborted.load(std::memory_order_relaxed);
  return result;
}

}  // namespace pfci
