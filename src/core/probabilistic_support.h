// Probabilistic-support semantics of [34] (Tang & Peterson), implemented
// for the paper's Sec. II comparison (Table IV example).
//
// Given a probabilistic frequent threshold pft, the probabilistic support
// of X is the largest support level s with Pr{support(X) >= s} >= pft.
// Under [34], X is a "probabilistic frequent closed itemset" iff
// psup(X) >= min_sup and every proper superset has strictly smaller
// probabilistic support. The paper argues these semantics are unstable in
// pft (its Table IV example); this module lets the comparison be
// reproduced exactly.
#ifndef PFCI_CORE_PROBABILISTIC_SUPPORT_H_
#define PFCI_CORE_PROBABILISTIC_SUPPORT_H_

#include <cstddef>
#include <vector>

#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// psup(X): max { s : Pr{support(X) >= s} >= pft }, 0 when even s=1 fails.
std::size_t ProbabilisticSupport(const UncertainDatabase& db,
                                 const Itemset& x, double pft);

/// An itemset with its probabilistic support.
struct PsupEntry {
  Itemset items;
  std::size_t psup = 0;

  friend bool operator<(const PsupEntry& a, const PsupEntry& b) {
    return a.items < b.items;
  }
  friend bool operator==(const PsupEntry& a, const PsupEntry& b) {
    return a.psup == b.psup && a.items == b.items;
  }
};

/// Mines the frequent closed itemsets under [34]'s semantics: psup(X) >=
/// min_sup and psup(Y) < psup(X) for every proper superset Y. Exhaustive
/// over itemsets with count >= min_sup — intended for the small
/// comparison examples, not for large datasets.
std::vector<PsupEntry> MinePsupClosed(const UncertainDatabase& db,
                                      std::size_t min_sup, double pft);

}  // namespace pfci

#endif  // PFCI_CORE_PROBABILISTIC_SUPPORT_H_
