// The #MDNF reduction of Theorem 3.1, as executable code.
//
// The paper proves computing the closed probability #P-hard by reducing
// monotone-DNF counting to it: a monotone DNF formula F = C_1 ∨ ... ∨ C_n
// over variables v_1..v_m maps to an uncertain database with one
// transaction T_j per variable (probability 1/2 each), a shared itemset X,
// and one item e_i per clause with e_i ∈ T_j iff v_j does NOT appear in
// C_i. Then X is NOT closed in exactly the worlds that correspond to
// satisfying assignments (v_j = true ⇔ T_j absent), so
//
//   PrC(X) = 1 - N / 2^m,   N = #satisfying assignments of F.
//
// This module builds the reduction and evaluates both sides — a strong
// correctness check on the library's closed-probability machinery, and a
// (deliberately exponential-time) #MDNF counter built on top of it.
#ifndef PFCI_CORE_MDNF_REDUCTION_H_
#define PFCI_CORE_MDNF_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// A monotone DNF formula: each clause is a set of variable indices
/// (0-based); the formula is the disjunction of clause conjunctions.
struct MonotoneDnf {
  std::size_t num_variables = 0;
  std::vector<std::vector<std::size_t>> clauses;
};

/// The reduction artifacts of Theorem 3.1.
struct MdnfReduction {
  UncertainDatabase db;  ///< One transaction per variable, probability 1/2.
  Itemset x;             ///< The itemset whose closedness encodes F.
};

/// Builds the uncertain database of Theorem 3.1. Items: 0..|X|-1 form X
/// (a single shared item suffices; we use one), item 1+i is the clause
/// item e_i.
MdnfReduction BuildMdnfReduction(const MonotoneDnf& formula);

/// Counts satisfying assignments by brute force (2^m); m <= 24.
std::uint64_t CountSatisfyingAssignments(const MonotoneDnf& formula);

/// Counts satisfying assignments *via the reduction*: evaluates the closed
/// probability of X on the reduced database (by world enumeration) and
/// returns N = (1 - PrC(X)) * 2^m, rounded. Demonstrates the
/// #P-hardness direction end to end; m <= 20.
std::uint64_t CountSatisfyingAssignmentsViaClosedProbability(
    const MonotoneDnf& formula);

}  // namespace pfci

#endif  // PFCI_CORE_MDNF_REDUCTION_H_
