#include "src/core/brute_force.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/data/world_enumerator.h"
#include "src/exact/closed_miner.h"
#include "src/exact/transaction_database.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// Worlds per parallel task. A constant (never derived from the thread
/// count) so the range partition — and with it every floating-point
/// summation order — is identical for every ExecutionContext.
constexpr std::uint64_t kWorldsPerRange = 16384;

/// Splits [0, NumWorlds(db)) into fixed-size ranges and runs
/// `process(range_index, begin, end)` for each, over `exec.pool` when it
/// has more than one thread. Returns the number of ranges.
template <typename Process>
std::uint64_t ForEachWorldRange(const UncertainDatabase& db,
                                const ExecutionContext& exec,
                                const Process& process) {
  const std::uint64_t total = NumWorlds(db);
  const std::uint64_t num_ranges =
      total == 0 ? 0 : (total + kWorldsPerRange - 1) / kWorldsPerRange;
  const auto run = [&](std::size_t r) {
    // World-range checkpoint: once a global stop is requested the
    // remaining ranges are skipped. A world sum missing ranges is NOT a
    // verified partial (the probabilities would simply be wrong), so the
    // callers discard everything when the run was stopped.
    PFCI_FAILPOINT("brute/range");
    if (exec.runtime != nullptr && exec.runtime->Checkpoint()) return;
    const std::uint64_t begin = r * kWorldsPerRange;
    const std::uint64_t end = std::min(total, begin + kWorldsPerRange);
    process(r, begin, end);
  };
  if (exec.pool != nullptr && exec.pool->num_threads() > 1 &&
      num_ranges > 1) {
    exec.pool->ParallelFor(static_cast<std::size_t>(num_ranges), run,
                           /*grain=*/1);
  } else {
    for (std::uint64_t r = 0; r < num_ranges; ++r) {
      run(static_cast<std::size_t>(r));
    }
  }
  return num_ranges;
}

}  // namespace

WorldProbabilities BruteForceItemsetProbabilities(
    const UncertainDatabase& db, const Itemset& x, std::size_t min_sup,
    const ExecutionContext& exec) {
  std::vector<WorldProbabilities> partial;
  const std::uint64_t total = NumWorlds(db);
  partial.resize(static_cast<std::size_t>(
      total == 0 ? 0 : (total + kWorldsPerRange - 1) / kWorldsPerRange));
  ForEachWorldRange(
      db, exec, [&](std::size_t r, std::uint64_t begin, std::uint64_t end) {
        WorldProbabilities& sums = partial[r];
        EnumerateWorldsRange(
            db, begin, end, [&](const PossibleWorld& world, double prob) {
              const std::size_t support = world.Support(db, x);
              const bool frequent = support >= min_sup;
              const bool closed = world.IsClosed(db, x);
              if (frequent) sums.pr_f += prob;
              if (closed) sums.pr_c += prob;
              if (frequent && closed) sums.pr_fc += prob;
            });
      });
  if (exec.runtime != nullptr && exec.runtime->StopRequested()) {
    return WorldProbabilities{};
  }
  WorldProbabilities result;
  for (const WorldProbabilities& sums : partial) {
    result.pr_f += sums.pr_f;
    result.pr_c += sums.pr_c;
    result.pr_fc += sums.pr_fc;
  }
  return result;
}

std::vector<FcpGroundTruth> BruteForceAllFcp(const UncertainDatabase& db,
                                             std::size_t min_sup,
                                             const ExecutionContext& exec) {
  PFCI_CHECK(min_sup >= 1);
  using FcpMap = std::unordered_map<Itemset, double, ItemsetHash>;
  std::vector<FcpMap> partial;
  const std::uint64_t total = NumWorlds(db);
  partial.resize(static_cast<std::size_t>(
      total == 0 ? 0 : (total + kWorldsPerRange - 1) / kWorldsPerRange));
  ForEachWorldRange(
      db, exec, [&](std::size_t r, std::uint64_t begin, std::uint64_t end) {
        FcpMap& fcp = partial[r];
        EnumerateWorldsRange(
            db, begin, end, [&](const PossibleWorld& world, double prob) {
              const TransactionDatabase world_db =
                  TransactionDatabase::FromWorld(db, world);
              MineClosedItemsetsInto(world_db, min_sup,
                                     [&](const Itemset& itemset, std::size_t) {
                                       fcp[itemset] += prob;
                                     });
            });
      });
  if (exec.runtime != nullptr && exec.runtime->StopRequested()) return {};
  // Merge in range order: each itemset's probability is accumulated over
  // ranges in the same sequence regardless of which thread mined what.
  FcpMap fcp;
  for (const FcpMap& part : partial) {
    for (const auto& [items, value] : part) fcp[items] += value;
  }
  std::vector<FcpGroundTruth> result;
  result.reserve(fcp.size());
  for (const auto& [items, value] : fcp) {
    result.push_back(FcpGroundTruth{items, value});
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace internal {

std::vector<FcpGroundTruth> BruteForceMinePfci(const UncertainDatabase& db,
                                               std::size_t min_sup,
                                               double pfct,
                                               const ExecutionContext& exec) {
  std::vector<FcpGroundTruth> all = BruteForceAllFcp(db, min_sup, exec);
  std::vector<FcpGroundTruth> result;
  for (auto& entry : all) {
    if (entry.fcp > pfct) result.push_back(std::move(entry));
  }
  return result;
}

}  // namespace internal

}  // namespace pfci
