#include "src/core/brute_force.h"

#include <unordered_map>

#include "src/data/world_enumerator.h"
#include "src/exact/closed_miner.h"
#include "src/exact/transaction_database.h"
#include "src/util/check.h"

namespace pfci {

WorldProbabilities BruteForceItemsetProbabilities(const UncertainDatabase& db,
                                                  const Itemset& x,
                                                  std::size_t min_sup) {
  WorldProbabilities result;
  EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
    const std::size_t support = world.Support(db, x);
    const bool frequent = support >= min_sup;
    const bool closed = world.IsClosed(db, x);
    if (frequent) result.pr_f += prob;
    if (closed) result.pr_c += prob;
    if (frequent && closed) result.pr_fc += prob;
  });
  return result;
}

std::vector<FcpGroundTruth> BruteForceAllFcp(const UncertainDatabase& db,
                                             std::size_t min_sup) {
  PFCI_CHECK(min_sup >= 1);
  std::unordered_map<Itemset, double, ItemsetHash> fcp;
  EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
    const TransactionDatabase world_db =
        TransactionDatabase::FromWorld(db, world);
    MineClosedItemsetsInto(world_db, min_sup,
                           [&](const Itemset& itemset, std::size_t) {
                             fcp[itemset] += prob;
                           });
  });
  std::vector<FcpGroundTruth> result;
  result.reserve(fcp.size());
  for (const auto& [items, value] : fcp) {
    result.push_back(FcpGroundTruth{items, value});
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<FcpGroundTruth> BruteForceMinePfci(const UncertainDatabase& db,
                                               std::size_t min_sup,
                                               double pfct) {
  std::vector<FcpGroundTruth> all = BruteForceAllFcp(db, min_sup);
  std::vector<FcpGroundTruth> result;
  for (auto& entry : all) {
    if (entry.fcp > pfct) result.push_back(std::move(entry));
  }
  return result;
}

}  // namespace pfci
