// Frequency-style mining under item-level uncertainty (the [9]/[12]
// related-work model; see item_uncertain_database.h for scope notes).
//
// Both measures reduce to the tuple-level machinery because support(X)
// is Poisson-binomial over the per-transaction containment probabilities:
//  * expected support: U-Apriori-style DFS with anti-monotone pruning
//    (Π p only shrinks when X grows);
//  * probabilistic frequent itemsets: the exact DP of [22] plus
//    Chernoff-Hoeffding pruning, unchanged.
#ifndef PFCI_CORE_ITEM_UNCERTAIN_MINERS_H_
#define PFCI_CORE_ITEM_UNCERTAIN_MINERS_H_

#include <vector>

#include "src/core/expected_support_miner.h"
#include "src/data/item_uncertain_database.h"

namespace pfci {

/// An item-level probabilistic frequent itemset.
struct ItemPfiEntry {
  Itemset items;
  double pr_f = 0.0;

  friend bool operator<(const ItemPfiEntry& a, const ItemPfiEntry& b) {
    return a.items < b.items;
  }
};

namespace internal {
/// Mines all itemsets with expected support >= min_esup (> 0) under
/// item-level uncertainty (U-Apriori's measure [9]). Reached through the
/// item-level Mine() overload with Algorithm::kItemExpectedSupport.
std::vector<ExpectedSupportEntry> MineExpectedSupportItemLevel(
    const ItemUncertainDatabase& db, double min_esup);

/// Mines all itemsets with Pr{support >= min_sup} > pft under item-level
/// uncertainty (the probabilistic frequent model applied to [9]'s data).
/// Reached through the item-level Mine() overload with
/// Algorithm::kItemPfi.
std::vector<ItemPfiEntry> MinePfiItemLevel(const ItemUncertainDatabase& db,
                                           std::size_t min_sup, double pft);
}  // namespace internal

[[deprecated("use Mine() with Algorithm::kItemExpectedSupport")]]
inline std::vector<ExpectedSupportEntry> MineExpectedSupportItemLevel(
    const ItemUncertainDatabase& db, double min_esup) {
  return internal::MineExpectedSupportItemLevel(db, min_esup);
}

[[deprecated("use Mine() with Algorithm::kItemPfi")]]
inline std::vector<ItemPfiEntry> MinePfiItemLevel(
    const ItemUncertainDatabase& db, std::size_t min_sup, double pft) {
  return internal::MinePfiItemLevel(db, min_sup, pft);
}

}  // namespace pfci

#endif  // PFCI_CORE_ITEM_UNCERTAIN_MINERS_H_
