#include "src/core/stream_miner.h"

#include <utility>

#include "src/core/mine.h"
#include "src/util/check.h"

namespace pfci {

StreamingPfciMiner::StreamingPfciMiner(MiningParams params,
                                       std::size_t window_size)
    : params_(params), window_size_(window_size) {}

void StreamingPfciMiner::Observe(Itemset items, double prob) {
  PFCI_CHECK(prob > 0.0 && prob <= 1.0);
  // A zero-capacity window holds nothing: the observation is counted but
  // never stored (guards the pop_front below, which would otherwise pop
  // an empty deque).
  if (window_size_ == 0) {
    ++seen_;
    return;
  }
  if (window_.size() == window_size_) window_.pop_front();
  window_.push_back(UncertainTransaction{std::move(items), prob});
  ++seen_;
}

UncertainDatabase StreamingPfciMiner::WindowSnapshot() const {
  UncertainDatabase db;
  for (const UncertainTransaction& t : window_) db.Add(t.items, t.prob);
  return db;
}

MiningResult StreamingPfciMiner::MineWindow() {
  return MineWindow(MiningRequest{});
}

MiningResult StreamingPfciMiner::MineWindow(const MiningRequest& request) {
  // Each call advances the seed so repeated mines of identical windows
  // stay deterministic but draw independent sampling streams.
  MiningRequest window_request = request;
  window_request.params = params_;
  window_request.params.seed = params_.seed + 0x9e3779b9ULL * (++mine_calls_);
  if (window_size_ == 0) {
    // Report the degenerate configuration as request data, mirroring how
    // Mine() itself surfaces invalid parameters.
    MiningResult result;
    result.stats.outcome = Outcome::kInvalidRequest;
    result.status_message =
        "invalid MiningRequest: streaming window_size must be >= 1";
    return result;
  }
  return Mine(WindowSnapshot(), window_request);
}

}  // namespace pfci
