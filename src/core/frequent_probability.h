// Frequent-probability evaluation (Definition 3.4).
//
// PrF(X) = Pr{support(X) >= min_sup} where support(X) is Poisson-binomial
// over the existence probabilities of Tids(X). The evaluator combines the
// exact O(n * min_sup) dynamic program with Chernoff-Hoeffding short
// circuits: when the tail bound already pins the probability to 0 or 1
// within 1e-15 the DP is skipped (far below any decision threshold).
//
// Hot-path calls take a DpWorkspace so the probability gather and the DP
// row reuse per-thread buffers; the workspace-free overloads fall back to
// the calling thread's LocalDpWorkspace().
#ifndef PFCI_CORE_FREQUENT_PROBABILITY_H_
#define PFCI_CORE_FREQUENT_PROBABILITY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/execution.h"
#include "src/data/tidset.h"
#include "src/data/vertical_index.h"

namespace pfci {

/// Evaluates frequent probabilities against a fixed database and min_sup.
class FrequentProbability {
 public:
  FrequentProbability(const VerticalIndex& index, std::size_t min_sup);

  /// Exact PrF over the transactions in `tids` (modulo the 1e-15 short
  /// circuits described above). Uses the calling thread's workspace.
  double PrF(const TidSet& tids) const;

  /// As above with an explicit workspace (zero-alloc once warm).
  double PrF(const TidSet& tids, DpWorkspace& workspace) const;

  /// Exact PrF from raw probabilities.
  double PrFFromProbs(const std::vector<double>& probs) const;
  double PrFFromProbs(const std::vector<double>& probs,
                      std::vector<double>* dp_scratch) const;

  /// Cheap upper bound on PrF (Lemma 4.1's Chernoff-Hoeffding bound):
  /// never smaller than the exact value. Allocation-free.
  double PrFUpperBound(const TidSet& tids) const;

  std::size_t min_sup() const { return min_sup_; }
  const VerticalIndex& index() const { return *index_; }

  /// Number of exact DP executions so far (work accounting). The counter
  /// is atomic so one evaluator can be shared by all tasks of a parallel
  /// mining run; the total is deterministic (the set of DPs executed does
  /// not depend on scheduling), only the increment order varies.
  std::uint64_t dp_runs() const {
    return dp_runs_.load(std::memory_order_relaxed);
  }
  void ResetCounters() { dp_runs_.store(0, std::memory_order_relaxed); }

 private:
  const VerticalIndex* index_;
  std::size_t min_sup_;
  mutable std::atomic<std::uint64_t> dp_runs_{0};
};

}  // namespace pfci

#endif  // PFCI_CORE_FREQUENT_PROBABILITY_H_
