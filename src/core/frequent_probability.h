// Frequent-probability evaluation (Definition 3.4).
//
// PrF(X) = Pr{support(X) >= min_sup} where support(X) is Poisson-binomial
// over the existence probabilities of Tids(X). The evaluator combines the
// exact O(n * min_sup) dynamic program with Chernoff-Hoeffding short
// circuits: when the tail bound already pins the probability to 0 or 1
// within 1e-15 the DP is skipped (far below any decision threshold).
//
// Hot-path calls take a DpWorkspace so the probability gather and the DP
// row reuse per-thread buffers; the workspace-free overloads fall back to
// the calling thread's LocalDpWorkspace().
#ifndef PFCI_CORE_FREQUENT_PROBABILITY_H_
#define PFCI_CORE_FREQUENT_PROBABILITY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/execution.h"
#include "src/data/tidset.h"
#include "src/data/vertical_index.h"

namespace pfci {

class EvalCache;

/// Evaluates frequent probabilities against a fixed database and min_sup.
///
/// With a non-null EvalCache (session runs), PrF(tids) first consults the
/// cache: a stored tail table answers this min_sup bit-identically to a
/// direct DP (see PoissonBinomialTailTable), and the cached mu replays
/// the Chernoff short circuits exactly, so caching never changes a
/// returned value — only the dp_runs / cache_* work counters.
class FrequentProbability {
 public:
  /// `table_floor` (only meaningful with a cache): freshly computed tail
  /// tables are extended to at least this threshold before caching, so a
  /// sweep's lowest-threshold run prefills answers for the higher ones.
  FrequentProbability(const VerticalIndex& index, std::size_t min_sup,
                      EvalCache* cache = nullptr,
                      std::size_t table_floor = 0);

  /// Exact PrF over the transactions in `tids` (modulo the 1e-15 short
  /// circuits described above). Uses the calling thread's workspace.
  double PrF(const TidSet& tids) const;

  /// As above with an explicit workspace (zero-alloc once warm).
  double PrF(const TidSet& tids, DpWorkspace& workspace) const;

  /// Exact PrF from raw probabilities.
  double PrFFromProbs(const std::vector<double>& probs) const;
  double PrFFromProbs(const std::vector<double>& probs,
                      std::vector<double>* dp_scratch) const;

  /// Cheap upper bound on PrF (Lemma 4.1's Chernoff-Hoeffding bound):
  /// never smaller than the exact value. Allocation-free.
  double PrFUpperBound(const TidSet& tids) const;

  std::size_t min_sup() const { return min_sup_; }
  const VerticalIndex& index() const { return *index_; }

  /// Number of exact DP executions so far (work accounting). The counter
  /// is atomic so one evaluator can be shared by all tasks of a parallel
  /// mining run; the total is deterministic (the set of DPs executed does
  /// not depend on scheduling), only the increment order varies.
  std::uint64_t dp_runs() const {
    return dp_runs_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    dp_runs_.store(0, std::memory_order_relaxed);
    cache_hits_.store(0, std::memory_order_relaxed);
    cache_misses_.store(0, std::memory_order_relaxed);
    dp_reused_.store(0, std::memory_order_relaxed);
  }

  /// Per-evaluator cache accounting (all zero without a cache).
  /// cache_hits: probes answered from a stored entry without running a
  /// DP; dp_reused: the subset of hits served from a stored tail table
  /// (the rest were short-circuit replays off the cached mu);
  /// cache_misses: probes that had to gather probabilities and compute.
  /// Unlike dp_runs' total, these can vary with scheduling when worker
  /// threads race on the same first evaluation — values stay exact.
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t dp_reused() const {
    return dp_reused_.load(std::memory_order_relaxed);
  }

 private:
  double CachedPrF(const TidSet& tids, DpWorkspace& workspace) const;

  const VerticalIndex* index_;
  std::size_t min_sup_;
  EvalCache* cache_ = nullptr;
  std::size_t table_floor_ = 0;
  mutable std::atomic<std::uint64_t> dp_runs_{0};
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
  mutable std::atomic<std::uint64_t> dp_reused_{0};
};

}  // namespace pfci

#endif  // PFCI_CORE_FREQUENT_PROBABILITY_H_
