#include "src/core/request_io.h"

#include <cstdlib>

#include "src/data/tidset.h"
#include "src/util/string_util.h"

namespace pfci {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

bool ParseUint64(const std::string& text, std::uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *value = parsed;
  return true;
}

bool ParseSize(const std::string& text, std::size_t* value) {
  std::uint64_t wide = 0;
  if (!ParseUint64(text, &wide)) return false;
  *value = static_cast<std::size_t>(wide);
  return true;
}

bool ParseBool01(const std::string& text, bool* value) {
  if (text == "0") {
    *value = false;
  } else if (text == "1") {
    *value = true;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FormatRequestFields(const MiningRequest& request) {
  const MiningRequest& r = request;
  std::string out;
  AppendWireField(&out, "algorithm", AlgorithmName(r.algorithm));
  AppendWireField(&out, "min_sup", std::to_string(r.params.min_sup));
  AppendWireField(&out, "pfct", FormatDoubleRoundTrip(r.params.pfct));
  AppendWireField(&out, "epsilon", FormatDoubleRoundTrip(r.params.epsilon));
  AppendWireField(&out, "delta", FormatDoubleRoundTrip(r.params.delta));
  AppendWireField(&out, "exact_event_limit",
                  std::to_string(r.params.exact_event_limit));
  AppendWireField(&out, "force_sampling",
                  r.params.force_sampling ? "1" : "0");
  AppendWireField(&out, "seed", std::to_string(r.params.seed));
  AppendWireField(&out, "tidset_mode", TidSetModeName(r.params.tidset_mode));
  AppendWireField(&out, "prune_chernoff",
                  r.params.pruning.chernoff ? "1" : "0");
  AppendWireField(&out, "prune_superset",
                  r.params.pruning.superset ? "1" : "0");
  AppendWireField(&out, "prune_subset", r.params.pruning.subset ? "1" : "0");
  AppendWireField(&out, "prune_fcp_bounds",
                  r.params.pruning.fcp_bounds ? "1" : "0");
  AppendWireField(&out, "top_k", std::to_string(r.top_k));
  AppendWireField(&out, "min_esup", FormatDoubleRoundTrip(r.min_esup));
  AppendWireField(&out, "num_threads",
                  std::to_string(r.execution.num_threads));
  return out;
}

WireFieldStatus ApplyRequestField(const WireField& field,
                                  MiningRequest* request) {
  MiningRequest& r = *request;
  const std::string& key = field.key;
  const std::string& value = field.value;
  bool ok = true;
  if (key == "algorithm") {
    ok = ParseAlgorithm(value, &r.algorithm);
  } else if (key == "min_sup") {
    ok = ParseSize(value, &r.params.min_sup);
  } else if (key == "pfct") {
    ok = ParseDouble(value, &r.params.pfct);
  } else if (key == "epsilon") {
    ok = ParseDouble(value, &r.params.epsilon);
  } else if (key == "delta") {
    ok = ParseDouble(value, &r.params.delta);
  } else if (key == "exact_event_limit") {
    ok = ParseSize(value, &r.params.exact_event_limit);
  } else if (key == "force_sampling") {
    ok = ParseBool01(value, &r.params.force_sampling);
  } else if (key == "seed") {
    ok = ParseUint64(value, &r.params.seed);
  } else if (key == "tidset_mode") {
    ok = ParseTidSetMode(value, &r.params.tidset_mode);
  } else if (key == "prune_chernoff") {
    ok = ParseBool01(value, &r.params.pruning.chernoff);
  } else if (key == "prune_superset") {
    ok = ParseBool01(value, &r.params.pruning.superset);
  } else if (key == "prune_subset") {
    ok = ParseBool01(value, &r.params.pruning.subset);
  } else if (key == "prune_fcp_bounds") {
    ok = ParseBool01(value, &r.params.pruning.fcp_bounds);
  } else if (key == "top_k") {
    ok = ParseSize(value, &r.top_k);
  } else if (key == "min_esup") {
    ok = ParseDouble(value, &r.min_esup);
  } else if (key == "num_threads") {
    ok = ParseSize(value, &r.execution.num_threads);
  } else {
    return WireFieldStatus::kUnknownKey;
  }
  return ok ? WireFieldStatus::kApplied : WireFieldStatus::kBadValue;
}

bool ApplyRequestFields(const std::vector<WireField>& fields,
                        const std::string& origin, MiningRequest* request,
                        std::string* error) {
  for (const WireField& field : fields) {
    switch (ApplyRequestField(field, request)) {
      case WireFieldStatus::kApplied:
        break;
      case WireFieldStatus::kUnknownKey:
        SetError(error, origin + " line " + std::to_string(field.line) +
                            ": unknown key '" + field.key + "'");
        return false;
      case WireFieldStatus::kBadValue:
        SetError(error, origin + " line " + std::to_string(field.line) +
                            ": bad value '" + field.value + "' for key '" +
                            field.key + "'");
        return false;
    }
  }
  return true;
}

bool LoadRequestFile(const std::string& path, MiningRequest* request,
                     std::string* error) {
  std::vector<WireField> fields;
  if (!LoadRequestWire(path, &fields, error)) return false;
  // Drop the harness's check id so committed repro sidecars replay
  // through the CLI and batch paths unchanged.
  std::vector<WireField> request_fields;
  request_fields.reserve(fields.size());
  for (WireField& field : fields) {
    if (field.key == "check") continue;
    request_fields.push_back(std::move(field));
  }
  return ApplyRequestFields(request_fields, path, request, error);
}

}  // namespace pfci
