#include "src/core/search/frontier_policies.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/extension_events.h"
#include "src/prob/karp_luby.h"
#include "src/util/failpoint.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// Rebuilds an itemset's tid-list by intersecting its items' tid-sets.
/// Restore-path only: deliberately does NOT bump stats.intersections —
/// the suspended run already counted the ops that first produced this
/// tid-list, and those counts arrive wholesale via the snapshot base.
TidSet TidsOfItemset(const VerticalIndex& index, const Itemset& items) {
  TidSet tids = index.TidsOfItem(items[0]);
  for (std::size_t i = 1; i < items.size(); ++i) {
    tids = Intersect(tids, index.TidsOfItem(items[i]));
  }
  return tids;
}

/// Common restore step: the suspended run's decided entries and its
/// deterministic work counters seed the resumed result.
void SeedResultFromSnapshot(const RunSnapshot& snapshot,
                            MiningResult& result) {
  result.itemsets.insert(result.itemsets.end(), snapshot.entries.begin(),
                         snapshot.entries.end());
  AddBaseStats(snapshot.base, &result.stats);
}

/// Unit-entry drain gate: true when a suspend-armed controller has a
/// pending drain. Unarmed runs never see it, so pre-snapshot behavior
/// (and the kernel parity goldens) are untouched.
bool DrainPending(const RunController* rt) {
  return rt != nullptr && rt->suspend_armed() && !rt->ShouldStartUnit();
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkStealingDfsFrontier (MPFCI)

void WorkStealingDfsFrontier::BuildCandidates(const SearchContext& ctx,
                                              MiningResult& result) {
  // Phase 1 of Fig. 1: the candidate set of probabilistic frequent single
  // items (Lemma 4.1 + exact check), with session warm-start proofs
  // applied and recorded by the oracle.
  for (Item item : ctx.index->occurring_items()) {
    QualifyRequest req;
    req.threshold = ctx.params->pfct;
    req.warm_item = &item;
    const double pr_f =
        ctx.oracle->Qualify(ctx.index->TidsOfItem(item), req, &result.stats);
    if (pr_f > req.threshold) {
      candidates_.push_back(item);
      candidate_pr_f_.push_back(pr_f);
    }
  }
}

void WorkStealingDfsFrontier::Search(const SearchContext& ctx,
                                     MiningResult& result) {
  (void)result;  // Partials land in subtree_; Merge folds them.
  const std::size_t n = candidates_.size();
  subtree_.resize(n);
  done_.assign(n, 0);
  const double pfct = ctx.params->pfct;
  const auto mine_subtree = [&](std::size_t c) {
    if (restored_done_.size() == n && restored_done_[c]) return;
    if (DrainPending(ctx.rt)) return;
    Rng rng(DeriveSeed(ctx.params->seed, candidates_[c]));
    // Fair-share logical budgets: the quota depends only on the request
    // and the candidate count, never on scheduling.
    WorkUnitBudget unit =
        ctx.rt != nullptr ? ctx.rt->UnitBudget(c, n) : WorkUnitBudget{};
    MiningResult& part = subtree_[c];
    ClosedDfsContext dfs;
    dfs.ctx = &ctx;
    dfs.candidates = &candidates_;
    dfs.stats = &part.stats;
    dfs.rng = &rng;
    // The executing thread's workspace: safe because a workspace is only
    // live within one PrF evaluation, which never suspends into the
    // helping scheduler.
    dfs.workspace = &LocalDpWorkspace();
    dfs.unit = &unit;
    dfs.failpoint = "mpfci/node";
    dfs.count_floor = true;
    dfs.threshold = [pfct] { return pfct; };
    dfs.emit = [&part, &ctx](PfciEntry entry) {
      part.itemsets.push_back(std::move(entry));
      if (ctx.exec->progress != nullptr) ctx.exec->progress->AddItemsets();
    };
    ClosedDfs(dfs, Itemset{candidates_[c]},
              ctx.index->TidsOfItem(candidates_[c]), candidate_pr_f_[c], c);
    if (unit.truncated && ctx.rt != nullptr) {
      ctx.rt->RecordTruncation(Outcome::kBudgetExhausted);
    }
    // Suspend mode: a drained unit ran to its natural end (armed
    // checkpoints never stop mid-unit), so it is complete by
    // construction; note its work against the unit-granular budgets.
    done_[c] = 1;
    NoteUnitWork(ctx.rt, part.stats.nodes_visited, part.stats.total_samples);
  };
  if (ctx.exec->pool != nullptr && ctx.exec->pool->num_threads() > 1) {
    // Grain 1: first-level subtrees vary wildly in cost; stealing at
    // single-subtree granularity is what balances them.
    ctx.exec->pool->ParallelFor(n, mine_subtree, /*grain=*/1);
  } else {
    for (std::size_t c = 0; c < n; ++c) mine_subtree(c);
  }
}

void WorkStealingDfsFrontier::Merge(const SearchContext& ctx,
                                    MiningResult& result) {
  (void)ctx;
  // Deterministic merge: candidate order, then the canonical sort.
  // Restored entries are already in result.itemsets (skipped units'
  // partials stay empty), so the fold remains in candidate order overall.
  for (MiningResult& part : subtree_) {
    for (PfciEntry& entry : part.itemsets) {
      result.itemsets.push_back(std::move(entry));
    }
    result.stats.MergeCounters(part.stats);
  }
  result.Sort();
}

void WorkStealingDfsFrontier::RestoreState(const SearchContext& ctx,
                                           const RunSnapshot& snapshot,
                                           MiningResult& result) {
  (void)ctx;
  candidates_.clear();
  candidate_pr_f_.clear();
  for (const WeightedItemset& element : snapshot.frontier) {
    candidates_.push_back(element.items[0]);
    candidate_pr_f_.push_back(element.weight);
  }
  restored_done_ = snapshot.done;
  restored_done_.resize(candidates_.size(), 0);
  SeedResultFromSnapshot(snapshot, result);
}

void WorkStealingDfsFrontier::SaveState(const SearchContext& ctx,
                                        const MiningResult& result,
                                        RunSnapshot& snapshot) const {
  (void)ctx;
  snapshot.frontier.clear();
  snapshot.done.clear();
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    WeightedItemset element;
    element.items = Itemset{candidates_[c]};
    element.weight = candidate_pr_f_[c];
    snapshot.frontier.push_back(std::move(element));
    const bool was_done =
        restored_done_.size() == candidates_.size() && restored_done_[c] != 0;
    const bool now_done = done_.size() == candidates_.size() && done_[c] != 0;
    snapshot.done.push_back(was_done || now_done ? 1 : 0);
  }
  snapshot.entries = result.itemsets;
  snapshot.base = result.stats;
}

// ---------------------------------------------------------------------------
// LevelSyncBfsFrontier

void LevelSyncBfsFrontier::BuildCandidates(const SearchContext& ctx,
                                           MiningResult& result) {
  for (Item item : ctx.index->occurring_items()) {
    LevelEntry entry;
    entry.items = Itemset{item};
    entry.tids = ctx.index->TidsOfItem(item);
    QualifyRequest req;
    req.threshold = ctx.params->pfct;
    req.warm_item = &item;
    entry.pr_f = ctx.oracle->Qualify(entry.tids, req, &result.stats);
    if (entry.pr_f > req.threshold) level_.push_back(std::move(entry));
  }
}

void LevelSyncBfsFrontier::Search(const SearchContext& ctx,
                                  MiningResult& result) {
  const MiningParams& params = *ctx.params;
  RunController* rt = ctx.rt;
  // Logical budgets, consumed in global level order (entry_counter
  // order) so the truncation point is a pure function of the request.
  WorkUnitBudget node_ledger =
      rt != nullptr ? rt->UnitBudget(0, 1) : WorkUnitBudget{};
  std::uint64_t samples_remaining = node_ledger.sample_quota;

  // Global position of the first entry of the current level across the
  // whole run (a member, restored on resume); the per-entry RNG stream
  // is derived from it, so it is independent of thread count and
  // scheduling.
  while (!level_.empty()) {
    // Level-boundary checkpoint: a global stop discards the pending
    // level (none of its entries were evaluated yet). A pending drain
    // breaks here too — the level boundary is the suspend-mode unit
    // boundary, and the intact level_ becomes the snapshot frontier.
    PFCI_FAILPOINT("bfs/level");
    if (CheckpointNow(rt)) break;
    if (DrainPending(rt)) break;

    // Node budget, taken in level order: a refusal cuts the level's
    // suffix — and, since the quota never regrows, the whole run.
    std::size_t eval_count = level_.size();
    for (std::size_t i = 0; i < level_.size(); ++i) {
      if (!node_ledger.TakeNode()) {
        eval_count = i;
        rt->RecordTruncation(Outcome::kBudgetExhausted);
        break;
      }
    }
    result.stats.nodes_visited += eval_count;
    if (ctx.exec->progress != nullptr && eval_count > 0) {
      ctx.exec->progress->AddNodes(eval_count);
    }

    // Per-entry sample quotas: each entry's RNG stream is independent
    // (seeded by its global position), so the remaining sample budget is
    // pre-split fair-share across the level — an entry whose evaluation
    // is refused stays undecided without disturbing its neighbours.
    std::vector<WorkUnitBudget> units(eval_count);
    if (samples_remaining != kUnlimitedQuota) {
      for (std::size_t i = 0; i < eval_count; ++i) {
        units[i].sample_quota = UnitQuota(samples_remaining, i, eval_count);
      }
    }

    // Evaluate the (budgeted prefix of the) level in parallel; commit in
    // level order.
    std::vector<FcpComputation> comps(eval_count);
    std::vector<MiningStats> comp_stats(eval_count);
    const auto evaluate = [&](std::size_t i) {
      Rng rng(DeriveSeed(params.seed, entry_counter_ + i));
      comps[i] = ctx.closure->CertifyAt(
          params.pfct, level_[i].items, level_[i].tids, level_[i].pr_f, rng,
          &comp_stats[i], &LocalDpWorkspace(), &units[i]);
    };
    if (ctx.exec->pool != nullptr && ctx.exec->pool->num_threads() > 1) {
      ctx.exec->pool->ParallelFor(eval_count, evaluate, /*grain=*/1);
    } else {
      for (std::size_t i = 0; i < eval_count; ++i) evaluate(i);
    }
    entry_counter_ += level_.size();

    std::uint64_t level_samples = 0;
    for (std::size_t i = 0; i < eval_count; ++i) {
      level_samples += units[i].samples_used;
    }
    NoteUnitWork(rt, eval_count, level_samples);

    for (std::size_t i = 0; i < eval_count; ++i) {
      if (samples_remaining != kUnlimitedQuota) {
        samples_remaining -= units[i].samples_used;
        if (units[i].truncated) {
          rt->RecordTruncation(Outcome::kBudgetExhausted);
        }
      }
      result.stats.MergeCounters(comp_stats[i]);
      const FcpComputation& comp = comps[i];
      if (comp.undecided) continue;
      if (!comp.is_pfci) continue;
      result.itemsets.push_back(MakePfciEntry(level_[i].items, comp));
      if (ctx.exec->progress != nullptr) ctx.exec->progress->AddItemsets();
    }
    // An exhausted node quota never regrows: later levels would all be
    // refused, so stop generating them.
    if (node_ledger.truncated) break;

    // Generate level k+1 by prefix join (entries are sorted because the
    // construction preserves lexicographic order).
    std::vector<LevelEntry> next_level;
    for (std::size_t a = 0; a < level_.size(); ++a) {
      const auto& ia = level_[a].items.items();
      for (std::size_t b = a + 1; b < level_.size(); ++b) {
        const auto& ib = level_[b].items.items();
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin(), ib.end() - 1)) {
          break;  // Joinable partners are contiguous.
        }
        LevelEntry child;
        child.items = level_[a].items.WithItem(ib.back());
        child.tids = Intersect(level_[a].tids, level_[b].tids);
        ++result.stats.intersections;
        QualifyRequest req;
        req.threshold = params.pfct;
        child.pr_f = ctx.oracle->Qualify(child.tids, req, &result.stats);
        if (child.pr_f > req.threshold) {
          next_level.push_back(std::move(child));
        }
      }
    }
    level_.swap(next_level);
  }
}

void LevelSyncBfsFrontier::Merge(const SearchContext& ctx,
                                 MiningResult& result) {
  (void)ctx;
  result.Sort();
}

void LevelSyncBfsFrontier::RestoreState(const SearchContext& ctx,
                                        const RunSnapshot& snapshot,
                                        MiningResult& result) {
  level_.clear();
  for (const WeightedItemset& element : snapshot.frontier) {
    LevelEntry entry;
    entry.items = element.items;
    entry.tids = TidsOfItemset(*ctx.index, element.items);
    entry.pr_f = element.weight;
    level_.push_back(std::move(entry));
  }
  entry_counter_ = snapshot.cursor;
  SeedResultFromSnapshot(snapshot, result);
}

void LevelSyncBfsFrontier::SaveState(const SearchContext& ctx,
                                     const MiningResult& result,
                                     RunSnapshot& snapshot) const {
  (void)ctx;
  snapshot.frontier.clear();
  for (const LevelEntry& entry : level_) {
    WeightedItemset element;
    element.items = entry.items;
    element.weight = entry.pr_f;
    snapshot.frontier.push_back(std::move(element));
  }
  snapshot.cursor = entry_counter_;
  snapshot.entries = result.itemsets;
  snapshot.base = result.stats;
}

// ---------------------------------------------------------------------------
// TopKFrontier

bool TopKFrontier::RanksBefore(const PfciEntry& a, const PfciEntry& b) {
  if (a.fcp != b.fcp) return a.fcp > b.fcp;
  return a.items < b.items;
}

double TopKFrontier::Threshold(double floor) const {
  if (top_.size() < k_) return floor;
  return std::max(floor, std::nextafter(worst_in_top_, 0.0));
}

std::size_t TopKFrontier::WeakestPos() const {
  std::size_t weakest = 0;
  for (std::size_t i = 1; i < top_.size(); ++i) {
    if (!RanksBefore(top_[i], top_[weakest])) weakest = i;
  }
  return weakest;
}

void TopKFrontier::RecomputeWorst() {
  if (top_.empty()) return;  // k == 0: threshold stays at its seed.
  worst_in_top_ = top_.front().fcp;
  for (const PfciEntry& entry : top_) {
    worst_in_top_ = std::min(worst_in_top_, entry.fcp);
  }
}

void TopKFrontier::Offer(PfciEntry entry) {
  if (top_.size() < k_) {
    top_.push_back(std::move(entry));
    if (top_.size() == k_) RecomputeWorst();
    return;
  }
  if (top_.empty()) return;  // k == 0 mines nothing.
  // Evict the weakest entry iff the candidate outranks it under the
  // output order — at equal FCP the lexicographically smaller itemset
  // wins, exactly as in the final sort.
  const std::size_t weakest = WeakestPos();
  if (!RanksBefore(entry, top_[weakest])) return;
  top_[weakest] = std::move(entry);
  RecomputeWorst();
}

void TopKFrontier::BuildCandidates(const SearchContext& ctx,
                                   MiningResult& result) {
  for (Item item : ctx.index->occurring_items()) {
    // The floor threshold is the only sound candidate filter here (the
    // dynamic threshold starts at the floor and only rises), so the
    // oracle runs bound-stages only: no counted floor, no exact check.
    QualifyRequest req;
    req.threshold = ctx.params->pfct;
    req.count_floor = false;
    req.exact_check = false;
    if (ctx.oracle->Qualify(ctx.index->TidsOfItem(item), req, &result.stats) >
        req.threshold) {
      candidates_.push_back(item);
    }
  }
}

void TopKFrontier::Search(const SearchContext& ctx, MiningResult& result) {
  const double floor = ctx.params->pfct;
  // The whole search shares one RNG, so the run is a single logical work
  // unit: after any truncation nothing further may be evaluated, or
  // later estimates would read a shifted stream. On resume the stream
  // continues from the suspended run's exact state (suspend mode drains
  // at candidate boundaries, so the state is a candidate-boundary state).
  Rng rng(ctx.params->seed);
  if (have_rng_state_) rng.RestoreState(rng_state_);
  WorkUnitBudget unit =
      ctx.rt != nullptr ? ctx.rt->UnitBudget(0, 1) : WorkUnitBudget{};

  ClosedDfsContext dfs;
  dfs.ctx = &ctx;
  dfs.candidates = &candidates_;
  dfs.stats = &result.stats;
  dfs.rng = &rng;
  dfs.workspace = nullptr;
  dfs.unit = &unit;
  dfs.failpoint = "topk/node";
  dfs.count_floor = false;
  dfs.threshold = [this, floor] { return Threshold(floor); };
  dfs.emit = [this, &ctx](PfciEntry entry) {
    if (ctx.exec->progress != nullptr) ctx.exec->progress->AddItemsets();
    Offer(std::move(entry));
  };

  std::size_t c = next_candidate_;
  for (; c < candidates_.size() && !(unit.truncated || StopRequested(ctx.rt));
       ++c) {
    if (DrainPending(ctx.rt)) break;
    const std::uint64_t nodes_before = result.stats.nodes_visited;
    const std::uint64_t samples_before = result.stats.total_samples;
    const Item item = candidates_[c];
    const TidSet& tids = ctx.index->TidsOfItem(item);
    const double pr_f = ctx.freq->PrF(tids);
    if (pr_f > Threshold(floor)) {
      ClosedDfs(dfs, Itemset{item}, tids, pr_f, c);
    }
    NoteUnitWork(ctx.rt, result.stats.nodes_visited - nodes_before,
                 result.stats.total_samples - samples_before);
  }
  next_candidate_ = c;
  rng_state_ = rng.SaveState();
  have_rng_state_ = true;
  if (unit.truncated && ctx.rt != nullptr) {
    ctx.rt->RecordTruncation(Outcome::kBudgetExhausted);
  }
}

void TopKFrontier::Merge(const SearchContext& ctx, MiningResult& result) {
  (void)ctx;
  // Descending FCP, ties resolved by itemset order for determinism.
  std::sort(top_.begin(), top_.end(), RanksBefore);
  result.itemsets = std::move(top_);
}

void TopKFrontier::RestoreState(const SearchContext& ctx,
                                const RunSnapshot& snapshot,
                                MiningResult& result) {
  (void)ctx;
  candidates_.clear();
  for (const WeightedItemset& element : snapshot.frontier) {
    candidates_.push_back(element.items[0]);
  }
  // The pool rides in the snapshot's entries (Merge moves it into the
  // result at the end of every session, suspended or not), so only the
  // base counters seed the result here.
  top_ = snapshot.entries;
  if (k_ > 0 && top_.size() >= k_) RecomputeWorst();
  next_candidate_ = static_cast<std::size_t>(snapshot.cursor);
  if (snapshot.has_rng) {
    rng_state_ = snapshot.rng;
    have_rng_state_ = true;
  }
  AddBaseStats(snapshot.base, &result.stats);
}

void TopKFrontier::SaveState(const SearchContext& ctx,
                             const MiningResult& result,
                             RunSnapshot& snapshot) const {
  (void)ctx;
  snapshot.frontier.clear();
  for (Item item : candidates_) {
    WeightedItemset element;
    element.items = Itemset{item};
    snapshot.frontier.push_back(std::move(element));
  }
  snapshot.cursor = next_candidate_;
  if (have_rng_state_) {
    snapshot.has_rng = true;
    snapshot.rng = rng_state_;
  }
  snapshot.entries = result.itemsets;
  snapshot.base = result.stats;
}

// ---------------------------------------------------------------------------
// FlatCheckFrontier (Naive)

void FlatCheckFrontier::BuildCandidates(const SearchContext& ctx,
                                        MiningResult& result) {
  // Stage 1 of Fig. 5: all probabilistic frequent itemsets. The node
  // budget is consumed here (the PFI enumeration is the run's search
  // tree); in suspend mode the whole stage is one unit, noted into the
  // budget before the checks fan out.
  const std::uint64_t nodes_before = result.stats.nodes_visited;
  pfis_ = EnumeratePfis(*ctx.db, ctx.params->min_sup, ctx.params->pfct,
                        /*use_chernoff=*/true, FrequencyMode::kExactDp,
                        &result.stats, TidSetPolicyFor(*ctx.params), ctx.rt,
                        ctx.exec);
  enumerated_nodes_ = result.stats.nodes_visited - nodes_before;
}

void FlatCheckFrontier::Search(const SearchContext& ctx,
                               MiningResult& result) {
  (void)result;
  const MiningParams& params = *ctx.params;
  RunController* rt = ctx.rt;
  // Stage 2: check each PFI's frequent closed probability by sampling.
  // Independent per PFI, so the checks fan out over the pool; the i-th
  // check's RNG derives from (seed, i), and results merge in PFI order,
  // keeping the output identical for any thread count. The batch-level
  // parallelism inside ApproxFcp is left off here — one task per PFI is
  // already finer-grained than the pool.
  checks_.resize(pfis_.size());
  // Each check's RNG stream is independent, so the sample budget is
  // pre-split fair-share across the checks: a refused check stays
  // undecided (unemitted) without disturbing its neighbours' streams.
  undecided_.assign(pfis_.size(), 0);
  NoteUnitWork(rt, enumerated_nodes_, 0);
  const auto check = [&](std::size_t i) {
    if (restored_done_.size() == pfis_.size() && restored_done_[i]) return;
    PFCI_FAILPOINT("naive/check");
    if (CheckpointNow(rt)) {
      undecided_[i] = 1;
      return;
    }
    // Suspend-mode drain: checks not yet started stay undecided and land
    // in the snapshot as pending; in-flight checks run to completion.
    if (DrainPending(rt)) {
      undecided_[i] = 1;
      return;
    }
    Rng rng(DeriveSeed(params.seed, i));
    const ExtensionEventSet events(*ctx.index, *ctx.freq, pfis_[i].items,
                                   pfis_[i].tids, &LocalDpWorkspace(),
                                   nullptr);
    if (rt != nullptr && events.size() > 0) {
      WorkUnitBudget unit = rt->UnitBudget(i, pfis_.size());
      if (!unit.TakeSamples(KarpLubyRequiredSamples(
              events.size(), params.epsilon, params.delta))) {
        undecided_[i] = 1;
        rt->RecordTruncation(Outcome::kBudgetExhausted);
        return;
      }
    }
    checks_[i] = ApproxFcp(pfis_[i].pr_f, events, params.epsilon,
                           params.delta, rng, /*pool=*/nullptr,
                           ctx.exec->deterministic, rt);
    if (checks_[i].aborted) undecided_[i] = 1;
    NoteUnitWork(rt, 0, checks_[i].samples);
    if (ctx.exec->progress != nullptr) ctx.exec->progress->AddNodes();
  };
  if (ctx.exec->pool != nullptr && ctx.exec->pool->num_threads() > 1) {
    ctx.exec->pool->ParallelFor(pfis_.size(), check, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < pfis_.size(); ++i) check(i);
  }
}

void FlatCheckFrontier::Merge(const SearchContext& ctx, MiningResult& result) {
  for (std::size_t i = 0; i < pfis_.size(); ++i) {
    // Checks decided by a prior session were counted and emitted there;
    // their entries and counters arrived through the snapshot base.
    if (restored_done_.size() == pfis_.size() && restored_done_[i]) continue;
    if (undecided_[i]) continue;
    const ApproxFcpResult& approx = checks_[i];
    ++result.stats.sampled_fcp_computations;
    result.stats.total_samples += approx.samples;
    if (approx.fcp > ctx.params->pfct) {
      PfciEntry entry;
      entry.items = pfis_[i].items;
      entry.fcp = approx.fcp;
      entry.pr_f = pfis_[i].pr_f;
      entry.fcp_upper = pfis_[i].pr_f;
      entry.method = FcpMethod::kSampled;
      result.itemsets.push_back(std::move(entry));
      if (ctx.exec->progress != nullptr) ctx.exec->progress->AddItemsets();
    }
  }
  result.Sort();
}

void FlatCheckFrontier::RestoreState(const SearchContext& ctx,
                                     const RunSnapshot& snapshot,
                                     MiningResult& result) {
  pfis_.clear();
  for (const WeightedItemset& element : snapshot.frontier) {
    PfiEntry entry;
    entry.items = element.items;
    entry.pr_f = element.weight;
    entry.tids = TidsOfItemset(*ctx.index, element.items);
    pfis_.push_back(std::move(entry));
  }
  restored_done_ = snapshot.done;
  restored_done_.resize(pfis_.size(), 0);
  enumerated_nodes_ = 0;  // This session did not enumerate.
  SeedResultFromSnapshot(snapshot, result);
}

void FlatCheckFrontier::SaveState(const SearchContext& ctx,
                                  const MiningResult& result,
                                  RunSnapshot& snapshot) const {
  (void)ctx;
  snapshot.frontier.clear();
  snapshot.done.clear();
  for (std::size_t i = 0; i < pfis_.size(); ++i) {
    WeightedItemset element;
    element.items = pfis_[i].items;
    element.weight = pfis_[i].pr_f;
    snapshot.frontier.push_back(std::move(element));
    const bool was_done =
        restored_done_.size() == pfis_.size() && restored_done_[i] != 0;
    const bool decided_now =
        undecided_.size() == pfis_.size() && undecided_[i] == 0;
    snapshot.done.push_back(was_done || decided_now ? 1 : 0);
  }
  snapshot.entries = result.itemsets;
  snapshot.base = result.stats;
}

}  // namespace pfci
