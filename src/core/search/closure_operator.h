// The closedness side of the unified search kernel (DESIGN.md §12).
//
// Lemmas 4.2/4.3 prune by tid-set containment relations; Lemma 4.4 plus
// the exact/sampled evaluators certify the surviving nodes. Both halves
// act on Tids(X), so they live together: the ClosureOperator answers
// "is X dominated by a superset?" and "what is PrFC(X), and does it beat
// the threshold?" for every frontier policy.
#ifndef PFCI_CORE_SEARCH_CLOSURE_OPERATOR_H_
#define PFCI_CORE_SEARCH_CLOSURE_OPERATOR_H_

#include "src/core/fcp_engine.h"
#include "src/core/mining_result.h"
#include "src/data/vertical_index.h"
#include "src/util/random.h"
#include "src/util/runtime.h"

namespace pfci {

/// Converts a finished certification into the reported entry (the one
/// spelling of the bounds-field fallbacks shared by every miner).
PfciEntry MakePfciEntry(const Itemset& x, const FcpComputation& comp);

/// Superset pruning plus frequent-closed-probability certification over
/// one index/engine pair. Safe to share across threads (mutation goes to
/// caller-owned stats/rng/unit).
class ClosureOperator {
 public:
  ClosureOperator(const VerticalIndex& index, const FcpEngine& engine)
      : index_(&index), engine_(&engine) {}

  /// Lemma 4.2: some item e < last(X), e not in X, has
  /// count(X+e) == count(X) -> X and its whole prefix subtree have
  /// frequent closed probability 0. Charges the subset tests to
  /// stats.intersections; the caller bumps pruned_by_superset on a hit
  /// (it owns the per-node decision).
  bool SupersetPruned(const Itemset& x, const TidSet& tids,
                      MiningStats& stats) const;

  /// Certifies X against `threshold` via the engine's
  /// Bounding-Pruning-Checking pipeline (same-count zero, Lemma 4.4
  /// bounds, exact inclusion-exclusion or ApproxFCP). Pass params.pfct
  /// for the threshold-based miners; top-k passes its rising floor.
  FcpComputation CertifyAt(double threshold, const Itemset& x,
                           const TidSet& tids, double pr_f, Rng& rng,
                           MiningStats* stats, DpWorkspace* workspace,
                           WorkUnitBudget* unit) const {
    return engine_->EvaluateAt(threshold, x, tids, pr_f, rng, stats,
                               workspace, unit);
  }

  const FcpEngine& engine() const { return *engine_; }

 private:
  const VerticalIndex* index_;
  const FcpEngine* engine_;
};

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_CLOSURE_OPERATOR_H_
