// The qualification oracle of the unified search kernel (DESIGN.md §12).
//
// Every miner asks the same question about a candidate itemset — "can X
// still be probabilistically frequent above my threshold?" — and answers
// it with the same pipeline: support-count floor, session warm-start
// proofs, the Lemma 4.1 Chernoff-Hoeffding bound, and finally the exact
// (or distributional-approximation) frequent probability. The
// CandidateOracle owns that pipeline once, including its pruning-counter
// semantics, so the frontier policies stay pure enumeration strategies.
#ifndef PFCI_CORE_SEARCH_CANDIDATE_ORACLE_H_
#define PFCI_CORE_SEARCH_CANDIDATE_ORACLE_H_

#include "src/core/eval_cache.h"
#include "src/core/execution.h"
#include "src/core/frequent_probability.h"
#include "src/core/mining_result.h"
#include "src/data/vertical_index.h"
#include "src/prob/tail_approximations.h"

namespace pfci {

/// One qualification query. The defaults reproduce the common
/// MPFCI/BFS/PFI semantics; TopK flips the two flags.
struct QualifyRequest {
  /// The pruning threshold: the oracle rejects when it can prove
  /// PrF(X) <= threshold. Constant (params.pfct / pft) for the
  /// threshold-based miners; the rising k-th-best floor for top-k.
  double threshold = 0.0;

  /// Non-null for singleton candidates in session runs: warm-start
  /// infrequency proofs recorded by earlier runs reject the item before
  /// any bound is computed, and rejections found the hard way are
  /// recorded for later runs. Null disables both directions.
  const Item* warm_item = nullptr;

  /// Whether a support-count-floor rejection bumps pruned_by_frequency.
  /// The threshold-based miners count it (the floor is their Definition
  /// 3.4 frequency test); the top-k candidate filter does not.
  bool count_floor = true;

  /// When false the oracle stops after the bound stages and never
  /// computes PrF: Admitted() on the result then only means "not
  /// provably below threshold". Used by the top-k candidate filter,
  /// whose dynamic threshold makes a static exact check unsound.
  bool exact_check = true;

  /// Scratch for the exact-DP path (null: the calling thread's
  /// workspace).
  DpWorkspace* workspace = nullptr;
};

/// Owns the candidate qualification pipeline: count floor -> warm-start
/// proof -> Chernoff-Hoeffding bound -> exact/approximate PrF, with the
/// per-stage pruning counters. Stateless per query and safe to share
/// across threads (all mutation goes to caller-owned `stats`, and the
/// warm store is internally synchronized).
class CandidateOracle {
 public:
  /// `use_chernoff` gates the Lemma 4.1 stage (params.pruning.chernoff,
  /// or the PFI miner's use_chernoff flag). `mode` selects the PrF
  /// evaluation: kExactDp is the exact Poisson-binomial DP; the others
  /// are the distributional tail approximations of the approximate PFI
  /// miner. `warm` (nullable) is consulted/updated only for queries that
  /// pass a warm_item; callers gate it (e.g. on mode == kExactDp, the
  /// only mode the proofs are sound against).
  CandidateOracle(const VerticalIndex& index, const FrequentProbability& freq,
                  bool use_chernoff, FrequencyMode mode, ItemWarmStart* warm)
      : index_(&index),
        freq_(&freq),
        use_chernoff_(use_chernoff),
        mode_(mode),
        warm_(warm) {}

  /// Runs the pipeline on Tids(X) = `tids`. Returns PrF(X) when the
  /// exact stage ran (whatever its comparison outcome — callers test
  /// `> threshold`), and 0.0 when a bound stage rejected. With
  /// exact_check = false, returns kAdmittedByBounds when no bound stage
  /// rejected. `stats` may be null (counter-free callers).
  double Qualify(const TidSet& tids, const QualifyRequest& req,
                 MiningStats* stats) const;

  /// Sentinel returned by bound-only queries that were not rejected;
  /// compares greater than any real threshold.
  static constexpr double kAdmittedByBounds = 2.0;

  const FrequentProbability& freq() const { return *freq_; }

 private:
  const VerticalIndex* index_;
  const FrequentProbability* freq_;
  bool use_chernoff_;
  FrequencyMode mode_;
  ItemWarmStart* warm_;
};

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_CANDIDATE_ORACLE_H_
