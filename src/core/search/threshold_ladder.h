// Multi-threshold execution planning for the search kernel (DESIGN.md
// §15): the ordering rule that makes one shared pass answer a whole
// group of runs that differ only in min_sup.
//
// Both EvalCache tail tables and ItemWarmStart proofs are monotone in
// the threshold: a Poisson-binomial tail table computed at threshold S
// answers every min_sup <= S bit-identically, and an infrequency proof
// at min_sup s transfers to every s' >= s (anti-monotonicity, Lemma in
// the paper's Sec. 4). So a set of thresholds over one database is
// cheapest executed ascending with every freshly computed table extended
// to the ladder's top — the lowest-threshold run prefills answers for
// all the others. PlanThresholdLadder encodes exactly that rule; the
// serving layer's BatchPlanner and MineSweep both delegate to it so the
// "which member pays for the DP work" decision lives in one place.
#ifndef PFCI_CORE_SEARCH_THRESHOLD_LADDER_H_
#define PFCI_CORE_SEARCH_THRESHOLD_LADDER_H_

#include <cstddef>
#include <span>
#include <vector>

namespace pfci {

/// An execution plan over runs that differ only in min_sup.
struct ThresholdLadder {
  /// Member indexes (positions in the planned span) in execution order:
  /// ascending threshold, ties kept in submission order (stable), so
  /// the plan — and every counter downstream of it — is deterministic.
  /// order[0] is the ladder leader: the member that pays for the shared
  /// candidate-index build and DP tables everyone else reuses.
  std::vector<std::size_t> order;

  /// The largest threshold in the ladder. Runs executed under this plan
  /// pass it as ExecutionContext::table_floor so every tail table they
  /// cache is extended far enough to answer all later members.
  std::size_t table_floor = 0;

  bool empty() const { return order.empty(); }
  std::size_t size() const { return order.size(); }
};

/// Plans the ascending-threshold execution order for `thresholds` (one
/// per member, in submission order). An empty span yields an empty plan
/// with table_floor 0.
ThresholdLadder PlanThresholdLadder(std::span<const std::size_t> thresholds);

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_THRESHOLD_LADDER_H_
