#include "src/core/search/closure_operator.h"

#include <utility>

namespace pfci {

PfciEntry MakePfciEntry(const Itemset& x, const FcpComputation& comp) {
  PfciEntry entry;
  entry.items = x;
  entry.fcp = comp.fcp;
  entry.pr_f = comp.pr_f;
  entry.fcp_lower = comp.bounds_computed ? comp.bounds.lower : 0.0;
  entry.fcp_upper = comp.bounds_computed ? comp.bounds.upper : comp.pr_f;
  entry.method = comp.method;
  return entry;
}

bool ClosureOperator::SupersetPruned(const Itemset& x, const TidSet& tids,
                                     MiningStats& stats) const {
  const Item last = x.LastItem();
  for (Item item : index_->occurring_items()) {
    if (item >= last) break;
    if (x.Contains(item)) continue;
    const TidSet& item_tids = index_->TidsOfItem(item);
    if (item_tids.size() < tids.size()) continue;
    ++stats.intersections;
    if (IsSubsetOf(tids, item_tids)) return true;
  }
  return false;
}

}  // namespace pfci
