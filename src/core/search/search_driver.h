// The run skeleton of the unified search kernel (DESIGN.md §12).
//
// Every MiningResult-producing miner is the same five-act play: build the
// index and evaluators, filter first-level candidates, enumerate a
// frontier, merge deterministically, stamp outcome/timing/telemetry. The
// SearchDriver owns the play; a FrontierPolicy supplies the enumeration
// strategy (work-stealing DFS, level-synchronous BFS, threshold-adaptive
// top-k, flat single-pass checking). The miners' entry points reduce to
// "validate, pick a policy, run the driver".
//
// Invariant carried over from the pre-kernel miners: for a fixed request,
// results, stats counters, and trace event sequences are bit-identical
// across thread counts and tid-set modes, including truncated fail-soft
// partials (tests/kernel_parity_test.cc pins this against pre-refactor
// goldens).
#ifndef PFCI_CORE_SEARCH_SEARCH_DRIVER_H_
#define PFCI_CORE_SEARCH_SEARCH_DRIVER_H_

#include <functional>

#include "src/core/execution.h"
#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/core/search/candidate_oracle.h"
#include "src/core/search/closure_operator.h"
#include "src/core/search/run_snapshot.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"
#include "src/util/random.h"
#include "src/util/runtime.h"

namespace pfci {

/// Read-only run state the driver hands to its policy: the request, the
/// shared evaluators, and the kernel layers built over them.
struct SearchContext {
  const UncertainDatabase* db;
  const MiningParams* params;
  const ExecutionContext* exec;
  const VerticalIndex* index;
  const FrequentProbability* freq;
  const CandidateOracle* oracle;
  const ClosureOperator* closure;
  RunController* rt;  ///< exec->runtime (null: unlimited).
};

/// One enumeration strategy. Policies are single-use: a fresh instance
/// per run carries the per-run frontier state (candidate lists, levels,
/// the top-k pool).
class FrontierPolicy {
 public:
  virtual ~FrontierPolicy() = default;

  /// Search-phase trace span name ("dfs", "bfs", "sampling").
  virtual const char* phase_name() const = 0;

  /// Whether the candidate phase must run even after a global stop
  /// (Naive's PFI stage owns its own fail-soft winding-down, including
  /// the memory-budget charges of its nested index build).
  virtual bool candidates_when_stopped() const { return false; }

  /// Filters the first level (runs under the "candidate_build" span).
  virtual void BuildCandidates(const SearchContext& ctx,
                               MiningResult& result) = 0;

  /// Enumerates and evaluates the frontier (under the phase_name span).
  virtual void Search(const SearchContext& ctx, MiningResult& result) = 0;

  /// Folds per-task partials and orders the output (under the "merge"
  /// span; the driver folds the shared evaluator counters afterwards).
  virtual void Merge(const SearchContext& ctx, MiningResult& result) = 0;

  /// Checkpoint/resume (DESIGN.md §14). A policy that supports resume
  /// implements all three; the driver then replaces BuildCandidates with
  /// RestoreState when ExecutionContext::resume_snapshot is set (same
  /// trace span, so the resumed run's trace shape matches an
  /// uninterrupted run) and calls SaveState after Merge when a
  /// suspend-armed run drained. RestoreState must rebuild the candidate /
  /// frontier state WITHOUT recomputation-visible counter bumps — the
  /// suspended run's counters arrive wholesale via AddBaseStats, and the
  /// resumed totals must equal an uninterrupted run's.
  virtual bool SupportsResume() const { return false; }
  virtual void RestoreState(const SearchContext& ctx,
                            const RunSnapshot& snapshot,
                            MiningResult& result) {
    (void)ctx;
    (void)snapshot;
    (void)result;
  }
  virtual void SaveState(const SearchContext& ctx, const MiningResult& result,
                         RunSnapshot& snapshot) const {
    (void)ctx;
    (void)result;
    (void)snapshot;
  }
};

/// Runs one mining request through `policy`, replaying the shared
/// contract: run-start checkpoint, the candidate_build / phase / merge
/// trace spans, the shared-evaluator counter fold, outcome stamping, and
/// post-merge counter telemetry. `params` must already be validated.
MiningResult RunSearch(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec, FrontierPolicy& policy);

/// Per-call state of one closed-itemset DFS work unit (an MPFCI
/// first-level subtree, or the top-k run's single unit). The stats/rng/
/// unit objects are owned by the caller and mutated in place.
struct ClosedDfsContext {
  const SearchContext* ctx;
  const std::vector<Item>* candidates;  ///< First-level extension items.
  MiningStats* stats;
  Rng* rng;
  DpWorkspace* workspace;  ///< Null: certify without a workspace (top-k).
  WorkUnitBudget* unit;
  const char* failpoint;  ///< Node-expansion failpoint name.
  bool count_floor;       ///< Child floor rejections bump pruned_by_frequency.
  /// The pruning threshold, re-read per child (constant pfct, or the
  /// top-k rising floor).
  std::function<double()> threshold;
  /// Receives each certified qualifying itemset (appends to a partial
  /// result, or offers into the top-k pool). Owns progress reporting.
  std::function<void(PfciEntry)> emit;
};

/// The set-enumeration-tree DFS shared by the work-stealing and top-k
/// frontiers: checkpoint, superset pruning, child qualification through
/// the oracle, subset pruning, and endgame certification (Fig. 1's
/// Bounding-Pruning-Checking per node). `x` extends only with candidate
/// items after position `last_candidate_pos`.
void ClosedDfs(ClosedDfsContext& dfs, const Itemset& x, const TidSet& tids,
               double pr_f, std::size_t last_candidate_pos);

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_SEARCH_DRIVER_H_
