// The four frontier policies of the unified search kernel (DESIGN.md
// §12): how each miner walks the set-enumeration space, with every
// qualification, closure, and certification decision delegated to the
// CandidateOracle / ClosureOperator layers.
#ifndef PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_
#define PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_

#include <cstddef>
#include <vector>

#include "src/core/fcp_sampler.h"
#include "src/core/search/pfi_enumeration.h"
#include "src/core/search/search_driver.h"

namespace pfci {

/// MPFCI (Fig. 1): depth-first set-enumeration, parallelized by handing
/// each first-level candidate's subtree to the work-stealing pool as one
/// task. Each subtree's RNG is seeded by DeriveSeed(seed, root item) and
/// partials merge in candidate order, so the output is bit-identical for
/// any thread count.
class WorkStealingDfsFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "dfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

 private:
  std::vector<Item> candidates_;
  std::vector<double> candidate_pr_f_;
  std::vector<MiningResult> subtree_;
};

/// Apriori-shaped MPFCI: level-synchronous generation by prefix join,
/// with each level's certifications fanned out over the pool and
/// committed in level order. Per-entry RNG streams derive from the
/// entry's global position across the run.
class LevelSyncBfsFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "bfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

 private:
  /// One level entry: a probabilistic frequent itemset with its tid-list.
  struct LevelEntry {
    Itemset items;
    TidSet tids;
    double pr_f = 0.0;
  };

  std::vector<LevelEntry> level_;
};

/// Top-k mining: the same closed-itemset DFS, but pruning against a
/// rising threshold — the k-th best FCP in hand — instead of a static
/// pfct. Sequential by construction (one shared RNG/threshold), ordered
/// by descending FCP with itemset tie-breaks.
class TopKFrontier : public FrontierPolicy {
 public:
  explicit TopKFrontier(std::size_t k) : k_(k) {}

  const char* phase_name() const override { return "dfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

 private:
  /// The output order: descending FCP, ties broken by ascending itemset.
  static bool RanksBefore(const PfciEntry& a, const PfciEntry& b);

  /// The active pruning threshold: the caller's floor while fewer than k
  /// results are held (strict, per Definition 3.8). Once the pool is
  /// full it sits one ULP *below* the k-th best FCP, so a candidate that
  /// exactly ties the k-boundary still reaches Offer() and the itemset
  /// tie-break there — the final top-k is then independent of the
  /// candidate enumeration order, matching the output sort.
  double Threshold(double floor) const;

  /// Index of the entry the next better candidate would evict: the one
  /// ranking last under the output order.
  std::size_t WeakestPos() const;
  void RecomputeWorst();
  void Offer(PfciEntry entry);

  std::size_t k_;
  std::vector<Item> candidates_;
  std::vector<PfciEntry> top_;
  double worst_in_top_ = 1.0;
};

/// The Naive checker (Fig. 5): enumerate every probabilistic frequent
/// itemset (PrFC <= PrF, so the answer set is contained in the PFIs),
/// then check each one's frequent closed probability by sampling — no
/// tree, no closure pruning. The checks fan out over the pool with
/// per-check RNG streams derived from (seed, check index) and commit in
/// PFI order.
class FlatCheckFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "sampling"; }
  /// The PFI stage owns its own fail-soft winding-down (and its nested
  /// index build's memory-budget charges), so it runs even after a
  /// global stop — exactly like the pre-kernel miner.
  bool candidates_when_stopped() const override { return true; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

 private:
  std::vector<PfiEntry> pfis_;
  std::vector<ApproxFcpResult> checks_;
  std::vector<std::uint8_t> undecided_;
};

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_
