// The four frontier policies of the unified search kernel (DESIGN.md
// §12): how each miner walks the set-enumeration space, with every
// qualification, closure, and certification decision delegated to the
// CandidateOracle / ClosureOperator layers.
#ifndef PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_
#define PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_

#include <cstddef>
#include <vector>

#include "src/core/fcp_sampler.h"
#include "src/core/search/pfi_enumeration.h"
#include "src/core/search/search_driver.h"

namespace pfci {

/// MPFCI (Fig. 1): depth-first set-enumeration, parallelized by handing
/// each first-level candidate's subtree to the work-stealing pool as one
/// task. Each subtree's RNG is seeded by DeriveSeed(seed, root item) and
/// partials merge in candidate order, so the output is bit-identical for
/// any thread count.
class WorkStealingDfsFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "dfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

  /// Snapshot layout: frontier = first-level candidates (singleton
  /// itemsets weighted by PrF), done = per-unit subtree completion bits.
  bool SupportsResume() const override { return true; }
  void RestoreState(const SearchContext& ctx, const RunSnapshot& snapshot,
                    MiningResult& result) override;
  void SaveState(const SearchContext& ctx, const MiningResult& result,
                 RunSnapshot& snapshot) const override;

 private:
  std::vector<Item> candidates_;
  std::vector<double> candidate_pr_f_;
  std::vector<MiningResult> subtree_;
  /// Units completed this session / restored as completed from a prior
  /// session. Distinct indices are written from distinct tasks, so the
  /// byte vectors are race-free without atomics.
  std::vector<std::uint8_t> done_;
  std::vector<std::uint8_t> restored_done_;
};

/// Apriori-shaped MPFCI: level-synchronous generation by prefix join,
/// with each level's certifications fanned out over the pool and
/// committed in level order. Per-entry RNG streams derive from the
/// entry's global position across the run.
class LevelSyncBfsFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "bfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

  /// Snapshot layout: frontier = the pending level (PrF-weighted; tid
  /// lists are recomputed on restore without counter bumps), cursor = the
  /// global entry counter at the level's start (the per-entry RNG streams
  /// derive from it).
  bool SupportsResume() const override { return true; }
  void RestoreState(const SearchContext& ctx, const RunSnapshot& snapshot,
                    MiningResult& result) override;
  void SaveState(const SearchContext& ctx, const MiningResult& result,
                 RunSnapshot& snapshot) const override;

 private:
  /// One level entry: a probabilistic frequent itemset with its tid-list.
  struct LevelEntry {
    Itemset items;
    TidSet tids;
    double pr_f = 0.0;
  };

  std::vector<LevelEntry> level_;
  /// Global position of the current level's first entry across the whole
  /// run (including prior suspended sessions).
  std::uint64_t entry_counter_ = 0;
};

/// Top-k mining: the same closed-itemset DFS, but pruning against a
/// rising threshold — the k-th best FCP in hand — instead of a static
/// pfct. Sequential by construction (one shared RNG/threshold), ordered
/// by descending FCP with itemset tie-breaks.
class TopKFrontier : public FrontierPolicy {
 public:
  explicit TopKFrontier(std::size_t k) : k_(k) {}

  const char* phase_name() const override { return "dfs"; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

  /// Snapshot layout: frontier = candidate items, cursor = next candidate
  /// position, entries = the current pool, rng = the shared stream's
  /// state (the run is one logical unit; the state carries across
  /// sessions so later draws match an uninterrupted run exactly).
  bool SupportsResume() const override { return true; }
  void RestoreState(const SearchContext& ctx, const RunSnapshot& snapshot,
                    MiningResult& result) override;
  void SaveState(const SearchContext& ctx, const MiningResult& result,
                 RunSnapshot& snapshot) const override;

 private:
  /// The output order: descending FCP, ties broken by ascending itemset.
  static bool RanksBefore(const PfciEntry& a, const PfciEntry& b);

  /// The active pruning threshold: the caller's floor while fewer than k
  /// results are held (strict, per Definition 3.8). Once the pool is
  /// full it sits one ULP *below* the k-th best FCP, so a candidate that
  /// exactly ties the k-boundary still reaches Offer() and the itemset
  /// tie-break there — the final top-k is then independent of the
  /// candidate enumeration order, matching the output sort.
  double Threshold(double floor) const;

  /// Index of the entry the next better candidate would evict: the one
  /// ranking last under the output order.
  std::size_t WeakestPos() const;
  void RecomputeWorst();
  void Offer(PfciEntry entry);

  std::size_t k_;
  std::vector<Item> candidates_;
  std::vector<PfciEntry> top_;
  double worst_in_top_ = 1.0;
  /// Resume state: first candidate not yet fully mined, and the shared
  /// RNG's state at the suspension point (Search writes the end-of-loop
  /// state back so SaveState can serialize it).
  std::size_t next_candidate_ = 0;
  bool have_rng_state_ = false;
  Rng::State rng_state_;
};

/// The Naive checker (Fig. 5): enumerate every probabilistic frequent
/// itemset (PrFC <= PrF, so the answer set is contained in the PFIs),
/// then check each one's frequent closed probability by sampling — no
/// tree, no closure pruning. The checks fan out over the pool with
/// per-check RNG streams derived from (seed, check index) and commit in
/// PFI order.
class FlatCheckFrontier : public FrontierPolicy {
 public:
  const char* phase_name() const override { return "sampling"; }
  /// The PFI stage owns its own fail-soft winding-down (and its nested
  /// index build's memory-budget charges), so it runs even after a
  /// global stop — exactly like the pre-kernel miner.
  bool candidates_when_stopped() const override { return true; }
  void BuildCandidates(const SearchContext& ctx,
                       MiningResult& result) override;
  void Search(const SearchContext& ctx, MiningResult& result) override;
  void Merge(const SearchContext& ctx, MiningResult& result) override;

  /// Snapshot layout: frontier = the enumerated PFIs (PrF-weighted; tid
  /// lists recomputed on restore without counter bumps), done = per-check
  /// decision bits — a restored-done check is neither re-sampled nor
  /// re-counted in Merge (its entry and counters arrived via the base).
  bool SupportsResume() const override { return true; }
  void RestoreState(const SearchContext& ctx, const RunSnapshot& snapshot,
                    MiningResult& result) override;
  void SaveState(const SearchContext& ctx, const MiningResult& result,
                 RunSnapshot& snapshot) const override;

 private:
  std::vector<PfiEntry> pfis_;
  std::vector<ApproxFcpResult> checks_;
  std::vector<std::uint8_t> undecided_;
  std::vector<std::uint8_t> restored_done_;
  /// Nodes consumed by this session's PFI enumeration (zero on resume),
  /// noted into the suspend-mode budget before the checks fan out.
  std::uint64_t enumerated_nodes_ = 0;
};

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_FRONTIER_POLICIES_H_
