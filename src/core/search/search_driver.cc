#include "src/core/search/search_driver.h"

#include "src/core/index_handle.h"
#include "src/util/failpoint.h"
#include "src/util/stopwatch.h"
#include "src/util/trace.h"

namespace pfci {

MiningResult RunSearch(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec, FrontierPolicy& policy) {
  Stopwatch timer;
  MiningResult result;
  const IndexHandle index_handle(db, TidSetPolicyFor(params), exec);
  const VerticalIndex& index = index_handle.get();
  const FrequentProbability freq(index, params.min_sup, exec.eval_cache,
                                 exec.table_floor);
  const FcpEngine engine(index, freq, params, exec);
  const CandidateOracle oracle(index, freq, params.pruning.chernoff,
                               FrequencyMode::kExactDp, exec.warm_start);
  const ClosureOperator closure(index, engine);
  RunController* rt = exec.runtime;
  const SearchContext ctx{&db,   &params, &exec,    &index,
                          &freq, &oracle, &closure, rt};

  // The index (built or session-borrowed) was charged into the memory
  // budget by the handle; checkpoint so an undersized budget fails
  // before any search work.
  CheckpointAtRunStart(rt);

  // Resume replaces the candidate build: the frontier policy reloads the
  // suspended run's candidates, frontier, decided entries, and base
  // counters under the same trace span, so a resumed run's trace shape is
  // identical to an uninterrupted run's.
  const RunSnapshot* resume = exec.resume_snapshot;
  const bool restoring =
      resume != nullptr && resume->has_frontier && policy.SupportsResume();
  if (restoring || policy.candidates_when_stopped() || !StopRequested(rt)) {
    TraceSpan span(exec.trace, "candidate_build",
                   &result.stats.candidate_seconds);
    if (restoring) {
      policy.RestoreState(ctx, *resume, result);
    } else {
      policy.BuildCandidates(ctx, result);
    }
  }
  {
    TraceSpan span(exec.trace, policy.phase_name(),
                   &result.stats.search_seconds);
    policy.Search(ctx, result);
  }
  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    policy.Merge(ctx, result);
    // The shared-evaluator counters fold once, on the coordinating
    // thread. Added (not assigned): a policy whose candidate phase ran a
    // nested enumeration (Naive's PFI stage) already accumulated that
    // stage's evaluator counts.
    result.stats.dp_runs += freq.dp_runs();
    result.stats.cache_hits += freq.cache_hits();
    result.stats.cache_misses += freq.cache_misses();
    result.stats.dp_reused += freq.dp_reused();
  }
  if (rt != nullptr) {
    result.stats.outcome = rt->outcome();
    result.stats.truncated = rt->truncated();
  }
  // A drained suspend-armed run deposits its frontier state for Mine()
  // to persist. The post-merge result.stats are exactly the snapshot's
  // base: no unit was half-done, so nothing needs attribution.
  if (exec.save_snapshot != nullptr && rt != nullptr && rt->suspend_armed() &&
      rt->SuspendRequested() && policy.SupportsResume()) {
    policy.SaveState(ctx, result, *exec.save_snapshot);
    exec.save_snapshot->has_frontier = true;
  }
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

void ClosedDfs(ClosedDfsContext& dfs, const Itemset& x, const TidSet& tids,
               double pr_f, std::size_t last_candidate_pos) {
  const SearchContext& ctx = *dfs.ctx;
  MiningStats& stats = *dfs.stats;
  // Node-expansion checkpoint (DESIGN.md §10). After any truncation the
  // unit winds down without evaluating anything further: a later sampled
  // evaluation would read a shifted RNG stream and no longer match the
  // unbudgeted run.
  PFCI_FAILPOINT(dfs.failpoint);
  if (CheckpointNow(ctx.rt)) return;
  if (!dfs.unit->TakeNode()) return;
  ++stats.nodes_visited;
  if (ctx.exec->progress != nullptr) ctx.exec->progress->AddNodes();

  if (ctx.params->pruning.superset &&
      ctx.closure->SupersetPruned(x, tids, stats)) {
    ++stats.pruned_by_superset;
    return;
  }

  bool x_may_be_closed = true;
  for (std::size_t c = last_candidate_pos + 1; c < dfs.candidates->size();
       ++c) {
    if (dfs.unit->truncated || StopRequested(ctx.rt)) return;
    const Item item = (*dfs.candidates)[c];
    const TidSet child_tids = Intersect(tids, ctx.index->TidsOfItem(item));
    ++stats.intersections;
    const bool same_count = child_tids.size() == tids.size();
    if (ctx.params->pruning.subset && same_count) {
      // Lemma 4.3: X always co-occurs with X+item, so X is never closed;
      // and any sibling X+e_k (e_k > item) always co-occurs with
      // X+e_k+item, so the remaining branches are dead too.
      x_may_be_closed = false;
    }

    QualifyRequest req;
    req.threshold = dfs.threshold();
    req.count_floor = dfs.count_floor;
    req.workspace = dfs.workspace;
    const double child_pr_f = ctx.oracle->Qualify(child_tids, req, &stats);
    if (child_pr_f > req.threshold) {
      ClosedDfs(dfs, x.WithItem(item), child_tids, child_pr_f, c);
    }
    if (ctx.params->pruning.subset && same_count) break;
  }

  if (dfs.unit->truncated || StopRequested(ctx.rt)) return;
  if (!x_may_be_closed) {
    ++stats.pruned_by_subset;
    return;
  }
  const FcpComputation comp =
      ctx.closure->CertifyAt(dfs.threshold(), x, tids, pr_f, *dfs.rng, &stats,
                             dfs.workspace, dfs.unit);
  if (comp.undecided) return;
  if (comp.is_pfci) dfs.emit(MakePfciEntry(x, comp));
}

}  // namespace pfci
