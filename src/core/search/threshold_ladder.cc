#include "src/core/search/threshold_ladder.h"

#include <algorithm>
#include <numeric>

namespace pfci {

ThresholdLadder PlanThresholdLadder(
    std::span<const std::size_t> thresholds) {
  ThresholdLadder ladder;
  if (thresholds.empty()) return ladder;
  ladder.order.resize(thresholds.size());
  std::iota(ladder.order.begin(), ladder.order.end(), std::size_t{0});
  // stable_sort keeps equal thresholds in submission order: two requests
  // at the same min_sup execute (and stamp queue counters) in the order
  // they arrived, independent of the sort implementation.
  std::stable_sort(ladder.order.begin(), ladder.order.end(),
                   [&thresholds](std::size_t a, std::size_t b) {
                     return thresholds[a] < thresholds[b];
                   });
  ladder.table_floor = thresholds[ladder.order.back()];
  return ladder;
}

}  // namespace pfci
