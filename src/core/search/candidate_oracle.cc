#include "src/core/search/candidate_oracle.h"

namespace pfci {

double CandidateOracle::Qualify(const TidSet& tids, const QualifyRequest& req,
                                MiningStats* stats) const {
  // Support-count floor: fewer than min_sup possible occurrences means
  // PrF(X) = 0 unconditionally.
  if (tids.size() < freq_->min_sup()) {
    if (req.count_floor && stats != nullptr) ++stats->pruned_by_frequency;
    return 0.0;
  }

  // Session warm start: a proof recorded by an earlier run rejects the
  // item before any bound work. Sound by anti-monotonicity — the cold run
  // would reject it too, so the candidate set (and every downstream RNG
  // stream) is unchanged.
  if (warm_ != nullptr && req.warm_item != nullptr &&
      warm_->BoundFor(*req.warm_item, freq_->min_sup()) <= req.threshold) {
    if (stats != nullptr) ++stats->pruned_by_frequency;
    return 0.0;
  }

  // Lemma 4.1: the Chernoff-Hoeffding upper bound settles most
  // rejections without a DP.
  if (use_chernoff_) {
    const double upper = freq_->PrFUpperBound(tids);
    if (upper <= req.threshold) {
      if (stats != nullptr) ++stats->pruned_by_chernoff;
      if (warm_ != nullptr && req.warm_item != nullptr) {
        warm_->RecordBound(*req.warm_item, freq_->min_sup(), upper);
      }
      return 0.0;
    }
  }

  if (!req.exact_check) return kAdmittedByBounds;

  // The frequent probability itself: the exact Poisson-binomial DP, or a
  // distributional tail approximation for the approximate PFI modes.
  double pr_f;
  if (mode_ == FrequencyMode::kExactDp) {
    pr_f = req.workspace != nullptr ? freq_->PrF(tids, *req.workspace)
                                    : freq_->PrF(tids);
  } else {
    DpWorkspace& ws =
        req.workspace != nullptr ? *req.workspace : LocalDpWorkspace();
    index_->GatherProbs(tids, &ws.probs);
    pr_f = TailAtLeastWithMode(ws.probs, freq_->min_sup(), mode_);
  }
  if (pr_f <= req.threshold) {
    if (stats != nullptr) ++stats->pruned_by_frequency;
    if (warm_ != nullptr && req.warm_item != nullptr) {
      warm_->RecordBound(*req.warm_item, freq_->min_sup(), pr_f);
    }
  }
  return pr_f;
}

}  // namespace pfci
