#include "src/core/search/pfi_enumeration.h"

#include <algorithm>
#include <utility>

#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/core/search/candidate_oracle.h"
#include "src/data/vertical_index.h"
#include "src/util/failpoint.h"

namespace pfci {

namespace {

class PfiEnumeration {
 public:
  PfiEnumeration(const UncertainDatabase& db, std::size_t min_sup, double pft,
                 bool use_chernoff, FrequencyMode mode, MiningStats* stats,
                 const TidSetPolicy& policy, RunController* runtime,
                 const ExecutionContext* session)
      : pft_(pft),
        stats_(stats),
        rt_(runtime),
        exec_(MakeContext(session, runtime)),
        index_(db, policy, exec_),
        freq_(index_.get(), min_sup, exec_.eval_cache, exec_.table_floor),
        oracle_(index_.get(), freq_, use_chernoff, mode,
                // Warm-start proofs are exact-PrF statements: sound to
                // prune with only when the run itself evaluates exactly.
                mode == FrequencyMode::kExactDp ? exec_.warm_start
                                                : nullptr) {}

  std::vector<PfiEntry> Run() {
    // Index bytes were charged by the handle; fail an undersized memory
    // budget before any search work.
    CheckpointAtRunStart(rt_);
    // Sequential enumeration: one logical work unit owns the whole
    // budget.
    unit_ = rt_ != nullptr ? rt_->UnitBudget(0, 1) : WorkUnitBudget{};

    if (!StopRequested(rt_)) {
      for (Item item : index_->occurring_items()) {
        TidSet tids = index_->TidsOfItem(item);
        QualifyRequest req;
        req.threshold = pft_;
        req.warm_item = &item;
        const double pr_f = oracle_.Qualify(tids, req, stats_);
        if (pr_f > pft_) {
          candidates_.push_back(item);
          Emit(Itemset{item}, std::move(tids), pr_f);
        }
      }
    }
    // The singleton pass above seeded `result_`; extend depth-first.
    const std::size_t num_singletons = result_.size();
    for (std::size_t s = 0; s < num_singletons && !Stopped(); ++s) {
      // Copy: Dfs appends to result_ and may reallocate.
      const PfiEntry seed = result_[s];
      Dfs(seed.items, seed.tids, IndexOfCandidate(seed.items.LastItem()));
    }
    if (unit_.truncated && rt_ != nullptr) {
      rt_->RecordTruncation(Outcome::kBudgetExhausted);
    }
    if (stats_ != nullptr) {
      stats_->dp_runs += freq_.dp_runs();
      stats_->cache_hits += freq_.cache_hits();
      stats_->cache_misses += freq_.cache_misses();
      stats_->dp_reused += freq_.dp_reused();
    }
    std::sort(result_.begin(), result_.end());
    return std::move(result_);
  }

 private:
  /// Whether the run should wind down (budget cut or global stop).
  bool Stopped() const { return unit_.truncated || StopRequested(rt_); }

  std::size_t IndexOfCandidate(Item item) const {
    return static_cast<std::size_t>(
        std::lower_bound(candidates_.begin(), candidates_.end(), item) -
        candidates_.begin());
  }

  /// The context the index handle and cache read session hooks from; the
  /// runtime is overridden so the handle charges the same controller the
  /// search polls.
  static ExecutionContext MakeContext(const ExecutionContext* session,
                                      RunController* runtime) {
    ExecutionContext exec = session != nullptr ? *session : ExecutionContext{};
    exec.runtime = runtime;
    return exec;
  }

  void Emit(Itemset items, TidSet tids, double pr_f) {
    PfiEntry entry;
    entry.items = std::move(items);
    entry.pr_f = pr_f;
    entry.tids = std::move(tids);
    result_.push_back(std::move(entry));
  }

  void Dfs(const Itemset& x, const TidSet& tids, std::size_t candidate_pos) {
    // Node-expansion checkpoint: PFIs emit before recursing, so cutting
    // here leaves a verified prefix in `result_`.
    PFCI_FAILPOINT("pfi/node");
    if (CheckpointNow(rt_)) return;
    if (!unit_.TakeNode()) return;
    if (stats_ != nullptr) ++stats_->nodes_visited;
    for (std::size_t c = candidate_pos + 1; c < candidates_.size(); ++c) {
      if (Stopped()) return;
      const Item item = candidates_[c];
      TidSet child_tids = Intersect(tids, index_->TidsOfItem(item));
      if (stats_ != nullptr) ++stats_->intersections;
      QualifyRequest req;
      req.threshold = pft_;
      const double pr_f = oracle_.Qualify(child_tids, req, stats_);
      if (pr_f <= pft_) continue;
      const Itemset child = x.WithItem(item);
      Emit(child, child_tids, pr_f);
      Dfs(child, child_tids, c);
    }
  }

  double pft_;
  MiningStats* stats_;
  RunController* rt_;
  ExecutionContext exec_;
  IndexHandle index_;
  FrequentProbability freq_;
  CandidateOracle oracle_;
  WorkUnitBudget unit_;
  std::vector<Item> candidates_;
  std::vector<PfiEntry> result_;
};

}  // namespace

std::vector<PfiEntry> EnumeratePfis(const UncertainDatabase& db,
                                    std::size_t min_sup, double pft,
                                    bool use_chernoff, FrequencyMode mode,
                                    MiningStats* stats,
                                    const TidSetPolicy& policy,
                                    RunController* runtime,
                                    const ExecutionContext* session) {
  PfiEnumeration search(db, min_sup, pft, use_chernoff, mode, stats, policy,
                        runtime, session);
  return search.Run();
}

}  // namespace pfci
