// Crash-consistent run snapshots for checkpoint/resume (DESIGN.md §14).
//
// A suspend-armed run drains at its next unit boundary (node subtree /
// BFS level / top-k candidate / naive check — RunController::ArmSuspend)
// and the search driver captures frontier + decided-entry state here.
// Because no unit is ever half-done at a drain, the snapshot's base
// counters are exactly the suspended run's deterministic work counters,
// and resuming replays only the unfinished units: the resumed result is
// bit-identical to an uninterrupted run across thread counts and tid-set
// modes.
//
// On disk the snapshot is a versioned line-based text file. Probabilities
// go through FormatDoubleRoundTrip so every double survives the
// round-trip bit-exactly (including 1e-12 and 1.0 atoms — pinned by
// tests/repros). The file ends with an explicit end marker: a parse only
// succeeds on a complete file, so a torn write is detected as corrupt
// rather than silently resumed. SaveRunSnapshotAtomic writes to a
// sibling temp file and renames it into place — a crash at any point
// (exercised by the PFCI_FAILPOINT sites inside) leaves the target
// either the old complete snapshot or the new complete one, never torn.
//
// The fingerprint refuses mismatched resumes: FNV-1a over the database
// contents (FingerprintDatabase) folded with the request's
// result-relevant fields (composed by Mine() with FnvMix*). Execution
// policy is deliberately excluded — results are bit-identical across
// thread counts and tid-set modes, so resuming under a different
// parallelism or layout is sound and supported.
#ifndef PFCI_CORE_SEARCH_RUN_SNAPSHOT_H_
#define PFCI_CORE_SEARCH_RUN_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/mining_result.h"
#include "src/data/itemset.h"
#include "src/data/uncertain_database.h"
#include "src/util/random.h"

namespace pfci {

/// One frontier element: an itemset plus the probability the candidate
/// stage attached to it (frequent probability; unused weights stay 0).
struct WeightedItemset {
  Itemset items;
  double weight = 0.0;
};

/// Serialized state of one suspended (or merely restartable) run. The
/// frontier containers are shaped generically; each policy documents its
/// own use in frontier_policies.h:
///   * mpfci: frontier = first-level candidates (+ PrF), done = per-unit
///     completion bits;
///   * bfs:   frontier = the pending level (+ PrF), cursor = the global
///     RNG entry counter at that level's start;
///   * topk:  frontier = candidate items (+ PrF), cursor = next candidate
///     position, rng = the shared stream's state, entries = the pool;
///   * naive: frontier = the enumerated PFIs (+ PrF), done = per-check
///     decision bits.
struct RunSnapshot {
  /// Format version written/accepted by this build.
  static constexpr int kVersion = 1;

  /// Algorithm wire name (kAlgorithmNames); resumes are refused when it
  /// differs from the resuming request's algorithm.
  std::string algorithm;

  /// FNV-1a fingerprint of database + result-relevant request fields.
  std::uint64_t fingerprint = 0;

  /// False: restart-only marker (algorithms without Save/Restore write
  /// one so `--snapshot` still produces a file; resuming from it simply
  /// reruns from scratch, which is trivially bit-identical).
  bool has_frontier = false;

  /// Deterministic work counters of the suspended run (the 13 merge-able
  /// counters of MiningStats; cache/wall-clock/outcome fields are not
  /// snapshot state). Resume seeds the run's stats with these.
  MiningStats base;

  /// Decided entries of the suspended run (for topk: the current pool,
  /// decided only relative to the rising threshold).
  std::vector<PfciEntry> entries;

  std::vector<WeightedItemset> frontier;
  std::vector<std::uint8_t> done;  ///< Parallel to frontier when used.
  std::uint64_t cursor = 0;

  bool has_rng = false;
  Rng::State rng;
};

/// Adds the snapshot's 13 deterministic base counters into `stats`
/// (resume seeding: the restored run then accumulates only new work, and
/// the totals match an uninterrupted run). MergeCounters is NOT used
/// here on purpose — it excludes dp_runs, which for a completed prior
/// session is a settled deterministic total that must carry over.
void AddBaseStats(const MiningStats& base, MiningStats* stats);

/// Renders the snapshot in the versioned text format (ends with the
/// completeness marker).
std::string SerializeRunSnapshot(const RunSnapshot& snapshot);

/// Parses `text`; returns false (with a diagnostic in *error) on any
/// malformed, version-mismatched, or incomplete (torn) input.
bool ParseRunSnapshot(std::string_view text, RunSnapshot* snapshot,
                      std::string* error);

/// Writes the snapshot crash-consistently: serialize, write `path`.tmp,
/// flush to stable storage, rename over `path`. Returns an empty string
/// on success and a diagnostic on failure (compose with RetryWithBackoff
/// for transient errors). Failpoint sites, in order: "snapshot/open",
/// "snapshot/write", "snapshot/flush", "snapshot/rename" — killing or
/// throwing at any of them leaves `path` old-complete or new-complete.
std::string SaveRunSnapshotAtomic(const RunSnapshot& snapshot,
                                  const std::string& path);

/// Loads and parses `path`; empty string on success, diagnostic on
/// failure (missing file, torn content, version mismatch).
std::string LoadRunSnapshot(const std::string& path, RunSnapshot* snapshot);

/// FNV-1a offset basis for composing fingerprints.
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/// Folds a 64-bit value / the bytes of a string into an FNV-1a hash.
std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value);
std::uint64_t FnvMixString(std::uint64_t hash, std::string_view text);

/// Folds a double by bit pattern (so 0.0 vs -0.0 and every NaN payload
/// are distinguished exactly like the round-trip serialization is).
std::uint64_t FnvMixDouble(std::uint64_t hash, double value);

/// Fingerprint of the database contents: size plus every transaction's
/// items and existence probability (bit patterns). Pure function of the
/// data.
std::uint64_t FingerprintDatabase(const UncertainDatabase& db);

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_RUN_SNAPSHOT_H_
