#include "src/core/search/run_snapshot.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "src/util/failpoint.h"
#include "src/util/string_util.h"

namespace pfci {
namespace {

constexpr char kHeader[] = "pfci-snapshot v1";
constexpr char kFooter[] = "end pfci-snapshot v1";

// The deterministic work counters of MiningStats, in serialization order.
// Cache counters, wall-clock fields, and outcome are not snapshot state.
constexpr std::size_t kNumBaseCounters = 13;

void GatherBase(const MiningStats& s, std::uint64_t out[kNumBaseCounters]) {
  const std::uint64_t values[kNumBaseCounters] = {
      s.nodes_visited,       s.pruned_by_chernoff,
      s.pruned_by_frequency, s.pruned_by_superset,
      s.pruned_by_subset,    s.decided_by_bounds,
      s.zero_by_count,       s.exact_fcp_computations,
      s.sampled_fcp_computations, s.total_samples,
      s.dp_runs,             s.degraded_fcp_evals,
      s.intersections};
  std::memcpy(out, values, sizeof(values));
}

void ScatterBase(const std::uint64_t in[kNumBaseCounters], MiningStats* s) {
  s->nodes_visited = in[0];
  s->pruned_by_chernoff = in[1];
  s->pruned_by_frequency = in[2];
  s->pruned_by_superset = in[3];
  s->pruned_by_subset = in[4];
  s->decided_by_bounds = in[5];
  s->zero_by_count = in[6];
  s->exact_fcp_computations = in[7];
  s->sampled_fcp_computations = in[8];
  s->total_samples = in[9];
  s->dp_runs = in[10];
  s->degraded_fcp_evals = in[11];
  s->intersections = in[12];
}

bool ParseU64(std::string_view text, std::uint64_t* value) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *value = v;
  return true;
}

void AppendItemset(const Itemset& items, std::ostringstream* out) {
  *out << ' ' << items.size();
  for (Item item : items.items()) *out << ' ' << item;
}

/// Shared line cursor over the serialized text.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  /// Next non-empty line (whitespace-stripped); false at end of input.
  bool Next(std::string_view* line) {
    while (pos_ < text_.size()) {
      std::size_t end = text_.find('\n', pos_);
      if (end == std::string_view::npos) end = text_.size();
      std::string_view raw = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      ++lineno_;
      std::string_view stripped = StripWhitespace(raw);
      if (!stripped.empty()) {
        *line = stripped;
        return true;
      }
    }
    return false;
  }

  int lineno() const { return lineno_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int lineno_ = 0;
};

bool Fail(std::string* error, int lineno, const std::string& what) {
  *error = "snapshot parse error (line " + std::to_string(lineno) + "): " +
           what;
  return false;
}

/// Parses "<k> <item>*k" from tokens[start...]; advances *start.
bool ParseItems(const std::vector<std::string>& tokens, std::size_t* start,
                Itemset* items) {
  unsigned int count = 0;
  if (*start >= tokens.size() || !ParseUint32(tokens[*start], &count)) {
    return false;
  }
  ++*start;
  std::vector<Item> raw;
  raw.reserve(count);
  for (unsigned int i = 0; i < count; ++i) {
    unsigned int item = 0;
    if (*start >= tokens.size() || !ParseUint32(tokens[*start], &item)) {
      return false;
    }
    raw.push_back(static_cast<Item>(item));
    ++*start;
  }
  *items = Itemset(std::move(raw));
  return true;
}

bool ParseDoubleAt(const std::vector<std::string>& tokens, std::size_t* start,
                   double* value) {
  if (*start >= tokens.size() || !ParseDouble(tokens[*start], value)) {
    return false;
  }
  ++*start;
  return true;
}

/// RAII stdio handle: closes on destruction, removes the temp file unless
/// committed. Keeps SaveRunSnapshotAtomic exception-safe under throwing
/// failpoint actions.
class TempFile {
 public:
  TempFile(std::string path) : path_(std::move(path)) {}

  ~TempFile() {
    if (file_ != nullptr) std::fclose(file_);
    if (!committed_ && opened_) std::remove(path_.c_str());
  }

  bool Open() {
    file_ = std::fopen(path_.c_str(), "wb");
    opened_ = file_ != nullptr;
    return opened_;
  }

  std::FILE* get() { return file_; }
  const std::string& path() const { return path_; }

  bool Close() {
    std::FILE* f = file_;
    file_ = nullptr;
    return std::fclose(f) == 0;
  }

  void Commit() { committed_ = true; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
  bool committed_ = false;
};

}  // namespace

void AddBaseStats(const MiningStats& base, MiningStats* stats) {
  std::uint64_t counters[kNumBaseCounters];
  std::uint64_t current[kNumBaseCounters];
  GatherBase(base, counters);
  GatherBase(*stats, current);
  for (std::size_t i = 0; i < kNumBaseCounters; ++i) {
    current[i] += counters[i];
  }
  ScatterBase(current, stats);
}

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t FnvMixString(std::uint64_t hash, std::string_view text) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  hash = FnvMix(hash, text.size());
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t FnvMixDouble(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(hash, bits);
}

std::uint64_t FingerprintDatabase(const UncertainDatabase& db) {
  std::uint64_t hash = FnvMix(kFnvOffsetBasis, db.size());
  for (const UncertainTransaction& t : db.transactions()) {
    hash = FnvMix(hash, t.items.size());
    for (Item item : t.items.items()) hash = FnvMix(hash, item);
    hash = FnvMixDouble(hash, t.prob);
  }
  return hash;
}

std::string SerializeRunSnapshot(const RunSnapshot& snapshot) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "algorithm " << snapshot.algorithm << '\n';
  out << "fingerprint " << snapshot.fingerprint << '\n';
  out << "has_frontier " << (snapshot.has_frontier ? 1 : 0) << '\n';
  std::uint64_t base[kNumBaseCounters];
  GatherBase(snapshot.base, base);
  out << "stats";
  for (std::size_t i = 0; i < kNumBaseCounters; ++i) out << ' ' << base[i];
  out << '\n';
  out << "cursor " << snapshot.cursor << '\n';
  out << "rng " << (snapshot.has_rng ? 1 : 0);
  if (snapshot.has_rng) {
    for (int i = 0; i < 4; ++i) out << ' ' << snapshot.rng.s[i];
    out << ' ' << (snapshot.rng.has_gaussian_spare ? 1 : 0) << ' '
        << FormatDoubleRoundTrip(snapshot.rng.gaussian_spare);
  }
  out << '\n';
  out << "entries " << snapshot.entries.size() << '\n';
  for (const PfciEntry& e : snapshot.entries) {
    out << 'e';
    AppendItemset(e.items, &out);
    out << ' ' << FormatDoubleRoundTrip(e.fcp) << ' '
        << FormatDoubleRoundTrip(e.pr_f) << ' '
        << FormatDoubleRoundTrip(e.fcp_lower) << ' '
        << FormatDoubleRoundTrip(e.fcp_upper) << ' '
        << static_cast<int>(e.method) << '\n';
  }
  out << "frontier " << snapshot.frontier.size() << '\n';
  for (const WeightedItemset& f : snapshot.frontier) {
    out << 'f';
    AppendItemset(f.items, &out);
    out << ' ' << FormatDoubleRoundTrip(f.weight) << '\n';
  }
  out << "done ";
  if (snapshot.done.empty()) {
    out << '-';
  } else {
    for (std::uint8_t bit : snapshot.done) out << (bit != 0 ? '1' : '0');
  }
  out << '\n';
  out << kFooter << '\n';
  return out.str();
}

bool ParseRunSnapshot(std::string_view text, RunSnapshot* snapshot,
                      std::string* error) {
  *snapshot = RunSnapshot();
  LineReader reader(text);
  std::string_view line;

  if (!reader.Next(&line) || line != kHeader) {
    return Fail(error, reader.lineno(),
                "missing '" + std::string(kHeader) + "' header");
  }

  auto next_fields = [&](const char* key,
                         std::vector<std::string>* tokens) -> bool {
    if (!reader.Next(&line)) return false;
    *tokens = SplitTokens(line);
    return !tokens->empty() && (*tokens)[0] == key;
  };

  std::vector<std::string> tokens;
  if (!next_fields("algorithm", &tokens) || tokens.size() != 2) {
    return Fail(error, reader.lineno(), "expected 'algorithm <name>'");
  }
  snapshot->algorithm = tokens[1];

  if (!next_fields("fingerprint", &tokens) || tokens.size() != 2 ||
      !ParseU64(tokens[1], &snapshot->fingerprint)) {
    return Fail(error, reader.lineno(), "expected 'fingerprint <u64>'");
  }

  std::uint64_t flag = 0;
  if (!next_fields("has_frontier", &tokens) || tokens.size() != 2 ||
      !ParseU64(tokens[1], &flag) || flag > 1) {
    return Fail(error, reader.lineno(), "expected 'has_frontier <0|1>'");
  }
  snapshot->has_frontier = flag == 1;

  if (!next_fields("stats", &tokens) ||
      tokens.size() != 1 + kNumBaseCounters) {
    return Fail(error, reader.lineno(), "expected 'stats' with " +
                                            std::to_string(kNumBaseCounters) +
                                            " counters");
  }
  std::uint64_t base[kNumBaseCounters];
  for (std::size_t i = 0; i < kNumBaseCounters; ++i) {
    if (!ParseU64(tokens[1 + i], &base[i])) {
      return Fail(error, reader.lineno(), "bad stats counter " + tokens[1 + i]);
    }
  }
  ScatterBase(base, &snapshot->base);

  if (!next_fields("cursor", &tokens) || tokens.size() != 2 ||
      !ParseU64(tokens[1], &snapshot->cursor)) {
    return Fail(error, reader.lineno(), "expected 'cursor <u64>'");
  }

  if (!next_fields("rng", &tokens) || tokens.size() < 2 ||
      !ParseU64(tokens[1], &flag) || flag > 1) {
    return Fail(error, reader.lineno(), "expected 'rng <0|1> ...'");
  }
  snapshot->has_rng = flag == 1;
  if (snapshot->has_rng) {
    if (tokens.size() != 8) {
      return Fail(error, reader.lineno(), "rng line needs 6 state fields");
    }
    for (int i = 0; i < 4; ++i) {
      if (!ParseU64(tokens[2 + i], &snapshot->rng.s[i])) {
        return Fail(error, reader.lineno(), "bad rng word " + tokens[2 + i]);
      }
    }
    std::uint64_t spare_flag = 0;
    if (!ParseU64(tokens[6], &spare_flag) || spare_flag > 1 ||
        !ParseDouble(tokens[7], &snapshot->rng.gaussian_spare)) {
      return Fail(error, reader.lineno(), "bad rng gaussian spare");
    }
    snapshot->rng.has_gaussian_spare = spare_flag == 1;
  } else if (tokens.size() != 2) {
    return Fail(error, reader.lineno(), "rng 0 takes no state fields");
  }

  std::uint64_t count = 0;
  if (!next_fields("entries", &tokens) || tokens.size() != 2 ||
      !ParseU64(tokens[1], &count)) {
    return Fail(error, reader.lineno(), "expected 'entries <n>'");
  }
  snapshot->entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.Next(&line)) {
      return Fail(error, reader.lineno(), "truncated entry list");
    }
    tokens = SplitTokens(line);
    if (tokens.empty() || tokens[0] != "e") {
      return Fail(error, reader.lineno(), "expected entry line 'e ...'");
    }
    PfciEntry entry;
    std::size_t pos = 1;
    unsigned int method = 0;
    if (!ParseItems(tokens, &pos, &entry.items) ||
        !ParseDoubleAt(tokens, &pos, &entry.fcp) ||
        !ParseDoubleAt(tokens, &pos, &entry.pr_f) ||
        !ParseDoubleAt(tokens, &pos, &entry.fcp_lower) ||
        !ParseDoubleAt(tokens, &pos, &entry.fcp_upper) ||
        pos + 1 != tokens.size() || !ParseUint32(tokens[pos], &method) ||
        method > static_cast<unsigned int>(FcpMethod::kSampled)) {
      return Fail(error, reader.lineno(), "malformed entry line");
    }
    entry.method = static_cast<FcpMethod>(method);
    snapshot->entries.push_back(std::move(entry));
  }

  if (!next_fields("frontier", &tokens) || tokens.size() != 2 ||
      !ParseU64(tokens[1], &count)) {
    return Fail(error, reader.lineno(), "expected 'frontier <n>'");
  }
  snapshot->frontier.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.Next(&line)) {
      return Fail(error, reader.lineno(), "truncated frontier list");
    }
    tokens = SplitTokens(line);
    if (tokens.empty() || tokens[0] != "f") {
      return Fail(error, reader.lineno(), "expected frontier line 'f ...'");
    }
    WeightedItemset element;
    std::size_t pos = 1;
    if (!ParseItems(tokens, &pos, &element.items) ||
        !ParseDoubleAt(tokens, &pos, &element.weight) ||
        pos != tokens.size()) {
      return Fail(error, reader.lineno(), "malformed frontier line");
    }
    snapshot->frontier.push_back(std::move(element));
  }

  if (!next_fields("done", &tokens) || tokens.size() != 2) {
    return Fail(error, reader.lineno(), "expected 'done <bits|->'");
  }
  if (tokens[1] != "-") {
    if (tokens[1].size() != snapshot->frontier.size()) {
      return Fail(error, reader.lineno(),
                  "done bits do not match frontier size");
    }
    snapshot->done.reserve(tokens[1].size());
    for (char c : tokens[1]) {
      if (c != '0' && c != '1') {
        return Fail(error, reader.lineno(), "done bits must be 0/1");
      }
      snapshot->done.push_back(c == '1' ? 1 : 0);
    }
  }

  if (!reader.Next(&line) || line != kFooter) {
    return Fail(error, reader.lineno(),
                "missing completeness marker (torn snapshot?)");
  }
  if (reader.Next(&line)) {
    return Fail(error, reader.lineno(), "trailing content after end marker");
  }
  return true;
}

std::string SaveRunSnapshotAtomic(const RunSnapshot& snapshot,
                                  const std::string& path) {
  const std::string payload = SerializeRunSnapshot(snapshot);
  TempFile temp(path + ".tmp");
  try {
    PFCI_FAILPOINT("snapshot/open");
    if (!temp.Open()) {
      return "snapshot: cannot open temp file " + temp.path();
    }
    // Two half-writes with the failpoint between them: a kill here leaves
    // a genuinely torn temp file, which the rename discipline must (and
    // does) keep away from `path`.
    const std::size_t half = payload.size() / 2;
    if (half > 0 &&
        std::fwrite(payload.data(), 1, half, temp.get()) != half) {
      return "snapshot: short write to " + temp.path();
    }
    PFCI_FAILPOINT("snapshot/write");
    const std::size_t rest = payload.size() - half;
    if (rest > 0 &&
        std::fwrite(payload.data() + half, 1, rest, temp.get()) != rest) {
      return "snapshot: short write to " + temp.path();
    }
    PFCI_FAILPOINT("snapshot/flush");
    if (std::fflush(temp.get()) != 0 || fsync(fileno(temp.get())) != 0) {
      return "snapshot: flush failed for " + temp.path();
    }
    if (!temp.Close()) {
      return "snapshot: close failed for " + temp.path();
    }
    PFCI_FAILPOINT("snapshot/rename");
    if (std::rename(temp.path().c_str(), path.c_str()) != 0) {
      return "snapshot: rename to " + path + " failed";
    }
    temp.Commit();
  } catch (const std::exception& e) {
    return std::string("snapshot: fault during save: ") + e.what();
  } catch (...) {
    return "snapshot: fault during save";
  }
  return "";
}

std::string LoadRunSnapshot(const std::string& path, RunSnapshot* snapshot) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return "snapshot: cannot open " + path;
  }
  std::string text;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return "snapshot: read error on " + path;
  }
  std::string error;
  if (!ParseRunSnapshot(text, snapshot, &error)) {
    return error + " [" + path + "]";
  }
  return "";
}

}  // namespace pfci
