// Probabilistic frequent itemset enumeration — the kernel's flat
// (non-closed) search primitive.
//
// Enumerates all itemsets with PrF(X) > pft (Definition 3.5) by a
// sequential depth-first walk with CandidateOracle qualification at every
// node. PrF is anti-monotone, so the enumeration is complete. This is the
// engine behind the PFI baseline miner and the candidate stage of the
// Naive checker (Fig. 5); it lives in the kernel so frontier policies can
// call it without depending on any miner entry point.
#ifndef PFCI_CORE_SEARCH_PFI_ENUMERATION_H_
#define PFCI_CORE_SEARCH_PFI_ENUMERATION_H_

#include <vector>

#include "src/core/execution.h"
#include "src/core/mining_result.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/prob/tail_approximations.h"
#include "src/util/runtime.h"

namespace pfci {

/// One probabilistic frequent itemset with its frequent probability and
/// tid-list (kept so downstream checkers need not recompute it).
struct PfiEntry {
  Itemset items;
  double pr_f = 0.0;
  TidSet tids;

  friend bool operator<(const PfiEntry& a, const PfiEntry& b) {
    return a.items < b.items;
  }
};

/// Enumerates all itemsets with PrF(X) > pft at the support threshold
/// `min_sup` (>= 1), sorted canonically. `mode` selects the frequency
/// evaluation (kExactDp, or a distributional tail approximation);
/// `use_chernoff` gates the Lemma 4.1 stage. `stats` (optional)
/// accumulates pruning counters; `policy` selects the tid-set
/// representation (never affects results). `runtime` (optional) makes the
/// enumeration fail-soft: the DFS polls it at node expansion and winds
/// down with a verified prefix when a limit trips. `session` (optional)
/// carries a MiningSession's shared index, evaluation cache, and
/// warm-start proofs (DESIGN.md §11); warm-start proofs only apply under
/// kExactDp, the one mode they are sound against.
std::vector<PfiEntry> EnumeratePfis(const UncertainDatabase& db,
                                    std::size_t min_sup, double pft,
                                    bool use_chernoff, FrequencyMode mode,
                                    MiningStats* stats,
                                    const TidSetPolicy& policy,
                                    RunController* runtime,
                                    const ExecutionContext* session);

}  // namespace pfci

#endif  // PFCI_CORE_SEARCH_PFI_ENUMERATION_H_
