#include "src/core/bfs_miner.h"

#include "src/core/mine.h"
#include "src/core/search/frontier_policies.h"
#include "src/core/search/search_driver.h"
#include "src/util/check.h"

namespace pfci {

MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params) {
  // Deprecated shim: the historical CHECK-on-invalid contract, then the
  // Mine() front door (parity pinned by api_contract_test).
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  MiningRequest request;
  request.algorithm = Algorithm::kMpfciBfs;
  request.params = params;
  return Mine(db, request);
}

MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params,
                          const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  LevelSyncBfsFrontier frontier;
  return RunSearch(db, params, exec, frontier);
}

}  // namespace pfci
