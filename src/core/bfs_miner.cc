#include "src/core/bfs_miner.h"

#include <algorithm>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/random.h"
#include "src/util/runtime.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// One level entry: a probabilistic frequent itemset with its tid-list.
struct LevelEntry {
  Itemset items;
  TidSet tids;
  double pr_f = 0.0;
};

}  // namespace

MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineMpfciBfs(db, params, exec);
}

MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params,
                          const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  Stopwatch timer;
  MiningResult result;
  const IndexHandle index_handle(db, TidSetPolicyFor(params), exec);
  const VerticalIndex& index = index_handle.get();
  const FrequentProbability freq(index, params.min_sup, exec.eval_cache,
                                 exec.table_floor);
  const FcpEngine engine(index, freq, params, exec);

  RunController* rt = exec.runtime;
  // Index bytes were charged by the handle; fail an undersized memory
  // budget before any search work.
  if (rt != nullptr && rt->active()) rt->Checkpoint();
  // Logical budgets, consumed in global level order (entry_counter order)
  // so the truncation point is a pure function of the request.
  WorkUnitBudget node_ledger =
      rt != nullptr ? rt->UnitBudget(0, 1) : WorkUnitBudget{};
  std::uint64_t samples_remaining = node_ledger.sample_quota;

  // Qualifies a candidate itemset; returns PrF > pfct ? PrF : 0 and
  // updates pruning counters. Singletons pass their item so session
  // warm-start proofs can reject them up front (and rejections found the
  // hard way get recorded); joined itemsets pass null.
  ItemWarmStart* const warm = exec.warm_start;
  const auto qualify = [&](const TidSet& tids, const Item* warm_item)
      -> double {
    if (tids.size() < params.min_sup) {
      ++result.stats.pruned_by_frequency;
      return 0.0;
    }
    if (warm != nullptr && warm_item != nullptr &&
        warm->BoundFor(*warm_item, params.min_sup) <= params.pfct) {
      ++result.stats.pruned_by_frequency;
      return 0.0;
    }
    if (params.pruning.chernoff) {
      const double upper = freq.PrFUpperBound(tids);
      if (upper <= params.pfct) {
        ++result.stats.pruned_by_chernoff;
        if (warm != nullptr && warm_item != nullptr) {
          warm->RecordBound(*warm_item, params.min_sup, upper);
        }
        return 0.0;
      }
    }
    const double pr_f = freq.PrF(tids);
    if (pr_f <= params.pfct) {
      ++result.stats.pruned_by_frequency;
      if (warm != nullptr && warm_item != nullptr) {
        warm->RecordBound(*warm_item, params.min_sup, pr_f);
      }
      return 0.0;
    }
    return pr_f;
  };

  // Level 1.
  std::vector<LevelEntry> level;
  if (rt == nullptr || !rt->StopRequested()) {
    TraceSpan span(exec.trace, "candidate_build",
                   &result.stats.candidate_seconds);
    for (Item item : index.occurring_items()) {
      LevelEntry entry;
      entry.items = Itemset{item};
      entry.tids = index.TidsOfItem(item);
      entry.pr_f = qualify(entry.tids, &item);
      if (entry.pr_f > 0.0) level.push_back(std::move(entry));
    }
  }

  TraceSpan search_span(exec.trace, "bfs", &result.stats.search_seconds);

  // Global position of the first entry of the current level across the
  // whole run; the per-entry RNG stream is derived from it, so it is
  // independent of thread count and scheduling.
  std::uint64_t entry_counter = 0;
  while (!level.empty()) {
    // Level-boundary checkpoint: a global stop discards the pending
    // level (none of its entries were evaluated yet).
    PFCI_FAILPOINT("bfs/level");
    if (rt != nullptr && rt->Checkpoint()) break;

    // Node budget, taken in level order: a refusal cuts the level's
    // suffix — and, since the quota never regrows, the whole run.
    std::size_t eval_count = level.size();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (!node_ledger.TakeNode()) {
        eval_count = i;
        rt->RecordTruncation(Outcome::kBudgetExhausted);
        break;
      }
    }
    result.stats.nodes_visited += eval_count;
    if (exec.progress != nullptr && eval_count > 0) {
      exec.progress->AddNodes(eval_count);
    }

    // Per-entry sample quotas: each entry's RNG stream is independent
    // (seeded by its global position), so the remaining sample budget is
    // pre-split fair-share across the level — an entry whose evaluation
    // is refused stays undecided without disturbing its neighbours.
    std::vector<WorkUnitBudget> units(eval_count);
    if (samples_remaining != kUnlimitedQuota) {
      for (std::size_t i = 0; i < eval_count; ++i) {
        units[i].sample_quota = UnitQuota(samples_remaining, i, eval_count);
      }
    }

    // Evaluate the (budgeted prefix of the) level in parallel; commit in
    // level order.
    std::vector<FcpComputation> comps(eval_count);
    std::vector<MiningStats> comp_stats(eval_count);
    const auto evaluate = [&](std::size_t i) {
      Rng rng(DeriveSeed(params.seed, entry_counter + i));
      comps[i] = engine.Evaluate(level[i].items, level[i].tids, level[i].pr_f,
                                 rng, &comp_stats[i], &LocalDpWorkspace(),
                                 &units[i]);
    };
    if (exec.pool != nullptr && exec.pool->num_threads() > 1) {
      exec.pool->ParallelFor(eval_count, evaluate, /*grain=*/1);
    } else {
      for (std::size_t i = 0; i < eval_count; ++i) evaluate(i);
    }
    entry_counter += level.size();

    for (std::size_t i = 0; i < eval_count; ++i) {
      if (samples_remaining != kUnlimitedQuota) {
        samples_remaining -= units[i].samples_used;
        if (units[i].truncated) {
          rt->RecordTruncation(Outcome::kBudgetExhausted);
        }
      }
      const MiningStats& part = comp_stats[i];
      result.stats.decided_by_bounds += part.decided_by_bounds;
      result.stats.zero_by_count += part.zero_by_count;
      result.stats.exact_fcp_computations += part.exact_fcp_computations;
      result.stats.sampled_fcp_computations += part.sampled_fcp_computations;
      result.stats.total_samples += part.total_samples;
      result.stats.intersections += part.intersections;
      result.stats.degraded_fcp_evals += part.degraded_fcp_evals;
      const FcpComputation& comp = comps[i];
      if (comp.undecided) continue;
      if (!comp.is_pfci) continue;
      PfciEntry out;
      out.items = level[i].items;
      out.fcp = comp.fcp;
      out.pr_f = comp.pr_f;
      out.fcp_lower = comp.bounds_computed ? comp.bounds.lower : 0.0;
      out.fcp_upper = comp.bounds_computed ? comp.bounds.upper : comp.pr_f;
      out.method = comp.method;
      result.itemsets.push_back(std::move(out));
      if (exec.progress != nullptr) exec.progress->AddItemsets();
    }
    // An exhausted node quota never regrows: later levels would all be
    // refused, so stop generating them.
    if (node_ledger.truncated) break;

    // Generate level k+1 by prefix join (entries are sorted because the
    // construction preserves lexicographic order).
    std::vector<LevelEntry> next_level;
    for (std::size_t a = 0; a < level.size(); ++a) {
      const auto& ia = level[a].items.items();
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        const auto& ib = level[b].items.items();
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin(), ib.end() - 1)) {
          break;  // Joinable partners are contiguous.
        }
        LevelEntry child;
        child.items = level[a].items.WithItem(ib.back());
        child.tids = Intersect(level[a].tids, level[b].tids);
        ++result.stats.intersections;
        child.pr_f = qualify(child.tids, nullptr);
        if (child.pr_f > 0.0) next_level.push_back(std::move(child));
      }
    }
    level.swap(next_level);
  }
  search_span.End();

  {
    TraceSpan span(exec.trace, "merge", &result.stats.merge_seconds);
    result.stats.dp_runs = freq.dp_runs();
    result.stats.cache_hits = freq.cache_hits();
    result.stats.cache_misses = freq.cache_misses();
    result.stats.dp_reused = freq.dp_reused();
    result.Sort();
  }
  if (rt != nullptr) {
    result.stats.outcome = rt->outcome();
    result.stats.truncated = rt->truncated();
  }
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

}  // namespace pfci
