// Exact frequent closed probability via inclusion-exclusion.
//
// Exponential in the number of active extension events (the computation is
// #P-hard, Theorem 3.2); used below `exact_event_limit` and as the test
// oracle for the sampler and the bounds.
#ifndef PFCI_CORE_FCP_EXACT_H_
#define PFCI_CORE_FCP_EXACT_H_

#include "src/core/extension_events.h"

namespace pfci {

/// Exact Pr(∪ C_i) by inclusion-exclusion over the active events.
/// CHECKs events.size() <= kMaxInclusionExclusionEvents.
double ExactFrequentNonClosedProbability(const ExtensionEventSet& events);

/// Exact PrFC(X) = pr_f - Pr(∪ C_i), clamped to [0, 1].
double ExactFcpByInclusionExclusion(double pr_f,
                                    const ExtensionEventSet& events);

}  // namespace pfci

#endif  // PFCI_CORE_FCP_EXACT_H_
