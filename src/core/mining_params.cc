#include "src/core/mining_params.h"

namespace pfci {

std::string ValidateParams(const MiningParams& params) {
  if (params.min_sup < 1) {
    return "min_sup must be >= 1";
  }
  // Negated comparisons so NaN falls into the error branch.
  if (!(params.pfct >= 0.0 && params.pfct < 1.0)) {
    return "pfct must lie in [0, 1): the comparison PrFC(X) > pfct is "
           "strict, so pfct = 1 would make every result set empty";
  }
  if (!(params.epsilon > 0.0)) {
    return "epsilon must be > 0";
  }
  if (!(params.delta > 0.0 && params.delta < 1.0)) {
    return "delta must lie in (0, 1)";
  }
  return "";
}

}  // namespace pfci
