// Expected-support frequent itemset mining (U-Apriori model of [9]).
//
// The related-work alternative to the probabilistic frequent model: an
// itemset is "expected-support frequent" when the sum of the existence
// probabilities of the transactions containing it reaches a threshold.
// Included so the library covers both uncertainty interpretations the
// paper's Sec. II.B surveys.
#ifndef PFCI_CORE_EXPECTED_SUPPORT_MINER_H_
#define PFCI_CORE_EXPECTED_SUPPORT_MINER_H_

#include <vector>

#include "src/core/execution.h"
#include "src/core/mining_result.h"
#include "src/data/itemset.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/util/runtime.h"

namespace pfci {

/// An itemset with its expected support.
struct ExpectedSupportEntry {
  Itemset items;
  double expected_support = 0.0;

  friend bool operator<(const ExpectedSupportEntry& a,
                        const ExpectedSupportEntry& b) {
    return a.items < b.items;
  }
};

/// Mines all itemsets with expected support >= min_esup (> 0). Expected
/// support is anti-monotone, so a DFS with threshold pruning is complete.
/// `stats` (optional) accumulates nodes_visited, pruned_by_frequency
/// (esup below threshold) and intersections for telemetry. `runtime`
/// (optional) makes the DFS fail-soft: polled at node expansion, a stop
/// or exhausted node quota leaves a verified prefix of the answer.
/// `policy` picks the tid-set representation; `session` (optional)
/// carries a MiningSession's shared index and evaluation cache, whose mu
/// entries answer expected supports exactly (DESIGN.md §11).
std::vector<ExpectedSupportEntry> MineExpectedSupport(
    const UncertainDatabase& db, double min_esup,
    MiningStats* stats = nullptr, RunController* runtime = nullptr,
    const TidSetPolicy& policy = TidSetPolicy{},
    const ExecutionContext* session = nullptr);

namespace internal {
/// The same answer via a UF-growth-style weighted FP-growth [15]: under
/// tuple-level uncertainty the expected support is a weighted support
/// (each transaction weighs its existence probability), so FP-growth
/// generalizes by carrying real-valued counts. Cross-validates the DFS
/// miner and serves as the pattern-growth baseline of the expected-
/// support model. Reached through Mine() with
/// Algorithm::kExpectedSupportFpGrowth.
std::vector<ExpectedSupportEntry> MineExpectedSupportFpGrowth(
    const UncertainDatabase& db, double min_esup);
}  // namespace internal

[[deprecated("use Mine() with Algorithm::kExpectedSupportFpGrowth")]]
inline std::vector<ExpectedSupportEntry> MineExpectedSupportFpGrowth(
    const UncertainDatabase& db, double min_esup) {
  return internal::MineExpectedSupportFpGrowth(db, min_esup);
}

}  // namespace pfci

#endif  // PFCI_CORE_EXPECTED_SUPPORT_MINER_H_
