// Frequent-closed-probability engine: the Bounding-Pruning-Checking
// pipeline of Fig. 1 applied to a single itemset.
//
// Given X (and its tid-list), the engine builds the extension events and
// then spends as little work as possible to decide whether PrFC(X) > pfct:
//   1. a same-count extension makes PrFC exactly 0 (Lemmas 4.2/4.3);
//   2. Lemma 4.4 bounds may settle the comparison outright;
//   3. otherwise inclusion-exclusion (few events) or ApproxFCP (many).
#ifndef PFCI_CORE_FCP_ENGINE_H_
#define PFCI_CORE_FCP_ENGINE_H_

#include <cstdint>

#include "src/core/execution.h"
#include "src/core/extension_events.h"
#include "src/core/fcp_bounds.h"
#include "src/core/frequent_probability.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/vertical_index.h"
#include "src/util/random.h"
#include "src/util/runtime.h"

namespace pfci {

/// Everything the engine learned about one itemset.
struct FcpComputation {
  double pr_f = 0.0;
  double fcp = 0.0;
  FcpBounds bounds;
  bool bounds_computed = false;
  FcpMethod method = FcpMethod::kUndecided;
  bool is_pfci = false;
  std::uint64_t samples = 0;

  /// True when the evaluation could not be carried to a verdict: the
  /// sample budget refused the required draws, or a global stop aborted
  /// the sampler mid-estimate. An undecided itemset must not be emitted,
  /// and (to keep the per-unit RNG stream aligned with an unbudgeted run)
  /// the calling work unit must stop evaluating further itemsets.
  bool undecided = false;
};

/// Stateless evaluator bound to a database and mining parameters. Safe to
/// share across threads: Evaluate only mutates caller-owned state (`rng`,
/// `stats`).
class FcpEngine {
 public:
  /// `index` and `freq` must outlive the engine. `exec.pool`, when set,
  /// parallelizes the ApproxFCP sample batches; `exec.progress` is unused
  /// here.
  FcpEngine(const VerticalIndex& index, const FrequentProbability& freq,
            const MiningParams& params,
            const ExecutionContext& exec = ExecutionContext{});

  /// Decides whether X (with Tids(X) = `tids` and PrF(X) = `pr_f`)
  /// qualifies, with early exits against params.pfct. `stats` may be
  /// null; `workspace`, when given, supplies the PrF scratch buffers for
  /// extension-event construction (else the calling thread's workspace).
  ///
  /// `unit`, when given, is the caller's logical sample ledger: the full
  /// Karp-Luby sample requirement is claimed from it before the sampler
  /// runs, so an estimate is complete or not attempted (result.undecided).
  /// Under deadline pressure (exec.runtime->ShouldDegradeFcp()) exact
  /// inclusion-exclusion evaluations degrade to the ApproxFCP sampler,
  /// counted in stats->degraded_fcp_evals.
  FcpComputation Evaluate(const Itemset& x, const TidSet& tids, double pr_f,
                          Rng& rng, MiningStats* stats,
                          DpWorkspace* workspace = nullptr,
                          WorkUnitBudget* unit = nullptr) const;

  /// As Evaluate, but with the decision threshold supplied per call
  /// instead of read from params.pfct. This is what a rising top-k floor
  /// needs: the same pipeline, early-exiting against the k-th best FCP in
  /// hand rather than the request's static threshold.
  FcpComputation EvaluateAt(double threshold, const Itemset& x,
                            const TidSet& tids, double pr_f, Rng& rng,
                            MiningStats* stats,
                            DpWorkspace* workspace = nullptr,
                            WorkUnitBudget* unit = nullptr) const;

  /// Computes PrFC(X) to full available precision regardless of pfct
  /// (bounds are still used to report [lower, upper]).
  FcpComputation ComputeFcp(const Itemset& x, Rng& rng) const;

  const FrequentProbability& freq() const { return *freq_; }
  const MiningParams& params() const { return params_; }

 private:
  FcpComputation EvaluateInternal(const Itemset& x, const TidSet& tids,
                                  double pr_f, double pfct, Rng& rng,
                                  MiningStats* stats, DpWorkspace* workspace,
                                  WorkUnitBudget* unit) const;

  const VerticalIndex* index_;
  const FrequentProbability* freq_;
  MiningParams params_;
  ExecutionContext exec_;
};

}  // namespace pfci

#endif  // PFCI_CORE_FCP_ENGINE_H_
