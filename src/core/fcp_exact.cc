#include "src/core/fcp_exact.h"

#include <algorithm>

#include "src/prob/inclusion_exclusion.h"

namespace pfci {

double ExactFrequentNonClosedProbability(const ExtensionEventSet& events) {
  return UnionByInclusionExclusion(
      events.size(), [&events](const std::vector<std::size_t>& subset) {
        return events.PrIntersection(subset);
      });
}

double ExactFcpByInclusionExclusion(double pr_f,
                                    const ExtensionEventSet& events) {
  return std::clamp(pr_f - ExactFrequentNonClosedProbability(events), 0.0,
                    1.0);
}

}  // namespace pfci
