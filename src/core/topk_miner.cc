#include "src/core/topk_miner.h"

#include "src/core/mine.h"
#include "src/core/search/frontier_policies.h"
#include "src/core/search/search_driver.h"
#include "src/util/check.h"

namespace pfci {

MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k) {
  // Deprecated shim: the historical CHECK-on-invalid contract, then the
  // Mine() front door (parity pinned by api_contract_test).
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  PFCI_CHECK_MSG(k >= 1, "top_k must be >= 1 for Algorithm::kTopK");
  MiningRequest request;
  request.algorithm = Algorithm::kTopK;
  request.params = params;
  request.top_k = k;
  return Mine(db, request);
}

MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k,
                          const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  // Same message as ValidateRequest so the k = 0 edge case fails
  // identically through every entry point.
  PFCI_CHECK_MSG(k >= 1, "top_k must be >= 1 for Algorithm::kTopK");
  TopKFrontier frontier(k);
  return RunSearch(db, params, exec, frontier);
}

}  // namespace pfci
