#include "src/core/topk_miner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

namespace {

/// DFS search with a rising pruning threshold (the k-th best FCP in hand).
class TopkSearch {
 public:
  TopkSearch(const UncertainDatabase& db, const MiningParams& params,
             std::size_t k, const ExecutionContext& exec)
      : params_(params),
        exec_(exec),
        k_(k),
        index_(db, TidSetPolicyFor(params), exec),
        freq_(index_.get(), params.min_sup, exec.eval_cache, exec.table_floor),
        rng_(params.seed) {}

  MiningResult Run() {
    Stopwatch timer;
    MiningResult result;
    RunController* rt = exec_.runtime;
    // Index bytes were charged by the handle; fail an undersized memory
    // budget before any search work.
    if (rt != nullptr && rt->active()) rt->Checkpoint();
    // The whole search shares one RNG (rng_), so the run is a single
    // logical work unit: after any truncation nothing further may be
    // evaluated, or later estimates would read a shifted stream.
    unit_ = rt != nullptr ? rt->UnitBudget(0, 1) : WorkUnitBudget{};

    if (rt == nullptr || !rt->StopRequested()) {
      TraceSpan span(exec_.trace, "candidate_build",
                     &result.stats.candidate_seconds);
      BuildCandidates();
    }
    {
      TraceSpan span(exec_.trace, "dfs", &result.stats.search_seconds);
      for (std::size_t c = 0; c < candidates_.size() && !Stopped(); ++c) {
        const Item item = candidates_[c];
        const TidSet& tids = index_->TidsOfItem(item);
        const double pr_f = freq_.PrF(tids);
        if (pr_f <= Threshold()) continue;
        Dfs(Itemset{item}, tids, pr_f, c);
      }
    }
    if (unit_.truncated && rt != nullptr) {
      rt->RecordTruncation(Outcome::kBudgetExhausted);
    }
    TraceSpan merge_span(exec_.trace, "merge", &result.stats.merge_seconds);
    AddStats(result.stats, stats_);
    result.stats.dp_runs = freq_.dp_runs();
    result.stats.cache_hits = freq_.cache_hits();
    result.stats.cache_misses = freq_.cache_misses();
    result.stats.dp_reused = freq_.dp_reused();
    // Descending FCP, ties resolved by itemset order for determinism.
    std::sort(top_.begin(), top_.end(), RanksBefore);
    result.itemsets = std::move(top_);
    merge_span.End();
    if (rt != nullptr) {
      result.stats.outcome = rt->outcome();
      result.stats.truncated = rt->truncated();
    }
    result.stats.seconds = timer.ElapsedSeconds();
    result.stats.EmitTrace(exec_.trace);
    return result;
  }

 private:
  /// Whether the run should wind down (budget cut or global stop).
  bool Stopped() const {
    return unit_.truncated ||
           (exec_.runtime != nullptr && exec_.runtime->StopRequested());
  }
  /// The output order: descending FCP, ties broken by ascending itemset.
  static bool RanksBefore(const PfciEntry& a, const PfciEntry& b) {
    if (a.fcp != b.fcp) return a.fcp > b.fcp;
    return a.items < b.items;
  }

  /// Folds the search counters into `total` (which already carries the
  /// phase timings recorded by Run()'s spans).
  static void AddStats(MiningStats& total, const MiningStats& part) {
    total.nodes_visited += part.nodes_visited;
    total.pruned_by_chernoff += part.pruned_by_chernoff;
    total.pruned_by_frequency += part.pruned_by_frequency;
    total.pruned_by_superset += part.pruned_by_superset;
    total.pruned_by_subset += part.pruned_by_subset;
    total.decided_by_bounds += part.decided_by_bounds;
    total.zero_by_count += part.zero_by_count;
    total.exact_fcp_computations += part.exact_fcp_computations;
    total.sampled_fcp_computations += part.sampled_fcp_computations;
    total.total_samples += part.total_samples;
    total.intersections += part.intersections;
    total.degraded_fcp_evals += part.degraded_fcp_evals;
  }

  /// The active pruning threshold: the caller's floor while fewer than k
  /// results are held (strict, per Definition 3.8). Once the heap is
  /// full it sits one ULP *below* the k-th best FCP, so a candidate that
  /// exactly ties the k-boundary still reaches Offer() and the itemset
  /// tie-break there — the final top-k is then independent of the
  /// candidate enumeration order, matching the output sort.
  double Threshold() const {
    if (top_.size() < k_) return params_.pfct;
    return std::max(params_.pfct, std::nextafter(worst_in_top_, 0.0));
  }

  /// Index of the entry the next better candidate would evict: the one
  /// ranking last under the output order.
  std::size_t WeakestPos() const {
    std::size_t weakest = 0;
    for (std::size_t i = 1; i < top_.size(); ++i) {
      if (!RanksBefore(top_[i], top_[weakest])) weakest = i;
    }
    return weakest;
  }

  void RecomputeWorst() {
    if (top_.empty()) return;  // k == 0: threshold stays at its seed.
    worst_in_top_ = top_.front().fcp;
    for (const PfciEntry& entry : top_) {
      worst_in_top_ = std::min(worst_in_top_, entry.fcp);
    }
  }

  void Offer(PfciEntry entry) {
    if (top_.size() < k_) {
      top_.push_back(std::move(entry));
      if (top_.size() == k_) RecomputeWorst();
      return;
    }
    if (top_.empty()) return;  // k == 0 mines nothing.
    // Evict the weakest entry iff the candidate outranks it under the
    // output order — at equal FCP the lexicographically smaller itemset
    // wins, exactly as in the final sort.
    const std::size_t weakest = WeakestPos();
    if (!RanksBefore(entry, top_[weakest])) return;
    top_[weakest] = std::move(entry);
    RecomputeWorst();
  }

  void BuildCandidates() {
    for (Item item : index_->occurring_items()) {
      const TidSet& tids = index_->TidsOfItem(item);
      if (tids.size() < params_.min_sup) continue;
      // The floor threshold is the only sound candidate filter here (the
      // dynamic threshold starts at the floor and only rises).
      if (params_.pruning.chernoff &&
          freq_.PrFUpperBound(tids) <= params_.pfct) {
        ++stats_.pruned_by_chernoff;
        continue;
      }
      candidates_.push_back(item);
    }
  }

  bool SupersetPruned(const Itemset& x, const TidSet& tids) {
    const Item last = x.LastItem();
    for (Item item : index_->occurring_items()) {
      if (item >= last) break;
      if (x.Contains(item)) continue;
      const TidSet& item_tids = index_->TidsOfItem(item);
      if (item_tids.size() < tids.size()) continue;
      ++stats_.intersections;
      if (IsSubsetOf(tids, item_tids)) return true;
    }
    return false;
  }

  void Dfs(const Itemset& x, const TidSet& tids, double pr_f,
           std::size_t last_candidate_pos) {
    // Node-expansion checkpoint (DESIGN.md §10).
    PFCI_FAILPOINT("topk/node");
    if (exec_.runtime != nullptr && exec_.runtime->Checkpoint()) return;
    if (!unit_.TakeNode()) return;
    ++stats_.nodes_visited;
    if (exec_.progress != nullptr) exec_.progress->AddNodes();
    if (params_.pruning.superset && SupersetPruned(x, tids)) {
      ++stats_.pruned_by_superset;
      return;
    }

    bool x_may_be_closed = true;
    for (std::size_t c = last_candidate_pos + 1; c < candidates_.size();
         ++c) {
      if (Stopped()) return;
      const Item item = candidates_[c];
      const TidSet child_tids = Intersect(tids, index_->TidsOfItem(item));
      ++stats_.intersections;
      const bool same_count = child_tids.size() == tids.size();
      if (params_.pruning.subset && same_count) x_may_be_closed = false;

      bool child_qualifies = child_tids.size() >= params_.min_sup;
      if (child_qualifies && params_.pruning.chernoff &&
          freq_.PrFUpperBound(child_tids) <= Threshold()) {
        ++stats_.pruned_by_chernoff;
        child_qualifies = false;
      }
      if (child_qualifies) {
        const double child_pr_f = freq_.PrF(child_tids);
        if (child_pr_f <= Threshold()) {
          ++stats_.pruned_by_frequency;
        } else {
          Dfs(x.WithItem(item), child_tids, child_pr_f, c);
        }
      }
      if (params_.pruning.subset && same_count) break;
    }

    if (Stopped()) return;
    if (!x_may_be_closed) {
      ++stats_.pruned_by_subset;
      return;
    }
    // Evaluate against the *current* threshold.
    MiningParams node_params = params_;
    node_params.pfct = Threshold();
    const FcpEngine engine(index_.get(), freq_, node_params, exec_);
    const FcpComputation comp =
        engine.Evaluate(x, tids, pr_f, rng_, &stats_, nullptr, &unit_);
    if (comp.undecided) return;
    if (comp.is_pfci) {
      PfciEntry entry;
      entry.items = x;
      entry.fcp = comp.fcp;
      entry.pr_f = comp.pr_f;
      entry.fcp_lower = comp.bounds_computed ? comp.bounds.lower : 0.0;
      entry.fcp_upper = comp.bounds_computed ? comp.bounds.upper : comp.pr_f;
      entry.method = comp.method;
      if (exec_.progress != nullptr) exec_.progress->AddItemsets();
      Offer(std::move(entry));
    }
  }

  MiningParams params_;
  ExecutionContext exec_;
  std::size_t k_;
  IndexHandle index_;
  FrequentProbability freq_;
  Rng rng_;
  WorkUnitBudget unit_;
  std::vector<Item> candidates_;
  std::vector<PfciEntry> top_;
  double worst_in_top_ = 1.0;
  MiningStats stats_;
};

}  // namespace

MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineTopKPfci(db, params, k, exec);
}

MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k,
                          const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  // Same message as ValidateRequest so the k = 0 edge case fails
  // identically through every entry point.
  PFCI_CHECK_MSG(k >= 1, "top_k must be >= 1 for Algorithm::kTopK");
  TopkSearch search(db, params, k, exec);
  return search.Run();
}

}  // namespace pfci
