#include "src/core/naive_miner.h"

#include "src/core/extension_events.h"
#include "src/core/fcp_sampler.h"
#include "src/core/frequent_probability.h"
#include "src/core/pfi_miner.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace pfci {

MiningResult MineNaive(const UncertainDatabase& db,
                       const MiningParams& params) {
  PFCI_CHECK(params.min_sup >= 1);
  Stopwatch timer;
  MiningResult result;
  const VerticalIndex index(db);
  const FrequentProbability freq(index, params.min_sup);
  Rng rng(params.seed);

  // Stage 1: all probabilistic frequent itemsets (PrFC <= PrF, so the
  // answer set is contained in the PFIs).
  const std::vector<PfiEntry> pfis =
      MinePfi(db, params.min_sup, params.pfct, /*use_chernoff=*/true,
              &result.stats);

  // Stage 2: check each PFI's frequent closed probability by sampling.
  for (const PfiEntry& pfi : pfis) {
    const ExtensionEventSet events(index, freq, pfi.items, pfi.tids);
    const ApproxFcpResult approx =
        ApproxFcp(pfi.pr_f, events, params.epsilon, params.delta, rng);
    ++result.stats.sampled_fcp_computations;
    result.stats.total_samples += approx.samples;
    if (approx.fcp > params.pfct) {
      PfciEntry entry;
      entry.items = pfi.items;
      entry.fcp = approx.fcp;
      entry.pr_f = pfi.pr_f;
      entry.fcp_upper = pfi.pr_f;
      entry.method = FcpMethod::kSampled;
      result.itemsets.push_back(std::move(entry));
    }
  }

  result.stats.dp_runs = freq.dp_runs();
  result.stats.seconds = timer.ElapsedSeconds();
  result.Sort();
  return result;
}

}  // namespace pfci
