#include "src/core/naive_miner.h"

#include "src/core/search/frontier_policies.h"
#include "src/core/search/search_driver.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace pfci {

MiningResult MineNaive(const UncertainDatabase& db,
                       const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineNaive(db, params, exec);
}

MiningResult MineNaive(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  FlatCheckFrontier frontier;
  return RunSearch(db, params, exec, frontier);
}

}  // namespace pfci
