#include "src/core/naive_miner.h"

#include <vector>

#include "src/core/extension_events.h"
#include "src/core/fcp_sampler.h"
#include "src/core/frequent_probability.h"
#include "src/core/index_handle.h"
#include "src/core/pfi_miner.h"
#include "src/data/vertical_index.h"
#include "src/prob/karp_luby.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/random.h"
#include "src/util/runtime.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

MiningResult MineNaive(const UncertainDatabase& db,
                       const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineNaive(db, params, exec);
}

MiningResult MineNaive(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  Stopwatch timer;
  MiningResult result;
  const IndexHandle index_handle(db, TidSetPolicyFor(params), exec);
  const VerticalIndex& index = index_handle.get();
  const FrequentProbability freq(index, params.min_sup, exec.eval_cache,
                                 exec.table_floor);

  RunController* rt = exec.runtime;
  // Index bytes were charged by the handle; fail an undersized memory
  // budget before any search work.
  if (rt != nullptr && rt->active()) rt->Checkpoint();

  // Stage 1: all probabilistic frequent itemsets (PrFC <= PrF, so the
  // answer set is contained in the PFIs). The node budget is consumed
  // here (the PFI enumeration is the run's search tree).
  TraceSpan candidate_span(exec.trace, "candidate_build",
                           &result.stats.candidate_seconds);
  const std::vector<PfiEntry> pfis =
      MinePfi(db, params.min_sup, params.pfct, /*use_chernoff=*/true,
              &result.stats, TidSetPolicyFor(params), rt, &exec);
  candidate_span.End();

  // Stage 2: check each PFI's frequent closed probability by sampling.
  // Independent per PFI, so the checks fan out over the pool; the i-th
  // check's RNG derives from (seed, i), and results merge in PFI order,
  // keeping the output identical for any thread count. The batch-level
  // parallelism inside ApproxFcp is left off here — one task per PFI is
  // already finer-grained than the pool.
  TraceSpan sampling_span(exec.trace, "sampling",
                          &result.stats.search_seconds);
  std::vector<ApproxFcpResult> checks(pfis.size());
  // Each check's RNG stream is independent, so the sample budget is
  // pre-split fair-share across the checks: a refused check stays
  // undecided (unemitted) without disturbing its neighbours' streams.
  std::vector<std::uint8_t> undecided(pfis.size(), 0);
  const auto check = [&](std::size_t i) {
    PFCI_FAILPOINT("naive/check");
    if (rt != nullptr && rt->Checkpoint()) {
      undecided[i] = 1;
      return;
    }
    Rng rng(DeriveSeed(params.seed, i));
    const ExtensionEventSet events(index, freq, pfis[i].items, pfis[i].tids,
                                   &LocalDpWorkspace(), nullptr);
    if (rt != nullptr && events.size() > 0) {
      WorkUnitBudget unit = rt->UnitBudget(i, pfis.size());
      if (!unit.TakeSamples(KarpLubyRequiredSamples(
              events.size(), params.epsilon, params.delta))) {
        undecided[i] = 1;
        rt->RecordTruncation(Outcome::kBudgetExhausted);
        return;
      }
    }
    checks[i] = ApproxFcp(pfis[i].pr_f, events, params.epsilon, params.delta,
                          rng, /*pool=*/nullptr, exec.deterministic, rt);
    if (checks[i].aborted) undecided[i] = 1;
    if (exec.progress != nullptr) exec.progress->AddNodes();
  };
  if (exec.pool != nullptr && exec.pool->num_threads() > 1) {
    exec.pool->ParallelFor(pfis.size(), check, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < pfis.size(); ++i) check(i);
  }
  sampling_span.End();

  TraceSpan merge_span(exec.trace, "merge", &result.stats.merge_seconds);
  for (std::size_t i = 0; i < pfis.size(); ++i) {
    if (undecided[i]) continue;
    const ApproxFcpResult& approx = checks[i];
    ++result.stats.sampled_fcp_computations;
    result.stats.total_samples += approx.samples;
    if (approx.fcp > params.pfct) {
      PfciEntry entry;
      entry.items = pfis[i].items;
      entry.fcp = approx.fcp;
      entry.pr_f = pfis[i].pr_f;
      entry.fcp_upper = pfis[i].pr_f;
      entry.method = FcpMethod::kSampled;
      result.itemsets.push_back(std::move(entry));
      if (exec.progress != nullptr) exec.progress->AddItemsets();
    }
  }

  // Add (not assign): stage 1's PfiSearch already accumulated its own
  // DP and cache counts into the shared stats.
  result.stats.dp_runs += freq.dp_runs();
  result.stats.cache_hits += freq.cache_hits();
  result.stats.cache_misses += freq.cache_misses();
  result.stats.dp_reused += freq.dp_reused();
  result.Sort();
  merge_span.End();
  if (rt != nullptr) {
    result.stats.outcome = rt->outcome();
    result.stats.truncated = rt->truncated();
  }
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

}  // namespace pfci
