#include "src/core/naive_miner.h"

#include <vector>

#include "src/core/extension_events.h"
#include "src/core/fcp_sampler.h"
#include "src/core/frequent_probability.h"
#include "src/core/pfi_miner.h"
#include "src/data/vertical_index.h"
#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pfci {

MiningResult MineNaive(const UncertainDatabase& db,
                       const MiningParams& params) {
  ExecutionContext exec;
  exec.pool = &ThreadPool::Shared();
  return MineNaive(db, params, exec);
}

MiningResult MineNaive(const UncertainDatabase& db, const MiningParams& params,
                       const ExecutionContext& exec) {
  const std::string error = ValidateParams(params);
  PFCI_CHECK_MSG(error.empty(), "invalid MiningParams: " + error);
  Stopwatch timer;
  MiningResult result;
  const VerticalIndex index(db, TidSetPolicyFor(params));
  const FrequentProbability freq(index, params.min_sup);

  // Stage 1: all probabilistic frequent itemsets (PrFC <= PrF, so the
  // answer set is contained in the PFIs).
  TraceSpan candidate_span(exec.trace, "candidate_build",
                           &result.stats.candidate_seconds);
  const std::vector<PfiEntry> pfis =
      MinePfi(db, params.min_sup, params.pfct, /*use_chernoff=*/true,
              &result.stats, TidSetPolicyFor(params));
  candidate_span.End();

  // Stage 2: check each PFI's frequent closed probability by sampling.
  // Independent per PFI, so the checks fan out over the pool; the i-th
  // check's RNG derives from (seed, i), and results merge in PFI order,
  // keeping the output identical for any thread count. The batch-level
  // parallelism inside ApproxFcp is left off here — one task per PFI is
  // already finer-grained than the pool.
  TraceSpan sampling_span(exec.trace, "sampling",
                          &result.stats.search_seconds);
  std::vector<ApproxFcpResult> checks(pfis.size());
  const auto check = [&](std::size_t i) {
    Rng rng(DeriveSeed(params.seed, i));
    const ExtensionEventSet events(index, freq, pfis[i].items, pfis[i].tids,
                                   &LocalDpWorkspace(), nullptr);
    checks[i] = ApproxFcp(pfis[i].pr_f, events, params.epsilon, params.delta,
                          rng, /*pool=*/nullptr, exec.deterministic);
    if (exec.progress != nullptr) exec.progress->AddNodes();
  };
  if (exec.pool != nullptr && exec.pool->num_threads() > 1) {
    exec.pool->ParallelFor(pfis.size(), check, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < pfis.size(); ++i) check(i);
  }
  sampling_span.End();

  TraceSpan merge_span(exec.trace, "merge", &result.stats.merge_seconds);
  for (std::size_t i = 0; i < pfis.size(); ++i) {
    const ApproxFcpResult& approx = checks[i];
    ++result.stats.sampled_fcp_computations;
    result.stats.total_samples += approx.samples;
    if (approx.fcp > params.pfct) {
      PfciEntry entry;
      entry.items = pfis[i].items;
      entry.fcp = approx.fcp;
      entry.pr_f = pfis[i].pr_f;
      entry.fcp_upper = pfis[i].pr_f;
      entry.method = FcpMethod::kSampled;
      result.itemsets.push_back(std::move(entry));
      if (exec.progress != nullptr) exec.progress->AddItemsets();
    }
  }

  result.stats.dp_runs = freq.dp_runs();
  result.Sort();
  merge_span.End();
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.EmitTrace(exec.trace);
  return result;
}

}  // namespace pfci
