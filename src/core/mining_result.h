// Result and statistics types shared by all miners.
#ifndef PFCI_CORE_MINING_RESULT_H_
#define PFCI_CORE_MINING_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/itemset.h"
#include "src/util/runtime.h"
#include "src/util/trace.h"

namespace pfci {

/// How the frequent closed probability of a reported itemset was obtained.
enum class FcpMethod {
  kUndecided,      ///< Not evaluated.
  kZeroByCount,    ///< A same-count superset exists: PrFC is exactly 0.
  kBoundsDecided,  ///< Lemma 4.4 bounds alone settled the pfct comparison.
  kExact,          ///< Inclusion-exclusion (exact).
  kSampled,        ///< ApproxFCP Monte-Carlo estimate.
};

/// Human-readable name of a method.
const char* FcpMethodName(FcpMethod method);

/// One mined probabilistic frequent closed itemset.
struct PfciEntry {
  Itemset items;
  double fcp = 0.0;        ///< (Estimated) frequent closed probability.
  double pr_f = 0.0;       ///< Frequent probability.
  double fcp_lower = 0.0;  ///< Lemma 4.4 lower bound (0 if bounds off).
  double fcp_upper = 1.0;  ///< Lemma 4.4 upper bound (pr_f if bounds off).
  FcpMethod method = FcpMethod::kUndecided;

  friend bool operator<(const PfciEntry& a, const PfciEntry& b) {
    return a.items < b.items;
  }
};

/// Work counters of a mining run (reported by the bench harness).
struct MiningStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t pruned_by_chernoff = 0;
  std::uint64_t pruned_by_frequency = 0;  ///< Exact PrF <= pfct.
  std::uint64_t pruned_by_superset = 0;
  std::uint64_t pruned_by_subset = 0;
  std::uint64_t decided_by_bounds = 0;
  std::uint64_t zero_by_count = 0;
  std::uint64_t exact_fcp_computations = 0;
  std::uint64_t sampled_fcp_computations = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t dp_runs = 0;  ///< Exact Poisson-binomial DP executions.
  /// FCP evaluations degraded from exact inclusion-exclusion to the
  /// ApproxFCP sampler under deadline pressure (DESIGN.md §10). Always 0
  /// without a deadline, so the determinism contract is unaffected.
  std::uint64_t degraded_fcp_evals = 0;
  /// Tid-set intersection/difference/subset operations performed by the
  /// search layers (candidate generation, superset checks, extension-event
  /// construction). Excludes the sampler's per-sample bit tests and the
  /// exact inclusion-exclusion inner loops.
  std::uint64_t intersections = 0;

  /// Session evaluation-cache accounting (stats-json schema v4; DESIGN.md
  /// §11). All zero outside a MiningSession. cache_hits/cache_misses
  /// count PrF/esup probes served from / absent from the cross-request
  /// cache; dp_reused is the subset of hits answered from a stored
  /// Poisson-binomial tail table (a DP the run did not have to execute);
  /// cache_bytes is the cache's resident size after the run. Cached
  /// values are exact, so these counters never affect results; unlike
  /// the other counters, hit/miss totals may vary with scheduling when
  /// threads race on the same first evaluation.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t dp_reused = 0;
  std::uint64_t cache_bytes = 0;

  /// Size in bytes of the run snapshot written by Mine() when a
  /// suspend-armed run drained (stats-json schema v5; DESIGN.md §14).
  /// 0 when no snapshot was requested or the run completed.
  std::uint64_t snapshot_bytes = 0;

  /// Batch execution accounting (stats-json schema v6; DESIGN.md §15).
  /// Stamped by the serving layer after the run finishes — all zero for
  /// a standalone Mine()/session.Mine() call, and excluded from
  /// MergeCounters (they describe the batch around the run, not work
  /// inside it). batch_size/batch_groups are the planned batch's totals,
  /// identical on every member result; shared_dp_hits is this member's
  /// DP-table reuse attributable to the batch's shared pass (dp_reused
  /// for non-leader group members, 0 for the group leader that paid for
  /// the tables); queued_micros is the wall time from batch submission
  /// (or Submit()) to this member starting to execute.
  std::uint64_t batch_size = 0;
  std::uint64_t batch_groups = 0;
  std::uint64_t shared_dp_hits = 0;
  std::uint64_t queued_micros = 0;
  double seconds = 0.0;

  /// Wall-clock seconds per phase (stats-json schema v2). A phase that an
  /// algorithm does not have stays 0. `candidate_seconds` covers the
  /// first-level candidate construction (MPFCI/TopK: Lemma 4.1 filter;
  /// Naive: the whole PFI stage), `search_seconds` the enumeration /
  /// checking phase, and `merge_seconds` the deterministic cross-thread
  /// merge plus the canonical sort.
  double candidate_seconds = 0.0;
  double search_seconds = 0.0;
  double merge_seconds = 0.0;

  /// How the run ended (schema v3). Anything but kComplete means the
  /// itemset list is a verified prefix of the full answer (every emitted
  /// entry is fully decided and matches an unbudgeted run; see DESIGN.md
  /// §10).
  Outcome outcome = Outcome::kComplete;

  /// Whether any entry of the full answer may be missing (set together
  /// with a non-complete outcome).
  bool truncated = false;

  /// Whether this run was resumed from a snapshot (schema v5). Counters
  /// then include the suspended run's base totals, so a resumed run's
  /// deterministic counters match an uninterrupted run's.
  bool resumed = false;

  /// Adds `part`'s per-work counters (nodes_visited through
  /// intersections above) into this object. This is the single merge
  /// point for per-task / per-evaluation counter partials: dp_runs and
  /// the cache_* counters are excluded (they live on the shared
  /// FrequentProbability evaluator and are folded in once by the
  /// coordinating thread), as are the wall-clock and outcome fields. A
  /// size guard in mining_result.cc makes the merge exhaustive by
  /// construction: growing MiningStats without updating MergeCounters
  /// fails the build.
  void MergeCounters(const MiningStats& part);

  std::string ToString() const;

  /// One JSON object line with every counter plus seconds, for scripted
  /// regression tracking (schema documented in docs/FORMATS.md; the
  /// `schema` field is 6 and the key set is append-only).
  std::string ToJson() const;

  /// Emits one `counter` trace event per work counter under the canonical
  /// telemetry names (`chernoff_pruned`, `threshold_pruned`,
  /// `superset_pruned`, `subset_pruned`, `bounds_decided`,
  /// `zero_by_count`, `exact_fcp`, `sampled_fcp`, `samples_drawn`,
  /// `dp_runs`, `intersections`, `nodes_expanded`, `degraded_fcp_evals`,
  /// `truncated`). Call after the deterministic merge so values are
  /// thread-count independent. No-op when `sink` is null.
  void EmitTrace(TraceSink* sink) const;
};

/// Output of a miner: the qualifying itemsets plus run statistics.
struct MiningResult {
  std::vector<PfciEntry> itemsets;
  MiningStats stats;

  /// Human-readable reason when outcome() != kComplete (the validation
  /// error for kInvalidRequest, a summary of the tripped limit otherwise).
  std::string status_message;

  /// How the run ended (mirrors stats.outcome).
  Outcome outcome() const { return stats.outcome; }

  /// Whether the run completed normally. A false return still carries a
  /// verified partial result in `itemsets` (empty for kInvalidRequest).
  bool ok() const { return stats.outcome == Outcome::kComplete; }

  /// Sorts entries lexicographically (canonical comparison order).
  void Sort();

  /// Looks up an entry by itemset; nullptr if absent.
  const PfciEntry* Find(const Itemset& items) const;

  /// Renders "itemset fcp" lines (letters=true prints a..z item names).
  std::string ToString(bool letters = false) const;
};

}  // namespace pfci

#endif  // PFCI_CORE_MINING_RESULT_H_
