// Cross-request evaluation caches for the serving layer (DESIGN.md §11).
//
// A MiningSession answers many requests over one fixed database, and the
// dominant cost of every request is re-deriving the same per-tidset
// quantities: mu = sum of existence probabilities (expected support) and
// the truncated Poisson-binomial tail PrF (Definition 3.4). Both are pure
// functions of the tidset contents, so they are safe to memoize across
// requests — unlike sampled FCP values, which stay seed-derived per run
// and are never cached.
//
// EvalCache stores, per canonical tidset, the cached mu plus a tail TABLE
// computed by PoissonBinomialTailTable at the largest threshold seen so
// far: table[t] is bit-identical to a direct DP run at threshold t, so
// one stored DP answers every min_sup <= table_threshold without
// re-running the DP (monotonicity-aware reuse). Entries are keyed by a
// 64-bit fingerprint of the tid contents and verified by exact tid
// comparison — a fingerprint collision degrades to a miss, never to a
// wrong answer. The cache is sharded (one mutex + LRU list per shard) and
// bounded by a byte budget with least-recently-used eviction.
//
// ItemWarmStart keeps per-item infrequency proofs for threshold sweeps:
// a verified statement "PrF({item}; min_sup) <= bound" answers any later
// request with min_sup' >= min_sup by the paper's anti-monotonicity
// (Lemma: PrF is non-increasing in min_sup), letting candidate builders
// reject the item without touching the index. Proofs are true statements
// about the database, so warm-start pruning never changes which
// candidates survive — results stay bit-identical; only per-run work
// counters (dp_runs, cache probes) shrink.
#ifndef PFCI_CORE_EVAL_CACHE_H_
#define PFCI_CORE_EVAL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/data/item.h"
#include "src/data/tidlist.h"
#include "src/data/tidset.h"

namespace pfci {

/// Sharded, byte-bounded cache of per-tidset evaluation results shared by
/// every run of one MiningSession. Thread-safe; all methods may be called
/// concurrently from worker threads of one or several runs.
class EvalCache {
 public:
  struct Options {
    /// Byte budget across all shards; least-recently-used entries are
    /// evicted when an insert pushes past it. 0 is clamped to 1 (a
    /// budget nothing fits in: every insert is rejected, the cache
    /// degrades to all-miss).
    std::size_t max_bytes = std::size_t{64} << 20;

    /// Lock shards. More shards, less contention; 0 is clamped to 1.
    std::size_t shards = 8;
  };

  /// Result of one cache probe. All fields are copies: they stay valid
  /// after the entry is evicted.
  struct Lookup {
    bool found = false;      ///< An entry with exactly these tids exists.
    bool has_table = false;  ///< Its tail table covers the threshold.
    double mu = 0.0;         ///< Cached expected support (when found).
    double tail = 0.0;       ///< PrF at `threshold` (when has_table).
  };

  explicit EvalCache(const Options& options);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Looks up `tids`. On found, `mu` is always usable; `has_table`/`tail`
  /// are set when the stored table reaches `threshold` (table[threshold]
  /// is bit-identical to a direct DP run there).
  Lookup Probe(const TidSet& tids, std::size_t threshold) const;

  /// Stores (or upgrades) the entry for `tids`. `table` must be the
  /// PoissonBinomialTailTable output of size table_threshold + 1; pass
  /// table_threshold 0 (table {1.0}) to cache mu alone. An existing entry
  /// with a larger table is kept as-is (it answers strictly more). An
  /// entry (or upgrade) that would alone exceed max_bytes is rejected —
  /// counted in rejections(), existing entries untouched — so the cache
  /// never admits something it would have to evict everything for.
  void Insert(const TidSet& tids, double mu, std::size_t table_threshold,
              std::vector<double> table);

  /// Current resident bytes across all shards (tids + tables + entry
  /// overhead; the value MiningStats reports as cache_bytes).
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  std::size_t max_bytes() const { return options_.max_bytes; }

  /// Lifetime counters (across every run served by this cache).
  std::uint64_t entries() const {
    return entries_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Inserts refused because the entry alone would exceed max_bytes.
  std::uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// Entries currently exempt from eviction (see PinScope).
  std::uint64_t pinned_entries() const {
    return pinned_.load(std::memory_order_relaxed);
  }

  /// Batch-lifetime pinning (DESIGN.md §15). Entries inserted or upgraded
  /// while at least one pin scope is open are exempt from LRU eviction
  /// until every scope closes: a batch group's lowest-threshold run
  /// prefills tail tables that every later member depends on, and byte-
  /// budget pressure from concurrent traffic must not evict them between
  /// the prefill and the last consumer. Pinned bytes may overshoot
  /// max_bytes by the pinned working set; unpinned entries keep being
  /// evicted, and the oversized-entry rejection rule still applies. When
  /// the last scope closes, pins are cleared and the budget re-enforced.
  /// Scopes nest (a batch inside a batch just extends the pin window).
  void BeginPinScope();
  void EndPinScope();

  /// RAII pin scope. Null-safe: constructing over a null cache is a
  /// no-op, so callers can pin unconditionally.
  class PinScope {
   public:
    explicit PinScope(EvalCache* cache) : cache_(cache) {
      if (cache_ != nullptr) cache_->BeginPinScope();
    }
    ~PinScope() {
      if (cache_ != nullptr) cache_->EndPinScope();
    }
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    EvalCache* cache_;
  };

 private:
  struct Entry {
    TidList tids;               ///< Exact key (collision guard).
    double mu = 0.0;            ///< Sum of probs, ascending tid order.
    std::size_t table_threshold = 0;
    bool pinned = false;        ///< Exempt from eviction while pins open.
    std::vector<double> table;  ///< table[t] = PrF at threshold t.

    std::size_t Bytes() const;
  };

  /// LRU list (front = most recent) plus fingerprint -> node map.
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<std::uint64_t, Entry>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, Entry>>::iterator>
        map;
  };

  Shard& ShardFor(std::uint64_t fingerprint) const {
    return shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
  }

  /// Evicts this shard's least-recent entries while the global byte count
  /// exceeds the budget. Caller holds the shard mutex.
  void EvictLocked(Shard& shard);

  Options options_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> pinned_{0};
  std::atomic<std::uint64_t> pin_depth_{0};
};

/// Content fingerprint of a tidset (FNV-1a over the ascending tids).
/// Representation-independent: sparse and dense sets with equal contents
/// hash equal.
std::uint64_t TidSetFingerprint(const TidSet& tids);

/// Per-item infrequency proofs for warm-starting threshold sweeps. Each
/// proof (min_sup, bound) asserts PrF({item}; min_sup) <= bound; by
/// anti-monotonicity it also bounds PrF at every min_sup' >= min_sup.
/// Only a Pareto frontier (ascending min_sup, descending bound) is kept.
/// Thread-safe.
class ItemWarmStart {
 public:
  ItemWarmStart() = default;
  ItemWarmStart(const ItemWarmStart&) = delete;
  ItemWarmStart& operator=(const ItemWarmStart&) = delete;

  /// Records the verified statement PrF({item}; min_sup) <= bound (e.g.
  /// the exact PrF computed when a candidate builder rejected the item,
  /// or its Chernoff upper bound).
  void RecordBound(Item item, std::size_t min_sup, double bound);

  /// Tightest provable upper bound on PrF({item}; min_sup) from the
  /// recorded proofs, or +infinity when nothing applies. Callers prune
  /// with their own comparison (`<= pfct` for MPFCI-family candidate
  /// tests, `< pft` for PFI's strict threshold).
  double BoundFor(Item item, std::size_t min_sup) const;

  /// Number of items with at least one recorded proof.
  std::size_t items_recorded() const;

 private:
  struct Proof {
    std::size_t min_sup;
    double bound;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Item, std::vector<Proof>> proofs_;
};

}  // namespace pfci

#endif  // PFCI_CORE_EVAL_CACHE_H_
