#include "src/core/mdnf_reduction.h"

#include <cmath>

#include "src/core/closed_probability.h"
#include "src/util/check.h"

namespace pfci {

MdnfReduction BuildMdnfReduction(const MonotoneDnf& formula) {
  PFCI_CHECK(formula.num_variables >= 1);
  PFCI_CHECK(!formula.clauses.empty());
  MdnfReduction reduction;
  reduction.x = Itemset{0};  // The shared itemset X (one item suffices).

  // Membership table: does variable j appear in clause i?
  std::vector<std::vector<bool>> appears(
      formula.clauses.size(), std::vector<bool>(formula.num_variables, false));
  for (std::size_t i = 0; i < formula.clauses.size(); ++i) {
    PFCI_CHECK(!formula.clauses[i].empty());
    for (std::size_t v : formula.clauses[i]) {
      PFCI_CHECK(v < formula.num_variables);
      appears[i][v] = true;
    }
  }

  for (std::size_t j = 0; j < formula.num_variables; ++j) {
    std::vector<Item> items = {0};  // X ⊆ T_j for every transaction.
    for (std::size_t i = 0; i < formula.clauses.size(); ++i) {
      // e_i ∈ T_j iff v_j does NOT appear in clause C_i (Theorem 3.1).
      if (!appears[i][j]) items.push_back(static_cast<Item>(1 + i));
    }
    reduction.db.Add(Itemset(std::move(items)), 0.5);
  }
  return reduction;
}

std::uint64_t CountSatisfyingAssignments(const MonotoneDnf& formula) {
  PFCI_CHECK(formula.num_variables <= 24);
  const std::uint64_t limit = std::uint64_t{1} << formula.num_variables;
  std::uint64_t count = 0;
  for (std::uint64_t assignment = 0; assignment < limit; ++assignment) {
    bool satisfied = false;
    for (const auto& clause : formula.clauses) {
      bool clause_true = true;
      for (std::size_t v : clause) {
        if (!((assignment >> v) & 1)) {
          clause_true = false;
          break;
        }
      }
      if (clause_true) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) ++count;
  }
  return count;
}

std::uint64_t CountSatisfyingAssignmentsViaClosedProbability(
    const MonotoneDnf& formula) {
  PFCI_CHECK(formula.num_variables <= 20);
  const MdnfReduction reduction = BuildMdnfReduction(formula);
  const double pr_c = ExactClosedProbability(reduction.db, reduction.x);
  const double scale =
      std::pow(2.0, static_cast<double>(formula.num_variables));
  return static_cast<std::uint64_t>(std::llround((1.0 - pr_c) * scale));
}

}  // namespace pfci
