// Unified mining entry point: pfci::Mine(db, MiningRequest).
//
// One dispatch replaces the historical per-algorithm free functions: a
// MiningRequest bundles the problem parameters (MiningParams), the
// algorithm to run, the execution policy (thread count, determinism), and
// an optional progress observer. The free functions (MineMpfci,
// MineMpfciBfs, MineNaive, MineTopKPfci, ...) remain as thin wrappers
// over the same implementations, so existing call sites keep compiling.
//
// Determinism contract: with execution.deterministic == true (default),
// Mine() produces bit-identical MiningResult.itemsets — including sampled
// fcp values — for every num_threads, because all RNG streams are derived
// from params.seed per unit of work and reductions run in a fixed order.
#ifndef PFCI_CORE_MINE_H_
#define PFCI_CORE_MINE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"
#include "src/util/runtime.h"

namespace pfci {

/// The mining algorithms reachable through Mine().
enum class Algorithm {
  kMpfci,            ///< DFS MPFCI with all prunings (recommended).
  kMpfciBfs,         ///< Breadth-first MPFCI framework.
  kNaive,            ///< PFI mining + per-itemset ApproxFCP (baseline).
  kTopK,             ///< Top-k PFCI by descending PrFC (uses top_k).
  kPfi,              ///< Probabilistic frequent itemsets only (no
                     ///< closedness): entries carry pr_f, fcp is 0.
  kExpectedSupport,  ///< Expected-support frequent itemsets (uses
                     ///< min_esup): the expected support is reported in
                     ///< the pr_f field, fcp is 0.
};

/// Display name ("mpfci", "bfs", "naive", "topk", "pfi", "esup").
const char* AlgorithmName(Algorithm algorithm);

/// Everything Mine() needs for one run.
struct MiningRequest {
  /// Problem parameters (thresholds, pruning toggles, seed).
  MiningParams params;

  /// Which miner to dispatch to.
  Algorithm algorithm = Algorithm::kMpfci;

  /// Thread count and reproducibility guarantees.
  ExecutionPolicy execution;

  /// Result count for Algorithm::kTopK (ignored otherwise).
  std::size_t top_k = 10;

  /// Threshold for Algorithm::kExpectedSupport; values <= 0 default to
  /// params.min_sup (ignored by the other algorithms).
  double min_esup = 0.0;

  /// Optional observer for long runs; invoked at most once per
  /// `progress_interval` search nodes (from any thread, never
  /// concurrently), plus once with the final counts.
  ProgressCallback progress;

  /// Minimum node count between progress callbacks (>= 1).
  std::uint64_t progress_interval = 4096;

  /// Optional telemetry sink (null: tracing off, zero overhead). The run
  /// emits run_begin/run_end markers, per-phase spans, and the merged
  /// per-rule pruning counters; counter values are bit-identical across
  /// thread counts. Owned by the caller; must outlive the run.
  TraceSink* trace = nullptr;

  /// Resource limits for the run (default: unlimited). When a limit
  /// trips, Mine() returns a verified partial result with the matching
  /// non-complete Outcome instead of running forever (DESIGN.md §10).
  RunBudget budget;

  /// Optional cooperative cancellation token, polled at the miners'
  /// checkpoints. Owned by the caller; must outlive the run.
  const CancelToken* cancel = nullptr;
};

/// Checks `request` (including its params and budget); empty string when
/// valid.
std::string ValidateRequest(const MiningRequest& request);

/// Runs the requested algorithm and returns its result. Invalid requests
/// do NOT abort: Mine() returns an empty result with outcome
/// kInvalidRequest and the ValidateRequest() message in status_message
/// (the API boundary reports errors as data; PFCI_CHECK stays for
/// internal invariants only). The per-algorithm wrapper functions keep
/// their historical CHECK-on-invalid behavior.
MiningResult Mine(const UncertainDatabase& db, const MiningRequest& request);

}  // namespace pfci

#endif  // PFCI_CORE_MINE_H_
