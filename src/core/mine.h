// Unified mining entry point: pfci::Mine(db, MiningRequest).
//
// One dispatch replaces the historical per-algorithm free functions: a
// MiningRequest bundles the problem parameters (MiningParams), the
// algorithm to run, the execution policy (thread count, determinism), and
// an optional progress observer. The free functions (MineMpfci,
// MineMpfciBfs, MineNaive, MineTopKPfci, ...) remain as thin wrappers
// over the same implementations, so existing call sites keep compiling;
// the stragglers that predated the unified API
// (MineExpectedSupportFpGrowth, BruteForceMinePfci, and the item-level
// miners) are reachable as algorithms here and their free functions are
// deprecated.
//
// Determinism contract: with execution.deterministic == true (default),
// Mine() produces bit-identical MiningResult.itemsets — including sampled
// fcp values — for every num_threads, because all RNG streams are derived
// from params.seed per unit of work and reductions run in a fixed order.
//
// Request schema (cross-field rules enforced by ValidateRequest):
//
//   field              applies to                 rule
//   -----              ----------                 ----
//   params             all                        ValidateParams(params)
//   algorithm          all                        any Algorithm value
//   execution          all                        num_threads >= 0
//   top_k              kTopK only                 >= 1 for kTopK; must be
//                                                 0 for everything else
//   min_esup           kExpectedSupport,          >= 0; 0 defaults to
//                      kExpectedSupportFpGrowth,  params.min_sup; must be
//                      kItemExpectedSupport       0 for other algorithms
//   sweep_min_sup      MiningSession::MineSweep   strictly increasing,
//                                                 values >= 1; must be
//                                                 empty for single-shot
//                                                 Mine()
//   progress*          all                        interval >= 1
//   budget             all                        see RunBudget
//   cancel / trace     all                        optional, caller-owned
//   snapshot           tuple-level Mine()         paths require
//                                                 execution.deterministic;
//                                                 rejected by the
//                                                 item-level overload
//
// Database kind: Algorithm::kItemExpectedSupport and kItemPfi mine an
// ItemUncertainDatabase and are served by the item-level Mine() overload;
// every other algorithm mines a tuple-level UncertainDatabase. Requests
// routed to the wrong overload come back as kInvalidRequest data, never
// aborts.
#ifndef PFCI_CORE_MINE_H_
#define PFCI_CORE_MINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"
#include "src/util/runtime.h"

namespace pfci {

class ItemUncertainDatabase;

/// The mining algorithms reachable through Mine().
enum class Algorithm {
  kMpfci,            ///< DFS MPFCI with all prunings (recommended).
  kMpfciBfs,         ///< Breadth-first MPFCI framework.
  kNaive,            ///< PFI mining + per-itemset ApproxFCP (baseline).
  kTopK,             ///< Top-k PFCI by descending PrFC (uses top_k).
  kPfi,              ///< Probabilistic frequent itemsets only (no
                     ///< closedness): entries carry pr_f, fcp is 0.
  kExpectedSupport,  ///< Expected-support frequent itemsets (uses
                     ///< min_esup): the expected support is reported in
                     ///< the pr_f field, fcp is 0.
  kExpectedSupportFpGrowth,  ///< Same answer as kExpectedSupport via the
                             ///< weighted FP-growth baseline (uses
                             ///< min_esup).
  kBruteForce,       ///< Possible-world enumeration oracle: exact PrFC in
                     ///< the fcp field. Only for databases with at most
                     ///< kMaxEnumerableTransactions transactions; larger
                     ///< inputs come back as kInvalidRequest.
  kItemExpectedSupport,  ///< Expected support under item-level
                         ///< uncertainty (item-level overload only).
  kItemPfi,              ///< Probabilistic frequent itemsets under
                         ///< item-level uncertainty (item-level overload
                         ///< only).
};

/// Display name ("mpfci", "bfs", "naive", "topk", "pfi", "esup",
/// "esup-fp", "brute", "item-esup", "item-pfi"). Round-trips through
/// ParseAlgorithm.
const char* AlgorithmName(Algorithm algorithm);

/// Inverse of AlgorithmName: exact (case-sensitive) display-name lookup.
/// Returns false (leaving `algorithm` untouched) for unknown names.
bool ParseAlgorithm(const std::string& name, Algorithm* algorithm);

/// Every Algorithm value, in declaration order — the one list that CLI
/// help text and exhaustive tests iterate.
const std::vector<Algorithm>& AllAlgorithms();

/// Checkpoint/resume bindings for one run (DESIGN.md §14). Both paths
/// are optional and independent; both require
/// execution.deterministic == true (ValidateRequest rejects otherwise —
/// a nondeterministic run has no bit-identical continuation to resume).
struct SnapshotPolicy {
  /// When non-empty and the run stops early (deadline, budget, cancel),
  /// Mine() drains in-flight work at a unit boundary and writes the
  /// run's frontier + decided entries here crash-consistently
  /// (SaveRunSnapshotAtomic, wrapped in RetryWithBackoff). Algorithms
  /// without frontier capture write a restart-only marker. A persistent
  /// write failure is noted in status_message without changing the
  /// run's outcome.
  std::string save_path;

  /// When non-empty, Mine() loads and verifies this snapshot (algorithm
  /// name and database+request fingerprint must match; mismatches come
  /// back as kInvalidRequest) and continues the suspended run. The
  /// resumed result is bit-identical to an uninterrupted run, across
  /// thread counts and tid-set modes.
  std::string resume_path;
};

/// Everything Mine() needs for one run.
struct MiningRequest {
  /// Problem parameters (thresholds, pruning toggles, seed).
  MiningParams params;

  /// Which miner to dispatch to.
  Algorithm algorithm = Algorithm::kMpfci;

  /// Thread count and reproducibility guarantees.
  ExecutionPolicy execution;

  /// Result count for Algorithm::kTopK; must stay 0 for every other
  /// algorithm (ValidateRequest rejects stray values instead of silently
  /// ignoring them).
  std::size_t top_k = 0;

  /// Threshold for the expected-support algorithms; values <= 0 default
  /// to params.min_sup. Must stay 0 for the other algorithms.
  double min_esup = 0.0;

  /// min_sup thresholds for MiningSession::MineSweep (strictly
  /// increasing). Single-shot Mine() requires this empty; a sweep needs
  /// the session's caches to be worth anything.
  std::vector<std::size_t> sweep_min_sup;

  /// Optional observer for long runs; invoked at most once per
  /// `progress_interval` search nodes (from any thread, never
  /// concurrently), plus once with the final counts.
  ProgressCallback progress;

  /// Minimum node count between progress callbacks (>= 1).
  std::uint64_t progress_interval = 4096;

  /// Optional telemetry sink (null: tracing off, zero overhead). The run
  /// emits run_begin/run_end markers, per-phase spans, and the merged
  /// per-rule pruning counters; counter values are bit-identical across
  /// thread counts. Owned by the caller; must outlive the run.
  TraceSink* trace = nullptr;

  /// Resource limits for the run (default: unlimited). When a limit
  /// trips, Mine() returns a verified partial result with the matching
  /// non-complete Outcome instead of running forever (DESIGN.md §10).
  RunBudget budget;

  /// Optional cooperative cancellation token, polled at the miners'
  /// checkpoints. Owned by the caller; must outlive the run.
  const CancelToken* cancel = nullptr;

  /// Optional checkpoint/resume bindings (empty paths: feature off).
  SnapshotPolicy snapshot;
};

/// Checks `request` (including its params, budget, and the cross-field
/// rules in the schema table above); empty string when valid. Error
/// messages name the offending field.
std::string ValidateRequest(const MiningRequest& request);

/// Runs the requested algorithm and returns its result. Invalid requests
/// do NOT abort: Mine() returns an empty result with outcome
/// kInvalidRequest and the ValidateRequest() message in status_message
/// (the API boundary reports errors as data; PFCI_CHECK stays for
/// internal invariants only). The per-algorithm wrapper functions keep
/// their historical CHECK-on-invalid behavior.
MiningResult Mine(const UncertainDatabase& db, const MiningRequest& request);

/// Item-level uncertainty entry point: serves kItemExpectedSupport and
/// kItemPfi; any other algorithm comes back as kInvalidRequest (those
/// mine tuple-level databases).
MiningResult Mine(const ItemUncertainDatabase& db,
                  const MiningRequest& request);

/// Session-owned state a MiningSession injects into a run (DESIGN.md
/// §11). All pointers are optional and caller-owned; they must outlive
/// the call. Injected state never changes results — only the work done
/// to produce them (see ExecutionContext).
struct SessionBindings {
  /// Prebuilt index over the request's database; borrowed when its
  /// tid-set mode matches the request, else the run builds its own.
  const VerticalIndex* index = nullptr;

  /// Cross-request PrF/esup evaluation cache.
  EvalCache* eval_cache = nullptr;

  /// Cross-request per-item infrequency proofs.
  ItemWarmStart* warm_start = nullptr;

  /// Extend freshly cached DP tail tables to at least this threshold
  /// (0: just the run's min_sup). See ExecutionContext::table_floor.
  std::size_t table_floor = 0;
};

/// Mine() with session state attached. This is the primitive
/// MiningSession::Mine is built on; standalone callers can use it to
/// share caches across hand-rolled request loops.
MiningResult MineWithBindings(const UncertainDatabase& db,
                              const MiningRequest& request,
                              const SessionBindings& bindings);

}  // namespace pfci

#endif  // PFCI_CORE_MINE_H_
