// MiningRequest <-> request-wire mapping (DESIGN.md §15).
//
// The wire dialect itself (key=value lines, comments, line numbers) is
// lexed by src/data/request_wire.h; this header owns what the keys
// MEAN: the fixed field order writers emit and the per-key parsing that
// maps a field onto a MiningRequest. mine_cli's --request=FILE, the
// oracle repro sidecar (src/harness/oracle/repro.h, which adds a
// `check` key on top), and batch submission all go through these
// functions, so a request serialized anywhere replays identically
// everywhere.
//
// The wire covers the deterministic request surface: algorithm, every
// MiningParams field, top_k, min_esup, and num_threads. Runtime-only
// fields (progress sinks, cancel tokens, budgets, snapshots, sweep
// grids) are deliberately not serialized — a wire request is a
// repeatable experiment, not a captured execution.
#ifndef PFCI_CORE_REQUEST_IO_H_
#define PFCI_CORE_REQUEST_IO_H_

#include <string>
#include <vector>

#include "src/core/mine.h"
#include "src/data/request_wire.h"

namespace pfci {

/// Serializes every wire-covered field of `request`, one per line, in
/// the fixed canonical order (doubles via FormatDoubleRoundTrip, bools
/// as 0/1). Byte-stable across platforms.
std::string FormatRequestFields(const MiningRequest& request);

/// Result of applying one wire field to a request.
enum class WireFieldStatus {
  kApplied,     ///< Key recognized, value parsed, request updated.
  kUnknownKey,  ///< Not a request key (caller decides: error or skip).
  kBadValue,    ///< Key recognized but the value does not parse.
};

/// Applies one `key=value` field onto `request`.
WireFieldStatus ApplyRequestField(const WireField& field,
                                  MiningRequest* request);

/// Applies every field onto `request`. Unknown keys and bad values are
/// errors ("`origin` line N: ..." in `error`) — a typo must not
/// silently replay a default request.
bool ApplyRequestFields(const std::vector<WireField>& fields,
                        const std::string& origin, MiningRequest* request,
                        std::string* error);

/// Loads the wire file at `path` onto `request` (which keeps its
/// existing values for keys the file omits). The harness's `check` key
/// is skipped, so an oracle repro sidecar replays directly; any other
/// unknown key is an error.
bool LoadRequestFile(const std::string& path, MiningRequest* request,
                     std::string* error);

}  // namespace pfci

#endif  // PFCI_CORE_REQUEST_IO_H_
