// MPFCI-BFS: the breadth-first framework variant (paper Sec. V.D,
// Fig. 12).
//
// Levelwise Apriori-style candidate generation over the probabilistic
// frequent itemsets, with Chernoff-Hoeffding and frequent-probability
// pruning plus the Lemma 4.4 bounds; superset/subset pruning cannot be
// applied ("they won't show up in BFS's enumeration", Table VII).
// Returns exactly the same itemsets as MineMpfci.
#ifndef PFCI_CORE_BFS_MINER_H_
#define PFCI_CORE_BFS_MINER_H_

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Mines all probabilistic frequent closed itemsets breadth-first.
/// The superset/subset toggles in params.pruning are ignored.
///
/// Deprecated shim: delegates to Mine() with Algorithm::kMpfciBfs after
/// the historical CHECK on invalid params (unlike Mine()'s
/// error-as-data). Parity pinned by api_contract_test; removed next
/// cycle.
[[deprecated("use Mine() with Algorithm::kMpfciBfs")]]
MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params);

/// Execution-aware variant used by Mine(): the FCP evaluations of one
/// level run as parallel tasks, each seeded from params.seed and the
/// entry's global position, and the results are committed in level order
/// — output is bit-identical for any thread count.
MiningResult MineMpfciBfs(const UncertainDatabase& db,
                          const MiningParams& params,
                          const ExecutionContext& exec);

}  // namespace pfci

#endif  // PFCI_CORE_BFS_MINER_H_
