#include "src/core/probabilistic_support.h"

#include <algorithm>
#include <functional>

#include "src/data/vertical_index.h"
#include "src/prob/poisson_binomial.h"
#include "src/util/check.h"

namespace pfci {

namespace {

std::size_t PsupFromProbs(const std::vector<double>& probs, double pft) {
  if (probs.empty()) return 0;
  const std::vector<double> pmf = PoissonBinomialPmf(probs);
  // Walk the tail down from s = n; psup is the largest s whose tail
  // probability still reaches pft.
  double tail = 0.0;
  for (std::size_t s = pmf.size(); s-- > 1;) {
    tail += pmf[s];
    if (tail >= pft) return s;
  }
  return 0;
}

void Enumerate(const VerticalIndex& index, std::size_t min_sup,
               const Itemset& x, const TidSet& tids, Item next_item,
               const std::function<void(const Itemset&, const TidSet&)>& fn) {
  if (!x.empty()) fn(x, tids);
  const auto& items = index.occurring_items();
  for (Item item : items) {
    if (item < next_item) continue;
    const TidSet child = Intersect(tids, index.TidsOfItem(item));
    if (child.size() < min_sup) continue;
    Enumerate(index, min_sup, x.WithItem(item), child, item + 1, fn);
  }
}

}  // namespace

std::size_t ProbabilisticSupport(const UncertainDatabase& db,
                                 const Itemset& x, double pft) {
  PFCI_CHECK(pft > 0.0 && pft <= 1.0);
  std::vector<double> probs;
  for (const auto& t : db.transactions()) {
    if (x.IsSubsetOf(t.items)) probs.push_back(t.prob);
  }
  return PsupFromProbs(probs, pft);
}

std::vector<PsupEntry> MinePsupClosed(const UncertainDatabase& db,
                                      std::size_t min_sup, double pft) {
  PFCI_CHECK(min_sup >= 1);
  const VerticalIndex index(db);
  std::vector<PsupEntry> result;

  Enumerate(index, min_sup, Itemset{}, index.all_tids(), 0,
            [&](const Itemset& x, const TidSet& tids) {
              const std::size_t psup =
                  PsupFromProbs(index.ProbsOf(tids), pft);
              if (psup < min_sup) return;
              // Closed under [34] iff every one-item extension has a
              // strictly smaller probabilistic support (sufficient by
              // anti-monotonicity of psup).
              for (Item item : index.occurring_items()) {
                if (x.Contains(item)) continue;
                const TidSet ext = Intersect(tids, index.TidsOfItem(item));
                if (PsupFromProbs(index.ProbsOf(ext), pft) >= psup) return;
              }
              result.push_back(PsupEntry{x, psup});
            });
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace pfci
