// Parameters of the probabilistic frequent-closed-itemset miners.
#ifndef PFCI_CORE_MINING_PARAMS_H_
#define PFCI_CORE_MINING_PARAMS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/data/tidset.h"

namespace pfci {

/// Individually toggleable pruning rules (the algorithm variants of the
/// paper's Table VII are obtained by switching these off one at a time).
struct PruningToggles {
  bool chernoff = true;   ///< Lemma 4.1 Chernoff-Hoeffding pruning.
  bool superset = true;   ///< Lemma 4.2 superset pruning.
  bool subset = true;     ///< Lemma 4.3 subset pruning.
  bool fcp_bounds = true; ///< Lemma 4.4 frequent-closed-probability bounds.
};

/// All knobs of the mining problem and its solvers.
struct MiningParams {
  /// Minimum support threshold (absolute count, >= 1).
  std::size_t min_sup = 1;

  /// Probabilistic frequent closed threshold; an itemset qualifies iff
  /// PrFC(X) > pfct (Definition 3.8).
  double pfct = 0.8;

  /// ApproxFCP relative tolerance (paper's epsilon).
  double epsilon = 0.1;

  /// ApproxFCP failure probability (paper's delta; confidence 1 - delta).
  double delta = 0.1;

  PruningToggles pruning;

  /// When at most this many extension events are active, the frequent
  /// non-closed probability is computed exactly by inclusion-exclusion
  /// instead of sampling (engineering addition, see DESIGN.md §2.7).
  std::size_t exact_event_limit = 14;

  /// Forces the Monte-Carlo path even for few events (used by the
  /// approximation-quality experiments, Fig. 11).
  bool force_sampling = false;

  /// Seed for every stochastic component (sampling); runs are
  /// deterministic given the seed.
  std::uint64_t seed = 1234;

  /// Tid-set representation policy: adaptive (default) picks sparse
  /// vector vs dense bitmap per set by density; sparse/dense force one
  /// representation everywhere. Never affects results, only layout/speed.
  TidSetMode tidset_mode = TidSetMode::kAdaptive;
};

/// The TidSetPolicy a miner should build its VerticalIndex with.
inline TidSetPolicy TidSetPolicyFor(const MiningParams& params) {
  TidSetPolicy policy;
  policy.mode = params.tidset_mode;
  return policy;
}

/// Checks every field of `params`; returns an empty string when valid and
/// a descriptive error otherwise. Mine() and the free-function wrappers
/// all funnel through this, so invalid usage fails with the same message
/// everywhere.
std::string ValidateParams(const MiningParams& params);

}  // namespace pfci

#endif  // PFCI_CORE_MINING_PARAMS_H_
