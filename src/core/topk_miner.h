// Top-k probabilistic frequent closed itemset mining.
//
// A natural extension of the paper's problem (threshold-free usage): find
// the k itemsets with the largest frequent closed probability. The search
// reuses MPFCI's machinery with a *rising* threshold: once k results are
// held, the smallest FCP in hand acts as pfct for all remaining pruning
// (valid because PrFC <= PrF and PrF is anti-monotone).
#ifndef PFCI_CORE_TOPK_MINER_H_
#define PFCI_CORE_TOPK_MINER_H_

#include <cstddef>

#include "src/core/execution.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Returns (up to) k itemsets with the largest PrFC, sorted by descending
/// PrFC (ties by itemset order). `params.pfct` serves as an additional
/// floor: itemsets with PrFC <= params.pfct are never reported, so pass
/// pfct = 0 for an unconditional top-k. Ranking uses the engine's FCP
/// estimates (exact at default settings whenever the event count permits).
///
/// Deprecated shim: delegates to Mine() with Algorithm::kTopK (and
/// request.top_k = k) after the historical CHECKs on invalid params and
/// k = 0 (unlike Mine()'s error-as-data). Parity pinned by
/// api_contract_test; removed next cycle.
[[deprecated("use Mine() with Algorithm::kTopK and request.top_k")]]
MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k);

/// Execution-aware variant used by Mine(). The search itself is
/// sequential (the rising threshold makes node order load-bearing), but
/// ApproxFCP sample batches run on `exec.pool` and progress is reported.
MiningResult MineTopKPfci(const UncertainDatabase& db,
                          const MiningParams& params, std::size_t k,
                          const ExecutionContext& exec);

}  // namespace pfci

#endif  // PFCI_CORE_TOPK_MINER_H_
