// Sliding-window mining over an uncertain transaction stream.
//
// The paper's related work ([30]) studies frequent items over
// probabilistic streams; this module extends the library in that
// direction for full itemsets: a bounded window of the most recent
// uncertain transactions is maintained, and the probabilistic frequent
// closed itemsets of the window can be (re)mined at any point. Mining is
// a fresh MPFCI run over the window — exact window semantics, no
// approximation from incremental maintenance.
#ifndef PFCI_CORE_STREAM_MINER_H_
#define PFCI_CORE_STREAM_MINER_H_

#include <cstdint>
#include <deque>

#include "src/core/mine.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"

namespace pfci {

/// Maintains the last `window_size` uncertain transactions of a stream
/// and mines the window on demand.
class StreamingPfciMiner {
 public:
  /// `params.min_sup` applies to the window (absolute count within it).
  /// Degenerate configurations construct fine and surface as data at the
  /// mining boundary: `window_size == 0` makes MineWindow() return a
  /// kInvalidRequest result (and Observe() retain nothing), and invalid
  /// params are rejected by Mine() itself.
  StreamingPfciMiner(MiningParams params, std::size_t window_size);

  /// Appends one transaction, evicting the oldest when the window is at
  /// capacity.
  void Observe(Itemset items, double prob);

  /// Number of transactions currently in the window (<= window_size).
  std::size_t window_fill() const { return window_.size(); }

  /// Total transactions observed since construction.
  std::uint64_t transactions_seen() const { return seen_; }

  /// The window as a database (oldest first).
  UncertainDatabase WindowSnapshot() const;

  /// Mines the probabilistic frequent closed itemsets of the current
  /// window. Each call advances the internal mining seed so repeated
  /// calls on identical windows remain deterministic but independent.
  /// Routed through the unified Mine() entry point (and so through the
  /// search kernel); invalid mining parameters come back as a
  /// kInvalidRequest result rather than aborting.
  MiningResult MineWindow();

  /// As above with a request template: budget, cancel token, trace sink,
  /// execution policy, and algorithm choice are honored, making windowed
  /// mining fail-soft like any other Mine() call. The template's params
  /// are replaced by the stream's own (with the per-call seed advance);
  /// sweep_min_sup must stay empty.
  MiningResult MineWindow(const MiningRequest& request);

 private:
  MiningParams params_;
  std::size_t window_size_;
  std::deque<UncertainTransaction> window_;
  std::uint64_t seen_ = 0;
  std::uint64_t mine_calls_ = 0;
};

}  // namespace pfci

#endif  // PFCI_CORE_STREAM_MINER_H_
