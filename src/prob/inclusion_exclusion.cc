#include "src/prob/inclusion_exclusion.h"

#include <bit>
#include <cstdint>

#include "src/util/check.h"

namespace pfci {

double UnionByInclusionExclusion(
    std::size_t m,
    const std::function<double(const std::vector<std::size_t>&)>&
        intersection_prob) {
  PFCI_CHECK(m <= kMaxInclusionExclusionEvents);
  if (m == 0) return 0.0;
  double total = 0.0;
  std::vector<std::size_t> subset;
  const std::uint64_t limit = std::uint64_t{1} << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::uint64_t{1} << i)) subset.push_back(i);
    }
    const double term = intersection_prob(subset);
    total += (std::popcount(mask) % 2 == 1) ? term : -term;
  }
  return total;
}

}  // namespace pfci
