// Poisson-binomial distribution: sum of independent, non-identical
// Bernoulli variables.
//
// Under the tuple-uncertainty model the support of an itemset X is exactly
// Poisson-binomial over the existence probabilities of the transactions that
// contain X, so this is the probabilistic core of the whole library
// (Definition 3.4 of the paper; the DP is the "dynamic programming approach
// [22]" the paper relies on).
#ifndef PFCI_PROB_POISSON_BINOMIAL_H_
#define PFCI_PROB_POISSON_BINOMIAL_H_

#include <cstddef>
#include <vector>

namespace pfci {

/// Full probability mass function of sum(Bernoulli(p_i)).
/// Returns a vector of size n+1 where element s is Pr{sum == s}.
/// O(n^2) time, O(n) space.
std::vector<double> PoissonBinomialPmf(const std::vector<double>& probs);

/// Pr{ sum(Bernoulli(p_i)) >= threshold }.
///
/// Uses the truncated dynamic program of the paper's frequent-probability
/// computation: states 0..threshold-1 plus one absorbing "reached threshold"
/// state, O(n * threshold) time and O(threshold) space. threshold == 0
/// returns 1 exactly.
double PoissonBinomialTailAtLeast(const std::vector<double>& probs,
                                  std::size_t threshold);

/// As above, but reusing `*dp_scratch` (resized to `threshold`) as the DP
/// row so repeated evaluations allocate nothing once the scratch buffer
/// has reached the run's largest threshold. Arithmetic is identical to the
/// allocating overload (bit-identical results).
double PoissonBinomialTailAtLeast(const double* probs, std::size_t n,
                                  std::size_t threshold,
                                  std::vector<double>* dp_scratch);

/// Pr{ sum(Bernoulli(p_i)) >= t } for EVERY t in 0..threshold, in one DP
/// pass. `*table` is resized to threshold + 1 with table[t] the tail
/// probability at threshold t (table[0] == 1 exactly, table[t] == 0 for
/// t > n).
///
/// Bit-exactness contract (relied on by the evaluation cache): each
/// table[t] is bit-identical to a direct PoissonBinomialTailAtLeast(probs,
/// n, t, ...) call. The truncated DP's state s depends only on states
/// <= s, so its trajectory is the same under every truncation above s;
/// maintaining one absorbed-mass accumulator per threshold — updated with
/// `table[t] += dp[t-1] * p` before each item's in-place state update,
/// exactly where the direct run adds to `reached` — replays each direct
/// run's floating-point addition sequence verbatim.
///
/// Cost is O(n * threshold) time and O(threshold) space — the same order
/// as the single largest direct evaluation, so precomputing the whole
/// table costs at most ~2x one direct run at `threshold`.
void PoissonBinomialTailTable(const double* probs, std::size_t n,
                              std::size_t threshold,
                              std::vector<double>* dp_scratch,
                              std::vector<double>* table);

/// Allocating convenience form of PoissonBinomialTailTable.
std::vector<double> PoissonBinomialTailTable(const std::vector<double>& probs,
                                             std::size_t threshold);

/// Expected value of the sum (sum of p_i).
double PoissonBinomialMean(const std::vector<double>& probs);

/// Variance of the sum (sum of p_i (1 - p_i)).
double PoissonBinomialVariance(const std::vector<double>& probs);

}  // namespace pfci

#endif  // PFCI_PROB_POISSON_BINOMIAL_H_
