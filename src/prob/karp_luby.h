// Karp-Luby-Madras coverage estimator for the probability of a union of
// events (the classical FPRAS for DNF counting [14]).
//
// This is the engine behind the paper's ApproxFCP procedure (Fig. 2): the
// frequent non-closed probability is a union Pr(C_1 ∪ ... ∪ C_m), each
// Pr(C_i) is efficiently computable, a world can be sampled conditioned on
// C_i, and membership ω ∈ C_j is cheap to test. The estimator samples an
// event index i with probability Pr(C_i)/Z (Z = Σ Pr(C_i)), draws
// ω | C_i, and counts the sample iff i is the *first* event covering ω;
// then Pr(∪C_i) ≈ Z * successes / N.
#ifndef PFCI_PROB_KARP_LUBY_H_
#define PFCI_PROB_KARP_LUBY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/random.h"

namespace pfci {

/// Number of samples guaranteeing relative error epsilon with confidence
/// 1 - delta for k events: ceil(4 k ln(2/delta) / epsilon^2), as analysed
/// in the paper's Sec. IV.B.4 time-complexity discussion.
std::uint64_t KarpLubyRequiredSamples(std::size_t k, double epsilon,
                                      double delta);

/// Outcome of a Karp-Luby estimation run.
struct KarpLubyResult {
  double estimate = 0.0;        ///< Estimated Pr(∪ C_i).
  std::uint64_t samples = 0;    ///< Samples actually drawn.
  std::uint64_t successes = 0;  ///< Canonical ("first cover") hits.
};

/// Runs the coverage estimator.
///
/// `event_probs` are the exact Pr(C_i) (entries may be 0; they are skipped).
/// `sample_is_canonical(i, rng)` must draw ω from the conditional
/// distribution given C_i and return whether no event with index < i (in
/// the same ordering as `event_probs`) also contains ω.
KarpLubyResult KarpLubyUnionEstimate(
    const std::vector<double>& event_probs, std::uint64_t num_samples,
    Rng& rng,
    const std::function<bool(std::size_t, Rng&)>& sample_is_canonical);

}  // namespace pfci

#endif  // PFCI_PROB_KARP_LUBY_H_
