#include "src/prob/conditional_sampler.h"

#include <utility>

#include "src/util/check.h"

namespace pfci {

ConditionalBernoulliSampler::ConditionalBernoulliSampler(
    std::vector<double> probs, std::size_t min_sum)
    : probs_(std::move(probs)),
      min_sum_(min_sum),
      stride_(min_sum + 1),
      tail_((probs_.size() + 1) * (min_sum + 1), 0.0) {
  const std::size_t n = probs_.size();
  // Base case: with no variables left, the residual requirement must be 0.
  tail_[n * stride_ + 0] = 1.0;
  for (std::size_t i = n; i-- > 0;) {
    const double p = probs_[i];
    PFCI_DCHECK(p >= 0.0 && p <= 1.0);
    for (std::size_t d = 0; d <= min_sum_; ++d) {
      const std::size_t d_minus = d > 0 ? d - 1 : 0;
      tail_[i * stride_ + d] = p * Tail(i + 1, d_minus) +
                               (1.0 - p) * Tail(i + 1, d);
    }
  }
  condition_probability_ = Tail(0, min_sum_);
}

void ConditionalBernoulliSampler::Sample(Rng& rng,
                                         std::vector<std::uint8_t>* out) const {
  PFCI_CHECK(Feasible());
  const std::size_t n = probs_.size();
  out->assign(n, 0);
  std::size_t deficit = min_sum_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d_minus = deficit > 0 ? deficit - 1 : 0;
    const double denom = Tail(i, deficit);
    PFCI_DCHECK(denom > 0.0);
    const double pr_one = probs_[i] * Tail(i + 1, d_minus) / denom;
    if (rng.NextBernoulli(pr_one)) {
      (*out)[i] = 1;
      deficit = d_minus;
    }
  }
  PFCI_DCHECK(deficit == 0);
}

}  // namespace pfci
