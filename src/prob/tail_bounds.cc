#include "src/prob/tail_bounds.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pfci {

double HoeffdingUpperTail(double mu, std::size_t n, double s) {
  PFCI_CHECK(mu >= 0.0);
  if (n == 0) return s <= 0.0 ? 1.0 : 0.0;
  if (s <= mu) return 1.0;
  const double t = s - mu;
  return std::exp(-2.0 * t * t / static_cast<double>(n));
}

double ChernoffUpperTail(double mu, double s) {
  if (s <= mu) return 1.0;
  if (mu == 0.0) return 0.0;  // S == 0 almost surely.
  const double d = (s - mu) / mu;
  return std::exp(-d * d * mu / (2.0 + d));
}

double KlChernoffUpperTail(double mu, std::size_t n, double s) {
  if (n == 0) return s <= 0.0 ? 1.0 : 0.0;
  if (s <= mu) return 1.0;
  if (s > static_cast<double>(n)) return 0.0;
  const double q = mu / static_cast<double>(n);
  const double a = s / static_cast<double>(n);
  if (q == 0.0) return 0.0;
  // KL(a || q) = a ln(a/q) + (1-a) ln((1-a)/(1-q)), with the a == 1 edge
  // handled by dropping the vanishing second term.
  double kl = a * std::log(a / q);
  if (a < 1.0) kl += (1.0 - a) * std::log((1.0 - a) / (1.0 - q));
  return std::exp(-static_cast<double>(n) * kl);
}

double BestUpperTailBound(double mu, std::size_t n, double s) {
  const double bound = std::min({HoeffdingUpperTail(mu, n, s),
                                 ChernoffUpperTail(mu, s),
                                 KlChernoffUpperTail(mu, n, s)});
  return std::clamp(bound, 0.0, 1.0);
}

double ChernoffLowerTail(double mu, double s) {
  if (s >= mu) return 1.0;
  if (mu == 0.0) return 1.0;
  const double d = (mu - s) / mu;
  return std::exp(-d * d * mu / 2.0);
}

}  // namespace pfci
