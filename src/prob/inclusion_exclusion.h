// Exact union probability via the inclusion-exclusion principle.
//
// Sec. IV.B.1 of the paper expresses the frequent non-closed probability
// as Pr(C_1 ∪ ... ∪ C_m) and expands it by inclusion-exclusion; the
// callback supplies Pr(∩_{i in S} C_i) for each non-empty subset S.
// Exponential in m — use only for small m (the core caps it at
// `exact_event_limit`) and as a test oracle.
#ifndef PFCI_PROB_INCLUSION_EXCLUSION_H_
#define PFCI_PROB_INCLUSION_EXCLUSION_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace pfci {

/// Maximum number of events accepted by UnionByInclusionExclusion.
inline constexpr std::size_t kMaxInclusionExclusionEvents = 25;

/// Computes Pr(∪_{i<m} C_i) = Σ_{∅≠S} (-1)^{|S|+1} Pr(∩_{i∈S} C_i).
///
/// `intersection_prob` receives the sorted member indices of S. m must be
/// at most kMaxInclusionExclusionEvents (CHECKed).
double UnionByInclusionExclusion(
    std::size_t m,
    const std::function<double(const std::vector<std::size_t>&)>&
        intersection_prob);

}  // namespace pfci

#endif  // PFCI_PROB_INCLUSION_EXCLUSION_H_
