// Bonferroni-type bounds on the probability of a union of events from
// first- and second-order intersection probabilities.
//
// The paper's Lemma 4.4 bounds the frequent non-closed probability
// Pr(C_1 ∪ ... ∪ C_m) from below by de Caen's inequality and from above by
// Kwerel's inequality, turning them into an upper / lower bound on the
// frequent closed probability without any #P-hard computation.
#ifndef PFCI_PROB_UNION_BOUNDS_H_
#define PFCI_PROB_UNION_BOUNDS_H_

#include <cstddef>
#include <vector>

namespace pfci {

/// Symmetric matrix of pairwise intersection probabilities.
/// Entry (i, j) is Pr(C_i ∩ C_j); the diagonal holds Pr(C_i).
class PairwiseProbabilities {
 public:
  explicit PairwiseProbabilities(std::size_t m) : m_(m), values_(m * m, 0.0) {}

  std::size_t size() const { return m_; }

  double Get(std::size_t i, std::size_t j) const { return values_[i * m_ + j]; }

  /// Sets both (i, j) and (j, i).
  void Set(std::size_t i, std::size_t j, double value) {
    values_[i * m_ + j] = value;
    values_[j * m_ + i] = value;
  }

  /// Sum of the singles Pr(C_i) (Bonferroni S1).
  double SumSingles() const;

  /// Sum of Pr(C_i ∩ C_j) over i < j (Bonferroni S2).
  double SumPairs() const;

 private:
  std::size_t m_;
  std::vector<double> values_;
};

/// de Caen's lower bound: Pr(∪ C_i) >= Σ_i Pr(C_i)^2 / Σ_j Pr(C_i ∩ C_j).
/// Events with Pr(C_i) == 0 are skipped. Result clamped to [0, 1].
double DeCaenLowerBound(const PairwiseProbabilities& pairs);

/// Kwerel's upper bound: Pr(∪ C_i) <= S1 - (2/m) S2, clamped to [0, 1].
double KwerelUpperBound(const PairwiseProbabilities& pairs);

/// Combined two-sided bounds on Pr(∪ C_i). Lower also incorporates the
/// Bonferroni lower bound S1 - S2 and max_i Pr(C_i); upper also
/// incorporates Boole's bound min(S1, 1). Always lower <= upper.
struct UnionBounds {
  double lower = 0.0;
  double upper = 1.0;
};
UnionBounds ComputeUnionBounds(const PairwiseProbabilities& pairs);

}  // namespace pfci

#endif  // PFCI_PROB_UNION_BOUNDS_H_
