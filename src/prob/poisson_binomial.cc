#include "src/prob/poisson_binomial.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

std::vector<double> PoissonBinomialPmf(const std::vector<double>& probs) {
  std::vector<double> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t upper = 0;  // Highest index with possibly non-zero mass.
  for (double p : probs) {
    PFCI_DCHECK(p >= 0.0 && p <= 1.0);
    ++upper;
    for (std::size_t s = upper; s > 0; --s) {
      pmf[s] = pmf[s] * (1.0 - p) + pmf[s - 1] * p;
    }
    pmf[0] *= (1.0 - p);
  }
  return pmf;
}

double PoissonBinomialTailAtLeast(const std::vector<double>& probs,
                                  std::size_t threshold) {
  std::vector<double> dp;
  return PoissonBinomialTailAtLeast(probs.data(), probs.size(), threshold,
                                    &dp);
}

double PoissonBinomialTailAtLeast(const double* probs, std::size_t n,
                                  std::size_t threshold,
                                  std::vector<double>* dp_scratch) {
  if (threshold == 0) return 1.0;
  if (threshold > n) return 0.0;

  // dp[s] = Pr{partial sum == s} for s < threshold; `reached` absorbs all
  // probability mass that has attained the threshold.
  dp_scratch->assign(threshold, 0.0);
  double* dp = dp_scratch->data();
  dp[0] = 1.0;
  double reached = 0.0;
  std::size_t upper = 0;  // Highest state index that can currently be live.
  for (std::size_t i = 0; i < n; ++i) {
    const double p = probs[i];
    PFCI_DCHECK(p >= 0.0 && p <= 1.0);
    // dp[threshold-1] is zero until that state becomes reachable, so the
    // absorption step is always safe.
    reached += dp[threshold - 1] * p;
    const std::size_t top = std::min(upper + 1, threshold - 1);
    for (std::size_t s = top; s > 0; --s) {
      dp[s] = dp[s] * (1.0 - p) + dp[s - 1] * p;
    }
    dp[0] *= (1.0 - p);
    upper = top;
  }
  return reached;
}

void PoissonBinomialTailTable(const double* probs, std::size_t n,
                              std::size_t threshold,
                              std::vector<double>* dp_scratch,
                              std::vector<double>* table) {
  table->assign(threshold + 1, 0.0);
  (*table)[0] = 1.0;  // threshold 0 is certain, as in the direct form.
  if (threshold == 0) return;
  // Thresholds above n keep their exact-zero initialization (the direct
  // form returns 0.0 before touching the DP), so the shared DP row only
  // needs states 0..cap-1.
  const std::size_t cap = std::min(threshold, n);
  if (cap == 0) return;
  dp_scratch->assign(cap, 0.0);
  double* dp = dp_scratch->data();
  double* tail = table->data();
  dp[0] = 1.0;
  std::size_t upper = 0;  // Highest state index that can currently be live.
  for (std::size_t i = 0; i < n; ++i) {
    const double p = probs[i];
    PFCI_DCHECK(p >= 0.0 && p <= 1.0);
    // One absorption per threshold, before the state update — the same
    // point in the item loop where a direct run at threshold t executes
    // `reached += dp[t - 1] * p` (including its additions of exact zeros
    // while state t-1 is still unreachable).
    for (std::size_t t = 1; t <= cap; ++t) tail[t] += dp[t - 1] * p;
    const std::size_t top = std::min(upper + 1, cap - 1);
    for (std::size_t s = top; s > 0; --s) {
      dp[s] = dp[s] * (1.0 - p) + dp[s - 1] * p;
    }
    dp[0] *= (1.0 - p);
    upper = top;
  }
}

std::vector<double> PoissonBinomialTailTable(const std::vector<double>& probs,
                                             std::size_t threshold) {
  std::vector<double> dp;
  std::vector<double> table;
  PoissonBinomialTailTable(probs.data(), probs.size(), threshold, &dp, &table);
  return table;
}

double PoissonBinomialMean(const std::vector<double>& probs) {
  double mean = 0.0;
  for (double p : probs) mean += p;
  return mean;
}

double PoissonBinomialVariance(const std::vector<double>& probs) {
  double var = 0.0;
  for (double p : probs) var += p * (1.0 - p);
  return var;
}

}  // namespace pfci
