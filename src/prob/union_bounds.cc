#include "src/prob/union_bounds.h"

#include <algorithm>

#include "src/util/check.h"

namespace pfci {

double PairwiseProbabilities::SumSingles() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < m_; ++i) sum += Get(i, i);
  return sum;
}

double PairwiseProbabilities::SumPairs() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = i + 1; j < m_; ++j) sum += Get(i, j);
  }
  return sum;
}

double DeCaenLowerBound(const PairwiseProbabilities& pairs) {
  const std::size_t m = pairs.size();
  double bound = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double p_i = pairs.Get(i, i);
    if (p_i <= 0.0) continue;
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) row += pairs.Get(i, j);
    PFCI_DCHECK(row >= p_i);
    bound += p_i * p_i / row;
  }
  return std::clamp(bound, 0.0, 1.0);
}

double KwerelUpperBound(const PairwiseProbabilities& pairs) {
  const std::size_t m = pairs.size();
  if (m == 0) return 0.0;
  const double s1 = pairs.SumSingles();
  const double s2 = pairs.SumPairs();
  const double bound = s1 - 2.0 * s2 / static_cast<double>(m);
  return std::clamp(bound, 0.0, 1.0);
}

UnionBounds ComputeUnionBounds(const PairwiseProbabilities& pairs) {
  UnionBounds bounds;
  const std::size_t m = pairs.size();
  if (m == 0) {
    bounds.lower = 0.0;
    bounds.upper = 0.0;
    return bounds;
  }
  const double s1 = pairs.SumSingles();
  const double s2 = pairs.SumPairs();
  double max_single = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    max_single = std::max(max_single, pairs.Get(i, i));
  }
  // Lower bounds: de Caen, Bonferroni degree-2, and the largest event.
  bounds.lower = std::max({DeCaenLowerBound(pairs),
                           std::clamp(s1 - s2, 0.0, 1.0), max_single});
  // Upper bounds: Kwerel and Boole.
  bounds.upper = std::min({KwerelUpperBound(pairs),
                           std::clamp(s1, 0.0, 1.0), 1.0});
  // Numerical safety: the analytic bounds can cross by rounding error only.
  if (bounds.upper < bounds.lower) {
    const double mid = 0.5 * (bounds.upper + bounds.lower);
    bounds.lower = bounds.upper = mid;
  }
  return bounds;
}

}  // namespace pfci
