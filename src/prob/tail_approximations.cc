#include "src/prob/tail_approximations.h"

#include <algorithm>
#include <cmath>

#include "src/prob/poisson_binomial.h"
#include "src/util/check.h"

namespace pfci {

double StdNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

/// Standard normal pdf.
double StdNormalPdf(double z) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

struct Moments {
  double mu = 0.0;
  double var = 0.0;
  double third = 0.0;  ///< Third central moment.
};

Moments ComputeMoments(const std::vector<double>& probs) {
  Moments m;
  for (double p : probs) {
    PFCI_DCHECK(p >= 0.0 && p <= 1.0);
    m.mu += p;
    const double q = 1.0 - p;
    m.var += p * q;
    // E[(X - p)^3] for a Bernoulli = p q (1 - 2p); independent summands
    // add their third central moments.
    m.third += p * q * (1.0 - 2.0 * p);
  }
  return m;
}

}  // namespace

double NormalTailAtLeast(const std::vector<double>& probs,
                         std::size_t threshold) {
  if (threshold == 0) return 1.0;
  if (threshold > probs.size()) return 0.0;
  const Moments m = ComputeMoments(probs);
  if (m.var <= 0.0) {
    // Degenerate (all p in {0,1}): the sum is deterministic at mu.
    return m.mu >= static_cast<double>(threshold) ? 1.0 : 0.0;
  }
  const double sigma = std::sqrt(m.var);
  const double z = (static_cast<double>(threshold) - 0.5 - m.mu) / sigma;
  return std::clamp(1.0 - StdNormalCdf(z), 0.0, 1.0);
}

double RefinedNormalTailAtLeast(const std::vector<double>& probs,
                                std::size_t threshold) {
  if (threshold == 0) return 1.0;
  if (threshold > probs.size()) return 0.0;
  const Moments m = ComputeMoments(probs);
  if (m.var <= 0.0) {
    return m.mu >= static_cast<double>(threshold) ? 1.0 : 0.0;
  }
  const double sigma = std::sqrt(m.var);
  const double gamma = m.third / (m.var * sigma);  // Skewness.
  const double z = (static_cast<double>(threshold) - 0.5 - m.mu) / sigma;
  // First-order Edgeworth expansion:
  //   Pr{S <= s} ~ Phi(z) + gamma (1 - z^2) phi(z) / 6.
  const double cdf =
      StdNormalCdf(z) + gamma * (1.0 - z * z) * StdNormalPdf(z) / 6.0;
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

double PoissonTailAtLeast(const std::vector<double>& probs,
                          std::size_t threshold) {
  if (threshold == 0) return 1.0;
  const double mu = PoissonBinomialMean(probs);
  if (mu <= 0.0) return 0.0;
  // Pr{Poisson(mu) >= t} = 1 - sum_{k < t} e^-mu mu^k / k!, evaluated
  // with a running term to avoid overflow.
  double term = std::exp(-mu);  // k = 0.
  double cdf = term;
  for (std::size_t k = 1; k < threshold; ++k) {
    term *= mu / static_cast<double>(k);
    cdf += term;
  }
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

const char* FrequencyModeName(FrequencyMode mode) {
  switch (mode) {
    case FrequencyMode::kExactDp:
      return "exact-dp";
    case FrequencyMode::kNormal:
      return "normal";
    case FrequencyMode::kRefinedNormal:
      return "refined-normal";
    case FrequencyMode::kPoisson:
      return "poisson";
  }
  return "unknown";
}

double TailAtLeastWithMode(const std::vector<double>& probs,
                           std::size_t threshold, FrequencyMode mode) {
  switch (mode) {
    case FrequencyMode::kExactDp:
      return PoissonBinomialTailAtLeast(probs, threshold);
    case FrequencyMode::kNormal:
      return NormalTailAtLeast(probs, threshold);
    case FrequencyMode::kRefinedNormal:
      return RefinedNormalTailAtLeast(probs, threshold);
    case FrequencyMode::kPoisson:
      return PoissonTailAtLeast(probs, threshold);
  }
  return 0.0;
}

}  // namespace pfci
