// Sampling a Bernoulli vector conditioned on its sum reaching a threshold.
//
// The paper's ApproxFCP sampler (Sec. IV.B.4) must draw a possible world
// that satisfies an event C_i, i.e. the transactions of Tids(X + e_i) must
// be present at least min_sup times. That is exactly sampling independent
// Bernoulli indicators conditioned on {sum >= min_sup}, which this class
// performs exactly via a backward tail table and a forward sequential scan.
#ifndef PFCI_PROB_CONDITIONAL_SAMPLER_H_
#define PFCI_PROB_CONDITIONAL_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace pfci {

/// Exact sampler for (X_1..X_n) ~ independent Bernoulli(p_i) conditioned on
/// sum X_i >= min_sum.
///
/// Construction costs O(n * min_sum) time and space; each Sample() costs
/// O(n) time. The distribution is exact (no rejection).
class ConditionalBernoulliSampler {
 public:
  /// Builds the tail table. `min_sum` may be 0 (unconditional sampling).
  ConditionalBernoulliSampler(std::vector<double> probs, std::size_t min_sum);

  /// Pr{sum >= min_sum} under the unconditioned product measure. If this is
  /// 0 the condition is unsatisfiable and Sample() must not be called.
  double condition_probability() const { return condition_probability_; }

  /// Whether the conditioning event has positive probability.
  bool Feasible() const { return condition_probability_ > 0.0; }

  /// Draws one vector into `out` (resized to n; out[i] in {0,1}).
  void Sample(Rng& rng, std::vector<std::uint8_t>* out) const;

  std::size_t size() const { return probs_.size(); }

 private:
  // tail_[i * stride_ + d] = Pr{ sum of X_i..X_{n-1} >= d }, d <= min_sum.
  double Tail(std::size_t i, std::size_t d) const {
    return tail_[i * stride_ + d];
  }

  std::vector<double> probs_;
  std::size_t min_sum_;
  std::size_t stride_;
  std::vector<double> tail_;
  double condition_probability_;
};

}  // namespace pfci

#endif  // PFCI_PROB_CONDITIONAL_SAMPLER_H_
