// Fast approximations of the Poisson-binomial upper tail.
//
// The paper's related work ([3], Wang et al.) accelerates probabilistic
// frequent itemset mining by replacing the exact O(n * min_sup) dynamic
// program with distributional approximations. This module provides the
// two classical ones — the central-limit (normal) approximation with
// continuity correction and skew refinement, and Le Cam's Poisson
// approximation — plus a combined heuristic that picks by regime. They
// power the approximate PFI mining mode and the frequency-mode ablation
// bench.
#ifndef PFCI_PROB_TAIL_APPROXIMATIONS_H_
#define PFCI_PROB_TAIL_APPROXIMATIONS_H_

#include <cstddef>
#include <vector>

namespace pfci {

/// Standard normal CDF.
double StdNormalCdf(double z);

/// Normal approximation of Pr{S >= threshold} with continuity correction:
/// 1 - Phi((threshold - 0.5 - mu) / sigma). Exact moments of the
/// Poisson-binomial are used.
double NormalTailAtLeast(const std::vector<double>& probs,
                         std::size_t threshold);

/// Second-order (Cornish-Fisher / Edgeworth) refinement of the normal
/// approximation using the third central moment (skewness correction).
double RefinedNormalTailAtLeast(const std::vector<double>& probs,
                                std::size_t threshold);

/// Le Cam's Poisson approximation: S ~ Poisson(mu), with total-variation
/// error at most 2 * sum p_i^2. Suited to the sparse/small-p regime.
double PoissonTailAtLeast(const std::vector<double>& probs,
                          std::size_t threshold);

/// How a frequency evaluator should compute Poisson-binomial tails.
enum class FrequencyMode {
  kExactDp,        ///< The exact dynamic program (default everywhere).
  kNormal,         ///< Continuity-corrected normal approximation.
  kRefinedNormal,  ///< Normal + skewness correction.
  kPoisson,        ///< Le Cam Poisson approximation.
};

const char* FrequencyModeName(FrequencyMode mode);

/// Dispatches to the requested approximation (or the exact DP).
double TailAtLeastWithMode(const std::vector<double>& probs,
                           std::size_t threshold, FrequencyMode mode);

}  // namespace pfci

#endif  // PFCI_PROB_TAIL_APPROXIMATIONS_H_
