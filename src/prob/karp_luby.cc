#include "src/prob/karp_luby.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pfci {

std::uint64_t KarpLubyRequiredSamples(std::size_t k, double epsilon,
                                      double delta) {
  PFCI_CHECK(epsilon > 0.0);
  PFCI_CHECK(delta > 0.0 && delta < 1.0);
  if (k == 0) return 0;
  const double n = 4.0 * static_cast<double>(k) * std::log(2.0 / delta) /
                   (epsilon * epsilon);
  return static_cast<std::uint64_t>(std::ceil(n));
}

KarpLubyResult KarpLubyUnionEstimate(
    const std::vector<double>& event_probs, std::uint64_t num_samples,
    Rng& rng,
    const std::function<bool(std::size_t, Rng&)>& sample_is_canonical) {
  KarpLubyResult result;

  // Prefix sums over the positive-probability events for index sampling.
  std::vector<double> cumulative;
  std::vector<std::size_t> index_of;
  cumulative.reserve(event_probs.size());
  index_of.reserve(event_probs.size());
  double z = 0.0;
  for (std::size_t i = 0; i < event_probs.size(); ++i) {
    PFCI_CHECK(event_probs[i] >= 0.0);
    if (event_probs[i] > 0.0) {
      z += event_probs[i];
      cumulative.push_back(z);
      index_of.push_back(i);
    }
  }
  if (z == 0.0 || num_samples == 0) return result;  // Union is empty.

  for (std::uint64_t s = 0; s < num_samples; ++s) {
    const double target = rng.NextDouble() * z;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), target);
    const std::size_t slot =
        std::min<std::size_t>(it - cumulative.begin(), cumulative.size() - 1);
    const std::size_t event = index_of[slot];
    if (sample_is_canonical(event, rng)) ++result.successes;
  }
  result.samples = num_samples;
  result.estimate = z * static_cast<double>(result.successes) /
                    static_cast<double>(num_samples);
  return result;
}

}  // namespace pfci
