// Chernoff / Hoeffding tail bounds for Poisson-binomial sums.
//
// These power the paper's Lemma 4.1 (Chernoff-Hoeffding bound-based
// pruning): an itemset is provably probabilistically infrequent when an
// upper bound on Pr{support >= min_sup} already falls at or below pfct,
// without running the exact O(n * min_sup) dynamic program.
#ifndef PFCI_PROB_TAIL_BOUNDS_H_
#define PFCI_PROB_TAIL_BOUNDS_H_

#include <cstddef>

namespace pfci {

/// Hoeffding's additive bound: Pr{S >= s} <= exp(-2 (s - mu)^2 / n)
/// for s > mu; returns 1 otherwise. `n` is the number of Bernoulli terms.
double HoeffdingUpperTail(double mu, std::size_t n, double s);

/// Multiplicative Chernoff bound: with d = (s - mu)/mu,
/// Pr{S >= s} <= exp(-d^2 mu / (2 + d)) for s > mu; returns 1 otherwise.
double ChernoffUpperTail(double mu, double s);

/// Chernoff bound in Kullback-Leibler form (Hoeffding 1963, Thm 1):
/// Pr{S >= s} <= exp(-n KL(s/n || mu/n)) for s > mu; returns 1 otherwise.
/// This is the tightest of the three classical bounds.
double KlChernoffUpperTail(double mu, std::size_t n, double s);

/// Best available upper bound on Pr{S >= s}: the minimum of the three
/// bounds above, clamped to [0, 1].
double BestUpperTailBound(double mu, std::size_t n, double s);

/// Upper bound on the lower tail Pr{S <= s} via multiplicative Chernoff:
/// Pr{S <= (1-d) mu} <= exp(-d^2 mu / 2) for s < mu; returns 1 otherwise.
double ChernoffLowerTail(double mu, double s);

}  // namespace pfci

#endif  // PFCI_PROB_TAIL_BOUNDS_H_
