// Umbrella header for the pfci library.
//
// pfci reproduces "Discovering Threshold-based Frequent Closed Itemsets
// over Probabilistic Data" (Tong, Chen, Ding — ICDE 2012). A transaction
// database under the tuple-uncertainty model encodes 2^n possible worlds;
// the library mines the itemsets whose probability of being a *frequent
// closed* itemset across those worlds exceeds a threshold, a #P-hard
// quantity tamed by pruning, analytic bounds and an FPRAS sampler.
//
// Typical usage:
//
//   #include "src/pfci.h"
//
//   pfci::UncertainDatabase db;
//   db.Add(pfci::Itemset{0, 1, 2}, 0.9);   // tuple exists w.p. 0.9
//   ...
//   pfci::MiningRequest request;
//   request.params.min_sup = 2;
//   request.params.pfct = 0.8;
//   request.execution.num_threads = 4;   // 0 = library default
//   pfci::MiningResult result = pfci::Mine(db, request);
//
// Entry points by task:
//  * Mining:     Mine (unified dispatch over Algorithm + ExecutionPolicy,
//                recommended); the per-algorithm free functions MineMpfci,
//                MineMpfciBfs, MineNaive, MineTopKPfci, MinePfi /
//                MinePfiApproximate, MineExpectedSupport, MinePsupClosed
//                remain as thin wrappers.
//  * Serving:    MiningSession (repeated requests over one database:
//                shared index, cross-request evaluation caches, threshold
//                sweeps via MineSweep; DESIGN.md §11).
//  * Per-itemset probabilities: FcpEngine, FrequentProbability,
//                ExactClosedProbability / ApproxClosedProbability.
//  * Oracles:    BruteForceItemsetProbabilities, BruteForceMinePfci
//                (possible-world enumeration, small inputs).
//  * Exact data: FpGrowth, MineClosedItemsets, CharmMineClosedItemsets,
//                AprioriMine.
//  * Data:       GenerateQuest, GenerateMushroomLike,
//                AssignGaussianProbabilities, Load/SaveUncertainDatabase.
//  * Fail-soft:  CancelToken + MiningRequest::budget (RunBudget) bound a
//                run by deadline, node/sample count, or resident bytes;
//                MiningResult::outcome() reports how the run ended and a
//                non-complete run still returns a verified partial.
#ifndef PFCI_PFCI_H_
#define PFCI_PFCI_H_

#include "src/core/bfs_miner.h"
#include "src/core/brute_force.h"
#include "src/core/closed_probability.h"
#include "src/core/eval_cache.h"
#include "src/core/expected_support_miner.h"
#include "src/core/fcp_engine.h"
#include "src/core/item_uncertain_miners.h"
#include "src/core/mdnf_reduction.h"
#include "src/core/mine.h"
#include "src/core/mining_params.h"
#include "src/core/mining_result.h"
#include "src/core/mpfci_miner.h"
#include "src/core/naive_miner.h"
#include "src/core/pfi_miner.h"
#include "src/core/probabilistic_support.h"
#include "src/core/stream_miner.h"
#include "src/core/topk_miner.h"
#include "src/data/database_io.h"
#include "src/data/database_stats.h"
#include "src/data/item_uncertain_database.h"
#include "src/data/itemset.h"
#include "src/data/possible_world.h"
#include "src/data/tidset.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"
#include "src/data/world_enumerator.h"
#include "src/datagen/mushroom_generator.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/exact/apriori.h"
#include "src/exact/charm_miner.h"
#include "src/exact/closed_miner.h"
#include "src/exact/fp_growth.h"
#include "src/exact/transaction_database.h"
#include "src/serve/mining_session.h"
#include "src/util/failpoint.h"
#include "src/util/runtime.h"

#endif  // PFCI_PFCI_H_
