// Differential fuzz driver: generate seeded databases, run the oracle's
// invariant catalog over every algorithm, shrink failures, and save
// replayable repros.
//
//   $ ./pfci_fuzz [--iters=N] [--seed=S] [--brute-max=N]
//                 [--naive-every=N] [--out=DIR]
//
//   --iters=N        seeds to sweep (default 500)
//   --seed=S         first seed (default 0; a failing seed IS the repro)
//   --brute-max=N    max transactions for possible-world ground truth
//                    (default 10; 2^N worlds per check)
//   --naive-every=N  run the sampled Naive cross-check on every Nth seed
//                    (default 7; 1 = always, 0 = never)
//   --out=DIR        write shrunk repros as DIR/<name>.utd + .request
//                    (default: print them, write nothing)
//
// Exits 0 when every seed survives the catalog, 1 when any finding
// survives shrinking, 2 on usage errors. See CONTRIBUTING.md for the
// workflow: long runs in CI soak, shrunk repros committed under
// tests/repros/ where the differential_fuzz_test replays them forever.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/oracle/fuzz_db.h"
#include "src/harness/oracle/invariants.h"
#include "src/harness/oracle/reducer.h"
#include "src/harness/oracle/repro.h"
#include "src/util/string_util.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// File-name-safe version of a check id ("cross/brute" -> "cross-brute").
std::string SanitizeCheck(const std::string& check) {
  std::string out = check;
  for (char& c : out) {
    if (c == '/' || c == ' ') c = '-';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfci;

  std::size_t iters = 500;
  std::uint64_t first_seed = 0;
  std::size_t brute_max = 10;
  std::size_t naive_every = 7;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    unsigned int parsed = 0;
    if (ParseFlag(argv[i], "--iters", &value) &&
        ParseUint32(value, &parsed) && parsed > 0) {
      iters = parsed;
    } else if (ParseFlag(argv[i], "--seed", &value) &&
               ParseUint32(value, &parsed)) {
      first_seed = parsed;
    } else if (ParseFlag(argv[i], "--brute-max", &value) &&
               ParseUint32(value, &parsed)) {
      brute_max = parsed;
    } else if (ParseFlag(argv[i], "--naive-every", &value) &&
               ParseUint32(value, &parsed)) {
      naive_every = parsed;
    } else if (ParseFlag(argv[i], "--out", &value) && !value.empty()) {
      out_dir = value;
    } else {
      std::fprintf(stderr,
                   "unknown or malformed argument '%s'\n"
                   "usage: %s [--iters=N] [--seed=S] [--brute-max=N] "
                   "[--naive-every=N] [--out=DIR]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  std::size_t failures = 0;
  for (std::uint64_t seed = first_seed; seed < first_seed + iters; ++seed) {
    const FuzzCase fuzz = MakeFuzzCase(seed);
    OracleOptions options;
    options.brute_max_transactions = brute_max;
    options.naive_epsilon = 0.1;
    options.naive_delta = 0.05;
    options.check_naive = naive_every == 1 ||
                          (naive_every > 0 && (seed % naive_every) == 0);
    const std::vector<OracleFinding> findings =
        CheckDatabase(fuzz.db, fuzz.params, options);
    if (findings.empty()) {
      if ((seed - first_seed + 1) % 100 == 0) {
        std::printf("... %llu seeds clean\n",
                    static_cast<unsigned long long>(seed - first_seed + 1));
      }
      continue;
    }
    ++failures;
    std::printf("seed %llu (shape %s, %zu transactions): %zu finding(s)\n",
                static_cast<unsigned long long>(seed), fuzz.shape.c_str(),
                fuzz.db.size(), findings.size());
    std::printf("%s", FindingsToString(findings).c_str());

    const ReducedCase reduced = ShrinkCase(
        fuzz.db, fuzz.params,
        [&](const UncertainDatabase& db, const MiningParams& params) {
          return CheckDatabase(db, params, options);
        });
    const bool shrunk = !reduced.findings.empty();
    const std::vector<OracleFinding>& final_findings =
        shrunk ? reduced.findings : findings;
    Repro repro;
    repro.db = shrunk ? reduced.db : fuzz.db;
    repro.request = final_findings.front().request;
    repro.check = final_findings.front().check;
    std::printf("shrunk to %zu transaction(s) in %zu oracle calls\n",
                repro.db.size(), reduced.oracle_calls);

    if (out_dir.empty()) {
      std::printf("--- %s.utd ---\n", SanitizeCheck(repro.check).c_str());
      for (const UncertainTransaction& t : repro.db.transactions()) {
        std::printf("%s", FormatDoubleRoundTrip(t.prob).c_str());
        for (Item item : t.items.items()) std::printf(" %u", item);
        std::printf("\n");
      }
      std::printf("--- .request ---\n%s",
                  FormatReproRequest(repro).c_str());
    } else {
      const std::string name = "seed" + std::to_string(seed) + "-" +
                               SanitizeCheck(repro.check);
      std::string error;
      if (!SaveRepro(out_dir, name, repro, &error)) {
        std::fprintf(stderr, "cannot save repro: %s\n", error.c_str());
        return 2;
      }
      std::printf("saved %s/%s.utd (+ .request)\n", out_dir.c_str(),
                  name.c_str());
    }
  }

  std::printf("%zu/%zu seeds failed the invariant catalog\n", failures,
              iters);
  return failures == 0 ? 0 : 1;
}
