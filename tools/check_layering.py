#!/usr/bin/env python3
"""Enforce the layer dependency order of src/ from the #include graph.

The library is layered (DESIGN.md §12): each directory may include
headers only from its own layer or layers below it.

    util < prob < data < exact < datagen < core < {serve, harness}

`src/core/search/` is part of `core` but is additionally the *kernel*
underneath the miner entry points: it must not include the miner facade
headers (mpfci_miner.h, mine.h, ...) or anything from serve/, or the
"miners are thin compositions over the kernel" inversion would silently
rot back into a cycle.

`src/harness/oracle/` is the differential-testing leaf: library code
must never include it (only tests/ and tools/ consume it).

Usage: check_layering.py [repo_root]

Exits 0 when the graph is clean, 1 with one line per violation otherwise.
No dependencies beyond the Python standard library.
"""

import os
import re
import sys

# Directory -> rank. A file in layer L may include src/<d>/... only when
# rank(d) <= rank(L). serve and harness share the top rank: neither may
# include the other (enforced separately below since equal ranks would
# otherwise allow it).
LAYER_RANK = {
    "util": 0,
    "prob": 1,
    "data": 2,
    "exact": 3,
    "datagen": 4,
    "core": 5,
    "serve": 6,
    "harness": 6,
}

# The top rank is shared by independent leaf layers; they must not
# include each other.
PEER_LAYERS = {"serve", "harness"}

# src/harness/oracle/ is the differential-testing leaf of the harness
# layer: it may depend on everything below it, but no library code
# outside it may depend back on the oracle. Only tests/ and tools/
# (outside src/, not layer-checked) consume it — a production miner or
# bench harness that reaches into its own test oracle would make the
# oracle circular with what it checks.
ORACLE_PREFIX = "src/harness/oracle/"

# Miner facade headers that sit *above* the search kernel. The kernel
# (src/core/search/) composes upward into these, never the reverse.
FACADE_HEADERS = {
    "src/core/mine.h",
    "src/core/mpfci_miner.h",
    "src/core/bfs_miner.h",
    "src/core/naive_miner.h",
    "src/core/topk_miner.h",
    "src/core/pfi_miner.h",
    "src/core/stream_miner.h",
    "src/core/brute_force.h",
    "src/core/expected_support_miner.h",
    "src/core/item_uncertain_miners.h",
}

# The serving layer's batch/async building blocks (the planner that
# groups requests and the handle that carries an async result) compose
# over the unified request vocabulary (src/core/mine.h) and the search
# kernel's planning helpers only. Reaching into a per-algorithm miner
# facade from these files would re-couple scheduling policy to
# individual miners — dispatch stays behind Mine()/MineStep, never in
# the planner.
SERVE_BATCH_PREFIXES = ("src/serve/batch_planner", "src/serve/run_handle")
SERVE_BATCH_ALLOWED_FACADE = {"src/core/mine.h"}

# The retry helper is the single audited backoff implementation: every
# sleep in the library goes through RetryWithBackoff's injectable
# sleep_fn (src/util/retry.h). A raw sleep anywhere else — most
# tempting in serve/ admission or snapshot code — would bypass the
# deterministic, testable schedule, so the serve -> util/retry edge is
# enforced here at the primitive level.
SLEEP_RE = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\(")
SLEEP_ALLOWED = {"src/util/retry.cc"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(src/[^"]+)"')
SOURCE_EXTS = (".h", ".cc", ".cpp")


UMBRELLA = "<umbrella>"  # files directly under src/ (the pfci.h facade)


def layer_of(rel_path):
    """Top-level src/ directory of a repo-relative path, or None."""
    parts = rel_path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    if len(parts) == 2 and parts[0] == "src":
        return UMBRELLA
    return None


def iter_sources(src_root):
    for dirpath, _, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, name)


def check(repo_root):
    src_root = os.path.join(repo_root, "src")
    if not os.path.isdir(src_root):
        print(f"check_layering: no src/ under {repo_root}", file=sys.stderr)
        return 2

    violations = []
    files = 0
    for path in iter_sources(src_root):
        files += 1
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        from_layer = layer_of(rel)
        if from_layer == UMBRELLA:
            continue  # the facade header may include every layer
        if from_layer not in LAYER_RANK:
            violations.append(f"{rel}: unknown layer directory "
                              f"'{from_layer}' (add it to LAYER_RANK)")
            continue
        in_kernel = rel.startswith("src/core/search/")
        in_serve_batch = rel.startswith(SERVE_BATCH_PREFIXES)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if SLEEP_RE.search(line) and rel not in SLEEP_ALLOWED:
                    violations.append(
                        f"{rel}:{lineno}: raw sleep primitive outside "
                        f"src/util/retry.cc (route backoff through "
                        f"RetryWithBackoff so the schedule stays "
                        f"deterministic and testable)")
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                inc = m.group(1)
                to_layer = layer_of(inc)
                if to_layer not in LAYER_RANK:
                    violations.append(
                        f"{rel}:{lineno}: includes '{inc}' from unknown "
                        f"layer '{to_layer}'")
                    continue
                if LAYER_RANK[to_layer] > LAYER_RANK[from_layer]:
                    violations.append(
                        f"{rel}:{lineno}: layer '{from_layer}' "
                        f"(rank {LAYER_RANK[from_layer]}) includes '{inc}' "
                        f"from higher layer '{to_layer}' "
                        f"(rank {LAYER_RANK[to_layer]})")
                elif (from_layer != to_layer
                      and from_layer in PEER_LAYERS
                      and to_layer in PEER_LAYERS):
                    violations.append(
                        f"{rel}:{lineno}: peer leaf layers must stay "
                        f"independent: '{from_layer}' includes '{inc}'")
                if (inc.startswith(ORACLE_PREFIX)
                        and not rel.startswith(ORACLE_PREFIX)):
                    violations.append(
                        f"{rel}:{lineno}: library code includes the "
                        f"differential-oracle leaf '{inc}' (only tests/ "
                        f"and tools/ may depend on src/harness/oracle)")
                if in_kernel:
                    if inc in FACADE_HEADERS:
                        violations.append(
                            f"{rel}:{lineno}: search kernel includes miner "
                            f"facade header '{inc}' (the facade composes "
                            f"over the kernel, not the reverse)")
                    elif inc.startswith("src/serve/"):
                        violations.append(
                            f"{rel}:{lineno}: search kernel includes "
                            f"serving-layer header '{inc}'")
                if (in_serve_batch
                        and inc in FACADE_HEADERS
                        and inc not in SERVE_BATCH_ALLOWED_FACADE):
                    violations.append(
                        f"{rel}:{lineno}: serve batch/handle file includes "
                        f"per-algorithm miner facade '{inc}' (the planner "
                        f"and handle see only src/core/mine.h and the "
                        f"search kernel; miner dispatch stays behind "
                        f"Mine())")

    for v in violations:
        print(v)
    if violations:
        print(f"check_layering: {len(violations)} violation(s) "
              f"across {files} files")
        return 1
    print(f"check_layering: OK ({files} files, layers "
          + " < ".join(sorted(LAYER_RANK, key=LAYER_RANK.get)) + ")")
    return 0


if __name__ == "__main__":
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    sys.exit(check(root))
