// Dataset inspection tool: prints Table VIII-style characteristics of a
// `.utd` (uncertain) or `.dat` (exact) transaction file, plus the item
// frequency profile.
//
//   $ pfci_stats DATA.utd [--top=10]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/data/database_io.h"
#include "src/data/database_stats.h"
#include "src/data/vertical_index.h"
#include "src/util/string_util.h"

int main(int argc, char** argv) {
  using namespace pfci;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s DATA.{utd|dat} [--top=N]\n", argv[0]);
    return 1;
  }
  const std::string path = argv[1];
  unsigned int top = 10;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--top=", 6) == 0) {
      if (!ParseUint32(argv[i] + 6, &top)) {
        std::fprintf(stderr, "bad --top value\n");
        return 1;
      }
    }
  }

  UncertainDatabase db;
  std::string error;
  const bool is_exact = path.size() >= 4 &&
                        path.compare(path.size() - 4, 4, ".dat") == 0;
  if (is_exact) {
    std::vector<Itemset> transactions;
    if (!LoadExactTransactions(path, &transactions, &error)) {
      std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    for (Itemset& t : transactions) db.Add(std::move(t), 1.0);
  } else if (!LoadUncertainDatabase(path, &db, &error)) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }

  std::printf("%s\n", ComputeStats(db).ToString().c_str());

  const VerticalIndex index(db);
  struct ItemProfile {
    Item item;
    std::size_t count;
    double expected_support;
  };
  std::vector<ItemProfile> profile;
  for (Item item : index.occurring_items()) {
    const TidSet& tids = index.TidsOfItem(item);
    const double esup = index.SumProbsOf(tids);
    profile.push_back(ItemProfile{item, tids.size(), esup});
  }
  std::sort(profile.begin(), profile.end(),
            [](const ItemProfile& a, const ItemProfile& b) {
              return a.count > b.count;
            });
  std::printf("\ntop-%u items by count (item, count, expected support):\n",
              top);
  for (std::size_t i = 0; i < profile.size() && i < top; ++i) {
    std::printf("  %6u  %8zu  %10.2f\n", profile[i].item, profile[i].count,
                profile[i].expected_support);
  }
  return 0;
}
