// Dataset generation tool: writes Quest-style or Mushroom-like synthetic
// data as exact baskets (.dat) or as an uncertain database (.utd) with
// Gaussian tuple probabilities.
//
//   $ pfci_datagen quest OUT.utd --transactions=30000 --avg-len=20 \
//         --pattern-len=10 --items=40 --mean=0.8 --spread=0.1 --seed=42
//   $ pfci_datagen mushroom OUT.dat --exact --transactions=8124
#include <cstdio>
#include <cstring>
#include <string>

#include "src/data/database_io.h"
#include "src/data/database_stats.h"
#include "src/datagen/mushroom_generator.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/util/string_util.h"

namespace {

struct Options {
  std::string kind;
  std::string path;
  bool exact = false;
  std::size_t transactions = 0;  // 0 = generator default.
  double avg_len = 0.0;
  double pattern_len = 0.0;
  std::size_t items = 0;
  std::size_t attributes = 0;
  std::size_t species = 0;
  double mean = 0.5;
  double spread = 0.25;
  std::uint64_t seed = 42;
};

bool ParseValueFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage(const char* binary) {
  std::fprintf(
      stderr,
      "usage: %s quest|mushroom OUT.{utd|dat} [--exact]\n"
      "  common:   --transactions=N --seed=S --mean=M --spread=V\n"
      "  quest:    --avg-len=T --pattern-len=I --items=N\n"
      "  mushroom: --attributes=A --values=K --species=C\n",
      binary);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfci;
  if (argc < 3) return Usage(argv[0]);
  Options opt;
  opt.kind = argv[1];
  opt.path = argv[2];
  std::size_t values_per_attribute = 0;
  for (int i = 3; i < argc; ++i) {
    std::string value;
    unsigned int u = 0;
    if (std::strcmp(argv[i], "--exact") == 0) {
      opt.exact = true;
    } else if (ParseValueFlag(argv[i], "--transactions", &value) &&
               ParseUint32(value, &u)) {
      opt.transactions = u;
    } else if (ParseValueFlag(argv[i], "--avg-len", &value)) {
      ParseDouble(value, &opt.avg_len);
    } else if (ParseValueFlag(argv[i], "--pattern-len", &value)) {
      ParseDouble(value, &opt.pattern_len);
    } else if (ParseValueFlag(argv[i], "--items", &value) &&
               ParseUint32(value, &u)) {
      opt.items = u;
    } else if (ParseValueFlag(argv[i], "--attributes", &value) &&
               ParseUint32(value, &u)) {
      opt.attributes = u;
    } else if (ParseValueFlag(argv[i], "--values", &value) &&
               ParseUint32(value, &u)) {
      values_per_attribute = u;
    } else if (ParseValueFlag(argv[i], "--species", &value) &&
               ParseUint32(value, &u)) {
      opt.species = u;
    } else if (ParseValueFlag(argv[i], "--mean", &value)) {
      ParseDouble(value, &opt.mean);
    } else if (ParseValueFlag(argv[i], "--spread", &value)) {
      ParseDouble(value, &opt.spread);
    } else if (ParseValueFlag(argv[i], "--seed", &value) &&
               ParseUint32(value, &u)) {
      opt.seed = u;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  TransactionDatabase exact;
  if (opt.kind == "quest") {
    QuestParams params;
    if (opt.transactions) params.num_transactions = opt.transactions;
    if (opt.avg_len > 0) params.avg_transaction_length = opt.avg_len;
    if (opt.pattern_len > 0) params.avg_pattern_length = opt.pattern_len;
    if (opt.items) {
      params.num_items = opt.items;
      params.num_patterns = opt.items;
    }
    params.seed = opt.seed;
    exact = GenerateQuest(params);
  } else if (opt.kind == "mushroom") {
    MushroomParams params;
    if (opt.transactions) params.num_transactions = opt.transactions;
    if (opt.attributes) params.num_attributes = opt.attributes;
    if (values_per_attribute) {
      params.values_per_attribute = values_per_attribute;
    }
    if (opt.species) params.num_species = opt.species;
    params.seed = opt.seed;
    exact = GenerateMushroomLike(params);
  } else {
    return Usage(argv[0]);
  }

  if (opt.exact) {
    if (!SaveExactTransactions(exact.transactions(), opt.path)) {
      std::fprintf(stderr, "failed to write %s\n", opt.path.c_str());
      return 1;
    }
    std::printf("wrote %zu exact transactions to %s\n", exact.size(),
                opt.path.c_str());
    return 0;
  }

  GaussianAssignerParams assign;
  assign.mean = opt.mean;
  assign.spread = opt.spread;
  assign.seed = opt.seed + 1;
  const UncertainDatabase db = AssignGaussianProbabilities(exact, assign);
  if (!SaveUncertainDatabase(db, opt.path)) {
    std::fprintf(stderr, "failed to write %s\n", opt.path.c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", opt.path.c_str(),
              ComputeStats(db).ToString().c_str());
  return 0;
}
