#!/usr/bin/env python3
"""Schema check for serving-layer bench JSON outputs.

Covers BENCH_session.json (bench/session_reuse) and BENCH_batch.json
(bench/batch_throughput); the two are told apart by the optional "kind"
key ("batch" selects the batch schema, anything else the session one).
Python-stdlib only. Usage:

    python3 tools/check_bench_session.py [path/to/BENCH_session.json]

Exits 0 when the file parses and matches schema 1 of its kind, 1
otherwise with a diagnostic per violation. Checks structure and internal
consistency (strictly increasing sweep grid, aggregate-vs-workload
timing sums, result identity flags), not performance thresholds — the
bench binaries themselves gate on the 1/2-wall-clock acceptance.
"""

import json
import sys


def fail(errors):
    for error in errors:
        print(f"check_bench_session: {error}", file=sys.stderr)
    return 1


def require(obj, key, types, errors, where):
    if key not in obj:
        errors.append(f"{where}: missing key '{key}'")
        return None
    value = obj[key]
    if not isinstance(value, types):
        errors.append(
            f"{where}: '{key}' has type {type(value).__name__}, "
            f"expected {types}"
        )
        return None
    return value


def check_threshold(entry, where, errors):
    for key in ("min_sup", "itemsets", "cold_dp_runs", "warm_dp_runs",
                "cache_hits", "dp_reused"):
        value = require(entry, key, int, errors, where)
        if value is not None and value < 0:
            errors.append(f"{where}: '{key}' is negative")
    for key in ("cold_seconds", "warm_seconds"):
        value = require(entry, key, (int, float), errors, where)
        if value is not None and value < 0:
            errors.append(f"{where}: '{key}' is negative")


def check_workload(workload, index, errors):
    where = f"workloads[{index}]"
    require(workload, "algorithm", str, errors, where)
    require(workload, "cold_seconds", (int, float), errors, where)
    require(workload, "warm_seconds", (int, float), errors, where)
    require(workload, "identical", bool, errors, where)

    cache = require(workload, "cache", dict, errors, where)
    if cache is not None:
        for key in ("bytes", "entries", "evictions", "warm_items"):
            require(cache, key, int, errors, f"{where}.cache")

    thresholds = require(workload, "per_threshold", list, errors, where)
    if thresholds is None:
        return
    if not thresholds:
        errors.append(f"{where}: per_threshold is empty")
    grid = []
    for i, entry in enumerate(thresholds):
        entry_where = f"{where}.per_threshold[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{entry_where}: not an object")
            continue
        check_threshold(entry, entry_where, errors)
        if isinstance(entry.get("min_sup"), int):
            grid.append(entry["min_sup"])
    if grid != sorted(set(grid)):
        errors.append(f"{where}: min_sup grid is not strictly increasing")


def check_batch_request(entry, where, errors):
    require(entry, "algorithm", str, errors, where)
    for key in ("min_sup", "itemsets", "shared_dp_hits", "queued_micros"):
        value = require(entry, key, int, errors, where)
        if value is not None and value < 0:
            errors.append(f"{where}: '{key}' is negative")
    for key in ("sequential_seconds", "batch_seconds"):
        value = require(entry, key, (int, float), errors, where)
        if value is not None and value < 0:
            errors.append(f"{where}: '{key}' is negative")


def check_batch(doc, path, errors):
    schema = require(doc, "schema", int, errors, path)
    if schema is not None and schema != 1:
        errors.append(f"{path}: schema {schema}, expected 1")
    require(doc, "dataset", str, errors, path)
    require(doc, "transactions", int, errors, path)
    requests = require(doc, "requests", int, errors, path)
    groups = require(doc, "groups", int, errors, path)
    require(doc, "sequential_seconds", (int, float), errors, path)
    require(doc, "batch_seconds", (int, float), errors, path)
    require(doc, "speedup", (int, float), errors, path)
    identical = require(doc, "identical", bool, errors, path)
    if identical is False:
        # Bit-identity is deterministic (unlike the wall-clock gate), so
        # the schema checker enforces it.
        errors.append(
            f"{path}: identical is false (batch results diverged from "
            f"standalone runs)"
        )

    per_request = require(doc, "per_request", list, errors, path)
    if per_request is None:
        return 0
    if not per_request:
        errors.append(f"{path}: per_request is empty")
    for i, entry in enumerate(per_request):
        where = f"per_request[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        check_batch_request(entry, where, errors)
    if requests is not None and requests != len(per_request):
        errors.append(
            f"{path}: requests {requests} != per_request length "
            f"{len(per_request)}"
        )
    if groups is not None and requests is not None:
        if groups < 1 or groups > max(requests, 1):
            errors.append(
                f"{path}: groups {groups} outside [1, requests={requests}]"
            )
    return len(per_request)


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_session.json"
    errors = []
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return fail([f"{path}: {exc}"])

    if not isinstance(doc, dict):
        return fail([f"{path}: top level is not an object"])

    if doc.get("kind") == "batch":
        count = check_batch(doc, path, errors)
        if errors:
            return fail(errors)
        print(f"check_bench_session: {path} OK (batch, {count} requests)")
        return 0

    schema = require(doc, "schema", int, errors, path)
    if schema is not None and schema != 1:
        errors.append(f"{path}: schema {schema}, expected 1")
    require(doc, "dataset", str, errors, path)
    require(doc, "transactions", int, errors, path)
    cold = require(doc, "cold_seconds", (int, float), errors, path)
    warm = require(doc, "warm_seconds", (int, float), errors, path)
    require(doc, "speedup", (int, float), errors, path)
    require(doc, "identical", bool, errors, path)

    workloads = require(doc, "workloads", list, errors, path)
    if workloads is not None:
        if not workloads:
            errors.append(f"{path}: workloads is empty")
        for i, workload in enumerate(workloads):
            if not isinstance(workload, dict):
                errors.append(f"workloads[{i}]: not an object")
                continue
            check_workload(workload, i, errors)
        # Aggregates must equal the workload sums (within float noise).
        if cold is not None and warm is not None and all(
            isinstance(w, dict) for w in workloads
        ):
            cold_sum = sum(
                w.get("cold_seconds", 0)
                for w in workloads
                if isinstance(w.get("cold_seconds"), (int, float))
            )
            warm_sum = sum(
                w.get("warm_seconds", 0)
                for w in workloads
                if isinstance(w.get("warm_seconds"), (int, float))
            )
            if abs(cold_sum - cold) > 1e-6 + 1e-3 * abs(cold):
                errors.append(
                    f"{path}: cold_seconds {cold} != workload sum {cold_sum}"
                )
            if abs(warm_sum - warm) > 1e-6 + 1e-3 * abs(warm):
                errors.append(
                    f"{path}: warm_seconds {warm} != workload sum {warm_sum}"
                )

    if errors:
        return fail(errors)
    print(f"check_bench_session: {path} OK "
          f"({len(workloads or [])} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
