// Unit tests for the result/statistics value types.
#include "src/core/mining_result.h"

#include <gtest/gtest.h>

namespace pfci {
namespace {

TEST(FcpMethodNames, AllNamed) {
  EXPECT_STREQ(FcpMethodName(FcpMethod::kUndecided), "undecided");
  EXPECT_STREQ(FcpMethodName(FcpMethod::kZeroByCount), "zero-by-count");
  EXPECT_STREQ(FcpMethodName(FcpMethod::kBoundsDecided), "bounds");
  EXPECT_STREQ(FcpMethodName(FcpMethod::kExact), "exact");
  EXPECT_STREQ(FcpMethodName(FcpMethod::kSampled), "sampled");
}

TEST(MiningResult, SortAndFind) {
  MiningResult result;
  PfciEntry b;
  b.items = Itemset{1, 2};
  b.fcp = 0.9;
  PfciEntry a;
  a.items = Itemset{0};
  a.fcp = 0.85;
  result.itemsets = {b, a};
  result.Sort();
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_EQ(result.itemsets[1].items, (Itemset{1, 2}));

  const PfciEntry* found = result.Find(Itemset{1, 2});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->fcp, 0.9);
  EXPECT_EQ(result.Find(Itemset{7}), nullptr);
}

TEST(MiningResult, ToStringRendersEntries) {
  MiningResult result;
  PfciEntry entry;
  entry.items = Itemset{0, 1};
  entry.fcp = 0.875;
  entry.pr_f = 0.97;
  entry.method = FcpMethod::kExact;
  result.itemsets.push_back(entry);
  const std::string text = result.ToString(/*letters=*/true);
  EXPECT_NE(text.find("{a b}"), std::string::npos);
  EXPECT_NE(text.find("0.875"), std::string::npos);
  EXPECT_NE(text.find("exact"), std::string::npos);
}

TEST(MiningStats, ToStringContainsEveryCounter) {
  MiningStats stats;
  stats.nodes_visited = 11;
  stats.pruned_by_chernoff = 22;
  stats.total_samples = 33;
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("nodes=11"), std::string::npos);
  EXPECT_NE(text.find("ch_pruned=22"), std::string::npos);
  EXPECT_NE(text.find("samples=33"), std::string::npos);
}

}  // namespace
}  // namespace pfci
