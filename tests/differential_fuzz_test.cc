// Differential + metamorphic fuzzing of every algorithm behind Mine().
//
// Tier-1 runs a short seeded sweep (PFCI_FUZZ_ITERS overrides the
// iteration count for long soak runs; see CONTRIBUTING.md) plus a replay
// of every shrunk repro committed under tests/repros/. Failures print
// the minimized database and request sidecar ready to commit — run
// tools/pfci_fuzz to reproduce and save them.
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/oracle/fuzz_db.h"
#include "src/harness/oracle/invariants.h"
#include "src/harness/oracle/reducer.h"
#include "src/harness/oracle/repro.h"
#include "src/util/string_util.h"

namespace pfci {
namespace {

std::size_t IterationsFromEnv(std::size_t fallback) {
  const char* env = std::getenv("PFCI_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long parsed = std::strtoul(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Options for one fuzz iteration. The Naive baseline's Karp-Luby loops
/// dominate the cost of a pass, so it runs on a rotating fraction of
/// seeds (still hundreds of cross-checks per sweep) at a sampling budget
/// sized for the statistical tolerance, not for precision.
OracleOptions SweepOptions(std::uint64_t seed) {
  OracleOptions options;
  options.brute_max_transactions = 10;
  options.naive_epsilon = 0.1;
  options.naive_delta = 0.05;
  options.check_naive = (seed % 7) == 0;
  return options;
}

std::string DescribeFailure(const FuzzCase& fuzz,
                            const std::vector<OracleFinding>& findings,
                            std::uint64_t seed) {
  // Shrink before reporting: the message should show the database a
  // human debugs, not the 20-row original. The shrink predicate re-runs
  // the same catalog configuration that flagged the seed.
  const ReducedCase reduced = ShrinkCase(
      fuzz.db, fuzz.params,
      [&](const UncertainDatabase& db, const MiningParams& params) {
        return CheckDatabase(db, params, SweepOptions(seed));
      });
  const std::vector<OracleFinding>& final_findings =
      reduced.findings.empty() ? findings : reduced.findings;
  Repro repro;
  repro.db = reduced.findings.empty() ? fuzz.db : reduced.db;
  repro.request = final_findings.front().request;
  repro.check = final_findings.front().check;
  std::string message = "seed " + std::to_string(seed) + " (shape " +
                        fuzz.shape + ") violated:\n" +
                        FindingsToString(final_findings);
  message += "minimized database (.utd):\n";
  for (const UncertainTransaction& t : repro.db.transactions()) {
    message += "  " + FormatDoubleRoundTrip(t.prob);
    for (Item item : t.items.items()) {
      message += " " + std::to_string(item);
    }
    message += "\n";
  }
  message += "request sidecar (.request):\n" + FormatReproRequest(repro);
  message += "reproduce: tools/pfci_fuzz --seed=" + std::to_string(seed) +
             " --iters=1 --out=tests/repros\n";
  return message;
}

TEST(DifferentialFuzz, SeededSweepSurvivesInvariantCatalog) {
  const std::size_t iterations = IterationsFromEnv(200);
  std::size_t brute_checked = 0;
  std::size_t naive_checked = 0;
  for (std::uint64_t seed = 0; seed < iterations; ++seed) {
    const FuzzCase fuzz = MakeFuzzCase(seed);
    const OracleOptions options = SweepOptions(seed);
    if (fuzz.db.size() <= options.brute_max_transactions) ++brute_checked;
    if (options.check_naive) ++naive_checked;
    const std::vector<OracleFinding> findings =
        CheckDatabase(fuzz.db, fuzz.params, options);
    ASSERT_TRUE(findings.empty()) << DescribeFailure(fuzz, findings, seed);
  }
  // The sweep must actually exercise the expensive oracles, not skip
  // them all through unlucky shape draws.
  EXPECT_GE(brute_checked, iterations / 4);
  EXPECT_GE(naive_checked, iterations / 14);
}

#ifdef PFCI_SOURCE_DIR
/// Every pair committed under tests/repros/ is a minimal database the
/// harness once flagged or a hand-pinned boundary shape (see the corpus
/// README); replay each through the full catalog so none regresses.
TEST(DifferentialFuzz, CommittedReprosStayFixed) {
  const std::filesystem::path corpus =
      std::filesystem::path(PFCI_SOURCE_DIR) / "tests" / "repros";
  if (!std::filesystem::exists(corpus)) {
    GTEST_SKIP() << "no repro corpus at " << corpus;
  }
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".utd") continue;
    SCOPED_TRACE(entry.path().string());
    Repro repro;
    std::string error;
    ASSERT_TRUE(LoadRepro(entry.path().string(), &repro, &error)) << error;

    // The recorded request must complete cleanly...
    const MiningResult direct = Mine(repro.db, repro.request);
    EXPECT_EQ(direct.outcome(), Outcome::kComplete)
        << direct.status_message;

    // ...and the database must survive the whole catalog again, naive
    // included (a corpus entry is small; cost is negligible).
    OracleOptions options;
    options.naive_epsilon = 0.1;
    options.naive_delta = 0.05;
    const std::vector<OracleFinding> findings =
        CheckDatabase(repro.db, repro.request.params, options);
    EXPECT_TRUE(findings.empty())
        << "repro for check '" << repro.check
        << "' regressed:\n" << FindingsToString(findings);
    ++replayed;
  }
  // The directory exists, so the corpus README plus at least one case
  // should be in it; an empty iteration would silently test nothing.
  EXPECT_GT(replayed, 0u);
}
#endif  // PFCI_SOURCE_DIR

}  // namespace
}  // namespace pfci
