// Unit tests for the Poisson-binomial distribution primitives.
#include "src/prob/poisson_binomial.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pfci {
namespace {

TEST(PoissonBinomialPmf, EmptyInput) {
  const std::vector<double> pmf = PoissonBinomialPmf({});
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(PoissonBinomialPmf, SingleBernoulli) {
  const std::vector<double> pmf = PoissonBinomialPmf({0.3});
  ASSERT_EQ(pmf.size(), 2u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.7);
  EXPECT_DOUBLE_EQ(pmf[1], 0.3);
}

TEST(PoissonBinomialPmf, MatchesBinomialForEqualProbs) {
  // n=6, p=0.5: pmf[k] = C(6,k)/64.
  const std::vector<double> pmf =
      PoissonBinomialPmf(std::vector<double>(6, 0.5));
  const double kBinomial[] = {1, 6, 15, 20, 15, 6, 1};
  ASSERT_EQ(pmf.size(), 7u);
  for (int k = 0; k <= 6; ++k) {
    EXPECT_NEAR(pmf[k], kBinomial[k] / 64.0, 1e-12) << k;
  }
}

TEST(PoissonBinomialPmf, SumsToOne) {
  const std::vector<double> probs = {0.9, 0.6, 0.7, 0.9, 0.05, 1.0, 0.33};
  double total = 0.0;
  for (double mass : PoissonBinomialPmf(probs)) total += mass;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PoissonBinomialPmf, DeterministicEntries) {
  // With p = 1 entries the sum shifts deterministically.
  const std::vector<double> pmf = PoissonBinomialPmf({1.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(pmf[0], 0.0);
  EXPECT_DOUBLE_EQ(pmf[1], 0.0);
  EXPECT_DOUBLE_EQ(pmf[2], 0.5);
  EXPECT_DOUBLE_EQ(pmf[3], 0.5);
}

TEST(PoissonBinomialTail, ThresholdZeroIsOne) {
  EXPECT_DOUBLE_EQ(PoissonBinomialTailAtLeast({}, 0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialTailAtLeast({0.2, 0.4}, 0), 1.0);
}

TEST(PoissonBinomialTail, ThresholdAboveNIsZero) {
  EXPECT_DOUBLE_EQ(PoissonBinomialTailAtLeast({0.9, 0.9}, 3), 0.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialTailAtLeast({}, 1), 0.0);
}

TEST(PoissonBinomialTail, PaperExampleValue) {
  // Pr{S >= 2} over (.9,.6,.7,.9) = 0.9726 (paper Example 1.2 support
  // distribution of {abc}).
  EXPECT_NEAR(PoissonBinomialTailAtLeast({0.9, 0.6, 0.7, 0.9}, 2), 0.9726,
              1e-12);
}

class TailVsPmf : public ::testing::TestWithParam<int> {};

TEST_P(TailVsPmf, TruncatedDpMatchesFullPmf) {
  // Property: for random prob vectors, the truncated tail DP agrees with
  // the full pmf's suffix sums at every threshold.
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.NextBelow(12);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  const std::vector<double> pmf = PoissonBinomialPmf(probs);
  for (std::size_t s = 0; s <= n + 1; ++s) {
    double suffix = 0.0;
    for (std::size_t k = s; k <= n; ++k) suffix += pmf[k];
    EXPECT_NEAR(PoissonBinomialTailAtLeast(probs, s), suffix, 1e-12)
        << "n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, TailVsPmf, ::testing::Range(0, 40));

TEST(PoissonBinomialMoments, MeanAndVariance) {
  const std::vector<double> probs = {0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(PoissonBinomialMean(probs), 1.5);
  EXPECT_NEAR(PoissonBinomialVariance(probs), 0.09 + 0.25 + 0.09, 1e-12);
}

TEST(PoissonBinomialTail, MonotoneInThreshold) {
  const std::vector<double> probs = {0.3, 0.8, 0.5, 0.6, 0.2};
  double previous = 1.0;
  for (std::size_t s = 0; s <= probs.size(); ++s) {
    const double tail = PoissonBinomialTailAtLeast(probs, s);
    EXPECT_LE(tail, previous + 1e-15);
    previous = tail;
  }
}

TEST(PoissonBinomialTail, MonotoneInProbabilities) {
  // Increasing any p_i cannot decrease the tail.
  const std::vector<double> base = {0.3, 0.4, 0.5, 0.6};
  const double before = PoissonBinomialTailAtLeast(base, 2);
  std::vector<double> bumped = base;
  bumped[0] = 0.9;
  EXPECT_GE(PoissonBinomialTailAtLeast(bumped, 2), before);
}

}  // namespace
}  // namespace pfci
