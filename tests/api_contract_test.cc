// API contract tests: invalid-usage CHECKs fire (death tests) and inert
// inputs are truly inert.
#include <gtest/gtest.h>

#include "src/core/mpfci_miner.h"
#include "src/core/stream_miner.h"
#include "src/data/uncertain_database.h"
#include "src/data/world_enumerator.h"
#include "src/prob/karp_luby.h"

namespace pfci {
namespace {

using ApiContractDeathTest = ::testing::Test;

TEST(ApiContractDeathTest, RejectsInvalidProbabilities) {
  UncertainDatabase db;
  EXPECT_DEATH(db.Add(Itemset{0}, 0.0), "CHECK");
  EXPECT_DEATH(db.Add(Itemset{0}, -0.1), "CHECK");
  EXPECT_DEATH(db.Add(Itemset{0}, 1.5), "CHECK");
}

TEST(ApiContractDeathTest, RejectsInvalidMiningParams) {
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  MiningParams params;
  params.min_sup = 0;  // Must be >= 1.
  EXPECT_DEATH(MineMpfci(db, params), "CHECK");
  params.min_sup = 1;
  params.pfct = 1.0;  // Must be < 1 (strict comparison would be empty).
  EXPECT_DEATH(MineMpfci(db, params), "CHECK");
}

TEST(ApiContractDeathTest, StreamWindowMustCoverMinSup) {
  MiningParams params;
  params.min_sup = 10;
  EXPECT_DEATH(StreamingPfciMiner(params, /*window_size=*/5), "CHECK");
}

TEST(ApiContractDeathTest, WorldEnumerationSizeGuard) {
  UncertainDatabase db;
  for (int i = 0; i < 30; ++i) db.Add(Itemset{0}, 0.5);
  EXPECT_DEATH(EnumerateWorlds(db, [](const PossibleWorld&, double) {}),
               "CHECK");
}

TEST(ApiContractDeathTest, KarpLubyParameterGuards) {
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.0, 0.1), "CHECK");
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.1, 0.0), "CHECK");
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.1, 1.0), "CHECK");
}

TEST(ApiContract, EmptyTransactionsAreInert) {
  // An empty-itemset tuple (possible via the text loader) contains no
  // item, so it cannot affect any itemset's support or closedness.
  UncertainDatabase with_empty;
  with_empty.Add(Itemset{}, 0.5);
  with_empty.Add(Itemset{0, 1}, 0.8);
  with_empty.Add(Itemset{0, 1}, 0.7);
  with_empty.Add(Itemset{}, 0.9);

  UncertainDatabase without_empty;
  without_empty.Add(Itemset{0, 1}, 0.8);
  without_empty.Add(Itemset{0, 1}, 0.7);

  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.5;
  const MiningResult a = MineMpfci(with_empty, params);
  const MiningResult b = MineMpfci(without_empty, params);
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_NEAR(a.itemsets[i].fcp, b.itemsets[i].fcp, 1e-12);
  }
}

TEST(ApiContract, ResultsIndependentOfTransactionOrder) {
  // Permuting the transactions permutes tids but cannot change any
  // probability.
  UncertainDatabase forward;
  forward.Add(Itemset{0, 1, 2}, 0.9);
  forward.Add(Itemset{0, 1}, 0.4);
  forward.Add(Itemset{1, 2}, 0.7);
  forward.Add(Itemset{0, 2}, 0.6);
  UncertainDatabase backward;
  backward.Add(Itemset{0, 2}, 0.6);
  backward.Add(Itemset{1, 2}, 0.7);
  backward.Add(Itemset{0, 1}, 0.4);
  backward.Add(Itemset{0, 1, 2}, 0.9);

  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.1;
  params.exact_event_limit = 25;
  const MiningResult a = MineMpfci(forward, params);
  const MiningResult b = MineMpfci(backward, params);
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_NEAR(a.itemsets[i].fcp, b.itemsets[i].fcp, 1e-12);
  }
}

}  // namespace
}  // namespace pfci
