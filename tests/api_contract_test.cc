// API contract tests: invalid-usage CHECKs fire (death tests), inert
// inputs are truly inert, and the unified Mine() entry point agrees with
// the historical free-function wrappers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/bfs_miner.h"
#include "src/core/brute_force.h"
#include "src/core/expected_support_miner.h"
#include "src/core/mine.h"
#include "src/core/mpfci_miner.h"
#include "src/core/naive_miner.h"
#include "src/core/pfi_miner.h"
#include "src/core/request_io.h"
#include "src/core/stream_miner.h"
#include "src/core/topk_miner.h"
#include "src/data/item_uncertain_database.h"
#include "src/data/request_wire.h"
#include "src/data/uncertain_database.h"
#include "src/data/world_enumerator.h"
#include "src/prob/karp_luby.h"
#include "src/serve/mining_session.h"

namespace pfci {
namespace {

UncertainDatabase MakeSmallDb();

using ApiContractDeathTest = ::testing::Test;

TEST(ApiContractDeathTest, RejectsInvalidProbabilities) {
  UncertainDatabase db;
  EXPECT_DEATH(db.Add(Itemset{0}, 0.0), "CHECK");
  EXPECT_DEATH(db.Add(Itemset{0}, -0.1), "CHECK");
  EXPECT_DEATH(db.Add(Itemset{0}, 1.5), "CHECK");
}

TEST(ApiContractDeathTest, RejectsInvalidMiningParams) {
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  MiningParams params;
  params.min_sup = 0;  // Must be >= 1.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_DEATH(MineMpfci(db, params), "CHECK");
  params.min_sup = 1;
  params.pfct = 1.0;  // Must be < 1 (strict comparison would be empty).
  EXPECT_DEATH(MineMpfci(db, params), "CHECK");
#pragma GCC diagnostic pop
}

TEST(ApiContract, StreamDegenerateConfigsSurfaceAsData) {
  // Streaming configs are runtime inputs, not programmer errors: a
  // window smaller than min_sup constructs fine and simply mines empty
  // windows (support can never reach min_sup), and window_size == 0
  // surfaces as kInvalidRequest from MineWindow, never an abort.
  MiningParams params;
  params.min_sup = 10;
  StreamingPfciMiner narrow(params, /*window_size=*/5);
  narrow.Observe(Itemset{0}, 0.5);
  MiningRequest request;
  request.params = params;
  EXPECT_EQ(narrow.MineWindow(request).outcome(), Outcome::kComplete);

  params.min_sup = 1;
  StreamingPfciMiner zero(params, /*window_size=*/0);
  request.params = params;
  EXPECT_EQ(zero.MineWindow(request).outcome(), Outcome::kInvalidRequest);
}

TEST(ApiContractDeathTest, WorldEnumerationSizeGuard) {
  UncertainDatabase db;
  for (int i = 0; i < 30; ++i) db.Add(Itemset{0}, 0.5);
  EXPECT_DEATH(EnumerateWorlds(db, [](const PossibleWorld&, double) {}),
               "CHECK");
}

TEST(ApiContractDeathTest, KarpLubyParameterGuards) {
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.0, 0.1), "CHECK");
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.1, 0.0), "CHECK");
  EXPECT_DEATH(KarpLubyRequiredSamples(1, 0.1, 1.0), "CHECK");
}

TEST(ApiContract, ValidateParamsReportsTheOffendingField) {
  MiningParams params;
  EXPECT_EQ(ValidateParams(params), "");
  params.min_sup = 0;
  EXPECT_NE(ValidateParams(params).find("min_sup"), std::string::npos);
  params.min_sup = 1;
  params.pfct = 1.0;
  EXPECT_NE(ValidateParams(params).find("pfct"), std::string::npos);
  params.pfct = 0.8;
  params.epsilon = 0.0;
  EXPECT_NE(ValidateParams(params).find("epsilon"), std::string::npos);
  params.epsilon = 0.1;
  params.delta = 1.0;
  EXPECT_NE(ValidateParams(params).find("delta"), std::string::npos);
}

TEST(ApiContract, ValidateRequestCoversRequestFields) {
  MiningRequest request;
  EXPECT_EQ(ValidateRequest(request), "");
  request.algorithm = Algorithm::kTopK;
  request.top_k = 0;
  EXPECT_NE(ValidateRequest(request).find("top_k"), std::string::npos);
  request.top_k = 10;
  request.min_esup = -1.0;
  EXPECT_NE(ValidateRequest(request).find("min_esup"), std::string::npos);
  request.min_esup = 0.0;
  request.params.min_sup = 0;
  EXPECT_NE(ValidateRequest(request).find("min_sup"), std::string::npos);
  request.params.min_sup = 2;
  request.budget.deadline_seconds = -1.0;
  EXPECT_NE(ValidateRequest(request).find("deadline_seconds"),
            std::string::npos);
  request.budget.deadline_seconds = 0.0;
  request.budget.degrade_fraction = 0.0;
  EXPECT_NE(ValidateRequest(request).find("degrade_fraction"),
            std::string::npos);
}

TEST(ApiContract, MineReportsInvalidRequestsWithoutAborting) {
  // The Mine() API boundary reports bad requests as data: an empty
  // result with kInvalidRequest and the validation message, instead of
  // the wrappers' CHECK-abort.
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  MiningRequest request;
  request.params.pfct = 1.5;
  const MiningResult bad_pfct = Mine(db, request);
  EXPECT_FALSE(bad_pfct.ok());
  EXPECT_EQ(bad_pfct.outcome(), Outcome::kInvalidRequest);
  EXPECT_TRUE(bad_pfct.itemsets.empty());
  EXPECT_NE(bad_pfct.status_message.find("pfct"), std::string::npos)
      << bad_pfct.status_message;

  request.params.pfct = 0.8;
  request.algorithm = Algorithm::kTopK;
  request.top_k = 0;
  const MiningResult bad_top_k = Mine(db, request);
  EXPECT_EQ(bad_top_k.outcome(), Outcome::kInvalidRequest);
  EXPECT_TRUE(bad_top_k.itemsets.empty());
  EXPECT_NE(bad_top_k.status_message.find("top_k"), std::string::npos)
      << bad_top_k.status_message;
}

TEST(ApiContractDeathTest, WrappersKeepCheckOnInvalidParams) {
  // The deprecated free-function wrappers retain their CHECK-on-invalid
  // contract even though Mine() now reports errors as data.
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  MiningParams params;
  params.pfct = 1.5;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_DEATH(MineMpfci(db, params), "CHECK");
#pragma GCC diagnostic pop
}

TEST(ApiContract, AlgorithmNamesAreStable) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kMpfci), "mpfci");
  EXPECT_STREQ(AlgorithmName(Algorithm::kMpfciBfs), "bfs");
  EXPECT_STREQ(AlgorithmName(Algorithm::kNaive), "naive");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTopK), "topk");
  EXPECT_STREQ(AlgorithmName(Algorithm::kPfi), "pfi");
  EXPECT_STREQ(AlgorithmName(Algorithm::kExpectedSupport), "esup");
  EXPECT_STREQ(AlgorithmName(Algorithm::kExpectedSupportFpGrowth),
               "esup-fp");
  EXPECT_STREQ(AlgorithmName(Algorithm::kBruteForce), "brute");
  EXPECT_STREQ(AlgorithmName(Algorithm::kItemExpectedSupport), "item-esup");
  EXPECT_STREQ(AlgorithmName(Algorithm::kItemPfi), "item-pfi");
}

TEST(ApiContract, ParseAlgorithmRoundTripsEveryName) {
  for (const Algorithm algorithm : AllAlgorithms()) {
    Algorithm parsed;
    ASSERT_TRUE(ParseAlgorithm(AlgorithmName(algorithm), &parsed))
        << AlgorithmName(algorithm);
    EXPECT_EQ(parsed, algorithm);
  }
  Algorithm unused;
  EXPECT_FALSE(ParseAlgorithm("mpfcix", &unused));
  EXPECT_FALSE(ParseAlgorithm("", &unused));
  EXPECT_FALSE(ParseAlgorithm("MPFCI", &unused));  // Case-sensitive.
}

TEST(ApiContract, CrossFieldValidationNamesTheOffendingField) {
  // top_k only applies to the top-k algorithm.
  MiningRequest request;
  request.top_k = 5;
  EXPECT_NE(ValidateRequest(request).find("top_k"), std::string::npos);

  // min_esup > 0 only applies to expected-support algorithms.
  request = MiningRequest{};
  request.min_esup = 2.0;
  EXPECT_NE(ValidateRequest(request).find("min_esup"), std::string::npos);
  request.algorithm = Algorithm::kExpectedSupport;
  EXPECT_EQ(ValidateRequest(request), "");

  // Sweep thresholds must be >= 1 and strictly increasing.
  request = MiningRequest{};
  request.sweep_min_sup = {2, 2};
  EXPECT_NE(ValidateRequest(request).find("sweep_min_sup"),
            std::string::npos);
  request.sweep_min_sup = {0, 1};
  EXPECT_NE(ValidateRequest(request).find("sweep_min_sup"),
            std::string::npos);
  request.sweep_min_sup = {2, 5, 9};
  EXPECT_EQ(ValidateRequest(request), "");
}

TEST(ApiContract, SingleShotMineRejectsSweepRequests) {
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.params.min_sup = 2;
  request.sweep_min_sup = {2, 3};
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(result.status_message.find("MineSweep"), std::string::npos)
      << result.status_message;
}

TEST(ApiContract, BruteForceGuardsDatabaseSizeAsData) {
  UncertainDatabase db;
  for (int i = 0; i < 25; ++i) db.Add(Itemset{0, 1}, 0.5);
  MiningRequest request;
  request.algorithm = Algorithm::kBruteForce;
  request.params.min_sup = 2;
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(result.status_message.find("brute"), std::string::npos)
      << result.status_message;
}

TEST(ApiContract, OverloadsRejectMismatchedAlgorithmLevels) {
  // Item-level algorithms are served only by the item-level overload.
  const UncertainDatabase tuple_db = MakeSmallDb();
  MiningRequest request;
  request.params.min_sup = 1;
  request.algorithm = Algorithm::kItemPfi;
  EXPECT_EQ(Mine(tuple_db, request).outcome(), Outcome::kInvalidRequest);

  ItemUncertainDatabase item_db;
  item_db.Add({{0, 0.9}, {1, 0.8}});
  item_db.Add({{0, 0.7}, {1, 0.6}});
  request.algorithm = Algorithm::kMpfci;
  EXPECT_EQ(Mine(item_db, request).outcome(), Outcome::kInvalidRequest);
  request.algorithm = Algorithm::kItemPfi;
  request.params.pfct = 0.1;
  EXPECT_EQ(Mine(item_db, request).outcome(), Outcome::kComplete);
}

TEST(ApiContract, DeprecatedWrappersStillMatchMine) {
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  request.algorithm = Algorithm::kBruteForce;
  const MiningResult brute = Mine(db, request);
  const std::vector<FcpGroundTruth> truth =
      BruteForceMinePfci(db, request.params.min_sup, request.params.pfct);
  ASSERT_EQ(brute.itemsets.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(brute.itemsets[i].items, truth[i].items);
    EXPECT_EQ(brute.itemsets[i].fcp, truth[i].fcp);
  }

  request.algorithm = Algorithm::kExpectedSupportFpGrowth;
  request.min_esup = 1.5;
  const MiningResult fp = Mine(db, request);
  const std::vector<ExpectedSupportEntry> entries =
      MineExpectedSupportFpGrowth(db, request.min_esup);
  ASSERT_EQ(fp.itemsets.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(fp.itemsets[i].items, entries[i].items);
    EXPECT_EQ(fp.itemsets[i].pr_f, entries[i].expected_support);
  }
#pragma GCC diagnostic pop
}

/// A fixed 6-transaction database exercising all miners cheaply.
UncertainDatabase MakeSmallDb() {
  UncertainDatabase db;
  db.Add(Itemset{0, 1, 2, 3}, 0.9);
  db.Add(Itemset{0, 1, 2}, 0.6);
  db.Add(Itemset{0, 1, 2}, 0.7);
  db.Add(Itemset{0, 1, 2, 3}, 0.9);
  db.Add(Itemset{0, 1}, 0.4);
  db.Add(Itemset{0}, 0.4);
  return db;
}

void ExpectSameItemsets(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_EQ(a.itemsets[i].fcp, b.itemsets[i].fcp);
    EXPECT_EQ(a.itemsets[i].pr_f, b.itemsets[i].pr_f);
  }
}

TEST(ApiContract, MineMatchesFreeFunctionWrappers) {
  // Parity pin for the deprecated miner wrappers: each shim must keep
  // returning exactly what Mine() returns until its removal next cycle.
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  request.algorithm = Algorithm::kMpfci;
  ExpectSameItemsets(Mine(db, request), MineMpfci(db, request.params));

  request.algorithm = Algorithm::kMpfciBfs;
  ExpectSameItemsets(Mine(db, request), MineMpfciBfs(db, request.params));

  request.algorithm = Algorithm::kNaive;
  ExpectSameItemsets(Mine(db, request), MineNaive(db, request.params));

  request.algorithm = Algorithm::kTopK;
  request.top_k = 3;
  ExpectSameItemsets(Mine(db, request),
                     MineTopKPfci(db, request.params, request.top_k));
#pragma GCC diagnostic pop
}

TEST(ApiContract, MinePfiAlgorithmReportsFrequentProbabilities) {
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.algorithm = Algorithm::kPfi;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;
  const MiningResult result = Mine(db, request);
  const std::vector<PfiEntry> pfis =
      MinePfi(db, request.params.min_sup, request.params.pfct);
  ASSERT_EQ(result.itemsets.size(), pfis.size());
  for (std::size_t i = 0; i < pfis.size(); ++i) {
    EXPECT_EQ(result.itemsets[i].items, pfis[i].items);
    EXPECT_EQ(result.itemsets[i].pr_f, pfis[i].pr_f);
    EXPECT_EQ(result.itemsets[i].fcp, 0.0);
  }
}

TEST(ApiContract, MineExpectedSupportAlgorithmReportsExpectedSupports) {
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.algorithm = Algorithm::kExpectedSupport;
  request.params.min_sup = 2;
  request.min_esup = 1.5;
  const MiningResult result = Mine(db, request);
  const std::vector<ExpectedSupportEntry> expected =
      MineExpectedSupport(db, request.min_esup);
  ASSERT_EQ(result.itemsets.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.itemsets[i].items, expected[i].items);
    EXPECT_EQ(result.itemsets[i].pr_f, expected[i].expected_support);
  }
}

TEST(ApiContract, ProgressCallbackFiresAndCountsItemsets) {
  const UncertainDatabase db = MakeSmallDb();
  MiningRequest request;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;
  request.progress_interval = 1;  // Fire as often as allowed.
  MiningProgress last;
  std::size_t calls = 0;
  request.progress = [&](const MiningProgress& progress) {
    last = progress;
    ++calls;
  };
  const MiningResult result = Mine(db, request);
  EXPECT_GE(calls, 1u);  // At least the final flush.
  EXPECT_EQ(last.itemsets_found, result.itemsets.size());
  EXPECT_EQ(last.nodes_visited, result.stats.nodes_visited);
}

TEST(ApiContract, EmptyTransactionsAreInert) {
  // An empty-itemset tuple (possible via the text loader) contains no
  // item, so it cannot affect any itemset's support or closedness.
  UncertainDatabase with_empty;
  with_empty.Add(Itemset{}, 0.5);
  with_empty.Add(Itemset{0, 1}, 0.8);
  with_empty.Add(Itemset{0, 1}, 0.7);
  with_empty.Add(Itemset{}, 0.9);

  UncertainDatabase without_empty;
  without_empty.Add(Itemset{0, 1}, 0.8);
  without_empty.Add(Itemset{0, 1}, 0.7);

  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params.min_sup = 2;
  request.params.pfct = 0.5;
  const MiningResult a = Mine(with_empty, request);
  const MiningResult b = Mine(without_empty, request);
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_NEAR(a.itemsets[i].fcp, b.itemsets[i].fcp, 1e-12);
  }
}

TEST(ApiContract, ResultsIndependentOfTransactionOrder) {
  // Permuting the transactions permutes tids but cannot change any
  // probability.
  UncertainDatabase forward;
  forward.Add(Itemset{0, 1, 2}, 0.9);
  forward.Add(Itemset{0, 1}, 0.4);
  forward.Add(Itemset{1, 2}, 0.7);
  forward.Add(Itemset{0, 2}, 0.6);
  UncertainDatabase backward;
  backward.Add(Itemset{0, 2}, 0.6);
  backward.Add(Itemset{1, 2}, 0.7);
  backward.Add(Itemset{0, 1}, 0.4);
  backward.Add(Itemset{0, 1, 2}, 0.9);

  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;
  request.params.exact_event_limit = 25;
  const MiningResult a = Mine(forward, request);
  const MiningResult b = Mine(backward, request);
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_NEAR(a.itemsets[i].fcp, b.itemsets[i].fcp, 1e-12);
  }
}

/// ---- The asynchronous surface keeps the error-as-data contract ----

TEST(ApiContract, DefaultConstructedRunHandleIsInvalid) {
  RunHandle handle;
  EXPECT_FALSE(handle.valid());
}

TEST(ApiContract, SubmitAndMineBatchReportErrorsAsDataNeverAborting) {
  // The async and batch entry points answer every failure through the
  // result (kInvalidRequest with the same "invalid MiningRequest: "
  // prefix Mine() stamps), never via CHECK or exceptions: a bad request
  // inside a batch must not take down its neighbours.
  const UncertainDatabase db = MakeSmallDb();
  MiningSession session = MiningSession::Open(db);

  MiningRequest bad;
  bad.params.pfct = 1.5;
  RunHandle handle = session.Submit(bad);
  ASSERT_TRUE(handle.valid());
  const MiningResult& async_result = handle.Wait();
  EXPECT_EQ(async_result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(async_result.status_message.find("invalid MiningRequest"),
            std::string::npos);

  MiningRequest good;
  good.algorithm = Algorithm::kMpfci;
  good.params.min_sup = 2;
  good.params.pfct = 0.3;
  const std::vector<MiningRequest> requests = {good, bad};
  const std::vector<MiningResult> batch = session.MineBatch(requests);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].outcome(), Outcome::kComplete)
      << batch[0].status_message;
  EXPECT_EQ(batch[1].outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(batch[1].status_message.find("invalid MiningRequest"),
            std::string::npos);
  // Batch counters are part of the stats contract (schema v6): stamped
  // on every member, the invalid one included.
  for (const MiningResult& result : batch) {
    EXPECT_EQ(result.stats.batch_size, 2u);
    EXPECT_EQ(result.stats.batch_groups, 1u);
  }
}

TEST(ApiContract, MineBatchAgreesWithMineForEveryMember) {
  const UncertainDatabase db = MakeSmallDb();
  std::vector<MiningRequest> requests;
  for (const Algorithm algorithm :
       {Algorithm::kMpfci, Algorithm::kPfi, Algorithm::kNaive}) {
    MiningRequest request;
    request.algorithm = algorithm;
    request.params.min_sup = 2;
    request.params.pfct = 0.3;
    requests.push_back(request);
  }
  MiningSession session = MiningSession::Open(db);
  const std::vector<MiningResult> batch = session.MineBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(AlgorithmName(requests[i].algorithm));
    const MiningResult standalone = Mine(db, requests[i]);
    ASSERT_EQ(batch[i].outcome(), standalone.outcome());
    ASSERT_EQ(batch[i].itemsets.size(), standalone.itemsets.size());
    for (std::size_t j = 0; j < batch[i].itemsets.size(); ++j) {
      EXPECT_EQ(batch[i].itemsets[j].items, standalone.itemsets[j].items);
      EXPECT_EQ(batch[i].itemsets[j].fcp, standalone.itemsets[j].fcp);
      EXPECT_EQ(batch[i].itemsets[j].pr_f, standalone.itemsets[j].pr_f);
    }
  }
}

/// ---- The request wire format round-trips the API surface ----

TEST(ApiContract, RequestWireRoundTripsEveryCoveredField) {
  MiningRequest request;
  request.algorithm = Algorithm::kTopK;
  request.top_k = 7;
  request.params.min_sup = 9;
  request.params.pfct = 0.35;
  request.params.epsilon = 0.05;
  request.params.delta = 0.01;
  request.params.exact_event_limit = 10;
  request.params.force_sampling = true;
  request.params.seed = 99;
  request.params.tidset_mode = TidSetMode::kDense;
  request.params.pruning.chernoff = false;
  request.execution.num_threads = 3;

  const std::string wire = FormatRequestFields(request);
  std::istringstream in(wire);
  std::vector<WireField> fields;
  std::string error;
  ASSERT_TRUE(ParseRequestWire(in, "<inline>", &fields, &error)) << error;
  MiningRequest replayed;
  ASSERT_TRUE(ApplyRequestFields(fields, "<inline>", &replayed, &error))
      << error;
  // Byte-stable: the replayed request serializes to the identical wire.
  EXPECT_EQ(FormatRequestFields(replayed), wire);
  EXPECT_EQ(replayed.algorithm, Algorithm::kTopK);
  EXPECT_EQ(replayed.top_k, 7u);
  EXPECT_EQ(replayed.params.min_sup, 9u);
  EXPECT_EQ(replayed.params.tidset_mode, TidSetMode::kDense);
  EXPECT_FALSE(replayed.params.pruning.chernoff);
  EXPECT_TRUE(replayed.params.force_sampling);
  EXPECT_EQ(replayed.execution.num_threads, 3u);
}

TEST(ApiContract, RequestWireRejectsUnknownKeysAndBadValuesWithLines) {
  std::istringstream unknown("algorithm=mpfci\nnot_a_key=1\n");
  std::vector<WireField> fields;
  std::string error;
  ASSERT_TRUE(ParseRequestWire(unknown, "<inline>", &fields, &error))
      << error;
  MiningRequest request;
  EXPECT_FALSE(ApplyRequestFields(fields, "<inline>", &request, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("not_a_key"), std::string::npos) << error;

  std::istringstream bad_value("min_sup=banana\n");
  fields.clear();
  ASSERT_TRUE(ParseRequestWire(bad_value, "<inline>", &fields, &error));
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(ApplyRequestField(fields[0], &request),
            WireFieldStatus::kBadValue);
  EXPECT_FALSE(ApplyRequestFields(fields, "<inline>", &request, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("banana"), std::string::npos) << error;
}

TEST(ApiContract, LoadRequestFileSkipsTheOracleCheckKey) {
  const std::string path = ::testing::TempDir() + "pfci_request_" +
                           std::to_string(::getpid()) + ".request";
  {
    std::ofstream out(path);
    // An oracle repro sidecar: comments, blank lines, and the harness's
    // `check` key on top of plain request fields.
    out << "# repro sidecar\n\nalgorithm=pfi\nmin_sup=4\ncheck=itemsets:3\n";
  }
  MiningRequest request;
  std::string error;
  ASSERT_TRUE(LoadRequestFile(path, &request, &error)) << error;
  EXPECT_EQ(request.algorithm, Algorithm::kPfi);
  EXPECT_EQ(request.params.min_sup, 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfci
