// Unit tests for the Chernoff / Hoeffding tail bounds (Lemma 4.1 support).
#include "src/prob/tail_bounds.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/prob/poisson_binomial.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TEST(TailBounds, TrivialBelowMean) {
  EXPECT_DOUBLE_EQ(HoeffdingUpperTail(5.0, 10, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(5.0, 10, 3.0), 1.0);
}

TEST(TailBounds, ZeroMeanUpperTailIsZero) {
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(0.0, 10, 1.0), 0.0);
}

TEST(TailBounds, AboveNIsZero) {
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(2.0, 4, 5.0), 0.0);
}

TEST(TailBounds, ThresholdExactlyAtMeanIsTrivial) {
  // s == mu sits on the boundary of every bound's validity condition
  // (they require s > mu); all must return the trivial bound 1, and
  // BestUpperTailBound must stay in [0, 1].
  EXPECT_DOUBLE_EQ(HoeffdingUpperTail(5.0, 10, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(5.0, 10, 5.0), 1.0);
  const double best = BestUpperTailBound(5.0, 10, 5.0);
  EXPECT_GE(best, 0.0);
  EXPECT_LE(best, 1.0);
}

TEST(TailBounds, ZeroMeanBoundaries) {
  // mu == 0: the sum is almost surely 0, so Pr{S >= s} = 0 for s > 0 and
  // 1 for s == 0. Exercises the d = (s - mu)/mu division by zero and the
  // KL term's log(s/n / (mu/n)) = log(inf) corner.
  EXPECT_DOUBLE_EQ(ChernoffUpperTail(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(0.0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BestUpperTailBound(0.0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BestUpperTailBound(0.0, 10, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ChernoffLowerTail(0.0, 0.0), 1.0);
}

TEST(TailBounds, ThresholdAboveNBoundaries) {
  // s > n: impossible support, tail is exactly 0. The KL form detects it
  // (s/n > 1 makes the KL divergence infinite); the best bound must
  // return 0 even though Hoeffding/Chernoff alone only decay.
  EXPECT_DOUBLE_EQ(KlChernoffUpperTail(2.0, 4, 4.5), 0.0);
  EXPECT_DOUBLE_EQ(BestUpperTailBound(2.0, 4, 4.5), 0.0);
  EXPECT_DOUBLE_EQ(BestUpperTailBound(2.0, 4, 100.0), 0.0);
  for (double s : {4.5, 5.0, 100.0}) {
    const double hoeffding = HoeffdingUpperTail(2.0, 4, s);
    EXPECT_GE(hoeffding, 0.0);
    EXPECT_LE(hoeffding, 1.0);
  }
}

TEST(TailBounds, AllOnesProbabilityRow) {
  // Every tuple certain: mu == n, S == n almost surely. Pr{S >= s} is 1
  // up to s == n and 0 beyond; the bounds must stay in [0, 1] and
  // dominate that step function. mu == n makes the KL term's
  // log((1 - s/n)/(1 - mu/n)) divide by zero — the classic corner from
  // the probabilistic FP-growth report.
  const std::size_t n = 6;
  const std::vector<double> probs(n, 1.0);
  const double mu = PoissonBinomialMean(probs);
  EXPECT_DOUBLE_EQ(mu, static_cast<double>(n));
  for (std::size_t s = 0; s <= n + 2; ++s) {
    const double exact =
        s <= n ? PoissonBinomialTailAtLeast(probs, s) : 0.0;
    const double sd = static_cast<double>(s);
    for (double bound :
         {HoeffdingUpperTail(mu, n, sd), ChernoffUpperTail(mu, sd),
          KlChernoffUpperTail(mu, n, sd), BestUpperTailBound(mu, n, sd)}) {
      EXPECT_GE(bound, 0.0) << "s=" << s;
      EXPECT_LE(bound, 1.0) << "s=" << s;
      EXPECT_GE(bound + 1e-12, exact) << "s=" << s;
    }
    const double lower = ChernoffLowerTail(mu, sd);
    EXPECT_GE(lower, 0.0) << "s=" << s;
    EXPECT_LE(lower, 1.0) << "s=" << s;
  }
}

TEST(TailBounds, DecreaseWithThreshold) {
  double previous = 1.0;
  for (double s = 6.0; s <= 10.0; s += 1.0) {
    const double bound = BestUpperTailBound(5.0, 10, s);
    EXPECT_LE(bound, previous + 1e-15);
    previous = bound;
  }
}

class BoundsValidity : public ::testing::TestWithParam<int> {};

TEST_P(BoundsValidity, UpperBoundsDominateExactTail) {
  // Property: every bound is a genuine upper bound on the exact
  // Poisson-binomial tail, for random vectors and all thresholds.
  Rng rng(GetParam() * 131 + 7);
  const std::size_t n = 2 + rng.NextBelow(30);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  const double mu = PoissonBinomialMean(probs);
  for (std::size_t s = 0; s <= n; ++s) {
    const double exact = PoissonBinomialTailAtLeast(probs, s);
    const double sd = static_cast<double>(s);
    EXPECT_GE(HoeffdingUpperTail(mu, n, sd) + 1e-12, exact) << "s=" << s;
    EXPECT_GE(ChernoffUpperTail(mu, sd) + 1e-12, exact) << "s=" << s;
    EXPECT_GE(KlChernoffUpperTail(mu, n, sd) + 1e-12, exact) << "s=" << s;
    EXPECT_GE(BestUpperTailBound(mu, n, sd) + 1e-12, exact) << "s=" << s;
  }
}

TEST_P(BoundsValidity, LowerTailBoundDominatesExactLowerTail) {
  Rng rng(GetParam() * 977 + 3);
  const std::size_t n = 2 + rng.NextBelow(30);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  const double mu = PoissonBinomialMean(probs);
  for (std::size_t s = 0; s <= n; ++s) {
    // Pr{S <= s} = 1 - Pr{S >= s+1}.
    const double exact = 1.0 - PoissonBinomialTailAtLeast(probs, s + 1);
    EXPECT_GE(ChernoffLowerTail(mu, static_cast<double>(s)) + 1e-12, exact)
        << "s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, BoundsValidity,
                         ::testing::Range(0, 25));

TEST(TailBounds, KlIsTightestOnBinomial) {
  // On Binomial(100, 0.3) at s=50, the KL bound should beat Hoeffding.
  const double mu = 30.0;
  EXPECT_LT(KlChernoffUpperTail(mu, 100, 50.0),
            HoeffdingUpperTail(mu, 100, 50.0));
}

}  // namespace
}  // namespace pfci
