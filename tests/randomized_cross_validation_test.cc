// Randomized property suite: on many random uncertain databases, every
// miner variant must return exactly the brute-force (possible-world
// enumeration) answer, and the per-itemset probabilities must match the
// exact world-sum definitions. This is the strongest correctness guard of
// the repository: any unsound pruning rule, any error in the DNF
// factorization or the DP would surface here.
#include <cstdint>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/mpfci_miner.h"
#include "src/core/pfi_miner.h"
#include "src/data/vertical_index.h"
#include "src/harness/variants.h"
#include "src/util/random.h"

namespace pfci {
namespace {

/// Builds a small random uncertain database: n transactions over
/// `num_items` items, each item kept with probability `density`,
/// transaction probabilities uniform in (0.05, 1].
UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t num_items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> items;
    for (Item i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(density)) items.push_back(i);
    }
    if (items.empty()) items.push_back(static_cast<Item>(rng.NextBelow(num_items)));
    // Occasionally force a certain transaction (p == 1), an edge case for
    // the event machinery.
    const double prob =
        rng.NextBernoulli(0.1) ? 1.0 : 0.05 + 0.95 * rng.NextDouble();
    db.Add(Itemset(std::move(items)), prob);
  }
  return db;
}

struct TrialConfig {
  std::uint64_t seed;
  std::size_t n;
  std::size_t num_items;
  double density;
  std::size_t min_sup;
  double pfct;
};

class RandomizedTrial : public ::testing::TestWithParam<TrialConfig> {};

TEST_P(RandomizedTrial, AllVariantsMatchBruteForce) {
  const TrialConfig& config = GetParam();
  Rng rng(config.seed);
  const UncertainDatabase db =
      RandomDb(rng, config.n, config.num_items, config.density);

  const std::vector<FcpGroundTruth> truth =
      internal::BruteForceMinePfci(db, config.min_sup, config.pfct);

  MiningParams params;
  params.min_sup = config.min_sup;
  params.pfct = config.pfct;
  // Small instances: the exact inclusion-exclusion path is always taken,
  // so the comparison is noise-free.
  params.exact_event_limit = 25;

  for (AlgorithmVariant variant :
       {AlgorithmVariant::kMpfci, AlgorithmVariant::kNoCh,
        AlgorithmVariant::kNoSuper, AlgorithmVariant::kNoSub,
        AlgorithmVariant::kNoBound, AlgorithmVariant::kBfs}) {
    const MiningResult result = RunVariant(variant, db, params);
    ASSERT_EQ(result.itemsets.size(), truth.size())
        << VariantName(variant) << " seed=" << config.seed << "\n"
        << result.ToString();
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result.itemsets[i].items, truth[i].items)
          << VariantName(variant) << " seed=" << config.seed;
      EXPECT_NEAR(result.itemsets[i].fcp, truth[i].fcp, 1e-9)
          << VariantName(variant) << " seed=" << config.seed;
    }
  }
}

TEST_P(RandomizedTrial, EngineMatchesPerItemsetGroundTruth) {
  const TrialConfig& config = GetParam();
  Rng rng(config.seed + 77);
  const UncertainDatabase db =
      RandomDb(rng, config.n, config.num_items, config.density);

  MiningParams params;
  params.min_sup = config.min_sup;
  params.pfct = config.pfct;
  params.exact_event_limit = 25;
  const VerticalIndex index(db);
  const FrequentProbability freq(index, params.min_sup);
  const FcpEngine engine(index, freq, params);
  Rng engine_rng(1);

  // Validate PrF and PrFC of every subset of a few random itemsets.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Item> items;
    for (Item i = 0; i < config.num_items; ++i) {
      if (rng.NextBernoulli(0.4)) items.push_back(i);
    }
    if (items.empty()) items.push_back(0);
    const Itemset x(items);
    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, x, config.min_sup);

    const TidSet tids = index.TidsOf(x);
    EXPECT_NEAR(freq.PrF(tids), truth.pr_f, 1e-9) << x.ToString();

    const FcpComputation comp = engine.ComputeFcp(x, engine_rng);
    EXPECT_NEAR(comp.fcp, truth.pr_fc, 1e-9) << x.ToString();
    if (comp.bounds_computed) {
      EXPECT_LE(comp.bounds.lower, truth.pr_fc + 1e-9) << x.ToString();
      EXPECT_GE(comp.bounds.upper, truth.pr_fc - 1e-9) << x.ToString();
    }
  }
}

TEST_P(RandomizedTrial, PfiMinerMatchesBruteForcePrF) {
  const TrialConfig& config = GetParam();
  Rng rng(config.seed + 991);
  const UncertainDatabase db =
      RandomDb(rng, config.n, config.num_items, config.density);

  const std::vector<PfiEntry> pfis =
      MinePfi(db, config.min_sup, config.pfct);
  // Every returned itemset's PrF matches brute force and exceeds pft.
  for (const PfiEntry& entry : pfis) {
    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, entry.items, config.min_sup);
    EXPECT_NEAR(entry.pr_f, truth.pr_f, 1e-9);
    EXPECT_GT(truth.pr_f, config.pfct);
  }
  // And the PFCI set (brute force) is contained in the PFI set.
  const std::vector<FcpGroundTruth> pfcis =
      internal::BruteForceMinePfci(db, config.min_sup, config.pfct);
  for (const FcpGroundTruth& pfci : pfcis) {
    bool found = false;
    for (const PfiEntry& entry : pfis) {
      if (entry.items == pfci.items) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << pfci.items.ToString();
  }
}

std::vector<TrialConfig> MakeTrials() {
  std::vector<TrialConfig> trials;
  std::uint64_t seed = 1000;
  for (std::size_t n : {4, 6, 8, 10}) {
    for (double density : {0.35, 0.6, 0.85}) {
      for (std::size_t min_sup : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}}) {
        for (double pfct : {0.3, 0.6}) {
          TrialConfig config;
          config.seed = seed++;
          config.n = n;
          config.num_items = 5;
          config.density = density;
          config.min_sup = min_sup;
          config.pfct = pfct;
          trials.push_back(config);
        }
      }
    }
  }
  return trials;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedTrial,
                         ::testing::ValuesIn(MakeTrials()));

}  // namespace
}  // namespace pfci
