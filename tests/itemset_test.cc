// Unit tests for Itemset and its set algebra.
#include "src/data/itemset.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace pfci {
namespace {

TEST(Itemset, ConstructionSortsAndDeduplicates) {
  const Itemset x({3, 1, 2, 1, 3});
  EXPECT_EQ(x.size(), 3u);
  EXPECT_EQ(x.items(), (std::vector<Item>{1, 2, 3}));
}

TEST(Itemset, EmptyBasics) {
  const Itemset empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.Contains(0));
  EXPECT_TRUE(empty.IsSubsetOf(Itemset{1, 2}));
}

TEST(Itemset, ContainsAndSubset) {
  const Itemset x{1, 3, 5};
  EXPECT_TRUE(x.Contains(3));
  EXPECT_FALSE(x.Contains(2));
  EXPECT_TRUE(x.IsSubsetOf(Itemset{0, 1, 2, 3, 4, 5}));
  EXPECT_FALSE(x.IsSubsetOf(Itemset{1, 3}));
  EXPECT_TRUE((Itemset{1, 3}).IsSubsetOf(x));
}

TEST(Itemset, ProperSuperset) {
  EXPECT_TRUE((Itemset{1, 2, 3}).IsProperSupersetOf(Itemset{1, 3}));
  EXPECT_FALSE((Itemset{1, 3}).IsProperSupersetOf(Itemset{1, 3}));
  EXPECT_FALSE((Itemset{1, 3}).IsProperSupersetOf(Itemset{2}));
}

TEST(Itemset, WithItemKeepsOrder) {
  const Itemset x{1, 5};
  EXPECT_EQ(x.WithItem(3).items(), (std::vector<Item>{1, 3, 5}));
  EXPECT_EQ(x.WithItem(0).items(), (std::vector<Item>{0, 1, 5}));
  EXPECT_EQ(x.WithItem(9).items(), (std::vector<Item>{1, 5, 9}));
}

TEST(Itemset, WithoutItem) {
  const Itemset x{1, 3, 5};
  EXPECT_EQ(x.WithoutItem(3).items(), (std::vector<Item>{1, 5}));
  EXPECT_EQ(x.WithoutItem(4).items(), (std::vector<Item>{1, 3, 5}));
}

TEST(Itemset, UnionAndIntersection) {
  const Itemset a{1, 2, 4};
  const Itemset b{2, 3, 4};
  EXPECT_EQ(a.UnionWith(b).items(), (std::vector<Item>{1, 2, 3, 4}));
  EXPECT_EQ(a.IntersectWith(b).items(), (std::vector<Item>{2, 4}));
  EXPECT_TRUE(a.IntersectWith(Itemset{7}).empty());
}

TEST(Itemset, LastItem) {
  EXPECT_EQ((Itemset{4, 9, 2}).LastItem(), 9u);
}

TEST(Itemset, ComparisonIsLexicographic) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 2}));   // Prefix sorts first.
  EXPECT_LT(Itemset({1, 0}), Itemset({1}));   // {0,1} < {1} element-wise.
}

TEST(Itemset, ToStringFormats) {
  EXPECT_EQ((Itemset{0, 1, 2}).ToString(true), "{a b c}");
  EXPECT_EQ((Itemset{0, 27}).ToString(true), "{a 27}");
  EXPECT_EQ((Itemset{5, 10}).ToString(false), "{5 10}");
  EXPECT_EQ(Itemset().ToString(), "{}");
}

TEST(Itemset, HashConsistentWithEquality) {
  const ItemsetHash hash;
  EXPECT_EQ(hash(Itemset{1, 2, 3}), hash(Itemset({3, 2, 1})));
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(Itemset{1, 2});
  set.insert(Itemset({2, 1}));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace pfci
