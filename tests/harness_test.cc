// Unit tests for the bench harness: variants, table printer, dataset
// factory, experiment helpers.
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/data/database_stats.h"
#include "src/harness/dataset_factory.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

TEST(Variants, NamesAndToggles) {
  EXPECT_STREQ(VariantName(AlgorithmVariant::kMpfci), "MPFCI");
  EXPECT_STREQ(VariantName(AlgorithmVariant::kNoBound), "MPFCI-NoBound");
  EXPECT_STREQ(VariantName(AlgorithmVariant::kBfs), "MPFCI-BFS");

  MiningParams base;
  EXPECT_FALSE(ApplyVariant(AlgorithmVariant::kNoCh, base).pruning.chernoff);
  EXPECT_FALSE(
      ApplyVariant(AlgorithmVariant::kNoSuper, base).pruning.superset);
  EXPECT_FALSE(ApplyVariant(AlgorithmVariant::kNoSub, base).pruning.subset);
  EXPECT_FALSE(
      ApplyVariant(AlgorithmVariant::kNoBound, base).pruning.fcp_bounds);
  const MiningParams bfs = ApplyVariant(AlgorithmVariant::kBfs, base);
  EXPECT_FALSE(bfs.pruning.superset);
  EXPECT_FALSE(bfs.pruning.subset);
  EXPECT_TRUE(bfs.pruning.fcp_bounds);
  EXPECT_EQ(PruningVariants().size(), 5u);
  EXPECT_NE(VariantFeatureTable().find("MPFCI-NoBound"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  2.5"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinter, NoHeader) {
  TablePrinter table;
  table.AddRow({"a", "b"});
  EXPECT_EQ(table.Render(), "a  b\n");
}

TEST(DatasetFactory, PaperExampleShape) {
  const UncertainDatabase db = MakePaperExampleDb();
  EXPECT_EQ(db.size(), 4u);
  const UncertainDatabase table4 = MakeTable4Db();
  EXPECT_EQ(table4.size(), 6u);
  EXPECT_DOUBLE_EQ(table4.prob(4), 0.4);
}

TEST(DatasetFactory, QuickDatasets) {
  const UncertainDatabase mushroom = MakeUncertainMushroom(BenchScale::kQuick);
  EXPECT_GT(mushroom.size(), 100u);
  const DatabaseStats stats = ComputeStats(mushroom);
  EXPECT_NEAR(stats.mean_prob, 0.5, 0.1);

  const UncertainDatabase quest = MakeUncertainQuest(BenchScale::kQuick);
  EXPECT_GT(quest.size(), 100u);
  EXPECT_NEAR(ComputeStats(quest).mean_prob, 0.8, 0.05);
}

TEST(DatasetFactory, AbsoluteMinSup) {
  EXPECT_EQ(AbsoluteMinSup(100, 0.3), 30u);
  EXPECT_EQ(AbsoluteMinSup(101, 0.3), 31u);  // Ceil.
  EXPECT_EQ(AbsoluteMinSup(3, 0.01), 1u);    // At least 1.
  EXPECT_EQ(AbsoluteMinSup(10, 1.0), 10u);
}

TEST(DatasetFactory, ScaleFromEnv) {
  unsetenv("PFCI_BENCH_SCALE");
  EXPECT_EQ(ScaleFromEnv(), BenchScale::kQuick);
  setenv("PFCI_BENCH_SCALE", "full", 1);
  EXPECT_EQ(ScaleFromEnv(), BenchScale::kFull);
  setenv("PFCI_BENCH_SCALE", "quick", 1);
  EXPECT_EQ(ScaleFromEnv(), BenchScale::kQuick);
  unsetenv("PFCI_BENCH_SCALE");
  EXPECT_STREQ(ScaleName(BenchScale::kFull), "full");
}

TEST(Experiment, PrecisionRecall) {
  const std::vector<Itemset> truth = {Itemset{0}, Itemset{1}, Itemset{2}};
  const std::vector<Itemset> found = {Itemset{0}, Itemset{2}, Itemset{5}};
  EXPECT_NEAR(ResultPrecision(found, truth), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ResultRecall(found, truth), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ResultPrecision({}, truth), 1.0);
  EXPECT_DOUBLE_EQ(ResultRecall(found, {}), 1.0);
}

TEST(Experiment, TimeRunIsNonNegative) {
  EXPECT_GE(TimeRun([] {}), 0.0);
}

}  // namespace
}  // namespace pfci
