// Unit tests for the conditional Bernoulli-vector sampler (the world
// sampler inside ApproxFCP).
#include "src/prob/conditional_sampler.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/prob/poisson_binomial.h"

namespace pfci {
namespace {

TEST(ConditionalSampler, ConditionProbabilityMatchesTail) {
  const std::vector<double> probs = {0.9, 0.6, 0.7, 0.9};
  for (std::size_t s = 0; s <= 5; ++s) {
    const ConditionalBernoulliSampler sampler(probs, s);
    EXPECT_NEAR(sampler.condition_probability(),
                PoissonBinomialTailAtLeast(probs, s), 1e-12)
        << "s=" << s;
  }
}

TEST(ConditionalSampler, InfeasibleCondition) {
  const ConditionalBernoulliSampler sampler({0.5, 0.5}, 3);
  EXPECT_FALSE(sampler.Feasible());
  EXPECT_DOUBLE_EQ(sampler.condition_probability(), 0.0);
}

TEST(ConditionalSampler, UnconditionalWhenMinSumZero) {
  const ConditionalBernoulliSampler sampler({0.25, 0.75}, 0);
  EXPECT_TRUE(sampler.Feasible());
  EXPECT_DOUBLE_EQ(sampler.condition_probability(), 1.0);
}

TEST(ConditionalSampler, SamplesAlwaysSatisfyCondition) {
  const std::vector<double> probs = {0.2, 0.3, 0.4, 0.5, 0.6};
  const ConditionalBernoulliSampler sampler(probs, 3);
  ASSERT_TRUE(sampler.Feasible());
  Rng rng(5);
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 2000; ++i) {
    sampler.Sample(rng, &out);
    ASSERT_EQ(out.size(), probs.size());
    int sum = 0;
    for (std::uint8_t bit : out) sum += bit;
    EXPECT_GE(sum, 3);
  }
}

TEST(ConditionalSampler, DeterministicEntriesRespected) {
  // p = 1 entries must always be present; p = 0 entries never.
  const std::vector<double> probs = {1.0, 0.0, 0.5};
  const ConditionalBernoulliSampler sampler(probs, 1);
  Rng rng(9);
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 200; ++i) {
    sampler.Sample(rng, &out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 0);
  }
}

TEST(ConditionalSampler, EmpiricalDistributionMatchesConditional) {
  // Exhaustive check on a 3-variable instance: empirical pattern
  // frequencies converge to Pr(pattern | sum >= 2).
  const std::vector<double> probs = {0.3, 0.6, 0.8};
  const std::size_t min_sum = 2;
  const ConditionalBernoulliSampler sampler(probs, min_sum);

  // Exact conditional distribution.
  std::map<int, double> expected;  // Key: bitmask.
  double z = 0.0;
  for (int mask = 0; mask < 8; ++mask) {
    int sum = 0;
    double p = 1.0;
    for (int i = 0; i < 3; ++i) {
      const bool on = (mask >> i) & 1;
      sum += on ? 1 : 0;
      p *= on ? probs[i] : 1.0 - probs[i];
    }
    if (sum >= static_cast<int>(min_sum)) {
      expected[mask] = p;
      z += p;
    }
  }
  for (auto& [mask, p] : expected) p /= z;

  Rng rng(123);
  std::map<int, int> counts;
  const int kSamples = 200000;
  std::vector<std::uint8_t> out;
  for (int s = 0; s < kSamples; ++s) {
    sampler.Sample(rng, &out);
    int mask = 0;
    for (int i = 0; i < 3; ++i) mask |= out[i] << i;
    ++counts[mask];
  }
  for (const auto& [mask, p] : expected) {
    const double freq = static_cast<double>(counts[mask]) / kSamples;
    EXPECT_NEAR(freq, p, 0.01) << "mask=" << mask;
  }
  // No out-of-condition pattern was ever produced.
  for (const auto& [mask, count] : counts) {
    EXPECT_TRUE(expected.count(mask)) << "mask=" << mask;
  }
}

class SamplerFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(SamplerFeasibility, TailTableConsistentAcrossSizes) {
  Rng rng(GetParam() + 31);
  const std::size_t n = 1 + rng.NextBelow(20);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  const std::size_t min_sum = rng.NextBelow(n + 2);
  const ConditionalBernoulliSampler sampler(probs, min_sum);
  EXPECT_NEAR(sampler.condition_probability(),
              PoissonBinomialTailAtLeast(probs, min_sum), 1e-12);
  if (sampler.Feasible()) {
    std::vector<std::uint8_t> out;
    for (int i = 0; i < 50; ++i) {
      sampler.Sample(rng, &out);
      std::size_t sum = 0;
      for (std::uint8_t bit : out) sum += bit;
      EXPECT_GE(sum, min_sum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SamplerFeasibility,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace pfci
