// Behavioral tests for the miners: pruning statistics, toggles, edge
// cases, determinism, and the baseline miners (expected support, [34]
// semantics, naive).
#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/expected_support_miner.h"
#include "src/core/mine.h"
#include "src/core/pfi_miner.h"
#include "src/core/probabilistic_support.h"
#include "src/harness/dataset_factory.h"
#include "src/harness/variants.h"
#include "src/util/random.h"

namespace pfci {
namespace {

MiningParams PaperParams() {
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;
  return params;
}

// All behavioral tests go through the Mine() front door (the free-function
// wrappers are deprecated; their parity is pinned by api_contract_test).
MiningResult MineWith(Algorithm algorithm, const UncertainDatabase& db,
                      const MiningParams& params) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params = params;
  return Mine(db, request);
}

TEST(MpfciMiner, PruningCountersFire) {
  const UncertainDatabase db = MakePaperExampleDb();
  const MiningResult result = MineWith(Algorithm::kMpfci, db, PaperParams());
  // Example 4.3: subset pruning avoids growing {ac},{ad} etc.; superset
  // pruning stops {b},{c},{d} branches.
  EXPECT_GT(result.stats.pruned_by_superset, 0u);
  EXPECT_GT(result.stats.pruned_by_subset, 0u);
  EXPECT_GT(result.stats.nodes_visited, 0u);
  EXPECT_GE(result.stats.seconds, 0.0);
  EXPECT_FALSE(result.stats.ToString().empty());
}

TEST(MpfciMiner, DisabledPruningsVisitMoreNodes) {
  const UncertainDatabase db = MakeUncertainMushroom(BenchScale::kQuick);
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), 0.5);
  params.pfct = 0.8;
  const MiningResult full = MineWith(Algorithm::kMpfci, db, params);

  MiningParams no_super = params;
  no_super.pruning.superset = false;
  const MiningResult without_super = MineWith(Algorithm::kMpfci, db, no_super);
  EXPECT_GE(without_super.stats.nodes_visited, full.stats.nodes_visited);

  MiningParams no_sub = params;
  no_sub.pruning.subset = false;
  const MiningResult without_sub = MineWith(Algorithm::kMpfci, db, no_sub);
  EXPECT_GE(without_sub.stats.nodes_visited, full.stats.nodes_visited);

  // All return the same itemsets.
  ASSERT_EQ(without_super.itemsets.size(), full.itemsets.size());
  ASSERT_EQ(without_sub.itemsets.size(), full.itemsets.size());
}

TEST(MpfciMiner, NoBoundVariantComputesMoreFcp) {
  const UncertainDatabase db = MakeUncertainMushroom(BenchScale::kQuick);
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), 0.5);
  params.pfct = 0.8;
  const MiningResult full = MineWith(Algorithm::kMpfci, db, params);
  MiningParams no_bound = params;
  no_bound.pruning.fcp_bounds = false;
  const MiningResult without = MineWith(Algorithm::kMpfci, db, no_bound);
  EXPECT_EQ(without.stats.decided_by_bounds, 0u);
  EXPECT_GE(without.stats.exact_fcp_computations +
                without.stats.sampled_fcp_computations,
            full.stats.exact_fcp_computations +
                full.stats.sampled_fcp_computations);
  EXPECT_EQ(without.itemsets.size(), full.itemsets.size());
}

TEST(MpfciMiner, DeterministicAcrossRuns) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), 0.35);
  params.pfct = 0.8;
  const MiningResult a = MineWith(Algorithm::kMpfci, db, params);
  const MiningResult b = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_DOUBLE_EQ(a.itemsets[i].fcp, b.itemsets[i].fcp);
  }
}

TEST(MpfciMiner, EmptyAndDegenerateInputs) {
  MiningParams params = PaperParams();
  EXPECT_TRUE(MineWith(Algorithm::kMpfci, UncertainDatabase{}, params).itemsets.empty());

  UncertainDatabase tiny;
  tiny.Add(Itemset{0}, 0.3);
  // One low-probability transaction, min_sup 2: nothing can qualify.
  EXPECT_TRUE(MineWith(Algorithm::kMpfci, tiny, params).itemsets.empty());

  // min_sup 1, pfct 0: the singleton qualifies iff PrFC > 0.
  MiningParams loose;
  loose.min_sup = 1;
  loose.pfct = 0.0;
  const MiningResult result = MineWith(Algorithm::kMpfci, tiny, loose);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_NEAR(result.itemsets[0].fcp, 0.3, 1e-12);
}

TEST(MpfciMiner, CertainDataMatchesExactClosedSemantics) {
  // With all probabilities 1 there is a single world: the PFCIs at any
  // pfct < 1 are exactly the frequent closed itemsets of the exact data.
  UncertainDatabase db;
  db.Add(Itemset{0, 1, 2}, 1.0);
  db.Add(Itemset{0, 1}, 1.0);
  db.Add(Itemset{0, 2}, 1.0);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.9;
  const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
  // Frequent closed at support 2: {0,1}, {0,2}, {0} (support 3).
  ASSERT_EQ(result.itemsets.size(), 3u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_EQ(result.itemsets[1].items, (Itemset{0, 1}));
  EXPECT_EQ(result.itemsets[2].items, (Itemset{0, 2}));
  for (const PfciEntry& entry : result.itemsets) {
    EXPECT_DOUBLE_EQ(entry.fcp, 1.0);
  }
}

TEST(BfsMiner, LevelwiseMatchesDfsOnQuest) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), 0.35);
  params.pfct = 0.8;
  const MiningResult dfs = MineWith(Algorithm::kMpfci, db, params);
  const MiningResult bfs = MineWith(Algorithm::kMpfciBfs, db, params);
  ASSERT_EQ(bfs.itemsets.size(), dfs.itemsets.size());
  for (std::size_t i = 0; i < dfs.itemsets.size(); ++i) {
    EXPECT_EQ(bfs.itemsets[i].items, dfs.itemsets[i].items);
  }
}

TEST(PfiMiner, SupersetOfPfciAndSortedOutput) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<PfiEntry> pfis = MinePfi(db, 2, 0.8);
  // Example 1.1: 15 probabilistic frequent itemsets (all non-empty subsets
  // of abcd except those with d that fail... exactly 15).
  EXPECT_EQ(pfis.size(), 15u);
  for (std::size_t i = 1; i < pfis.size(); ++i) {
    EXPECT_LT(pfis[i - 1].items, pfis[i].items);
  }
}

TEST(NaiveMiner, AgreesWithMpfciOnModerateData) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), 0.4);
  params.pfct = 0.8;
  params.epsilon = 0.05;
  params.delta = 0.05;
  const MiningResult naive = MineWith(Algorithm::kNaive, db, params);
  const MiningResult mpfci = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_EQ(naive.itemsets.size(), mpfci.itemsets.size());
  for (std::size_t i = 0; i < naive.itemsets.size(); ++i) {
    EXPECT_EQ(naive.itemsets[i].items, mpfci.itemsets[i].items);
  }
  EXPECT_GT(naive.stats.sampled_fcp_computations, 0u);
}

TEST(ExpectedSupportMiner, MatchesDirectComputation) {
  const UncertainDatabase db = MakePaperExampleDb();
  const auto entries = MineExpectedSupport(db, 1.7);
  for (const auto& entry : entries) {
    EXPECT_NEAR(entry.expected_support, db.ExpectedSupport(entry.items),
                1e-12);
    EXPECT_GE(entry.expected_support, 1.7);
  }
  // esup(d) = 1.8 qualifies; esup(abcd) = 1.8 too; esup(abc) = 3.1.
  bool has_d = false, has_abcd = false;
  for (const auto& entry : entries) {
    if (entry.items == Itemset{3}) has_d = true;
    if (entry.items == Itemset({0, 1, 2, 3})) has_abcd = true;
  }
  EXPECT_TRUE(has_d);
  EXPECT_TRUE(has_abcd);
  // Anti-monotone completeness: every subset of a returned itemset whose
  // esup also qualifies must be present.
  const auto contains = [&entries](const Itemset& x) {
    for (const auto& entry : entries) {
      if (entry.items == x) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(Itemset{0}));
  EXPECT_TRUE(contains(Itemset{0, 1, 2}));
}

TEST(ProbabilisticSupportMiner, AntiMonotoneAndThresholdBehavior) {
  const UncertainDatabase db = MakeTable4Db();
  // psup is anti-monotone in the itemset and non-increasing in pft.
  for (double pft : {0.5, 0.8, 0.9}) {
    const std::size_t a = ProbabilisticSupport(db, Itemset{0}, pft);
    const std::size_t ab = ProbabilisticSupport(db, Itemset{0, 1}, pft);
    const std::size_t abcd =
        ProbabilisticSupport(db, Itemset{0, 1, 2, 3}, pft);
    EXPECT_GE(a, ab);
    EXPECT_GE(ab, abcd);
  }
  EXPECT_GE(ProbabilisticSupport(db, Itemset{0}, 0.5),
            ProbabilisticSupport(db, Itemset{0}, 0.95));
}

TEST(BruteForce, ConsistencyBetweenSingleAndAllItemsets) {
  const UncertainDatabase db = MakeTable4Db();
  const auto all = BruteForceAllFcp(db, 2);
  for (const auto& entry : all) {
    const WorldProbabilities single =
        BruteForceItemsetProbabilities(db, entry.items, 2);
    EXPECT_NEAR(single.pr_fc, entry.fcp, 1e-12) << entry.items.ToString();
    EXPECT_LE(entry.fcp, single.pr_f + 1e-12);
    EXPECT_LE(entry.fcp, single.pr_c + 1e-12);
  }
}

}  // namespace
}  // namespace pfci
