// Unit tests of the fail-soft runtime primitives: CancelToken, RunBudget,
// the deterministic fair-share UnitQuota split, the per-unit
// WorkUnitBudget ledger, and the shared RunController (outcome priority,
// deadline, degradation latch, memory accounting).
#include "src/util/runtime.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace pfci {
namespace {

TEST(Outcome, NamesAreStable) {
  EXPECT_STREQ(OutcomeName(Outcome::kComplete), "complete");
  EXPECT_STREQ(OutcomeName(Outcome::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(OutcomeName(Outcome::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(OutcomeName(Outcome::kCancelled), "cancelled");
  EXPECT_STREQ(OutcomeName(Outcome::kInvalidRequest), "invalid_request");
  EXPECT_STREQ(OutcomeName(Outcome::kRejected), "rejected");
}

TEST(CancelToken, TriggersOnceAndStaysTriggered) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  token.RequestCancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(RunBudget, UnlimitedIsTheDefault) {
  RunBudget budget;
  EXPECT_TRUE(budget.Unlimited());
  budget.max_nodes = 1;
  EXPECT_FALSE(budget.Unlimited());
  budget = RunBudget{};
  budget.deadline_seconds = 0.5;
  EXPECT_FALSE(budget.Unlimited());
  budget = RunBudget{};
  budget.max_samples = 1;
  EXPECT_FALSE(budget.Unlimited());
  budget = RunBudget{};
  budget.max_resident_bytes = 1;
  EXPECT_FALSE(budget.Unlimited());
}

TEST(UnitQuota, ZeroTotalMeansUnlimited) {
  EXPECT_EQ(UnitQuota(0, 0, 4), kUnlimitedQuota);
  EXPECT_EQ(UnitQuota(0, 3, 4), kUnlimitedQuota);
}

TEST(UnitQuota, SharesSumToTotal) {
  for (const std::uint64_t total : {1u, 7u, 100u, 101u, 4096u}) {
    for (const std::size_t units : {1u, 2u, 3u, 7u, 16u}) {
      std::uint64_t sum = 0;
      for (std::size_t u = 0; u < units; ++u) {
        sum += UnitQuota(total, u, units);
      }
      EXPECT_EQ(sum, total) << "total=" << total << " units=" << units;
    }
  }
}

TEST(UnitQuota, RemainderGoesToTheFirstUnits) {
  // 10 over 4 units: 3, 3, 2, 2 — a pure function of (total, unit, n).
  EXPECT_EQ(UnitQuota(10, 0, 4), 3u);
  EXPECT_EQ(UnitQuota(10, 1, 4), 3u);
  EXPECT_EQ(UnitQuota(10, 2, 4), 2u);
  EXPECT_EQ(UnitQuota(10, 3, 4), 2u);
}

TEST(WorkUnitBudget, DefaultIsUnlimited) {
  WorkUnitBudget unit;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(unit.TakeNode());
    EXPECT_TRUE(unit.TakeSamples(1u << 20));
  }
  EXPECT_FALSE(unit.truncated);
}

TEST(WorkUnitBudget, TakeNodeRefusesAtQuotaAndSetsTruncated) {
  WorkUnitBudget unit;
  unit.node_quota = 3;
  EXPECT_TRUE(unit.TakeNode());
  EXPECT_TRUE(unit.TakeNode());
  EXPECT_TRUE(unit.TakeNode());
  EXPECT_FALSE(unit.truncated);
  EXPECT_FALSE(unit.TakeNode());
  EXPECT_TRUE(unit.truncated);
  EXPECT_EQ(unit.nodes_used, 3u);
}

TEST(WorkUnitBudget, TakeSamplesIsAllOrNothing) {
  WorkUnitBudget unit;
  unit.sample_quota = 100;
  EXPECT_TRUE(unit.TakeSamples(60));
  // 50 > 40 remaining: refused whole, nothing deducted.
  EXPECT_FALSE(unit.TakeSamples(50));
  EXPECT_TRUE(unit.truncated);
  EXPECT_EQ(unit.samples_used, 60u);
}

TEST(RunController, DefaultNeverStops) {
  RunController controller;
  EXPECT_FALSE(controller.active());
  EXPECT_FALSE(controller.Checkpoint());
  EXPECT_FALSE(controller.StopRequested());
  EXPECT_FALSE(controller.truncated());
  EXPECT_EQ(controller.outcome(), Outcome::kComplete);
  const WorkUnitBudget unit = controller.UnitBudget(0, 1);
  EXPECT_EQ(unit.node_quota, kUnlimitedQuota);
  EXPECT_EQ(unit.sample_quota, kUnlimitedQuota);
}

TEST(RunController, CheckpointSeesCancellation) {
  CancelToken token;
  RunController controller(RunBudget{}, &token);
  EXPECT_TRUE(controller.active());
  EXPECT_FALSE(controller.Checkpoint());
  token.RequestCancel();
  EXPECT_TRUE(controller.Checkpoint());
  EXPECT_TRUE(controller.StopRequested());
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);
  EXPECT_TRUE(controller.truncated());
}

TEST(RunController, CheckpointSeesExpiredDeadline) {
  RunBudget budget;
  budget.deadline_seconds = 1e-9;  // Expired by the time we poll.
  RunController controller(budget, nullptr);
  EXPECT_TRUE(controller.Checkpoint());
  EXPECT_EQ(controller.outcome(), Outcome::kDeadlineExceeded);
}

TEST(RunController, HighestPriorityOutcomeWins) {
  // Enum value order doubles as priority: cancelled > deadline > budget.
  RunController controller;
  controller.RecordTruncation(Outcome::kBudgetExhausted);
  EXPECT_EQ(controller.outcome(), Outcome::kBudgetExhausted);
  EXPECT_FALSE(controller.StopRequested()) << "truncation is not a stop";
  controller.RecordStop(Outcome::kCancelled);
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);
  controller.RecordTruncation(Outcome::kBudgetExhausted);  // Cannot demote.
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);
  EXPECT_TRUE(controller.StopRequested());
}

TEST(RunController, UnitBudgetSplitsTheRunBudget) {
  RunBudget budget;
  budget.max_nodes = 10;
  budget.max_samples = 7;
  RunController controller(budget, nullptr);
  std::uint64_t nodes = 0;
  std::uint64_t samples = 0;
  for (std::size_t u = 0; u < 4; ++u) {
    const WorkUnitBudget unit = controller.UnitBudget(u, 4);
    nodes += unit.node_quota;
    samples += unit.sample_quota;
  }
  EXPECT_EQ(nodes, 10u);
  EXPECT_EQ(samples, 7u);
}

TEST(RunController, DegradesOnlyUnderADeadline) {
  RunController no_deadline;
  EXPECT_FALSE(no_deadline.ShouldDegradeFcp());

  RunBudget budget;
  budget.deadline_seconds = 3600.0;  // Far away: never an actual stop.
  budget.degrade_fraction = 1e-12;   // Pressure point already passed.
  RunController controller(budget, nullptr);
  EXPECT_TRUE(controller.ShouldDegradeFcp());
  EXPECT_TRUE(controller.ShouldDegradeFcp()) << "latch must hold";
  EXPECT_FALSE(controller.Checkpoint()) << "degradation is not a stop";
  EXPECT_EQ(controller.outcome(), Outcome::kComplete);
}

TEST(RunController, SuspendModeDrainsAtUnitBoundary) {
  RunBudget budget;
  budget.max_nodes = 10;
  RunController controller(budget, nullptr);
  controller.ArmSuspend();
  EXPECT_TRUE(controller.active());
  EXPECT_TRUE(controller.ShouldStartUnit());
  EXPECT_FALSE(controller.SuspendRequested());

  // Armed ledgers are unlimited: budgets act at unit granularity.
  const WorkUnitBudget ledger = controller.UnitBudget(0, 4);
  EXPECT_EQ(ledger.node_quota, kUnlimitedQuota);
  EXPECT_EQ(ledger.sample_quota, kUnlimitedQuota);

  controller.NoteUnitWork(6, 0);
  EXPECT_TRUE(controller.ShouldStartUnit()) << "under budget: keep going";
  controller.NoteUnitWork(6, 0);  // Total 12 >= 10: drain requested.
  EXPECT_TRUE(controller.SuspendRequested());
  EXPECT_FALSE(controller.ShouldStartUnit()) << "new units are refused";
  EXPECT_FALSE(controller.StopRequested())
      << "a drain is not a stop: in-flight units run to completion";
  EXPECT_FALSE(controller.Checkpoint());
  EXPECT_EQ(controller.outcome(), Outcome::kBudgetExhausted);
}

TEST(RunController, SuspendArmedControllerIsActiveWithoutLimits) {
  RunController controller(RunBudget{}, nullptr);
  EXPECT_FALSE(controller.active());
  controller.ArmSuspend();
  EXPECT_TRUE(controller.active())
      << "snapshot plumbing needs the controller wired even when unlimited";
  controller.NoteUnitWork(1000, 1000);  // No budget: never drains.
  EXPECT_FALSE(controller.SuspendRequested());
}

TEST(RunController, ClockPollsBackOffExponentially) {
  RunBudget budget;
  budget.deadline_seconds = 3600.0;  // Far away: the stride path rules.
  RunController controller(budget, nullptr);
  const std::uint64_t kCalls = 1024;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_FALSE(controller.Checkpoint());
  }
  // Doubling stride polls at calls 0, 1, 3, 7, 15, 31, then every 32:
  // 6 warm-up polls plus ~(1024 - 31) / 32 steady-state ones. Anything
  // near one poll per call means the cache regressed.
  EXPECT_GE(controller.clock_polls(), 6u);
  EXPECT_LE(controller.clock_polls(), 6u + kCalls / 32 + 2)
      << "Checkpoint() must amortize clock reads, not poll per call";
}

TEST(RunController, MemoryBudgetTripsAGlobalStop) {
  RunBudget budget;
  budget.max_resident_bytes = 1000;
  RunController controller(budget, nullptr);
  controller.ChargeBytes(600);
  EXPECT_FALSE(controller.StopRequested());
  EXPECT_EQ(controller.resident_bytes(), 600u);
  controller.ReleaseBytes(600);
  controller.ChargeBytes(900);
  EXPECT_FALSE(controller.StopRequested());
  controller.ChargeBytes(200);  // High-water 1100 > 1000.
  EXPECT_TRUE(controller.StopRequested());
  EXPECT_EQ(controller.outcome(), Outcome::kBudgetExhausted);
}

}  // namespace
}  // namespace pfci
