// Tests for the item-level uncertainty model ([9]): containment
// probabilities, expected support, and both miners — cross-validated
// against explicit enumeration of item-occurrence worlds.
#include <cstdint>
#include <functional>

#include <gtest/gtest.h>

#include "src/core/item_uncertain_miners.h"
#include "src/core/mine.h"
#include "src/prob/poisson_binomial.h"
#include "src/util/random.h"

namespace pfci {
namespace {

/// Item-level mining through the unified Mine() overload. The expected
/// support (item-esup) or frequent probability (item-pfi) is carried in
/// the pr_f field.
MiningResult MineItemLevel(const ItemUncertainDatabase& db,
                           Algorithm algorithm, double min_esup,
                           std::size_t min_sup, double pft) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.min_esup = min_esup;
  request.params.min_sup = min_sup;
  request.params.pfct = pft;
  MiningResult result = Mine(db, request);
  EXPECT_TRUE(result.ok()) << result.status_message;
  return result;
}

/// Enumerates every world of an item-uncertain database (each item
/// occurrence flips its own coin) and calls visit(world transactions,
/// probability). Total occurrences must stay <= 20.
void EnumerateItemWorlds(
    const ItemUncertainDatabase& db,
    const std::function<void(const std::vector<Itemset>&, double)>& visit) {
  std::size_t total_coins = 0;
  for (const auto& t : db.transactions()) total_coins += t.items.size();
  ASSERT_LE(total_coins, 20u);
  const std::uint64_t limit = std::uint64_t{1} << total_coins;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    std::vector<Itemset> world;
    double prob = 1.0;
    std::size_t coin = 0;
    for (const auto& t : db.transactions()) {
      std::vector<Item> present;
      for (const ProbItem& occurrence : t.items) {
        const bool on = (mask >> coin) & 1;
        ++coin;
        prob *= on ? occurrence.prob : 1.0 - occurrence.prob;
        if (on) present.push_back(occurrence.item);
      }
      world.push_back(Itemset(std::move(present)));
    }
    visit(world, prob);
  }
}

ItemUncertainDatabase SmallDb() {
  // 3 transactions, 7 occurrences total.
  ItemUncertainDatabase db;
  db.Add({{0, 0.9}, {1, 0.5}, {2, 0.7}});
  db.Add({{0, 0.4}, {1, 0.8}});
  db.Add({{1, 0.6}, {2, 0.3}});
  return db;
}

TEST(ItemUncertainDatabase, ContainmentProbs) {
  const ItemUncertainDatabase db = SmallDb();
  EXPECT_NEAR(db.transaction(0).ContainmentProb(Itemset{0, 1}), 0.45, 1e-12);
  EXPECT_NEAR(db.transaction(1).ContainmentProb(Itemset{0, 1}), 0.32, 1e-12);
  EXPECT_DOUBLE_EQ(db.transaction(2).ContainmentProb(Itemset{0}), 0.0);
  EXPECT_DOUBLE_EQ(db.transaction(0).ContainmentProb(Itemset{}), 1.0);
  EXPECT_EQ(db.transaction(0).CertainItems(), (Itemset{0, 1, 2}));
  EXPECT_EQ(db.ItemUniverse(), (std::vector<Item>{0, 1, 2}));
}

TEST(ItemUncertainDatabase, ExpectedSupportMatchesWorldSum) {
  const ItemUncertainDatabase db = SmallDb();
  for (const Itemset& x : {Itemset{0}, Itemset{1}, Itemset{0, 1},
                           Itemset{1, 2}, Itemset{0, 1, 2}}) {
    double world_sum = 0.0;
    EnumerateItemWorlds(db, [&](const std::vector<Itemset>& world,
                                double prob) {
      for (const Itemset& t : world) {
        if (x.IsSubsetOf(t)) world_sum += prob;
      }
    });
    EXPECT_NEAR(db.ExpectedSupport(x), world_sum, 1e-12) << x.ToString();
  }
}

TEST(ItemUncertainDatabase, SupportIsPoissonBinomialOverContainment) {
  const ItemUncertainDatabase db = SmallDb();
  const Itemset x{1, 2};
  // Distribution of support(X) over item-occurrence worlds.
  std::vector<double> world_pmf(db.size() + 1, 0.0);
  EnumerateItemWorlds(db, [&](const std::vector<Itemset>& world,
                              double prob) {
    std::size_t support = 0;
    for (const Itemset& t : world) {
      if (x.IsSubsetOf(t)) ++support;
    }
    world_pmf[support] += prob;
  });
  // Poisson-binomial over the containment probabilities.
  const std::vector<double> pmf = PoissonBinomialPmf(db.ContainmentProbs(x));
  for (std::size_t s = 0; s <= db.size(); ++s) {
    EXPECT_NEAR(world_pmf[s], pmf[s], 1e-12) << "s=" << s;
  }
}

TEST(ItemUncertainMiners, ExpectedSupportMinerComplete) {
  const ItemUncertainDatabase db = SmallDb();
  const MiningResult mined = MineItemLevel(
      db, Algorithm::kItemExpectedSupport, 0.5, /*min_sup=*/1, /*pft=*/0.8);
  for (const auto& entry : mined.itemsets) {
    EXPECT_NEAR(entry.pr_f, db.ExpectedSupport(entry.items), 1e-12);
    EXPECT_GE(entry.pr_f, 0.5);
  }
  // Completeness: check every subset of the universe by hand.
  const auto contains = [&mined](const Itemset& x) {
    for (const auto& entry : mined.itemsets) {
      if (entry.items == x) return true;
    }
    return false;
  };
  for (std::uint32_t mask = 1; mask < 8; ++mask) {
    std::vector<Item> items;
    for (Item i = 0; i < 3; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    const Itemset x(items);
    EXPECT_EQ(contains(x), db.ExpectedSupport(x) >= 0.5) << x.ToString();
  }
}

TEST(ItemUncertainMiners, PfiMinerMatchesWorldEnumeration) {
  const ItemUncertainDatabase db = SmallDb();
  const std::size_t min_sup = 2;
  for (double pft : {0.1, 0.3, 0.6}) {
    const MiningResult mined = MineItemLevel(
        db, Algorithm::kItemPfi, /*min_esup=*/0.0, min_sup, pft);
    for (std::uint32_t mask = 1; mask < 8; ++mask) {
      std::vector<Item> items;
      for (Item i = 0; i < 3; ++i) {
        if (mask & (1u << i)) items.push_back(i);
      }
      const Itemset x(items);
      double pr_f = 0.0;
      EnumerateItemWorlds(db, [&](const std::vector<Itemset>& world,
                                  double prob) {
        std::size_t support = 0;
        for (const Itemset& t : world) {
          if (x.IsSubsetOf(t)) ++support;
        }
        if (support >= min_sup) pr_f += prob;
      });
      const PfciEntry* found = nullptr;
      for (const auto& entry : mined.itemsets) {
        if (entry.items == x) found = &entry;
      }
      if (pr_f > pft) {
        ASSERT_NE(found, nullptr) << x.ToString() << " pft=" << pft;
        EXPECT_NEAR(found->pr_f, pr_f, 1e-12);
      } else {
        EXPECT_EQ(found, nullptr) << x.ToString() << " pft=" << pft;
      }
    }
  }
}

TEST(ItemUncertainMiners, RandomizedAgainstEnumeration) {
  Rng rng(8080);
  for (int trial = 0; trial < 10; ++trial) {
    ItemUncertainDatabase db;
    std::size_t coins = 0;
    while (coins < 14) {
      std::vector<ProbItem> occurrences;
      for (Item i = 0; i < 4 && coins + occurrences.size() < 16; ++i) {
        if (rng.NextBernoulli(0.6)) {
          occurrences.push_back(
              ProbItem{i, 0.1 + 0.9 * rng.NextDouble()});
        }
      }
      if (occurrences.empty()) continue;
      coins += occurrences.size();
      db.Add(std::move(occurrences));
    }
    const double min_esup = 0.5 + rng.NextDouble();
    const MiningResult mined = MineItemLevel(
        db, Algorithm::kItemExpectedSupport, min_esup, /*min_sup=*/1,
        /*pft=*/0.8);
    for (const auto& entry : mined.itemsets) {
      EXPECT_NEAR(entry.pr_f, db.ExpectedSupport(entry.items), 1e-9);
    }
  }
}

}  // namespace
}  // namespace pfci
