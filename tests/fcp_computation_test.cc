// Tests for the three frequent-closed-probability computations: Lemma 4.4
// bounds, exact inclusion-exclusion, and the ApproxFCP sampler — all
// cross-checked against possible-world ground truth and each other.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/fcp_bounds.h"
#include "src/core/fcp_engine.h"
#include "src/core/fcp_exact.h"
#include "src/core/fcp_sampler.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    if (row.empty()) row.push_back(static_cast<Item>(rng.NextBelow(items)));
    db.Add(Itemset(std::move(row)), 0.05 + 0.95 * rng.NextDouble());
  }
  return db;
}

TEST(FcpExact, PaperExampleValues) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  {
    const Itemset abc{0, 1, 2};
    const TidSet tids = index.TidsOf(abc);
    const ExtensionEventSet events(index, freq, abc, tids);
    EXPECT_NEAR(ExactFrequentNonClosedProbability(events), 0.0972, 1e-12);
    EXPECT_NEAR(ExactFcpByInclusionExclusion(0.9726, events), 0.8754, 1e-12);
  }
  {
    const Itemset abcd{0, 1, 2, 3};
    const TidSet tids = index.TidsOf(abcd);
    const ExtensionEventSet events(index, freq, abcd, tids);
    EXPECT_EQ(events.size(), 0u);  // Maximal: no extensions.
    EXPECT_DOUBLE_EQ(ExactFrequentNonClosedProbability(events), 0.0);
  }
}

TEST(FcpBounds, NoEventsCollapseToPrF) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  const Itemset abcd{0, 1, 2, 3};
  const TidSet tids = index.TidsOf(abcd);
  const ExtensionEventSet events(index, freq, abcd, tids);
  const FcpBounds bounds = ComputeFcpBounds(0.81, events);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.81);
  EXPECT_DOUBLE_EQ(bounds.upper, 0.81);
}

class FcpCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(FcpCrossCheck, BoundsBracketExactWhichMatchesBruteForce) {
  Rng rng(GetParam() * 7919 + 13);
  const UncertainDatabase db = RandomDb(rng, 7 + rng.NextBelow(4), 5, 0.55);
  const std::size_t min_sup = 1 + rng.NextBelow(3);
  const VerticalIndex index(db);
  const FrequentProbability freq(index, min_sup);

  for (Item a = 0; a < 5; ++a) {
    const Itemset x{a};
    const TidSet tids = index.TidsOf(x);
    if (tids.size() < min_sup) continue;
    const double pr_f = freq.PrF(tids);
    const ExtensionEventSet events(index, freq, x, tids);

    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, x, min_sup);
    const double exact = ExactFcpByInclusionExclusion(pr_f, events);
    EXPECT_NEAR(exact, truth.pr_fc, 1e-9) << x.ToString();

    const FcpBounds bounds = ComputeFcpBounds(pr_f, events);
    EXPECT_LE(bounds.lower, truth.pr_fc + 1e-9) << x.ToString();
    EXPECT_GE(bounds.upper, truth.pr_fc - 1e-9) << x.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, FcpCrossCheck,
                         ::testing::Range(0, 30));

TEST(FcpSampler, NoEventsReturnsPrF) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  const Itemset abcd{0, 1, 2, 3};
  const TidSet tids = index.TidsOf(abcd);
  const ExtensionEventSet events(index, freq, abcd, tids);
  Rng rng(1);
  const ApproxFcpResult result = ApproxFcp(0.81, events, 0.1, 0.1, rng);
  EXPECT_DOUBLE_EQ(result.fcp, 0.81);
  EXPECT_EQ(result.samples, 0u);
}

TEST(FcpSampler, ConvergesToExactOnPaperExample) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  const Itemset abc{0, 1, 2};
  const TidSet tids = index.TidsOf(abc);
  const ExtensionEventSet events(index, freq, abc, tids);
  Rng rng(42);
  // Tight epsilon/delta: estimate must be very close to 0.8754.
  const ApproxFcpResult result = ApproxFcp(0.9726, events, 0.02, 0.02, rng);
  EXPECT_NEAR(result.fcp, 0.8754, 0.01);
  EXPECT_NEAR(result.fnc, 0.0972, 0.01);
  EXPECT_GT(result.samples, 1000u);
}

TEST_P(FcpCrossCheck, SamplerWithinToleranceOfExact) {
  Rng rng(GetParam() * 104729 + 7);
  const UncertainDatabase db = RandomDb(rng, 8, 5, 0.6);
  const std::size_t min_sup = 1 + rng.NextBelow(2);
  const VerticalIndex index(db);
  const FrequentProbability freq(index, min_sup);

  const Itemset x{0};
  const TidSet tids = index.TidsOf(x);
  if (tids.size() < min_sup) GTEST_SKIP();
  const double pr_f = freq.PrF(tids);
  const ExtensionEventSet events(index, freq, x, tids);
  const double exact_fnc = ExactFrequentNonClosedProbability(events);

  Rng sample_rng(GetParam());
  const ApproxFcpResult result = ApproxFcp(pr_f, events, 0.05, 0.05, sample_rng);
  // FPRAS guarantee is relative error on the union; allow 3x slack for the
  // (0.05) delta across the parameterized sweep.
  EXPECT_NEAR(result.fnc, exact_fnc,
              std::max(0.15 * exact_fnc, 0.01))
      << "events=" << events.size();
}

TEST(FcpEngine, MethodSelection) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;
  Rng rng(3);
  {
    // On {abc} there is a single extension event, so the Lemma 4.4 bounds
    // collapse to the exact value and decide by themselves.
    const FcpEngine engine(index, freq, params);
    const FcpComputation comp = engine.ComputeFcp(Itemset{0, 1, 2}, rng);
    EXPECT_EQ(comp.method, FcpMethod::kBoundsDecided);
    EXPECT_NEAR(comp.fcp, 0.8754, 1e-9);
  }
  {
    // With bounds off, the small event count routes to inclusion-exclusion.
    MiningParams no_bounds = params;
    no_bounds.pruning.fcp_bounds = false;
    const FcpEngine engine(index, freq, no_bounds);
    const FcpComputation comp = engine.ComputeFcp(Itemset{0, 1, 2}, rng);
    EXPECT_EQ(comp.method, FcpMethod::kExact);
    EXPECT_NEAR(comp.fcp, 0.8754, 1e-12);
  }
  {
    // force_sampling (and bounds off) -> sampled.
    MiningParams sampling = params;
    sampling.force_sampling = true;
    sampling.pruning.fcp_bounds = false;
    const FcpEngine engine(index, freq, sampling);
    const FcpComputation comp = engine.ComputeFcp(Itemset{0, 1, 2}, rng);
    EXPECT_EQ(comp.method, FcpMethod::kSampled);
    EXPECT_NEAR(comp.fcp, 0.8754, 0.05);
  }
  {
    // Same-count superset -> zero-by-count, no sampling at all.
    const FcpEngine engine(index, freq, params);
    const FcpComputation comp = engine.ComputeFcp(Itemset{0, 1}, rng);
    EXPECT_EQ(comp.method, FcpMethod::kZeroByCount);
    EXPECT_DOUBLE_EQ(comp.fcp, 0.0);
    EXPECT_FALSE(comp.is_pfci);
  }
}

TEST(FcpEngine, EvaluateRespectsPfct) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;
  const FcpEngine engine(index, freq, params);
  Rng rng(5);
  MiningStats stats;
  // An itemset whose PrF is below pfct is rejected without any event work.
  const Itemset d{3};
  const TidSet d_tids = index.TidsOf(d);
  const FcpComputation comp =
      engine.Evaluate(d, d_tids, /*pr_f=*/0.5, rng, &stats);
  EXPECT_FALSE(comp.is_pfci);
  EXPECT_EQ(comp.method, FcpMethod::kUndecided);
  EXPECT_EQ(stats.exact_fcp_computations, 0u);
}

TEST(FcpEngine, SampledEstimateClampedIntoBounds) {
  // With bounds on and forced sampling, the reported fcp must lie inside
  // [lower, upper].
  Rng rng(404);
  const UncertainDatabase db = RandomDb(rng, 10, 5, 0.6);
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.0;
  params.force_sampling = true;
  params.epsilon = 0.3;  // Deliberately sloppy sampling.
  params.delta = 0.3;
  const FcpEngine engine(index, freq, params);
  for (Item a = 0; a < 5; ++a) {
    Rng item_rng(a);
    const FcpComputation comp = engine.ComputeFcp(Itemset{a}, item_rng);
    if (comp.bounds_computed && comp.method == FcpMethod::kSampled) {
      EXPECT_GE(comp.fcp, comp.bounds.lower);
      EXPECT_LE(comp.fcp, comp.bounds.upper);
    }
  }
}

}  // namespace
}  // namespace pfci
