// RetryWithBackoff: deterministic seeded jitter, exponential growth with
// a cap, attempt accounting, and the no-sleep-after-final-attempt rule.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/retry.h"

namespace pfci {
namespace {

TEST(Retry, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter_fraction = 0.0;  // Pure schedule, no jitter.
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 1), 0.01);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 2), 0.02);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 3), 0.04);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 4), 0.05);  // Capped.
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 10), 0.05);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(policy, 0), 0.0);  // 1-based.
}

TEST(Retry, JitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.jitter_fraction = 0.1;
  policy.seed = 7;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double a = BackoffForAttempt(policy, attempt);
    const double b = BackoffForAttempt(policy, attempt);
    EXPECT_EQ(a, b) << "jitter must be deterministic (attempt " << attempt
                    << ")";
    RetryPolicy unjittered = policy;
    unjittered.jitter_fraction = 0.0;
    const double nominal = BackoffForAttempt(unjittered, attempt);
    EXPECT_GE(a, nominal * 0.9) << attempt;
    EXPECT_LE(a, nominal * 1.1) << attempt;
  }
  // A different seed draws a different factor somewhere in the window.
  RetryPolicy other = policy;
  other.seed = 8;
  bool any_different = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    if (BackoffForAttempt(policy, attempt) !=
        BackoffForAttempt(other, attempt)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Retry, StopsOnFirstSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  const RetryResult result = RetryWithBackoff(
      policy,
      [&calls]() -> std::string {
        ++calls;
        return calls < 3 ? "transient failure" : "";
      },
      [](double) {});  // No real sleeping in tests.
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(result.last_error.empty());
}

TEST(Retry, ExhaustionReportsLastErrorAndNeverSleepsAfterFinalAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.25;
  std::vector<double> sleeps;
  int calls = 0;
  const RetryResult result = RetryWithBackoff(
      policy,
      [&calls]() -> std::string {
        ++calls;
        return "error " + std::to_string(calls);
      },
      [&sleeps](double seconds) { sleeps.push_back(seconds); });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.last_error, "error 3");
  // Backoff between attempts only: 3 attempts → 2 sleeps.
  EXPECT_EQ(sleeps.size(), 2u);
  double total = 0.0;
  for (const double s : sleeps) total += s;
  EXPECT_DOUBLE_EQ(result.total_backoff_seconds, total);
}

TEST(Retry, SingleAttemptPolicyNeverBacksOff) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  std::vector<double> sleeps;
  const RetryResult result = RetryWithBackoff(
      policy, []() -> std::string { return "fails"; },
      [&sleeps](double seconds) { sleeps.push_back(seconds); });
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_DOUBLE_EQ(result.total_backoff_seconds, 0.0);
}

}  // namespace
}  // namespace pfci
