// Unit tests for the uncertain-data substrate: database, tid-lists,
// vertical index, possible worlds, enumeration, I/O, statistics.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/data/database_io.h"
#include "src/data/database_stats.h"
#include "src/data/possible_world.h"
#include "src/data/tidlist.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"
#include "src/data/world_enumerator.h"
#include "src/harness/dataset_factory.h"

namespace pfci {
namespace {

TEST(TidListAlgebra, IntersectAndDifference) {
  const TidList a = {1, 3, 5, 7};
  const TidList b = {3, 4, 5, 8};
  EXPECT_EQ(IntersectTids(a, b), (TidList{3, 5}));
  EXPECT_EQ(IntersectTidsSize(a, b), 2u);
  EXPECT_EQ(DifferenceTids(a, b), (TidList{1, 7}));
  EXPECT_EQ(DifferenceTids(b, a), (TidList{4, 8}));
  EXPECT_TRUE(TidsSubset({3, 5}, a));
  EXPECT_FALSE(TidsSubset({3, 4}, a));
  EXPECT_TRUE(TidsSubset({}, a));
}

TEST(UncertainDatabase, BasicAccessors) {
  const UncertainDatabase db = MakePaperExampleDb();
  EXPECT_EQ(db.size(), 4u);
  EXPECT_DOUBLE_EQ(db.prob(1), 0.6);
  EXPECT_EQ(db.ItemUniverse(), (std::vector<Item>{0, 1, 2, 3}));
  EXPECT_EQ(db.MaxItemPlusOne(), 4u);
  EXPECT_EQ(db.Count(Itemset{0, 3}), 2u);          // abcd rows.
  EXPECT_EQ(db.Count(Itemset{0, 1, 2}), 4u);       // all rows.
  EXPECT_NEAR(db.ExpectedSupport(Itemset{3}), 1.8, 1e-12);
}

TEST(VerticalIndex, TidListsMatchDatabase) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  EXPECT_EQ(index.TidsOfItem(0), (TidList{0, 1, 2, 3}));
  EXPECT_EQ(index.TidsOfItem(3), (TidList{0, 3}));
  EXPECT_TRUE(index.TidsOfItem(99).empty());
  EXPECT_EQ(index.TidsOf(Itemset{0, 3}), (TidList{0, 3}));
  EXPECT_EQ(index.TidsOf(Itemset{}), (TidList{0, 1, 2, 3}));
  EXPECT_EQ(index.Count(Itemset{0, 1, 2}), 4u);
  EXPECT_EQ(index.occurring_items(), (std::vector<Item>{0, 1, 2, 3}));
  EXPECT_EQ(index.ProbsOf({0, 1}), (std::vector<double>{0.9, 0.6}));
}

TEST(PossibleWorld, SupportAndProbability) {
  const UncertainDatabase db = MakePaperExampleDb();
  PossibleWorld world(4);
  world.SetPresent(0, true);
  world.SetPresent(2, true);
  EXPECT_EQ(world.NumPresent(), 2u);
  EXPECT_EQ(world.PresentTids(), (std::vector<Tid>{0, 2}));
  EXPECT_EQ(world.Support(db, Itemset{0, 1, 2}), 2u);
  EXPECT_EQ(world.Support(db, Itemset{3}), 1u);
  // Pr = .9 * (1-.6) * .7 * (1-.9).
  EXPECT_NEAR(world.Probability(db), 0.9 * 0.4 * 0.7 * 0.1, 1e-15);
}

TEST(PossibleWorld, ClosednessMatchesDefinition) {
  const UncertainDatabase db = MakePaperExampleDb();
  // World {T1, T2}: abc has support 2, abcd support 1 -> abc closed.
  PossibleWorld world(4);
  world.SetPresent(0, true);
  world.SetPresent(1, true);
  EXPECT_TRUE(world.IsClosed(db, Itemset{0, 1, 2}));
  EXPECT_TRUE(world.IsClosed(db, Itemset{0, 1, 2, 3}));
  EXPECT_FALSE(world.IsClosed(db, Itemset{0, 1}));  // ab -> abc same support.
  // World {T1, T4}: every transaction is abcd, so abc is NOT closed.
  PossibleWorld world2(4);
  world2.SetPresent(0, true);
  world2.SetPresent(3, true);
  EXPECT_FALSE(world2.IsClosed(db, Itemset{0, 1, 2}));
  EXPECT_TRUE(world2.IsClosed(db, Itemset{0, 1, 2, 3}));
  EXPECT_TRUE(world2.IsFrequentClosed(db, Itemset{0, 1, 2, 3}, 2));
  // An absent itemset is "not closed" by the paper's convention.
  PossibleWorld empty(4);
  EXPECT_FALSE(empty.IsClosed(db, Itemset{0}));
}

TEST(WorldEnumerator, ProbabilitiesSumToOne) {
  const UncertainDatabase db = MakePaperExampleDb();
  double total = 0.0;
  std::size_t count = 0;
  EnumerateWorlds(db, [&](const PossibleWorld&, double prob) {
    total += prob;
    ++count;
  });
  EXPECT_EQ(count, 16u);  // Table III: 16 possible worlds.
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(WorldEnumerator, SamplerMatchesMarginals) {
  const UncertainDatabase db = MakePaperExampleDb();
  Rng rng(21);
  std::vector<int> present_counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const PossibleWorld world = SampleWorld(db, rng);
    for (Tid tid = 0; tid < 4; ++tid) {
      if (world.IsPresent(tid)) ++present_counts[tid];
    }
  }
  const double expected[] = {0.9, 0.6, 0.7, 0.9};
  for (Tid tid = 0; tid < 4; ++tid) {
    EXPECT_NEAR(static_cast<double>(present_counts[tid]) / n, expected[tid],
                0.01);
  }
}

TEST(DatabaseIo, RoundTripUncertain) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::string path =
      (std::filesystem::temp_directory_path() / "pfci_io_test.utd").string();
  ASSERT_TRUE(SaveUncertainDatabase(db, path));
  UncertainDatabase loaded;
  std::string error;
  ASSERT_TRUE(LoadUncertainDatabase(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), db.size());
  for (Tid tid = 0; tid < db.size(); ++tid) {
    EXPECT_EQ(loaded.transaction(tid).items, db.transaction(tid).items);
    EXPECT_DOUBLE_EQ(loaded.prob(tid), db.prob(tid));
  }
  std::remove(path.c_str());
}

TEST(DatabaseIo, RejectsMalformedFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string bad_prob = (dir / "pfci_bad_prob.utd").string();
  {
    std::ofstream out(bad_prob);
    out << "1.5 0 1\n";
  }
  UncertainDatabase db;
  std::string error;
  EXPECT_FALSE(LoadUncertainDatabase(bad_prob, &db, &error));
  EXPECT_NE(error.find("probability"), std::string::npos);
  EXPECT_TRUE(db.empty());
  std::remove(bad_prob.c_str());

  const std::string bad_item = (dir / "pfci_bad_item.utd").string();
  {
    std::ofstream out(bad_item);
    out << "0.5 0 x\n";
  }
  EXPECT_FALSE(LoadUncertainDatabase(bad_item, &db, &error));
  std::remove(bad_item.c_str());

  EXPECT_FALSE(LoadUncertainDatabase("/nonexistent/nowhere.utd", &db, &error));
}

TEST(DatabaseIo, RoundTripExact) {
  const std::vector<Itemset> transactions = {Itemset{0, 2, 5}, Itemset{1},
                                             Itemset{0, 1, 2, 3}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "pfci_io_test.dat").string();
  ASSERT_TRUE(SaveExactTransactions(transactions, path));
  std::vector<Itemset> loaded;
  std::string error;
  ASSERT_TRUE(LoadExactTransactions(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, transactions);
  std::remove(path.c_str());
}

TEST(DatabaseStats, PaperExampleNumbers) {
  const DatabaseStats stats = ComputeStats(MakePaperExampleDb());
  EXPECT_EQ(stats.num_transactions, 4u);
  EXPECT_EQ(stats.num_items, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 3.5);
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_NEAR(stats.mean_prob, 0.775, 1e-12);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DatabaseStats, EmptyDatabase) {
  const DatabaseStats stats = ComputeStats(UncertainDatabase{});
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.num_items, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 0.0);
}

}  // namespace
}  // namespace pfci
