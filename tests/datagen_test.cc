// Unit tests for the synthetic data generators and the Gaussian
// probability assigner.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/data/database_stats.h"
#include "src/datagen/mushroom_generator.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/exact/closed_miner.h"
#include "src/exact/fp_growth.h"

namespace pfci {
namespace {

TEST(QuestGenerator, RespectsShapeParameters) {
  QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_length = 8.0;
  params.avg_pattern_length = 4.0;
  params.num_items = 30;
  params.seed = 5;
  const TransactionDatabase db = GenerateQuest(params);
  ASSERT_EQ(db.size(), 2000u);

  double total_length = 0.0;
  Item max_item = 0;
  for (const Itemset& t : db.transactions()) {
    ASSERT_FALSE(t.empty());
    total_length += static_cast<double>(t.size());
    max_item = std::max(max_item, t.LastItem());
  }
  EXPECT_LT(max_item, 30u);
  const double avg = total_length / 2000.0;
  // Corruption and the put-back rule push the realized average below T;
  // it must still be in a sane band around the target.
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 12.0);
}

TEST(QuestGenerator, DeterministicForSeed) {
  QuestParams params;
  params.num_transactions = 100;
  params.num_items = 20;
  params.seed = 9;
  const TransactionDatabase a = GenerateQuest(params);
  const TransactionDatabase b = GenerateQuest(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.transaction(i), b.transaction(i));
  }
  params.seed = 10;
  const TransactionDatabase c = GenerateQuest(params);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.transaction(i) == c.transaction(i))) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(QuestGenerator, ProducesFrequentPatterns) {
  // The pattern pool must induce itemsets far above independence levels.
  QuestParams params;
  params.num_transactions = 1500;
  params.avg_transaction_length = 8.0;
  params.avg_pattern_length = 4.0;
  params.num_items = 24;
  const TransactionDatabase db = GenerateQuest(params);
  const auto frequent =
      MineFrequentItemsets(db, db.size() / 10);  // 10% support.
  bool has_pair = false;
  for (const auto& entry : frequent) has_pair |= entry.items.size() >= 2;
  EXPECT_TRUE(has_pair);
}

TEST(MushroomGenerator, FixedLengthCategoricalRows) {
  MushroomParams params;
  params.num_transactions = 500;
  params.num_attributes = 10;
  params.values_per_attribute = 4;
  params.seed = 3;
  const TransactionDatabase db = GenerateMushroomLike(params);
  ASSERT_EQ(db.size(), 500u);
  for (const Itemset& t : db.transactions()) {
    EXPECT_EQ(t.size(), 10u);  // Exactly one value per attribute.
  }
}

TEST(MushroomGenerator, DefaultShapeMatchesMushroom) {
  const TransactionDatabase db = GenerateMushroomLike(MushroomParams{});
  EXPECT_EQ(db.size(), 8124u);
  const std::size_t items = db.ItemUniverse().size();
  // Real mushroom has 119 distinct items; the generator's domains total
  // roughly 23 * 5.
  EXPECT_GT(items, 60u);
  EXPECT_LT(items, 160u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(db.transaction(i).size(), 23u);
  }
}

TEST(MushroomGenerator, StrongClosureCompression) {
  // The species mixture must create correlated blocks: far fewer closed
  // than frequent itemsets at a moderate threshold (mushroom's hallmark).
  MushroomParams params;
  params.num_transactions = 400;
  params.num_attributes = 8;
  params.values_per_attribute = 4;
  params.num_species = 6;
  const TransactionDatabase db = GenerateMushroomLike(params);
  const std::size_t min_sup = db.size() / 5;
  const auto frequent = MineFrequentItemsets(db, min_sup);
  const auto closed = MineClosedItemsets(db, min_sup);
  ASSERT_FALSE(frequent.empty());
  EXPECT_LT(static_cast<double>(closed.size()),
            0.7 * static_cast<double>(frequent.size()));
}

TEST(ProbabilityAssigner, GaussianClampsAndIsDeterministic) {
  TransactionDatabase exact;
  for (int i = 0; i < 4000; ++i) exact.Add(Itemset{0});
  GaussianAssignerParams params;
  params.mean = 0.5;
  params.spread = 0.25;
  params.seed = 77;
  const UncertainDatabase db = AssignGaussianProbabilities(exact, params);
  ASSERT_EQ(db.size(), 4000u);
  double sum = 0.0;
  for (const auto& t : db.transactions()) {
    EXPECT_GT(t.prob, 0.0);
    EXPECT_LE(t.prob, 1.0);
    sum += t.prob;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.02);

  const UncertainDatabase again = AssignGaussianProbabilities(exact, params);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_DOUBLE_EQ(db.prob(i), again.prob(i));
  }
}

TEST(ProbabilityAssigner, HighMeanLowSpread) {
  TransactionDatabase exact;
  for (int i = 0; i < 2000; ++i) exact.Add(Itemset{0});
  GaussianAssignerParams params;
  params.mean = 0.8;
  params.spread = 0.1;
  const UncertainDatabase db = AssignGaussianProbabilities(exact, params);
  const DatabaseStats stats = ComputeStats(db);
  EXPECT_NEAR(stats.mean_prob, 0.8, 0.02);
  EXPECT_LT(stats.stddev_prob, 0.12);
}

TEST(ProbabilityAssigner, Uniform) {
  TransactionDatabase exact;
  exact.Add(Itemset{0, 1});
  exact.Add(Itemset{2});
  const UncertainDatabase db = AssignUniformProbability(exact, 0.4);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_DOUBLE_EQ(db.prob(0), 0.4);
  EXPECT_DOUBLE_EQ(db.prob(1), 0.4);
  EXPECT_EQ(db.transaction(0).items, (Itemset{0, 1}));
}

}  // namespace
}  // namespace pfci
