// Unit tests for the de Caen / Kwerel / Bonferroni union bounds
// (Lemma 4.4 machinery).
#include "src/prob/union_bounds.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pfci {
namespace {

/// A random family of events over a finite space of `space` outcomes with
/// random outcome probabilities; returns the pairwise matrix and the exact
/// union probability for cross-checking.
struct RandomEventFamily {
  PairwiseProbabilities pairs;
  double exact_union;
};

RandomEventFamily MakeFamily(Rng& rng, std::size_t m, std::size_t space) {
  // Outcome probabilities.
  std::vector<double> outcome_prob(space);
  double total = 0.0;
  for (double& p : outcome_prob) {
    p = rng.NextDouble();
    total += p;
  }
  for (double& p : outcome_prob) p /= total;

  // Event membership.
  std::vector<std::vector<bool>> member(m, std::vector<bool>(space));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t w = 0; w < space; ++w) {
      member[i][w] = rng.NextBernoulli(0.3);
    }
  }

  RandomEventFamily family{PairwiseProbabilities(m), 0.0};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      double p = 0.0;
      for (std::size_t w = 0; w < space; ++w) {
        if (member[i][w] && member[j][w]) p += outcome_prob[w];
      }
      family.pairs.Set(i, j, p);
    }
  }
  for (std::size_t w = 0; w < space; ++w) {
    bool in_union = false;
    for (std::size_t i = 0; i < m; ++i) in_union = in_union || member[i][w];
    if (in_union) family.exact_union += outcome_prob[w];
  }
  return family;
}

TEST(PairwiseProbabilities, Sums) {
  PairwiseProbabilities pairs(3);
  pairs.Set(0, 0, 0.5);
  pairs.Set(1, 1, 0.25);
  pairs.Set(2, 2, 0.125);
  pairs.Set(0, 1, 0.2);
  pairs.Set(0, 2, 0.1);
  pairs.Set(1, 2, 0.05);
  EXPECT_DOUBLE_EQ(pairs.SumSingles(), 0.875);
  EXPECT_DOUBLE_EQ(pairs.SumPairs(), 0.35);
  EXPECT_DOUBLE_EQ(pairs.Get(1, 0), 0.2);  // Symmetric.
}

TEST(UnionBounds, EmptyFamily) {
  const UnionBounds bounds = ComputeUnionBounds(PairwiseProbabilities(0));
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 0.0);
}

TEST(UnionBounds, SingleEvent) {
  PairwiseProbabilities pairs(1);
  pairs.Set(0, 0, 0.42);
  const UnionBounds bounds = ComputeUnionBounds(pairs);
  EXPECT_NEAR(bounds.lower, 0.42, 1e-12);
  EXPECT_NEAR(bounds.upper, 0.42, 1e-12);
}

TEST(UnionBounds, DisjointEventsAreExact) {
  // For disjoint events both bounds collapse to the sum.
  PairwiseProbabilities pairs(3);
  pairs.Set(0, 0, 0.1);
  pairs.Set(1, 1, 0.2);
  pairs.Set(2, 2, 0.3);
  const UnionBounds bounds = ComputeUnionBounds(pairs);
  EXPECT_NEAR(bounds.lower, 0.6, 1e-12);
  EXPECT_NEAR(bounds.upper, 0.6, 1e-12);
}

class UnionBoundsValidity : public ::testing::TestWithParam<int> {};

TEST_P(UnionBoundsValidity, BoundsBracketExactUnion) {
  Rng rng(GetParam() * 17 + 5);
  const std::size_t m = 1 + rng.NextBelow(8);
  const RandomEventFamily family = MakeFamily(rng, m, 64);
  EXPECT_LE(DeCaenLowerBound(family.pairs), family.exact_union + 1e-12);
  EXPECT_GE(KwerelUpperBound(family.pairs), family.exact_union - 1e-12);
  const UnionBounds bounds = ComputeUnionBounds(family.pairs);
  EXPECT_LE(bounds.lower, family.exact_union + 1e-12);
  EXPECT_GE(bounds.upper, family.exact_union - 1e-12);
  EXPECT_LE(bounds.lower, bounds.upper + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(RandomFamilies, UnionBoundsValidity,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace pfci
