// Tests for the sliding-window streaming PFCI miner.
#include "src/core/stream_miner.h"

#include <gtest/gtest.h>

#include "src/core/mine.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

MiningParams Params(std::size_t min_sup) {
  MiningParams params;
  params.min_sup = min_sup;
  params.pfct = 0.5;
  return params;
}

TEST(StreamMiner, WindowSemantics) {
  StreamingPfciMiner miner(Params(2), /*window_size=*/3);
  EXPECT_EQ(miner.window_fill(), 0u);
  for (int i = 0; i < 5; ++i) {
    miner.Observe(Itemset{static_cast<Item>(i)}, 0.9);
  }
  EXPECT_EQ(miner.window_fill(), 3u);
  EXPECT_EQ(miner.transactions_seen(), 5u);
  // The window holds the 3 most recent transactions (items 2, 3, 4).
  const UncertainDatabase snapshot = miner.WindowSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot.transaction(0).items, (Itemset{2}));
  EXPECT_EQ(snapshot.transaction(2).items, (Itemset{4}));
}

TEST(StreamMiner, MineWindowMatchesDirectMining) {
  const UncertainDatabase db = MakePaperExampleDb();
  StreamingPfciMiner miner(Params(2), /*window_size=*/4);
  for (const auto& t : db.transactions()) miner.Observe(t.items, t.prob);

  MiningParams params = Params(2);
  params.pfct = 0.8;
  StreamingPfciMiner paper_miner(params, 4);
  for (const auto& t : db.transactions()) {
    paper_miner.Observe(t.items, t.prob);
  }
  const MiningResult windowed = paper_miner.MineWindow();
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  const MiningResult direct = Mine(db, request);
  ASSERT_EQ(windowed.itemsets.size(), direct.itemsets.size());
  for (std::size_t i = 0; i < direct.itemsets.size(); ++i) {
    EXPECT_EQ(windowed.itemsets[i].items, direct.itemsets[i].items);
    EXPECT_NEAR(windowed.itemsets[i].fcp, direct.itemsets[i].fcp, 1e-12);
  }
}

TEST(StreamMiner, DetectsPatternDrift) {
  // Phase 1 streams {0,1} baskets, phase 2 streams {2,3}: after the
  // window rolls over, the answer must follow the new pattern.
  StreamingPfciMiner miner(Params(4), /*window_size=*/8);
  for (int i = 0; i < 8; ++i) miner.Observe(Itemset{0, 1}, 0.95);
  MiningResult phase1 = miner.MineWindow();
  ASSERT_EQ(phase1.itemsets.size(), 1u);
  EXPECT_EQ(phase1.itemsets[0].items, (Itemset{0, 1}));

  for (int i = 0; i < 8; ++i) miner.Observe(Itemset{2, 3}, 0.95);
  MiningResult phase2 = miner.MineWindow();
  ASSERT_EQ(phase2.itemsets.size(), 1u);
  EXPECT_EQ(phase2.itemsets[0].items, (Itemset{2, 3}));
}

TEST(StreamMiner, PartialWindowIsMineable) {
  StreamingPfciMiner miner(Params(1), /*window_size=*/100);
  miner.Observe(Itemset{7}, 0.6);
  const MiningResult result = miner.MineWindow();
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_NEAR(result.itemsets[0].fcp, 0.6, 1e-12);
}

TEST(StreamMiner, ZeroWindowSizeIsInvalidRequestDataNotAbort) {
  // Historically CHECK-aborted in the constructor; a degenerate window
  // must instead construct, swallow observations, and report the
  // configuration as kInvalidRequest data at the mining boundary.
  StreamingPfciMiner miner(Params(1), /*window_size=*/0);
  miner.Observe(Itemset{0}, 0.9);  // UB repro: used to pop an empty deque
  miner.Observe(Itemset{1}, 0.9);
  EXPECT_EQ(miner.window_fill(), 0u);
  EXPECT_EQ(miner.transactions_seen(), 2u);
  const MiningResult result = miner.MineWindow();
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_TRUE(result.itemsets.empty());
  EXPECT_NE(result.status_message.find("window_size"), std::string::npos);
}

TEST(StreamMiner, EmptyWindowMinesToEmptyResult) {
  StreamingPfciMiner miner(Params(2), /*window_size=*/8);
  const MiningResult result = miner.MineWindow();
  EXPECT_EQ(result.outcome(), Outcome::kComplete);
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(StreamMiner, MinSupBeyondWindowIsMineable) {
  // min_sup > window_size used to CHECK-abort at construction; it is a
  // valid (always-empty) query, consistent with Mine() on a small db.
  StreamingPfciMiner miner(Params(5), /*window_size=*/2);
  miner.Observe(Itemset{0, 1}, 1.0);
  miner.Observe(Itemset{0, 1}, 1.0);
  const MiningResult result = miner.MineWindow();
  EXPECT_EQ(result.outcome(), Outcome::kComplete);
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(StreamMiner, InvalidParamsSurfaceThroughMineWindow) {
  StreamingPfciMiner miner(Params(0), /*window_size=*/4);
  miner.Observe(Itemset{0}, 0.9);
  const MiningResult result = miner.MineWindow();
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
}

TEST(StreamMiner, RepeatedMiningIsDeterministicGivenSeed) {
  Rng rng(777);
  MiningParams params = Params(3);
  params.seed = 12;
  StreamingPfciMiner a(params, 16);
  StreamingPfciMiner b(params, 16);
  for (int i = 0; i < 16; ++i) {
    std::vector<Item> items;
    for (Item j = 0; j < 4; ++j) {
      if (rng.NextBernoulli(0.7)) items.push_back(j);
    }
    if (items.empty()) items.push_back(0);
    const double prob = 0.2 + 0.8 * rng.NextDouble();
    a.Observe(Itemset(items), prob);
    b.Observe(Itemset(items), prob);
  }
  const MiningResult ra = a.MineWindow();
  const MiningResult rb = b.MineWindow();
  ASSERT_EQ(ra.itemsets.size(), rb.itemsets.size());
  for (std::size_t i = 0; i < ra.itemsets.size(); ++i) {
    EXPECT_EQ(ra.itemsets[i].items, rb.itemsets[i].items);
    EXPECT_DOUBLE_EQ(ra.itemsets[i].fcp, rb.itemsets[i].fcp);
  }
}

}  // namespace
}  // namespace pfci
