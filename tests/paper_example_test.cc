// End-to-end validation against the paper's running example (Tables I-III,
// Examples 1.2 and 4.3): the uncertain database {T1 abcd .9, T2 abc .6,
// T3 abc .7, T4 abcd .9} with min_sup = 2 and pfct = 0.8 must yield exactly
// {abc} (PrFC = 0.8754) and {abcd} (PrFC = 0.81).
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/core/probabilistic_support.h"
#include "src/harness/dataset_factory.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

const Itemset kAbc{0, 1, 2};
const Itemset kAbcd{0, 1, 2, 3};

MiningParams PaperParams() {
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;
  return params;
}

// Paper-example runs go through the Mine() front door (the free-function
// wrappers are deprecated; their parity is pinned by api_contract_test).
MiningResult MineWith(Algorithm algorithm, const UncertainDatabase& db,
                      const MiningParams& params) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params = params;
  return Mine(db, request);
}

TEST(PaperExample, BruteForceFrequentClosedProbabilities) {
  const UncertainDatabase db = MakePaperExampleDb();
  const WorldProbabilities abc =
      BruteForceItemsetProbabilities(db, kAbc, 2);
  // PrF(abc) = 1 - Pr{S=0} - Pr{S=1} over (.9,.6,.7,.9) = 0.9726.
  EXPECT_NEAR(abc.pr_f, 0.9726, 1e-12);
  // PrFC(abc) = PrF - Pr{T2,T3 absent} * Pr{T1,T4 present} = 0.9726 - .12*.81.
  EXPECT_NEAR(abc.pr_fc, 0.8754, 1e-12);

  const WorldProbabilities abcd =
      BruteForceItemsetProbabilities(db, kAbcd, 2);
  EXPECT_NEAR(abcd.pr_f, 0.81, 1e-12);
  // abcd is maximal, so frequent implies closed.
  EXPECT_NEAR(abcd.pr_fc, 0.81, 1e-12);
}

TEST(PaperExample, AllOtherItemsetsHaveZeroFcp) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<FcpGroundTruth> all = BruteForceAllFcp(db, 2);
  // Only {abc} and {abcd} are ever frequent closed in any world.
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].items, kAbc);
  EXPECT_NEAR(all[0].fcp, 0.8754, 1e-12);
  EXPECT_EQ(all[1].items, kAbcd);
  EXPECT_NEAR(all[1].fcp, 0.81, 1e-12);
}

TEST(PaperExample, MpfciFindsExactlyTheTwoItemsets) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningResult result = MineWith(Algorithm::kMpfci, db, PaperParams());
  ASSERT_EQ(result.itemsets.size(), 2u);
  EXPECT_EQ(result.itemsets[0].items, kAbc);
  EXPECT_NEAR(result.itemsets[0].fcp, 0.8754, 1e-9);
  EXPECT_EQ(result.itemsets[1].items, kAbcd);
  EXPECT_NEAR(result.itemsets[1].fcp, 0.81, 1e-9);
}

TEST(PaperExample, EveryVariantReturnsTheSameItemsets) {
  const UncertainDatabase db = MakePaperExampleDb();
  const MiningParams params = PaperParams();
  const MiningResult reference = MineWith(Algorithm::kMpfci, db, params);
  for (AlgorithmVariant variant :
       {AlgorithmVariant::kNoCh, AlgorithmVariant::kNoSuper,
        AlgorithmVariant::kNoSub, AlgorithmVariant::kNoBound,
        AlgorithmVariant::kBfs, AlgorithmVariant::kNaive}) {
    const MiningResult result = RunVariant(variant, db, params);
    ASSERT_EQ(result.itemsets.size(), reference.itemsets.size())
        << VariantName(variant);
    for (std::size_t i = 0; i < result.itemsets.size(); ++i) {
      EXPECT_EQ(result.itemsets[i].items, reference.itemsets[i].items)
          << VariantName(variant);
      EXPECT_NEAR(result.itemsets[i].fcp, reference.itemsets[i].fcp, 0.05)
          << VariantName(variant);
    }
  }
}

TEST(PaperExample, ResultStableAcrossPfct) {
  // Sec. II: "no matter how the probabilistic frequent threshold changes,
  // our approach always returns {abc} and {abcd}" (on Table IV's database,
  // for pfct in {0.8, 0.9} with min_sup = 2... the returned sets' FCPs are
  // threshold-independent quantities).
  const UncertainDatabase db = MakeTable4Db();
  for (double pfct : {0.8, 0.75, 0.7}) {
    MiningParams params = PaperParams();
    params.pfct = pfct;
    const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
    for (const PfciEntry& entry : result.itemsets) {
      const WorldProbabilities truth =
          BruteForceItemsetProbabilities(db, entry.items, 2);
      EXPECT_NEAR(entry.fcp, truth.pr_fc, 1e-9) << entry.items.ToString(true);
      EXPECT_GT(truth.pr_fc, pfct);
    }
    // The result must be exactly the brute-force answer.
    const std::vector<FcpGroundTruth> truth_set =
        internal::BruteForceMinePfci(db, 2, pfct);
    ASSERT_EQ(result.itemsets.size(), truth_set.size()) << "pfct=" << pfct;
    for (std::size_t i = 0; i < truth_set.size(); ++i) {
      EXPECT_EQ(result.itemsets[i].items, truth_set[i].items);
    }
  }
}

TEST(PaperExample, Table4SemanticContrastWithPsup) {
  // Under [34]'s probabilistic-support semantics the answer *changes* with
  // pft on Table IV's database — the instability the paper criticizes.
  // Under ours, {a} and {ab} are never in the answer (their FCP is small).
  const UncertainDatabase db = MakeTable4Db();
  const WorldProbabilities a =
      BruteForceItemsetProbabilities(db, Itemset{0}, 2);
  const WorldProbabilities ab =
      BruteForceItemsetProbabilities(db, Itemset{0, 1}, 2);
  EXPECT_LT(a.pr_fc, 0.5);
  EXPECT_LT(ab.pr_fc, 0.5);

  const std::vector<PsupEntry> high = MinePsupClosed(db, 2, 0.9);
  const std::vector<PsupEntry> low = MinePsupClosed(db, 2, 0.8);
  // The [34] result set varies between the two thresholds even though the
  // frequentness of the affected itemsets does not.
  EXPECT_NE(high, low);
}

TEST(PaperExample, ProbabilisticSupportValues) {
  const UncertainDatabase db = MakePaperExampleDb();
  // psup({abcd}) at pft=0.8: Pr{S>=2} = 0.81 >= 0.8, Pr{S>=1} = 0.99.
  EXPECT_EQ(ProbabilisticSupport(db, kAbcd, 0.8), 2u);
  EXPECT_EQ(ProbabilisticSupport(db, kAbcd, 0.9), 1u);
}

}  // namespace
}  // namespace pfci
