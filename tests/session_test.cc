// MiningSession serving-layer tests: cache hit/miss accounting, LRU
// eviction under a byte budget, monotonicity-aware DP reuse across a
// threshold sweep, and the central determinism contract — session runs
// (cache on) are bit-identical to standalone runs (cache off) for every
// algorithm, thread count, and tid-set mode (DESIGN.md §11).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/mine.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/harness/dataset_factory.h"
#include "src/serve/mining_session.h"
#include "src/util/failpoint.h"

namespace pfci {
namespace {

/// Big enough that PrF evaluations dominate and subtrees parallelize.
UncertainDatabase MakeQuestDb(std::uint64_t seed) {
  QuestParams quest;
  quest.num_transactions = 60;
  quest.avg_transaction_length = 6.0;
  quest.avg_pattern_length = 3.0;
  quest.num_items = 16;
  quest.num_patterns = 8;
  quest.seed = seed;
  GaussianAssignerParams assign;
  assign.mean = 0.75;
  assign.spread = 0.15;
  assign.seed = seed + 1;
  return AssignGaussianProbabilities(GenerateQuest(quest), assign);
}

/// Bit-identical itemsets: items, probabilities, bounds, and method.
void ExpectIdenticalResults(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    const PfciEntry& x = a.itemsets[i];
    const PfciEntry& y = b.itemsets[i];
    EXPECT_EQ(x.items, y.items);
    EXPECT_EQ(x.fcp, y.fcp) << x.items.ToString();
    EXPECT_EQ(x.pr_f, y.pr_f) << x.items.ToString();
    EXPECT_EQ(x.fcp_lower, y.fcp_lower) << x.items.ToString();
    EXPECT_EQ(x.fcp_upper, y.fcp_upper) << x.items.ToString();
    EXPECT_EQ(x.method, y.method) << x.items.ToString();
  }
}

MiningRequest BaseRequest(Algorithm algorithm, std::size_t min_sup) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params.min_sup = min_sup;
  request.params.pfct = 0.3;
  if (algorithm == Algorithm::kTopK) request.top_k = 5;
  if (algorithm == Algorithm::kExpectedSupport ||
      algorithm == Algorithm::kExpectedSupportFpGrowth) {
    request.min_esup = static_cast<double>(min_sup);
  }
  return request;
}

TEST(MiningSession, SecondIdenticalRequestIsAllCacheHits) {
  const UncertainDatabase db = MakeQuestDb(7);
  MiningSession session = MiningSession::Open(db);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);

  const MiningResult cold = Mine(db, request);
  const MiningResult first = session.Mine(request);
  const MiningResult second = session.Mine(request);

  ExpectIdenticalResults(cold, first);
  ExpectIdenticalResults(cold, second);

  // First run populates the cache; repeated tidsets within the run
  // already hit it, so DP work can only shrink relative to cold.
  EXPECT_GT(first.stats.cache_misses, 0u);
  EXPECT_LE(first.stats.dp_runs, cold.stats.dp_runs);
  EXPECT_GT(first.stats.cache_bytes, 0u);

  // Second run is served from the cache: zero DP executions.
  EXPECT_GT(second.stats.cache_hits, 0u);
  EXPECT_EQ(second.stats.dp_runs, 0u);
  EXPECT_GT(second.stats.dp_reused, 0u);
  EXPECT_GT(session.cache_entries(), 0u);
}

TEST(MiningSession, SweepReusesDpTablesAcrossThresholds) {
  const UncertainDatabase db = MakeQuestDb(11);
  MiningSession session = MiningSession::Open(db);

  MiningRequest request = BaseRequest(Algorithm::kMpfci, 1);
  request.sweep_min_sup = {4, 5, 6, 7, 8};
  const std::vector<MiningResult> sweep = session.MineSweep(request);
  ASSERT_EQ(sweep.size(), request.sweep_min_sup.size());

  std::uint64_t dp_reused = 0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    // Each sweep step matches a cold standalone run at that threshold.
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = request.sweep_min_sup[i];
    ExpectIdenticalResults(Mine(db, step), sweep[i]);
    dp_reused += sweep[i].stats.dp_reused;
  }
  // The sweep runs lowest-threshold-first with tables extended to the
  // sweep maximum, so the higher thresholds were answered from stored
  // tables without re-running the DP.
  EXPECT_GT(dp_reused, 0u);
}

TEST(MiningSession, EvictionKeepsResultsExactUnderTinyByteBudget) {
  const UncertainDatabase db = MakeQuestDb(13);
  SessionOptions options;
  options.cache_bytes = 4096;  // Far below the run's working set.
  options.cache_shards = 1;    // One LRU list: the bound is tight.
  MiningSession session = MiningSession::Open(db, options);

  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 5);
  const MiningResult cold = Mine(db, request);
  const MiningResult warm1 = session.Mine(request);
  const MiningResult warm2 = session.Mine(request);

  ExpectIdenticalResults(cold, warm1);
  ExpectIdenticalResults(cold, warm2);
  EXPECT_GT(session.cache_evictions(), 0u);
  // The budget may be exceeded only by the single retained entry.
  EXPECT_LE(session.cache_bytes(), 8192u);
}

TEST(MiningSession, WarmStartRecordsInfrequencyProofs) {
  const UncertainDatabase db = MakeQuestDb(17);
  MiningSession session = MiningSession::Open(db);

  // Proofs are recorded for singletons whose tid count clears min_sup
  // but whose PrF does not — pick a threshold between the typical
  // expected support (~16 here) and the typical tid count (~22).
  const MiningRequest high = BaseRequest(Algorithm::kMpfci, 20);
  ExpectIdenticalResults(Mine(db, high), session.Mine(high));
  EXPECT_GT(session.warm_items_recorded(), 0u);

  // A later run at min_sup' >= min_sup may consume the proofs; results
  // stay bit-identical to a cold run (anti-monotonicity).
  const MiningRequest higher = BaseRequest(Algorithm::kMpfci, 21);
  ExpectIdenticalResults(Mine(db, higher), session.Mine(higher));
}

TEST(MiningSession, OptionsValidation) {
  SessionOptions bad;
  bad.cache_shards = 0;
  EXPECT_NE(ValidateSessionOptions(bad).find("cache_shards"),
            std::string::npos);
  bad.cache_bytes = 0;  // Cache off: shard count is irrelevant.
  EXPECT_EQ(ValidateSessionOptions(bad), "");
  EXPECT_EQ(ValidateSessionOptions(SessionOptions{}), "");
}

TEST(MiningSession, CacheDisabledSessionStillServes) {
  const UncertainDatabase db = MakeQuestDb(19);
  SessionOptions options;
  options.cache_bytes = 0;
  options.warm_start = false;
  MiningSession session = MiningSession::Open(db, options);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult warm = session.Mine(request);
  ExpectIdenticalResults(Mine(db, request), warm);
  EXPECT_EQ(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_EQ(session.cache_bytes(), 0u);
  EXPECT_EQ(session.warm_items_recorded(), 0u);
}

TEST(MiningSession, SweepValidation) {
  const UncertainDatabase db = MakeQuestDb(23);
  MiningSession session = MiningSession::Open(db);

  // Empty sweep list.
  MiningRequest request = BaseRequest(Algorithm::kMpfci, 2);
  std::vector<MiningResult> results = session.MineSweep(request);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome(), Outcome::kInvalidRequest);

  // Not strictly increasing.
  request.sweep_min_sup = {4, 4};
  results = session.MineSweep(request);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(results[0].status_message.find("sweep_min_sup"),
            std::string::npos);

  // Single-shot Mine() refuses sweep requests (session or standalone).
  request.sweep_min_sup = {4, 5};
  EXPECT_EQ(session.Mine(request).outcome(), Outcome::kInvalidRequest);
  EXPECT_EQ(Mine(db, request).outcome(), Outcome::kInvalidRequest);
}

/// The acceptance matrix: session (cache on) vs standalone (cache off)
/// for every tuple-level algorithm x thread count x tid-set mode. Two
/// session runs per cell so both the populate and the serve path are
/// compared. The paper's Table II database keeps the full sweep cheap; a
/// Quest database covers mpfci at depth below.
TEST(MiningSession, CacheOnBitIdenticalToCacheOffEverywhere) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kMpfci,           Algorithm::kMpfciBfs,
      Algorithm::kNaive,           Algorithm::kTopK,
      Algorithm::kPfi,             Algorithm::kExpectedSupport,
      Algorithm::kExpectedSupportFpGrowth,
      Algorithm::kBruteForce,
  };
  for (const Algorithm algorithm : algorithms) {
    MiningSession session = MiningSession::Open(db);
    for (const TidSetMode mode :
         {TidSetMode::kAdaptive, TidSetMode::kSparse, TidSetMode::kDense}) {
      for (const std::size_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE(std::string(AlgorithmName(algorithm)) +
                     " mode=" + std::to_string(static_cast<int>(mode)) +
                     " threads=" + std::to_string(threads));
        MiningRequest request = BaseRequest(algorithm, 2);
        request.params.tidset_mode = mode;
        request.execution.num_threads = threads;
        const MiningResult cold = Mine(db, request);
        ASSERT_EQ(cold.outcome(), Outcome::kComplete)
            << cold.status_message;
        ExpectIdenticalResults(cold, session.Mine(request));
        ExpectIdenticalResults(cold, session.Mine(request));
      }
    }
  }
}

TEST(MiningSession, CacheOnBitIdenticalAtDepth) {
  const UncertainDatabase db = MakeQuestDb(29);
  for (const Algorithm algorithm : {Algorithm::kMpfci, Algorithm::kNaive}) {
    MiningSession session = MiningSession::Open(db);
    for (const std::size_t threads : {1u, 4u}) {
      SCOPED_TRACE(std::string(AlgorithmName(algorithm)) +
                   " threads=" + std::to_string(threads));
      MiningRequest request = BaseRequest(algorithm, 6);
      request.execution.num_threads = threads;
      const MiningResult cold = Mine(db, request);
      ExpectIdenticalResults(cold, session.Mine(request));
      ExpectIdenticalResults(cold, session.Mine(request));
    }
  }
}

/// Parks a session's only execution slot inside a run: the armed
/// failpoint blocks the mining thread until Unpark(). Lets admission
/// tests hold the slot deterministically instead of racing a real run.
class SlotHolder {
 public:
  SlotHolder(MiningSession& session, const MiningRequest& request) {
    failpoint::Arm("mpfci/node", [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    });
    MiningRequest held = request;
    held.execution.num_threads = 1;  // Exactly one thread to park.
    thread_ = std::thread([this, &session, held] {
      result_ = session.Mine(held);
    });
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return parked_; });
  }

  ~SlotHolder() {
    Unpark();
    failpoint::DisarmAll();
  }

  void Unpark() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      released_ = true;
      cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
  }

  const MiningResult& result() const { return result_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool released_ = false;
  std::thread thread_;
  MiningResult result_;
};

TEST(MiningSession, AdmissionOptionsValidation) {
  SessionOptions bad;
  bad.max_queue_depth = 4;  // A queue with nothing to queue for.
  EXPECT_NE(ValidateSessionOptions(bad).find("max_queue_depth"),
            std::string::npos);
  bad.max_inflight = 2;
  EXPECT_EQ(ValidateSessionOptions(bad), "");
}

TEST(MiningSession, AdmissionRejectsAtMaxInflightInUnderAMillisecond) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(31);
  SessionOptions options;
  options.max_inflight = 1;
  options.max_queue_depth = 0;
  MiningSession session = MiningSession::Open(db, options);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);

  SlotHolder holder(session, request);
  EXPECT_EQ(session.inflight(), 1u);

  // Rejection is one uncontended mutex acquisition — sub-millisecond.
  // Best-of-five so an unlucky scheduler blip cannot flake the pin.
  double best_seconds = 1e9;
  for (int i = 0; i < 5; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const MiningResult rejected = session.Mine(request);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    best_seconds = std::min(best_seconds, seconds);
    ASSERT_EQ(rejected.outcome(), Outcome::kRejected)
        << rejected.status_message;
    EXPECT_TRUE(rejected.stats.truncated);
    EXPECT_TRUE(rejected.itemsets.empty());
    EXPECT_NE(rejected.status_message.find("admission"), std::string::npos);
  }
  EXPECT_LT(best_seconds, 1e-3)
      << "rejection must not wait on in-flight work";
  EXPECT_EQ(session.admission_rejected(), 5u);

  holder.Unpark();
  EXPECT_EQ(holder.result().outcome(), Outcome::kComplete)
      << "rejections must never perturb the in-flight run";
  EXPECT_EQ(session.inflight(), 0u);
}

TEST(MiningSession, QueuedRequestRunsWhenTheSlotFrees) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(31);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult reference = Mine(db, request);

  SessionOptions options;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  MiningSession session = MiningSession::Open(db, options);

  SlotHolder holder(session, request);
  std::atomic<bool> queued_started{false};
  MiningResult queued_result;
  std::thread queued([&] {
    queued_started = true;
    queued_result = session.Mine(request);
  });
  while (!queued_started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  holder.Unpark();  // Slot frees; the queued request runs.
  queued.join();
  EXPECT_EQ(queued_result.outcome(), Outcome::kComplete)
      << queued_result.status_message;
  ExpectIdenticalResults(reference, queued_result);
  EXPECT_EQ(session.admission_rejected(), 0u);
  EXPECT_EQ(session.inflight(), 0u);
}

TEST(MiningSession, QueuedRequestHonorsItsOwnDeadline) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(31);
  SessionOptions options;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  MiningSession session = MiningSession::Open(db, options);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);

  SlotHolder holder(session, request);
  MiningRequest deadlined = request;
  deadlined.budget.deadline_seconds = 0.05;
  const auto start = std::chrono::steady_clock::now();
  const MiningResult rejected = session.Mine(deadlined);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(rejected.outcome(), Outcome::kRejected)
      << rejected.status_message;
  EXPECT_GE(waited, 0.03) << "a queued request waits up to its deadline";
  EXPECT_EQ(session.admission_rejected(), 1u);
}

/// TSan-facing stress: concurrent Mine() calls racing admission
/// rejection AND cache eviction (tiny byte budget, one shard). Every
/// admitted run must stay bit-identical to the standalone reference;
/// the rejection counter must match what callers observed.
TEST(MiningSession, ConcurrentMinesRaceEvictionAndAdmissionSafely) {
  const UncertainDatabase db = MakeQuestDb(37);
  SessionOptions options;
  options.cache_bytes = 4096;  // Eviction churn on every run.
  options.cache_shards = 1;
  options.max_inflight = 2;
  options.max_queue_depth = 1;
  MiningSession session = MiningSession::Open(db, options);

  const std::size_t kThreads = 6;
  const std::size_t kRounds = 2;
  std::vector<MiningResult> references;
  for (std::size_t r = 0; r < kRounds; ++r) {
    references.push_back(Mine(db, BaseRequest(Algorithm::kMpfci, 5 + r)));
  }

  std::atomic<std::uint64_t> observed_rejections{0};
  std::vector<std::thread> workers;
  std::vector<std::vector<MiningResult>> results(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        MiningRequest request = BaseRequest(Algorithm::kMpfci, 5 + r);
        request.execution.num_threads = 2;
        MiningResult result = session.Mine(request);
        if (result.outcome() == Outcome::kRejected) {
          ++observed_rejections;
        }
        results[t].push_back(std::move(result));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  std::size_t completed = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      const MiningResult& result = results[t][r];
      if (result.outcome() == Outcome::kRejected) continue;
      ASSERT_EQ(result.outcome(), Outcome::kComplete)
          << result.status_message;
      ExpectIdenticalResults(references[r], result);
      ++completed;
    }
  }
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(completed + observed_rejections, kThreads * kRounds);
  EXPECT_EQ(session.admission_rejected(), observed_rejections);
  EXPECT_EQ(session.inflight(), 0u);
}

TEST(MiningSession, ResumeFromContinuesASuspendedRunBitIdentically) {
  const UncertainDatabase db = MakeQuestDb(41);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult reference = Mine(db, request);
  ASSERT_EQ(reference.outcome(), Outcome::kComplete);
  ASSERT_GT(reference.stats.nodes_visited, 2u);

  const std::string path = ::testing::TempDir() + "pfci_session_resume_" +
                           std::to_string(::getpid()) + ".snapshot";
  MiningSession session = MiningSession::Open(db);
  MiningRequest suspending = request;
  suspending.budget.max_nodes = reference.stats.nodes_visited / 2;
  suspending.snapshot.save_path = path;
  const MiningResult partial = session.Mine(suspending);
  ASSERT_EQ(partial.outcome(), Outcome::kBudgetExhausted)
      << partial.status_message;
  ASSERT_GT(partial.stats.snapshot_bytes, 0u);

  const MiningResult resumed = session.ResumeFrom(path, request);
  EXPECT_EQ(resumed.outcome(), Outcome::kComplete)
      << resumed.status_message;
  EXPECT_TRUE(resumed.stats.resumed);
  ExpectIdenticalResults(reference, resumed);
  EXPECT_EQ(resumed.stats.nodes_visited, reference.stats.nodes_visited);
  std::remove(path.c_str());
}

/// EvalCache unit behaviour (exercised directly, without a miner).
TEST(EvalCache, ProbeInsertAndMonotoneTableReuse) {
  EvalCache::Options options;
  EvalCache cache(options);
  const TidSet tids(TidList{1, 3, 5}, 10);

  EXPECT_FALSE(cache.Probe(tids, 3).found);
  cache.Insert(tids, 1.5, 3, {1.0, 0.9, 0.6, 0.2});
  const EvalCache::Lookup at3 = cache.Probe(tids, 3);
  ASSERT_TRUE(at3.found);
  ASSERT_TRUE(at3.has_table);
  EXPECT_EQ(at3.mu, 1.5);
  EXPECT_EQ(at3.tail, 0.2);
  // A stored table answers every smaller threshold...
  const EvalCache::Lookup at1 = cache.Probe(tids, 1);
  ASSERT_TRUE(at1.has_table);
  EXPECT_EQ(at1.tail, 0.9);
  // ...but not larger ones (mu still usable).
  const EvalCache::Lookup at5 = cache.Probe(tids, 5);
  EXPECT_TRUE(at5.found);
  EXPECT_FALSE(at5.has_table);
  EXPECT_EQ(at5.mu, 1.5);

  // Upgrading to a larger table keeps serving; a smaller one is ignored.
  cache.Insert(tids, 1.5, 5, {1.0, 0.9, 0.6, 0.2, 0.1, 0.05});
  EXPECT_TRUE(cache.Probe(tids, 5).has_table);
  cache.Insert(tids, 1.5, 2, {1.0, 0.9, 0.6});
  EXPECT_TRUE(cache.Probe(tids, 5).has_table);
}

TEST(EvalCache, FingerprintIsRepresentationIndependent) {
  const TidList contents = {2, 4, 6, 9};
  TidSetPolicy sparse;
  sparse.mode = TidSetMode::kSparse;
  TidSetPolicy dense;
  dense.mode = TidSetMode::kDense;
  const TidSet a(contents, 12, sparse);
  const TidSet b(contents, 12, dense);
  EXPECT_EQ(TidSetFingerprint(a), TidSetFingerprint(b));

  // One cache serves both representations of the same contents.
  EvalCache cache(EvalCache::Options{});
  cache.Insert(a, 2.5, 0, {1.0});
  EXPECT_TRUE(cache.Probe(b, 1).found);
}

TEST(EvalCache, OversizedEntryIsRejectedWithoutEvictingResidents) {
  EvalCache::Options options;
  options.max_bytes = 1024;
  EvalCache cache(options);
  const TidSet small(TidList{1, 2}, 10);
  cache.Insert(small, 1.2, 1, {1.0, 0.7});
  ASSERT_TRUE(cache.Probe(small, 1).found);
  const std::uint64_t resident_bytes = cache.bytes();

  // An entry whose table alone dwarfs the budget must be refused up
  // front: the resident entry stays, the byte ledger is unchanged, and
  // the refusal is visible in rejections().
  const TidSet big(TidList{3, 4, 5}, 10);
  std::vector<double> huge_table(4096, 1.0);
  cache.Insert(big, 2.0, huge_table.size() - 1, std::move(huge_table));
  EXPECT_FALSE(cache.Probe(big, 1).found);
  EXPECT_TRUE(cache.Probe(small, 1).found);
  EXPECT_EQ(cache.bytes(), resident_bytes);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.rejections(), 1u);

  // The upgrade path honors the same budget: the small table keeps
  // serving, the oversized replacement is refused.
  std::vector<double> huge_upgrade(4096, 1.0);
  cache.Insert(small, 1.2, huge_upgrade.size() - 1, std::move(huge_upgrade));
  const EvalCache::Lookup after = cache.Probe(small, 1);
  ASSERT_TRUE(after.found);
  EXPECT_TRUE(after.has_table);
  EXPECT_EQ(cache.bytes(), resident_bytes);
  EXPECT_EQ(cache.rejections(), 2u);
}

TEST(EvalCache, ZeroShardsAndZeroBytesAreClamped) {
  EvalCache::Options options;
  options.shards = 0;   // historically CHECK-aborted
  options.max_bytes = 0;
  EvalCache cache(options);
  EXPECT_EQ(cache.max_bytes(), 1u);
  // Every insert is over the (clamped) budget: rejected, never resident.
  const TidSet tids(TidList{1}, 4);
  cache.Insert(tids, 0.5, 0, {1.0});
  EXPECT_FALSE(cache.Probe(tids, 0).found);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.rejections(), 1u);
}

/// ---- Submit(): asynchronous serving behind a RunHandle ----

TEST(MiningSession, SubmitMatchesSynchronousMineBitwise) {
  const UncertainDatabase db = MakeQuestDb(43);
  MiningSession session = MiningSession::Open(db);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult reference = Mine(db, request);

  RunHandle handle = session.Submit(request);
  ASSERT_TRUE(handle.valid());
  const MiningResult& result = handle.Wait();
  ASSERT_EQ(result.outcome(), Outcome::kComplete) << result.status_message;
  ExpectIdenticalResults(reference, result);
  EXPECT_TRUE(handle.done());

  // After completion every accessor is stable and non-blocking, Cancel
  // is a no-op, and copies observe the same run.
  MiningResult polled;
  ASSERT_TRUE(handle.TryGet(&polled));
  ExpectIdenticalResults(reference, polled);
  handle.Cancel();
  RunHandle copy = handle;
  ExpectIdenticalResults(reference, copy.Wait());
}

TEST(MiningSession, SubmitReportsInvalidRequestsAsDataAsync) {
  const UncertainDatabase db = MakeQuestDb(43);
  MiningSession session = MiningSession::Open(db);
  MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  request.params.pfct = 2.0;  // Out of range.
  RunHandle handle = session.Submit(request);
  const MiningResult& result = handle.Wait();
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(result.status_message.find("invalid MiningRequest"),
            std::string::npos);
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(MiningSession, SubmitRefusesARequestLevelCancelToken) {
  const UncertainDatabase db = MakeQuestDb(43);
  MiningSession session = MiningSession::Open(db);
  CancelToken token;
  MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  request.cancel = &token;
  RunHandle handle = session.Submit(request);
  // Answered synchronously, without spawning a worker.
  EXPECT_TRUE(handle.done());
  const MiningResult& result = handle.Wait();
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(result.status_message.find(
                "Submit owns cancellation through RunHandle::Cancel"),
            std::string::npos);
}

TEST(MiningSession, SubmitRejectedUnderAdmissionPressureAsync) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(31);
  SessionOptions options;
  options.max_inflight = 1;
  options.max_queue_depth = 0;
  MiningSession session = MiningSession::Open(db, options);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);

  SlotHolder holder(session, request);
  RunHandle handle = session.Submit(request);
  // The rejection arrives through the handle — error-as-data on the
  // async path too — without waiting for the in-flight run.
  const MiningResult& rejected = handle.Wait();
  EXPECT_EQ(rejected.outcome(), Outcome::kRejected)
      << rejected.status_message;
  EXPECT_TRUE(rejected.stats.truncated);
  EXPECT_NE(rejected.status_message.find("admission"), std::string::npos);
  EXPECT_EQ(session.admission_rejected(), 1u);

  holder.Unpark();
  EXPECT_EQ(holder.result().outcome(), Outcome::kComplete)
      << "an async rejection must never perturb the in-flight run";
}

TEST(MiningSession, CancelBeforeStartIsAnsweredWithoutRunning) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(47);
  MiningSession session = MiningSession::Open(db);

  // Park the submit worker at its entry (before its cancel check) so
  // Cancel() deterministically lands before the run starts.
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false;
  bool released = false;
  failpoint::Arm("serve/submit_start", [&] {
    std::unique_lock<std::mutex> lock(mutex);
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  });

  RunHandle handle = session.Submit(BaseRequest(Algorithm::kMpfci, 6));
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return parked; });
  }
  EXPECT_FALSE(handle.done());
  handle.Cancel();
  {
    std::unique_lock<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
  const MiningResult& result = handle.Wait();
  failpoint::DisarmAll();

  EXPECT_EQ(result.outcome(), Outcome::kCancelled) << result.status_message;
  EXPECT_TRUE(result.stats.truncated);
  EXPECT_NE(
      result.status_message.find("cancelled via RunHandle::Cancel before start"),
      std::string::npos);
  EXPECT_TRUE(result.itemsets.empty());
  // Queue time covers the parked window; the run itself never happened,
  // so the caches were never touched.
  EXPECT_GT(result.stats.queued_micros, 0u);
  EXPECT_EQ(session.cache_entries(), 0u);
}

TEST(MiningSession, CancelMidRunWindsDownCooperatively) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const UncertainDatabase db = MakeQuestDb(47);
  MiningSession session = MiningSession::Open(db);

  // Park the run at its first search node, cancel through the handle,
  // then release: the miner must wind down at its next checkpoint.
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false;
  bool released = false;
  failpoint::Arm("mpfci/node", [&] {
    std::unique_lock<std::mutex> lock(mutex);
    if (!parked) {
      parked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return released; });
    }
  });

  MiningRequest request = BaseRequest(Algorithm::kMpfci, 2);
  request.execution.num_threads = 1;
  RunHandle handle = session.Submit(request);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return parked; });
  }
  handle.Cancel();
  {
    std::unique_lock<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
  const MiningResult& result = handle.Wait();
  failpoint::DisarmAll();

  EXPECT_EQ(result.outcome(), Outcome::kCancelled) << result.status_message;
  EXPECT_TRUE(result.stats.truncated);
}

TEST(MiningSession, HandleOutlivesItsSession) {
  const UncertainDatabase db = MakeQuestDb(53);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult reference = Mine(db, request);
  RunHandle handle;
  EXPECT_FALSE(handle.valid());
  {
    MiningSession session = MiningSession::Open(db);
    handle = session.Submit(request);
  }  // ~MiningSession drains its workers before returning.
  ASSERT_TRUE(handle.valid());
  EXPECT_TRUE(handle.done())
      << "a handle surviving its session always holds a completed result";
  ExpectIdenticalResults(reference, handle.Wait());
  handle.Cancel();  // Harmless after the session is gone.
  ExpectIdenticalResults(reference, handle.Wait());
}

TEST(MiningSession, MoveAssignmentDrainsTheReplacedSessionsRuns) {
  const UncertainDatabase db = MakeQuestDb(53);
  const MiningRequest request = BaseRequest(Algorithm::kMpfci, 6);
  const MiningResult reference = Mine(db, request);
  MiningSession session = MiningSession::Open(db);
  RunHandle handle = session.Submit(request);
  session = MiningSession::Open(db);  // Drains before replacing.
  EXPECT_TRUE(handle.done());
  ExpectIdenticalResults(reference, handle.Wait());
}

TEST(MiningSession, ConcurrentSubmitsAllMatchTheirReferences) {
  const UncertainDatabase db = MakeQuestDb(59);
  MiningSession session = MiningSession::Open(db);
  std::vector<MiningResult> references;
  std::vector<RunHandle> handles;
  for (std::size_t i = 0; i < 4; ++i) {
    MiningRequest request = BaseRequest(Algorithm::kMpfci, 5 + i);
    references.push_back(Mine(db, request));
    handles.push_back(session.Submit(request));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE("submit " + std::to_string(i));
    const MiningResult& result = handles[i].Wait();
    ASSERT_EQ(result.outcome(), Outcome::kComplete) << result.status_message;
    ExpectIdenticalResults(references[i], result);
  }
}

/// ---- MineBatch(): shared-scan batch planning ----

/// The batch acceptance matrix (DESIGN.md §15): one mixed batch per
/// (tid-set mode, thread count) cell holding every tuple-level algorithm
/// at two thresholds, submitted descending (the planner reorders).
/// Every member must be bit-identical to a standalone Mine() of the same
/// request, with the batch counters stamped on every member.
TEST(MiningSession, MineBatchBitIdenticalToSequentialEverywhere) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kMpfci,           Algorithm::kMpfciBfs,
      Algorithm::kNaive,           Algorithm::kTopK,
      Algorithm::kPfi,             Algorithm::kExpectedSupport,
      Algorithm::kExpectedSupportFpGrowth,
      Algorithm::kBruteForce,
  };
  for (const TidSetMode mode :
       {TidSetMode::kAdaptive, TidSetMode::kSparse, TidSetMode::kDense}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " threads=" + std::to_string(threads));
      std::vector<MiningRequest> requests;
      for (const Algorithm algorithm : algorithms) {
        for (const std::size_t min_sup : {3u, 2u}) {
          MiningRequest request = BaseRequest(algorithm, min_sup);
          request.params.tidset_mode = mode;
          request.execution.num_threads = threads;
          requests.push_back(request);
        }
      }
      MiningSession session = MiningSession::Open(db);
      const std::vector<MiningResult> batch = session.MineBatch(requests);
      ASSERT_EQ(batch.size(), requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(std::string(AlgorithmName(requests[i].algorithm)) +
                     " min_sup=" +
                     std::to_string(requests[i].params.min_sup));
        ASSERT_EQ(batch[i].outcome(), Outcome::kComplete)
            << batch[i].status_message;
        ExpectIdenticalResults(Mine(db, requests[i]), batch[i]);
        EXPECT_EQ(batch[i].stats.batch_size, requests.size());
        EXPECT_EQ(batch[i].stats.batch_groups, algorithms.size());
      }
    }
  }
}

TEST(MiningSession, MineBatchReportsInvalidMembersInPlace) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningSession session = MiningSession::Open(db);
  std::vector<MiningRequest> requests;
  requests.push_back(BaseRequest(Algorithm::kMpfci, 2));
  MiningRequest bad = BaseRequest(Algorithm::kMpfci, 2);
  bad.params.pfct = 2.0;  // Out of range.
  requests.push_back(bad);
  requests.push_back(BaseRequest(Algorithm::kPfi, 3));

  const std::vector<MiningResult> batch = session.MineBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[1].outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(batch[1].status_message.find("invalid MiningRequest"),
            std::string::npos);
  ASSERT_EQ(batch[0].outcome(), Outcome::kComplete);
  ASSERT_EQ(batch[2].outcome(), Outcome::kComplete);
  ExpectIdenticalResults(Mine(db, requests[0]), batch[0]);
  ExpectIdenticalResults(Mine(db, requests[2]), batch[2]);
  // The batch shape is stamped on every member, invalid ones included;
  // the invalid member does not form a group.
  for (const MiningResult& result : batch) {
    EXPECT_EQ(result.stats.batch_size, 3u);
    EXPECT_EQ(result.stats.batch_groups, 2u);
  }
}

TEST(MiningSession, MineBatchOnEmptySpanReturnsEmpty) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningSession session = MiningSession::Open(db);
  EXPECT_TRUE(session.MineBatch(std::span<const MiningRequest>{}).empty());
}

TEST(MiningSession, MineSweepIsAPlannedBatchOfOneGroup) {
  const UncertainDatabase db = MakeQuestDb(61);
  MiningRequest request = BaseRequest(Algorithm::kMpfci, 1);
  request.sweep_min_sup = {4, 6, 8};
  MiningSession sweep_session = MiningSession::Open(db);
  const std::vector<MiningResult> sweep = sweep_session.MineSweep(request);

  std::vector<MiningRequest> steps;
  for (const std::size_t min_sup : request.sweep_min_sup) {
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = min_sup;
    steps.push_back(step);
  }
  MiningSession batch_session = MiningSession::Open(db);
  const std::vector<MiningResult> batch = batch_session.MineBatch(steps);

  ASSERT_EQ(sweep.size(), batch.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    ExpectIdenticalResults(batch[i], sweep[i]);
    EXPECT_EQ(sweep[i].stats.batch_size, steps.size());
    EXPECT_EQ(sweep[i].stats.batch_groups, 1u);
  }
}

TEST(MiningSession, BatchFollowersShareTheLeadersTables) {
  const UncertainDatabase db = MakeQuestDb(67);
  MiningSession session = MiningSession::Open(db);
  // Submitted descending; the planner reorders the group onto an
  // ascending ladder, so the min_sup=4 member is the leader paying for
  // the shared tables and the higher thresholds answer from them.
  std::vector<MiningRequest> requests;
  for (const std::size_t min_sup : {8u, 6u, 4u}) {
    requests.push_back(BaseRequest(Algorithm::kMpfci, min_sup));
  }
  const std::vector<MiningResult> batch = session.MineBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("min_sup=" + std::to_string(requests[i].params.min_sup));
    ASSERT_EQ(batch[i].outcome(), Outcome::kComplete)
        << batch[i].status_message;
    ExpectIdenticalResults(Mine(db, requests[i]), batch[i]);
  }
  EXPECT_EQ(batch[2].stats.shared_dp_hits, 0u) << "the leader pays cold";
  EXPECT_GT(batch[0].stats.shared_dp_hits + batch[1].stats.shared_dp_hits, 0u)
      << "followers must answer from the leader's extended tables";
}

/// ---- EvalCache pin scopes (the batch working-set retention hint) ----

TEST(EvalCache, PinScopeExemptsTheBatchWorkingSetFromEviction) {
  EvalCache::Options options;
  options.max_bytes = 512;  // A couple of entries' worth.
  options.shards = 1;
  EvalCache cache(options);

  cache.BeginPinScope();
  std::vector<TidSet> tidsets;
  for (std::uint32_t i = 0; i < 8; ++i) {
    tidsets.emplace_back(TidList{i, i + 10}, 32);
    cache.Insert(tidsets.back(), 1.0, 3, {1.0, 0.9, 0.5, 0.1});
  }
  // Pinned entries may overshoot the byte budget but never leave.
  EXPECT_EQ(cache.pinned_entries(), 8u);
  EXPECT_GT(cache.bytes(), cache.max_bytes());
  for (const TidSet& tids : tidsets) {
    EXPECT_TRUE(cache.Probe(tids, 3).found);
  }
  const std::uint64_t pinned_bytes = cache.bytes();

  cache.EndPinScope();
  // Last scope out: pins clear and the byte budget is re-enforced.
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_LT(cache.bytes(), pinned_bytes);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(EvalCache, PinScopesNestAndTheRaiiWrapperIsNullSafe) {
  EvalCache::Options options;
  options.max_bytes = 512;
  options.shards = 1;
  EvalCache cache(options);

  cache.BeginPinScope();
  cache.BeginPinScope();
  std::vector<TidSet> tidsets;
  for (std::uint32_t i = 0; i < 8; ++i) {
    tidsets.emplace_back(TidList{i, i + 10}, 32);
    cache.Insert(tidsets.back(), 1.0, 3, {1.0, 0.9, 0.5, 0.1});
  }
  cache.EndPinScope();
  // An enclosing scope is still open: nothing is swept yet.
  EXPECT_EQ(cache.pinned_entries(), 8u);
  cache.EndPinScope();
  EXPECT_EQ(cache.pinned_entries(), 0u);

  // The RAII wrapper over a null cache is a no-op (callers pin
  // unconditionally; a cache-off session passes nullptr).
  { EvalCache::PinScope scope(nullptr); }
  {
    EvalCache::PinScope scope(&cache);
    const TidSet tids(TidList{1, 2, 3}, 8);
    cache.Insert(tids, 1.0, 1, {1.0, 0.5});
    EXPECT_EQ(cache.pinned_entries(), 1u);
  }
  EXPECT_EQ(cache.pinned_entries(), 0u);
}

TEST(ItemWarmStart, ProofsApplyByAntiMonotonicity) {
  ItemWarmStart warm;
  EXPECT_GT(warm.BoundFor(3, 5), 1.0);  // +inf: nothing recorded.
  warm.RecordBound(3, 5, 0.4);
  // Applies at the recorded threshold and above, never below.
  EXPECT_EQ(warm.BoundFor(3, 5), 0.4);
  EXPECT_EQ(warm.BoundFor(3, 9), 0.4);
  EXPECT_GT(warm.BoundFor(3, 4), 1.0);
  // A tighter later proof wins where it applies.
  warm.RecordBound(3, 7, 0.1);
  EXPECT_EQ(warm.BoundFor(3, 7), 0.1);
  EXPECT_EQ(warm.BoundFor(3, 5), 0.4);
  EXPECT_EQ(warm.items_recorded(), 1u);
}

}  // namespace
}  // namespace pfci
