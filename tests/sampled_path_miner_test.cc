// End-to-end validation of the Monte-Carlo decision path inside the full
// miner: with force_sampling and bounds disabled, MPFCI's membership
// decisions must still match the brute-force oracle for every itemset
// whose true PrFC is not within the sampler's noise band of pfct.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/util/random.h"

namespace pfci {
namespace {

UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    if (row.empty()) row.push_back(static_cast<Item>(rng.NextBelow(items)));
    db.Add(Itemset(std::move(row)), 0.05 + 0.95 * rng.NextDouble());
  }
  return db;
}

class SampledPathTrial : public ::testing::TestWithParam<int> {};

TEST_P(SampledPathTrial, MembershipMatchesOracleOutsideNoiseBand) {
  Rng rng(GetParam() * 6101 + 41);
  const UncertainDatabase db = RandomDb(rng, 8 + rng.NextBelow(3), 5, 0.55);
  const std::size_t min_sup = 1 + rng.NextBelow(2);
  const double pfct = 0.4;

  MiningParams params;
  params.min_sup = min_sup;
  params.pfct = pfct;
  params.force_sampling = true;      // Every check goes through ApproxFCP.
  params.pruning.fcp_bounds = false; // No analytic rescue.
  params.epsilon = 0.05;
  params.delta = 0.05;
  params.seed = GetParam();
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  const MiningResult mined = Mine(db, request);

  const std::vector<FcpGroundTruth> truth = BruteForceAllFcp(db, min_sup);
  // Decisions may legitimately flip only inside the sampler's noise band
  // around pfct; the FPRAS bounds the union estimate's relative error by
  // epsilon w.h.p., and PrFNC <= 1, so 3*epsilon is a generous band.
  const double band = 3.0 * params.epsilon;

  for (const FcpGroundTruth& entry : truth) {
    if (std::abs(entry.fcp - pfct) < band) continue;
    const bool should_be_in = entry.fcp > pfct;
    const bool is_in = mined.Find(entry.items) != nullptr;
    EXPECT_EQ(is_in, should_be_in)
        << entry.items.ToString() << " fcp=" << entry.fcp
        << " seed=" << GetParam();
  }
  // And nothing outside the oracle's support can ever be reported.
  for (const PfciEntry& entry : mined.itemsets) {
    bool known = false;
    for (const FcpGroundTruth& t : truth) {
      if (t.items == entry.items) {
        known = true;
        break;
      }
    }
    EXPECT_TRUE(known) << entry.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampledPathTrial, ::testing::Range(0, 20));

}  // namespace
}  // namespace pfci
