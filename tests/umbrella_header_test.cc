// Verifies that the umbrella header is self-contained and exposes every
// public entry point with consistent behaviour.
#include "src/pfci.h"

#include <gtest/gtest.h>

namespace pfci {
namespace {

TEST(UmbrellaHeader, EndToEndSmoke) {
  UncertainDatabase db;
  db.Add(Itemset{0, 1, 2, 3}, 0.9);
  db.Add(Itemset{0, 1, 2}, 0.6);
  db.Add(Itemset{0, 1, 2}, 0.7);
  db.Add(Itemset{0, 1, 2, 3}, 0.9);

  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;

  // Every miner family is reachable through the single include. The
  // free-function wrappers are deprecated (delegating to Mine()) but must
  // stay visible through the umbrella until their removal next cycle.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(MineMpfci(db, params).itemsets.size(), 2u);
  EXPECT_EQ(MineMpfciBfs(db, params).itemsets.size(), 2u);
  EXPECT_EQ(MineTopKPfci(db, params, 1).itemsets.size(), 1u);
#pragma GCC diagnostic pop
  EXPECT_EQ(MinePfi(db, 2, 0.8).size(), 15u);
  EXPECT_FALSE(MineExpectedSupport(db, 1.0).empty());
  EXPECT_FALSE(MinePsupClosed(db, 2, 0.8).empty());
  EXPECT_NEAR(ExactClosedProbability(db, Itemset{0, 1, 2, 3}), 0.99, 1e-12);

  // The unified API reaches the same miners, including the oracle.
  MiningRequest brute;
  brute.params = params;
  brute.algorithm = Algorithm::kBruteForce;
  EXPECT_EQ(Mine(db, brute).itemsets.size(), 2u);

  const TransactionDatabase exact = TransactionDatabase::FromUncertain(db);
  EXPECT_EQ(MineClosedItemsets(exact, 2).size(),
            CharmMineClosedItemsets(exact, 2).size());
}

TEST(UmbrellaHeader, StreamingAndGeneration) {
  MushroomParams gen;
  gen.num_transactions = 50;
  gen.num_attributes = 5;
  const TransactionDatabase exact = GenerateMushroomLike(gen);
  GaussianAssignerParams assign;
  const UncertainDatabase db = AssignGaussianProbabilities(exact, assign);
  EXPECT_EQ(db.size(), 50u);

  MiningParams params;
  params.min_sup = 10;
  params.pfct = 0.5;
  StreamingPfciMiner miner(params, 50);
  for (const auto& t : db.transactions()) miner.Observe(t.items, t.prob);
  EXPECT_EQ(miner.window_fill(), 50u);
  miner.MineWindow();  // Must run without issue.
}

}  // namespace
}  // namespace pfci
