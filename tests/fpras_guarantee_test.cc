// Statistical validation of the FPRAS guarantee (paper Sec. IV.B.4):
// Pr( |est - PrFNC| <= eps * PrFNC ) >= 1 - delta. Runs many independent
// ApproxFCP estimates against the exact inclusion-exclusion value and
// checks the empirical coverage. Also validates unbiasedness.
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/extension_events.h"
#include "src/core/fcp_exact.h"
#include "src/core/fcp_sampler.h"
#include "src/core/frequent_probability.h"
#include "src/data/vertical_index.h"
#include "src/prob/karp_luby.h"
#include "src/util/random.h"

namespace pfci {
namespace {

/// A small but non-trivial database: 12 transactions over 6 items with a
/// mix of probabilities, chosen so X = {0} has several extension events
/// with moderate probabilities (the regime where sampling is actually
/// exercised).
UncertainDatabase TestDb() {
  UncertainDatabase db;
  Rng rng(12321);
  for (int t = 0; t < 12; ++t) {
    std::vector<Item> items = {0};
    for (Item i = 1; i < 6; ++i) {
      if (rng.NextBernoulli(0.7)) items.push_back(i);
    }
    db.Add(Itemset(std::move(items)), 0.3 + 0.6 * rng.NextDouble());
  }
  return db;
}

TEST(FprasGuarantee, EmpiricalCoverageMeetsConfidence) {
  const UncertainDatabase db = TestDb();
  const VerticalIndex index(db);
  const std::size_t min_sup = 3;
  const FrequentProbability freq(index, min_sup);
  const Itemset x{0};
  const TidSet tids = index.TidsOf(x);
  const double pr_f = freq.PrF(tids);
  const ExtensionEventSet events(index, freq, x, tids);
  ASSERT_GE(events.size(), 2u);

  const double exact_fnc = ExactFrequentNonClosedProbability(events);
  ASSERT_GT(exact_fnc, 0.0);

  const double epsilon = 0.2;
  const double delta = 0.2;
  const int kRepetitions = 60;
  int within = 0;
  double sum_estimates = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Rng rng(1000 + rep);
    const ApproxFcpResult result =
        ApproxFcp(pr_f, events, epsilon, delta, rng);
    sum_estimates += result.fnc;
    if (std::abs(result.fnc - exact_fnc) <= epsilon * exact_fnc) ++within;
  }
  // The guarantee promises >= 1 - delta = 80% coverage; in practice the
  // bound is loose and coverage is near 100%. Require comfortably above
  // the guaranteed level while leaving statistical slack.
  EXPECT_GE(static_cast<double>(within) / kRepetitions, 1.0 - delta)
      << "exact=" << exact_fnc;
  // Unbiasedness: the mean over repetitions converges to the exact value.
  EXPECT_NEAR(sum_estimates / kRepetitions, exact_fnc, 0.05 * exact_fnc);
}

TEST(FprasGuarantee, TighterEpsilonShrinksError) {
  const UncertainDatabase db = TestDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 3);
  const Itemset x{0};
  const TidSet tids = index.TidsOf(x);
  const double pr_f = freq.PrF(tids);
  const ExtensionEventSet events(index, freq, x, tids);
  const double exact_fnc = ExactFrequentNonClosedProbability(events);

  const auto mean_abs_error = [&](double epsilon) {
    double total = 0.0;
    const int reps = 30;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(5000 + rep);
      total += std::abs(
          ApproxFcp(pr_f, events, epsilon, 0.1, rng).fnc - exact_fnc);
    }
    return total / reps;
  };
  // Halving epsilon quadruples the sample count; the mean absolute error
  // must shrink (allowing generous statistical slack).
  EXPECT_LT(mean_abs_error(0.05), mean_abs_error(0.3) + 1e-12);
}

TEST(FprasGuarantee, SampleCountMatchesFormula) {
  const UncertainDatabase db = TestDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 3);
  const Itemset x{0};
  const TidSet tids = index.TidsOf(x);
  const ExtensionEventSet events(index, freq, x, tids);
  Rng rng(1);
  const double epsilon = 0.25, delta = 0.15;
  const ApproxFcpResult result =
      ApproxFcp(freq.PrF(tids), events, epsilon, delta, rng);
  EXPECT_EQ(result.samples,
            KarpLubyRequiredSamples(events.size(), epsilon, delta));
}

}  // namespace
}  // namespace pfci
