// Unit tests for the Karp-Luby-Madras coverage estimator.
#include "src/prob/karp_luby.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pfci {
namespace {

TEST(KarpLubySamples, FormulaMatchesPaper) {
  // N = ceil(4 k ln(2/delta) / eps^2).
  EXPECT_EQ(KarpLubyRequiredSamples(1, 0.1, 0.1),
            static_cast<std::uint64_t>(
                std::ceil(4.0 * std::log(20.0) / 0.01)));
  EXPECT_EQ(KarpLubyRequiredSamples(0, 0.1, 0.1), 0u);
  // Linear in k.
  EXPECT_EQ(KarpLubyRequiredSamples(10, 0.1, 0.1),
            static_cast<std::uint64_t>(
                std::ceil(40.0 * std::log(20.0) / 0.01)));
}

TEST(KarpLubyEstimate, EmptyUnion) {
  Rng rng(1);
  const KarpLubyResult result = KarpLubyUnionEstimate(
      {0.0, 0.0}, 100, rng, [](std::size_t, Rng&) { return true; });
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.samples, 0u);
}

TEST(KarpLubyEstimate, DisjointEventsExact) {
  // Disjoint events: every sample is canonical, the estimate equals the
  // sum of the event probabilities exactly.
  Rng rng(2);
  const std::vector<double> probs = {0.1, 0.2, 0.15};
  const KarpLubyResult result = KarpLubyUnionEstimate(
      probs, 5000, rng, [](std::size_t, Rng&) { return true; });
  EXPECT_EQ(result.successes, result.samples);
  EXPECT_NEAR(result.estimate, 0.45, 1e-12);
}

TEST(KarpLubyEstimate, NestedEventsConvergeToLargest) {
  // Events C_0 ⊇ C_1 ⊇ C_2 realized on the uniform unit interval as
  // prefixes [0, p_i): union = p_0. A sample from C_i is canonical iff
  // i == 0 ... but the estimator only sees "is any earlier event covering
  // the sample", which for i > 0 is always true (C_{i} ⊆ C_0).
  Rng rng(3);
  const std::vector<double> probs = {0.5, 0.25, 0.125};
  const KarpLubyResult result = KarpLubyUnionEstimate(
      probs, 40000, rng, [&probs](std::size_t i, Rng& r) {
        // Draw a point uniform in the event [0, probs[i]) and report
        // whether no earlier event contains it; earlier events are
        // supersets here, so only i == 0 can be canonical.
        (void)r;
        return i == 0;
      });
  // successes/N is binomial around p_0/Z, so the check is statistical.
  EXPECT_NEAR(result.estimate, 0.5, 0.02);
}

TEST(KarpLubyEstimate, IndependentEventsStatisticallyAccurate) {
  // Two independent events over a 4-point space; the membership oracle
  // actually samples.
  // C_0 = {00, 01} with p 0.5; C_1 = {00, 10} with p 0.5;
  // union = {00, 01, 10} = 0.75 under the uniform measure.
  Rng rng(4);
  const std::vector<double> probs = {0.5, 0.5};
  const KarpLubyResult result = KarpLubyUnionEstimate(
      probs, 100000, rng, [](std::size_t i, Rng& r) {
        // Sample a point of C_i uniformly; the two points of each event
        // are equally likely.
        const bool second_point = r.NextBernoulli(0.5);
        if (i == 0) return true;  // No earlier event.
        // For C_1: points are 00 (in C_0) and 10 (not in C_0).
        return second_point;  // Canonical iff the point is 10.
      });
  EXPECT_NEAR(result.estimate, 0.75, 0.01);
}

TEST(KarpLubyEstimate, SkipsZeroProbabilityEvents) {
  Rng rng(5);
  const std::vector<double> probs = {0.0, 0.3, 0.0};
  const KarpLubyResult result = KarpLubyUnionEstimate(
      probs, 1000, rng, [](std::size_t i, Rng&) {
        EXPECT_EQ(i, 1u);  // Only the positive event may be drawn.
        return true;
      });
  EXPECT_NEAR(result.estimate, 0.3, 1e-12);
}

}  // namespace
}  // namespace pfci
