// Crash-consistency kill matrix for SaveRunSnapshotAtomic (DESIGN.md
// §14): a child process is killed (raw _exit from the armed failpoint —
// no flush, no atexit) at EVERY snapshot failpoint site mid-save, and
// the parent proves the on-disk snapshot is the old complete file or
// the new complete file, never torn. Also pins torn-file detection,
// throwing failpoint actions failing the save cleanly, and the
// RetryWithBackoff composition recovering from transient faults.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/search/run_snapshot.h"
#include "src/util/failpoint.h"
#include "src/util/retry.h"

namespace pfci {
namespace {

const char* const kSites[] = {"snapshot/open", "snapshot/write",
                              "snapshot/flush", "snapshot/rename"};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pfci_crash_" + name + "_" +
         std::to_string(::getpid()) + ".snapshot";
}

struct PathCleaner {
  std::string path;
  ~PathCleaner() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

RunSnapshot MakeSnapshot(std::uint64_t tag) {
  RunSnapshot snapshot;
  snapshot.algorithm = "mpfci";
  snapshot.fingerprint = tag;
  snapshot.has_frontier = true;
  snapshot.base.nodes_visited = tag * 3;
  snapshot.base.intersections = tag + 1;
  PfciEntry entry;
  entry.items = Itemset({0, static_cast<Item>(tag % 5 + 1)});
  entry.fcp = 1.0 / static_cast<double>(tag + 2);
  entry.pr_f = 1.0;
  entry.method = FcpMethod::kExact;
  snapshot.entries.push_back(entry);
  WeightedItemset element;
  element.items = Itemset({static_cast<Item>(tag % 7)});
  element.weight = 1e-12 * static_cast<double>(tag + 1);
  snapshot.frontier.push_back(element);
  snapshot.done = {0};
  return snapshot;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return "";
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(SnapshotCrash, KillAtEveryFailpointLeavesOldOrNewCompleteFile) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const RunSnapshot old_snapshot = MakeSnapshot(1);
  const RunSnapshot new_snapshot = MakeSnapshot(2);
  const std::string old_text = SerializeRunSnapshot(old_snapshot);
  const std::string new_text = SerializeRunSnapshot(new_snapshot);

  for (const char* site : kSites) {
    const std::string path = TempPath(std::string("kill_") +
                                      (site + sizeof("snapshot/") - 1));
    PathCleaner cleaner{path};
    ASSERT_EQ(SaveRunSnapshotAtomic(old_snapshot, path), "") << site;

    const pid_t child = fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
      // Child: die at the site with no flushing — the closest userspace
      // stand-in for a crash mid-save.
      failpoint::Arm(site, [] { ::_exit(42); });
      (void)SaveRunSnapshotAtomic(new_snapshot, path);
      ::_exit(0);  // Site not hit (would be a matrix bug, caught below).
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status)) << site;
    ASSERT_EQ(WEXITSTATUS(status), 42)
        << site << " was never hit — the kill matrix lost a site";

    // The contract: the target is the old complete snapshot or the new
    // complete snapshot. Never missing, never torn.
    const std::string on_disk = ReadFileOrEmpty(path);
    EXPECT_TRUE(on_disk == old_text || on_disk == new_text)
        << site << ": torn or unexpected snapshot content:\n"
        << on_disk;
    RunSnapshot loaded;
    EXPECT_EQ(LoadRunSnapshot(path, &loaded), "")
        << site << ": on-disk snapshot does not parse";

    // A later save must succeed despite any leftover temp file.
    failpoint::DisarmAll();
    ASSERT_EQ(SaveRunSnapshotAtomic(new_snapshot, path), "") << site;
    EXPECT_EQ(ReadFileOrEmpty(path), new_text) << site;
  }
}

TEST(SnapshotCrash, ThrowingFailpointFailsTheSaveAndKeepsTheOldFile) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const RunSnapshot old_snapshot = MakeSnapshot(3);
  const RunSnapshot new_snapshot = MakeSnapshot(4);
  const std::string old_text = SerializeRunSnapshot(old_snapshot);
  for (const char* site : kSites) {
    const std::string path = TempPath(std::string("throw_") +
                                      (site + sizeof("snapshot/") - 1));
    PathCleaner cleaner{path};
    ASSERT_EQ(SaveRunSnapshotAtomic(old_snapshot, path), "") << site;
    failpoint::Arm(site, [site] {
      throw std::runtime_error(std::string("injected fault at ") + site);
    });
    const std::string error = SaveRunSnapshotAtomic(new_snapshot, path);
    failpoint::DisarmAll();
    EXPECT_NE(error, "") << site << ": injected fault must fail the save";
    EXPECT_NE(error.find("injected fault"), std::string::npos) << error;
    EXPECT_EQ(ReadFileOrEmpty(path), old_text)
        << site << ": failed save must leave the old snapshot intact";
    // The temp file never survives a failed save.
    std::ifstream temp(path + ".tmp");
    EXPECT_FALSE(temp.good()) << site;
  }
}

TEST(SnapshotCrash, RetryWithBackoffRecoversFromTransientFaults) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const RunSnapshot snapshot = MakeSnapshot(5);
  const std::string path = TempPath("retry");
  PathCleaner cleaner{path};
  // First two attempts hit an injected fault; the third goes through.
  int hits = 0;
  failpoint::Arm("snapshot/flush", [&hits] {
    if (++hits <= 2) throw std::runtime_error("transient flush fault");
  });
  RetryPolicy policy;
  policy.max_attempts = 4;
  const RetryResult result = RetryWithBackoff(
      policy,
      [&] { return SaveRunSnapshotAtomic(snapshot, path); },
      [](double) {});  // No real sleeping in tests.
  failpoint::DisarmAll();
  EXPECT_TRUE(result.succeeded) << result.last_error;
  EXPECT_EQ(result.attempts, 3);
  RunSnapshot loaded;
  EXPECT_EQ(LoadRunSnapshot(path, &loaded), "");
  EXPECT_EQ(loaded.fingerprint, snapshot.fingerprint);
}

TEST(SnapshotCrash, TornFilesAreDetectedNotResumed) {
  const RunSnapshot snapshot = MakeSnapshot(6);
  const std::string text = SerializeRunSnapshot(snapshot);
  // Any prefix that cuts into or before the end marker must fail to
  // parse: the marker is the completeness proof. (Losing only the final
  // newline keeps every byte of data and still parses — that file is
  // complete, not torn.)
  RunSnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseRunSnapshot(text, &parsed, &error)) << error;
  for (const std::size_t cut :
       {text.size() - 2, text.size() / 2, std::size_t{1}, std::size_t{0}}) {
    EXPECT_FALSE(ParseRunSnapshot(text.substr(0, cut), &parsed, &error))
        << "a torn snapshot (cut at " << cut << ") must not parse";
  }
  // Trailing garbage after the end marker is equally corrupt.
  EXPECT_FALSE(ParseRunSnapshot(text + "trailing", &parsed, &error));

  // And through the file loader: a truncated file on disk is refused.
  const std::string path = TempPath("torn");
  PathCleaner cleaner{path};
  {
    std::ofstream file(path, std::ios::binary);
    file << text.substr(0, text.size() * 2 / 3);
  }
  EXPECT_NE(LoadRunSnapshot(path, &parsed), "");
}

}  // namespace
}  // namespace pfci
