// Parallel determinism: with execution.deterministic (the default),
// Mine() must produce bit-identical results — items, pr_f, and *sampled*
// fcp values included — for every thread count. See DESIGN.md §7 for the
// seed-derivation and in-order-merge scheme that makes this hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/core/mpfci_miner.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/util/thread_pool.h"

namespace pfci {
namespace {

/// A small-but-not-trivial Quest dataset: large enough that the DFS has
/// many first-level subtrees to schedule and the sampler actually runs.
UncertainDatabase MakeTestDb(std::uint64_t seed) {
  QuestParams quest;
  quest.num_transactions = 120;
  quest.avg_transaction_length = 8.0;
  quest.avg_pattern_length = 4.0;
  quest.num_items = 24;
  quest.num_patterns = 12;
  quest.seed = seed;
  GaussianAssignerParams assign;
  assign.mean = 0.8;
  assign.spread = 0.1;
  assign.seed = seed + 1;
  return AssignGaussianProbabilities(GenerateQuest(quest), assign);
}

/// The telemetry counters are part of the determinism contract: after the
/// in-order merge they must be identical for every thread count and tid
/// set representation. Wall-clock fields (seconds, *_seconds) are the
/// only MiningStats members exempt.
void ExpectIdenticalStats(const MiningStats& a, const MiningStats& b) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.pruned_by_chernoff, b.pruned_by_chernoff);
  EXPECT_EQ(a.pruned_by_frequency, b.pruned_by_frequency);
  EXPECT_EQ(a.pruned_by_superset, b.pruned_by_superset);
  EXPECT_EQ(a.pruned_by_subset, b.pruned_by_subset);
  EXPECT_EQ(a.decided_by_bounds, b.decided_by_bounds);
  EXPECT_EQ(a.zero_by_count, b.zero_by_count);
  EXPECT_EQ(a.exact_fcp_computations, b.exact_fcp_computations);
  EXPECT_EQ(a.sampled_fcp_computations, b.sampled_fcp_computations);
  EXPECT_EQ(a.total_samples, b.total_samples);
  EXPECT_EQ(a.dp_runs, b.dp_runs);
  EXPECT_EQ(a.intersections, b.intersections);
  EXPECT_EQ(a.degraded_fcp_evals, b.degraded_fcp_evals);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.truncated, b.truncated);
}

/// Exact equality across every reported field — the contract is
/// bit-identical, not merely close.
void ExpectIdentical(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_EQ(a.itemsets[i].fcp, b.itemsets[i].fcp);
    EXPECT_EQ(a.itemsets[i].pr_f, b.itemsets[i].pr_f);
    EXPECT_EQ(a.itemsets[i].fcp_lower, b.itemsets[i].fcp_lower);
    EXPECT_EQ(a.itemsets[i].fcp_upper, b.itemsets[i].fcp_upper);
    EXPECT_EQ(a.itemsets[i].method, b.itemsets[i].method);
  }
  ExpectIdenticalStats(a.stats, b.stats);
}

MiningResult MineWithThreads(const UncertainDatabase& db,
                             const MiningRequest& base,
                             std::size_t num_threads) {
  MiningRequest request = base;
  request.execution.num_threads = num_threads;
  return Mine(db, request);
}

class ParallelDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParallelDeterminismTest, MpfciIdenticalAcrossThreadCounts) {
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  const MiningResult one = MineWithThreads(db, request, 1);
  EXPECT_FALSE(one.itemsets.empty());
  ExpectIdentical(one, MineWithThreads(db, request, 2));
  ExpectIdentical(one, MineWithThreads(db, request, 8));
}

TEST_P(ParallelDeterminismTest, MpfciSampledPathIdenticalAcrossThreadCounts) {
  // Force the Karp-Luby sampler on every FCP computation: this is the
  // path where per-batch RNG streams and in-order reduction carry the
  // whole determinism guarantee.
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  request.params.force_sampling = true;
  request.params.exact_event_limit = 0;
  request.params.pruning.fcp_bounds = false;
  // Loose tolerances: the determinism contract is independent of the
  // sample count, and tight ones make this test dominate the suite.
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult one = MineWithThreads(db, request, 1);
  EXPECT_FALSE(one.itemsets.empty());
  ExpectIdentical(one, MineWithThreads(db, request, 2));
  ExpectIdentical(one, MineWithThreads(db, request, 8));
}

TEST_P(ParallelDeterminismTest, BfsIdenticalAcrossThreadCounts) {
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.algorithm = Algorithm::kMpfciBfs;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  const MiningResult one = MineWithThreads(db, request, 1);
  ExpectIdentical(one, MineWithThreads(db, request, 2));
  ExpectIdentical(one, MineWithThreads(db, request, 8));
}

TEST_P(ParallelDeterminismTest, NaiveIdenticalAcrossThreadCounts) {
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.algorithm = Algorithm::kNaive;
  request.params.min_sup = 10;
  request.params.pfct = 0.4;
  request.params.seed = GetParam();
  // Loose tolerances, as above: Naive samples every PFI.
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult one = MineWithThreads(db, request, 1);
  ExpectIdentical(one, MineWithThreads(db, request, 2));
  ExpectIdentical(one, MineWithThreads(db, request, 8));
}

TEST_P(ParallelDeterminismTest, TopKIdenticalAcrossThreadCounts) {
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.algorithm = Algorithm::kTopK;
  request.top_k = 5;
  request.params.min_sup = 8;
  request.params.pfct = 0.0;
  request.params.seed = GetParam();
  const MiningResult one = MineWithThreads(db, request, 1);
  ExpectIdentical(one, MineWithThreads(db, request, 2));
  ExpectIdentical(one, MineWithThreads(db, request, 8));
}

TEST_P(ParallelDeterminismTest, MpfciIdenticalAcrossTidSetModes) {
  // The representation contract: forcing sparse-only or dense-only tid
  // sets changes memory layout and op kernels, never the mined result —
  // bit-identical itemsets, probabilities, and bounds at every thread
  // count, against the adaptive single-thread baseline.
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  request.params.tidset_mode = TidSetMode::kAdaptive;
  const MiningResult baseline = MineWithThreads(db, request, 1);
  EXPECT_FALSE(baseline.itemsets.empty());
  for (const TidSetMode mode :
       {TidSetMode::kAdaptive, TidSetMode::kSparse, TidSetMode::kDense}) {
    request.params.tidset_mode = mode;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      SCOPED_TRACE(std::string(TidSetModeName(mode)) + " threads=" +
                   std::to_string(threads));
      ExpectIdentical(baseline, MineWithThreads(db, request, threads));
    }
  }
}

TEST_P(ParallelDeterminismTest, SampledPathIdenticalAcrossTidSetModes) {
  // Same contract on the Karp-Luby sampled path: the sampler's RNG
  // streams must be untouched by the representation choice.
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  request.params.force_sampling = true;
  request.params.exact_event_limit = 0;
  request.params.pruning.fcp_bounds = false;
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult baseline = MineWithThreads(db, request, 1);
  EXPECT_FALSE(baseline.itemsets.empty());
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    request.params.tidset_mode = mode;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(std::string(TidSetModeName(mode)) + " threads=" +
                   std::to_string(threads));
      ExpectIdentical(baseline, MineWithThreads(db, request, threads));
    }
  }
}

TEST_P(ParallelDeterminismTest, NaiveIdenticalAcrossTidSetModes) {
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.algorithm = Algorithm::kNaive;
  request.params.min_sup = 10;
  request.params.pfct = 0.4;
  request.params.seed = GetParam();
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult baseline = MineWithThreads(db, request, 1);
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    request.params.tidset_mode = mode;
    SCOPED_TRACE(TidSetModeName(mode));
    ExpectIdentical(baseline, MineWithThreads(db, request, 2));
  }
}

TEST_P(ParallelDeterminismTest, NodeBudgetTruncationIdenticalEverywhere) {
  // The determinism contract extends to interrupted runs: a logical node
  // budget cuts the search at a point that is a pure function of the
  // request, so the partial result — entries, sampled fcp values, and
  // counters — is bit-identical across thread counts and tid-set modes.
  const UncertainDatabase db = MakeTestDb(GetParam());
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  const MiningResult full = MineWithThreads(db, request, 1);
  ASSERT_GT(full.stats.nodes_visited, 4u);

  request.budget.max_nodes = full.stats.nodes_visited / 2;
  const MiningResult baseline = MineWithThreads(db, request, 1);
  EXPECT_EQ(baseline.outcome(), Outcome::kBudgetExhausted);
  for (const TidSetMode mode :
       {TidSetMode::kAdaptive, TidSetMode::kSparse, TidSetMode::kDense}) {
    request.params.tidset_mode = mode;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE(std::string(TidSetModeName(mode)) + " threads=" +
                   std::to_string(threads));
      ExpectIdentical(baseline, MineWithThreads(db, request, threads));
    }
  }
}

TEST_P(ParallelDeterminismTest, PreCancelledRunIdenticalAcrossThreadCounts) {
  // Cancellation is scheduling-dependent in general, but a token that is
  // already triggered at Mine() entry stops every unit at its first
  // checkpoint — the one cancellation point with a determinism guarantee.
  const UncertainDatabase db = MakeTestDb(GetParam());
  CancelToken token;
  token.RequestCancel();
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = GetParam();
  request.cancel = &token;
  const MiningResult baseline = MineWithThreads(db, request, 1);
  EXPECT_EQ(baseline.outcome(), Outcome::kCancelled);
  EXPECT_TRUE(baseline.itemsets.empty());
  ExpectIdentical(baseline, MineWithThreads(db, request, 2));
  ExpectIdentical(baseline, MineWithThreads(db, request, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Values(1u, 7u, 42u));

TEST(ParallelDeterminism, BruteForceIdenticalAcrossThreadCounts) {
  // 17 transactions → 2^17 worlds → 8 fixed ranges: the parallel oracle
  // must reproduce the sequential one exactly.
  QuestParams quest;
  quest.num_transactions = 17;
  quest.avg_transaction_length = 4.0;
  quest.avg_pattern_length = 3.0;
  quest.num_items = 8;
  quest.num_patterns = 5;
  quest.seed = 3;
  GaussianAssignerParams assign;
  const UncertainDatabase db =
      AssignGaussianProbabilities(GenerateQuest(quest), assign);

  ThreadPool pool(4);
  ExecutionContext parallel;
  parallel.pool = &pool;

  const std::vector<FcpGroundTruth> seq = BruteForceAllFcp(db, 3);
  const std::vector<FcpGroundTruth> par = BruteForceAllFcp(db, 3, parallel);
  ASSERT_EQ(seq.size(), par.size());
  ASSERT_FALSE(seq.empty());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].items, par[i].items);
    EXPECT_EQ(seq[i].fcp, par[i].fcp);
  }

  const Itemset probe = seq.front().items;
  const WorldProbabilities a = BruteForceItemsetProbabilities(db, probe, 3);
  const WorldProbabilities b =
      BruteForceItemsetProbabilities(db, probe, 3, parallel);
  EXPECT_EQ(a.pr_f, b.pr_f);
  EXPECT_EQ(a.pr_c, b.pr_c);
  EXPECT_EQ(a.pr_fc, b.pr_fc);
}

TEST(ParallelDeterminism, WrapperMatchesExplicitSingleThreadRequest) {
  // The (deprecated) free function and Mine() with the default policy must
  // agree bit-for-bit (the wrapper is now a shim over the same engine).
  const UncertainDatabase db = MakeTestDb(42);
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = 42;
  const MiningResult via_mine = Mine(db, request);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const MiningResult via_wrapper = MineMpfci(db, request.params);
#pragma GCC diagnostic pop
  ExpectIdentical(via_mine, via_wrapper);
}

}  // namespace
}  // namespace pfci
