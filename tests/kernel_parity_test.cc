// Golden parity pin for the unified search kernel (DESIGN.md §12).
//
// The refactor of the five miners onto the search kernel must preserve
// the repo's strongest invariant bit-for-bit: results, stats counters,
// and trace event sequences, for every algorithm x tid-set mode x thread
// count, including fail-soft truncated partials. This test serializes
// all of that (wall-clock fields masked) and compares against goldens
// generated from the pre-refactor miners.
//
// Regenerate (only when an *intentional* behavior change lands) with:
//   PFCI_REGEN_GOLDENS=1 ./kernel_parity_test
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/mine.h"
#include "src/core/mining_result.h"
#include "src/data/uncertain_database.h"
#include "src/harness/dataset_factory.h"
#include "src/util/string_util.h"
#include "src/util/trace.h"

namespace pfci {
namespace {

const char* TidSetModeLabel(TidSetMode mode) {
  switch (mode) {
    case TidSetMode::kAdaptive:
      return "adaptive";
    case TidSetMode::kSparse:
      return "sparse";
    case TidSetMode::kDense:
      return "dense";
  }
  return "?";
}

/// Serializes one run: entries at round-trip precision, the stats JSON
/// with its wall-clock fields zeroed, and the trace event sequence with
/// span/run durations masked.
std::string Serialize(const MiningResult& result,
                      const std::vector<TraceEvent>& events) {
  std::string out;
  for (const PfciEntry& entry : result.itemsets) {
    out += "entry " + entry.items.ToString() +
           " fcp=" + FormatDoubleRoundTrip(entry.fcp) +
           " pr_f=" + FormatDoubleRoundTrip(entry.pr_f) +
           " lo=" + FormatDoubleRoundTrip(entry.fcp_lower) +
           " hi=" + FormatDoubleRoundTrip(entry.fcp_upper) + " method=" +
           FcpMethodName(entry.method) + "\n";
  }
  MiningStats masked = result.stats;
  masked.seconds = 0.0;
  masked.candidate_seconds = 0.0;
  masked.search_seconds = 0.0;
  masked.merge_seconds = 0.0;
  out += "stats " + masked.ToJson() + "\n";
  out += "status " + result.status_message + "\n";
  for (const TraceEvent& event : events) {
    out += std::string("trace ") + TraceEventKindName(event.kind) + ":" +
           event.name + ":" + std::to_string(event.value) + "\n";
  }
  return out;
}

struct Scenario {
  std::string name;
  const UncertainDatabase* db;
  MiningRequest request;
};

/// The full parity matrix. Everything here must be deterministic for a
/// fixed request (the repo-wide contract), so the serialized output is a
/// pure function of this list.
std::vector<Scenario> BuildScenarios() {
  static const UncertainDatabase paper = MakePaperExampleDb();
  static const UncertainDatabase table4 = MakeTable4Db();
  static const UncertainDatabase quest = MakeUncertainQuest(BenchScale::kQuick);

  const Algorithm kTupleAlgos[] = {
      Algorithm::kMpfci,           Algorithm::kMpfciBfs,
      Algorithm::kNaive,           Algorithm::kTopK,
      Algorithm::kPfi,             Algorithm::kExpectedSupport,
      Algorithm::kExpectedSupportFpGrowth, Algorithm::kBruteForce,
  };
  const TidSetMode kModes[] = {TidSetMode::kAdaptive, TidSetMode::kSparse,
                               TidSetMode::kDense};
  const std::size_t kThreads[] = {1, 2, 4};

  std::vector<Scenario> scenarios;
  const auto add = [&scenarios](const std::string& name,
                                const UncertainDatabase& db,
                                const MiningRequest& request) {
    scenarios.push_back(Scenario{name, &db, request});
  };

  // 8 algorithms x 3 tid-set modes x 1/2/4 threads on the paper example.
  for (Algorithm algorithm : kTupleAlgos) {
    for (TidSetMode mode : kModes) {
      for (std::size_t threads : kThreads) {
        MiningRequest request;
        request.algorithm = algorithm;
        request.params.min_sup = 2;
        request.params.pfct = 0.3;
        request.params.epsilon = 0.3;
        request.params.delta = 0.3;
        request.params.tidset_mode = mode;
        request.execution.num_threads = threads;
        if (algorithm == Algorithm::kTopK) request.top_k = 5;
        add(std::string("paper/") + AlgorithmName(algorithm) + "/" +
                TidSetModeLabel(mode) + "/t" + std::to_string(threads),
            paper, request);
      }
    }
  }

  // The five refactored miners on a larger generated database (deeper
  // trees: superset/subset pruning, Chernoff, bound decisions all fire).
  const Algorithm kRefactored[] = {Algorithm::kMpfci, Algorithm::kMpfciBfs,
                                   Algorithm::kNaive, Algorithm::kTopK,
                                   Algorithm::kPfi};
  for (Algorithm algorithm : kRefactored) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      MiningRequest request;
      request.algorithm = algorithm;
      request.params.min_sup = AbsoluteMinSup(quest.size(), 0.15);
      request.params.pfct = 0.2;
      request.params.epsilon = 0.4;
      request.params.delta = 0.3;
      if (algorithm == Algorithm::kTopK) request.top_k = 7;
      request.execution.num_threads = threads;
      add(std::string("quest/") + AlgorithmName(algorithm) + "/t" +
              std::to_string(threads),
          quest, request);
    }
  }

  // Forced-sampling MPFCI (the degraded/sampled FCP path) on Table IV.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    MiningRequest request;
    request.algorithm = Algorithm::kMpfci;
    request.params.min_sup = 2;
    request.params.pfct = 0.2;
    request.params.epsilon = 0.4;
    request.params.delta = 0.3;
    request.params.force_sampling = true;
    request.execution.num_threads = threads;
    add("table4/mpfci-sampled/t" + std::to_string(threads), table4, request);
  }

  // Fail-soft truncation: a tiny node budget must yield the same verified
  // partial for every thread count (and both remaining tid-set modes).
  for (Algorithm algorithm : kRefactored) {
    for (TidSetMode mode : kModes) {
      for (std::size_t threads : kThreads) {
        MiningRequest request;
        request.algorithm = algorithm;
        request.params.min_sup = 2;
        request.params.pfct = 0.3;
        request.params.epsilon = 0.3;
        request.params.delta = 0.3;
        request.params.tidset_mode = mode;
        request.execution.num_threads = threads;
        request.budget.max_nodes = 3;
        if (algorithm == Algorithm::kTopK) request.top_k = 5;
        add(std::string("budget-nodes/") + AlgorithmName(algorithm) + "/" +
                TidSetModeLabel(mode) + "/t" + std::to_string(threads),
            paper, request);
      }
    }
  }

  // Sample-budget truncation through the sampled FCP path.
  for (std::size_t threads : kThreads) {
    MiningRequest request;
    request.algorithm = Algorithm::kNaive;
    request.params.min_sup = 2;
    request.params.pfct = 0.3;
    request.params.epsilon = 0.3;
    request.params.delta = 0.3;
    request.execution.num_threads = threads;
    request.budget.max_samples = 400;
    add("budget-samples/naive/t" + std::to_string(threads), paper, request);
  }
  return scenarios;
}

std::string GoldenPath() {
  return std::string(PFCI_SOURCE_DIR) + "/tests/golden/kernel_parity.golden";
}

std::string RunAll() {
  std::string out;
  for (const Scenario& scenario : BuildScenarios()) {
    MemoryTraceSink sink;
    MiningRequest request = scenario.request;
    request.trace = &sink;
    const MiningResult result = Mine(*scenario.db, request);
    out += "== " + scenario.name + "\n";
    out += Serialize(result, sink.TakeSnapshot());
  }
  return out;
}

TEST(KernelParity, MatchesPreRefactorGoldens) {
  const std::string actual = RunAll();
  if (std::getenv("PFCI_REGEN_GOLDENS") != nullptr) {
    std::ofstream file(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(file.good()) << "cannot write " << GoldenPath();
    file << actual;
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }
  std::ifstream file(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(file.good())
      << "missing golden " << GoldenPath()
      << " (generate with PFCI_REGEN_GOLDENS=1)";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string expected = buffer.str();

  if (actual == expected) return;  // Bit-identical: the contract holds.

  // Report the first diverging scenario line for a readable failure.
  std::istringstream a(actual);
  std::istringstream e(expected);
  std::string a_line, e_line, section;
  std::size_t line_no = 0;
  while (true) {
    const bool a_ok = static_cast<bool>(std::getline(a, a_line));
    const bool e_ok = static_cast<bool>(std::getline(e, e_line));
    ++line_no;
    if (!a_ok && !e_ok) break;
    const std::string& cursor = e_ok ? e_line : a_line;
    if (cursor.rfind("== ", 0) == 0) section = cursor.substr(3);
    if (a_line != e_line || a_ok != e_ok) {
      FAIL() << "kernel parity broken at line " << line_no << " (scenario "
             << section << ")\n  golden: " << (e_ok ? e_line : "<eof>")
             << "\n  actual: " << (a_ok ? a_line : "<eof>");
    }
    a_line.clear();
    e_line.clear();
  }
}

}  // namespace
}  // namespace pfci
