// End-to-end fail-soft behavior of Mine(): node/sample budgets return
// verified partial results that are bit-identical across thread counts
// and tid-set modes, deadlines and cancellation wind runs down cleanly,
// the memory budget trips, deadline pressure degrades exact FCP
// evaluations to the sampler, and sinks flush on every exit path.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mine.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/exact/charm_miner.h"
#include "src/exact/closed_miner.h"
#include "src/harness/dataset_factory.h"
#include "src/util/runtime.h"
#include "src/util/trace.h"

namespace pfci {
namespace {

/// Same shape as the parallel-determinism suite: enough first-level
/// subtrees that fair-share budget splitting is actually exercised.
UncertainDatabase MakeTestDb(std::uint64_t seed) {
  QuestParams quest;
  quest.num_transactions = 120;
  quest.avg_transaction_length = 8.0;
  quest.avg_pattern_length = 4.0;
  quest.num_items = 24;
  quest.num_patterns = 12;
  quest.seed = seed;
  GaussianAssignerParams assign;
  assign.mean = 0.8;
  assign.spread = 0.1;
  assign.seed = seed + 1;
  return AssignGaussianProbabilities(GenerateQuest(quest), assign);
}

MiningRequest BaseRequest(std::uint64_t seed) {
  MiningRequest request;
  request.params.min_sup = 8;
  request.params.pfct = 0.3;
  request.params.seed = seed;
  return request;
}

void ExpectIdenticalEntries(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_EQ(a.itemsets[i].fcp, b.itemsets[i].fcp);
    EXPECT_EQ(a.itemsets[i].pr_f, b.itemsets[i].pr_f);
    EXPECT_EQ(a.itemsets[i].method, b.itemsets[i].method);
  }
  EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.outcome(), b.outcome());
  EXPECT_EQ(a.stats.truncated, b.stats.truncated);
}

/// The verified-partial contract: every emitted entry matches the
/// unbudgeted run bit-for-bit.
void ExpectVerifiedPrefix(const MiningResult& partial,
                          const MiningResult& full) {
  for (const PfciEntry& entry : partial.itemsets) {
    const PfciEntry* reference = full.Find(entry.items);
    ASSERT_NE(reference, nullptr)
        << entry.items.ToString() << " not in the unbudgeted run";
    EXPECT_EQ(entry.fcp, reference->fcp) << entry.items.ToString();
    EXPECT_EQ(entry.pr_f, reference->pr_f) << entry.items.ToString();
  }
}

MiningResult MineWith(const UncertainDatabase& db, const MiningRequest& base,
                      std::size_t threads) {
  MiningRequest request = base;
  request.execution.num_threads = threads;
  return Mine(db, request);
}

TEST(RuntimeBudget, NodeBudgetReturnsDeterministicVerifiedPartial) {
  // The acceptance scenario: a node budget well below the search-space
  // size yields kBudgetExhausted with a non-empty verified partial,
  // bit-identical across 1/2/4 threads and every tid-set mode.
  const UncertainDatabase db = MakeTestDb(42);
  MiningRequest request = BaseRequest(42);
  const MiningResult full = Mine(db, request);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_GT(full.stats.nodes_visited, 8u);

  request.budget.max_nodes = full.stats.nodes_visited / 2;
  const MiningResult partial = MineWith(db, request, 1);
  EXPECT_EQ(partial.outcome(), Outcome::kBudgetExhausted);
  EXPECT_FALSE(partial.ok());
  EXPECT_TRUE(partial.stats.truncated);
  EXPECT_FALSE(partial.itemsets.empty());
  EXPECT_LE(partial.stats.nodes_visited, request.budget.max_nodes);
  EXPECT_FALSE(partial.status_message.empty());
  ExpectVerifiedPrefix(partial, full);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdenticalEntries(partial, MineWith(db, request, threads));
  }
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    SCOPED_TRACE(TidSetModeName(mode));
    MiningRequest moded = request;
    moded.params.tidset_mode = mode;
    ExpectIdenticalEntries(partial, MineWith(db, moded, 2));
  }
}

TEST(RuntimeBudget, SampleBudgetSkipsEvaluationsWhole) {
  // Forced-sampling run: a sample budget refuses some evaluations, but
  // whatever is emitted carries the full FPRAS sample count and matches
  // the unbudgeted run exactly.
  const UncertainDatabase db = MakeTestDb(7);
  MiningRequest request = BaseRequest(7);
  request.params.force_sampling = true;
  request.params.exact_event_limit = 0;
  request.params.pruning.fcp_bounds = false;
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult full = Mine(db, request);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_GT(full.stats.total_samples, 0u);

  request.budget.max_samples = full.stats.total_samples / 2;
  const MiningResult partial = MineWith(db, request, 1);
  EXPECT_EQ(partial.outcome(), Outcome::kBudgetExhausted);
  EXPECT_TRUE(partial.stats.truncated);
  EXPECT_LE(partial.stats.total_samples, request.budget.max_samples);
  ExpectVerifiedPrefix(partial, full);
  ExpectIdenticalEntries(partial, MineWith(db, request, 4));
}

TEST(RuntimeBudget, BudgetsApplyToEveryAlgorithm) {
  const UncertainDatabase db = MakeTestDb(1);
  for (const Algorithm algorithm :
       {Algorithm::kMpfciBfs, Algorithm::kTopK, Algorithm::kPfi,
        Algorithm::kExpectedSupport}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    MiningRequest request = BaseRequest(1);
    request.algorithm = algorithm;
    if (algorithm == Algorithm::kTopK) request.top_k = 5;
    if (algorithm == Algorithm::kExpectedSupport) request.min_esup = 8.0;
    const MiningResult full = Mine(db, request);
    ASSERT_EQ(full.outcome(), Outcome::kComplete);

    request.budget.max_nodes = 3;
    const MiningResult partial = Mine(db, request);
    EXPECT_EQ(partial.outcome(), Outcome::kBudgetExhausted);
    EXPECT_TRUE(partial.stats.truncated);
    for (const PfciEntry& entry : partial.itemsets) {
      const PfciEntry* reference = full.Find(entry.items);
      ASSERT_NE(reference, nullptr) << entry.items.ToString();
      EXPECT_EQ(entry.pr_f, reference->pr_f) << entry.items.ToString();
    }
  }
}

TEST(RuntimeBudget, NaiveSampleBudgetEmitsBitIdenticalSubset) {
  // Naive stage 2 derives each check's seed from the PFI index, so
  // sample-budget refusals drop entries without shifting anyone else's
  // RNG stream (node truncation in stage 1 would — see DESIGN.md §10).
  const UncertainDatabase db = MakeTestDb(7);
  MiningRequest request = BaseRequest(7);
  request.algorithm = Algorithm::kNaive;
  request.params.min_sup = 10;
  request.params.pfct = 0.4;
  request.params.epsilon = 0.5;
  request.params.delta = 0.3;
  const MiningResult full = Mine(db, request);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_GT(full.stats.total_samples, 0u);

  request.budget.max_samples = full.stats.total_samples / 2;
  const MiningResult partial = Mine(db, request);
  EXPECT_EQ(partial.outcome(), Outcome::kBudgetExhausted);
  ExpectVerifiedPrefix(partial, full);
}

TEST(RuntimeBudget, PreCancelledTokenStopsBeforeAnyWork) {
  const UncertainDatabase db = MakeTestDb(42);
  CancelToken token;
  token.RequestCancel();
  MiningRequest request = BaseRequest(42);
  request.cancel = &token;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const MiningResult result = MineWith(db, request, threads);
    EXPECT_EQ(result.outcome(), Outcome::kCancelled);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.itemsets.empty());
    EXPECT_EQ(result.stats.nodes_visited, 0u);
  }
}

TEST(RuntimeBudget, ExpiredDeadlineWindsDownCleanly) {
  const UncertainDatabase db = MakeTestDb(42);
  MiningRequest request = BaseRequest(42);
  const MiningResult full = Mine(db, request);
  request.budget.deadline_seconds = 1e-9;  // Expired at the first poll.
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kDeadlineExceeded);
  EXPECT_FALSE(result.ok());
  ExpectVerifiedPrefix(result, full);
}

TEST(RuntimeBudget, MemoryBudgetTripsOnTheVerticalIndex) {
  // One byte of budget: charging the vertical index at run start already
  // exceeds it, so the run stops before expanding anything.
  const UncertainDatabase db = MakeTestDb(42);
  MiningRequest request = BaseRequest(42);
  request.budget.max_resident_bytes = 1;
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kBudgetExhausted);
  EXPECT_TRUE(result.itemsets.empty());
  EXPECT_EQ(result.stats.nodes_visited, 0u);
}

TEST(RuntimeBudget, DeadlinePressureDegradesExactFcpToSampler) {
  // A far-away deadline with an already-passed degradation point: the
  // run completes, but exact-eligible FCP evaluations switch to the
  // ApproxFCP sampler and are counted.
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;
  request.params.exact_event_limit = 25;
  // Bounds pruning would decide everything on this tiny example; turn it
  // off so FCP evaluations actually run.
  request.params.pruning.fcp_bounds = false;
  const MiningResult exact = Mine(db, request);
  ASSERT_GT(exact.stats.exact_fcp_computations, 0u);
  ASSERT_EQ(exact.stats.degraded_fcp_evals, 0u);

  request.budget.deadline_seconds = 3600.0;
  request.budget.degrade_fraction = 1e-12;
  const MiningResult degraded = Mine(db, request);
  EXPECT_EQ(degraded.outcome(), Outcome::kComplete);
  EXPECT_FALSE(degraded.stats.truncated);
  EXPECT_EQ(degraded.stats.exact_fcp_computations, 0u);
  EXPECT_GT(degraded.stats.degraded_fcp_evals, 0u);
  EXPECT_EQ(degraded.stats.degraded_fcp_evals,
            degraded.stats.sampled_fcp_computations);
  // Degraded estimates still decide the same itemsets here (generous
  // epsilon/delta defaults on a tiny example keep estimates near truth).
  EXPECT_EQ(degraded.itemsets.size(), exact.itemsets.size());
}

TEST(RuntimeBudget, SinksFlushOnStoppedRuns) {
  // Satellite contract: the final progress callback and buffered trace
  // events are delivered even when the run is cancelled.
  const UncertainDatabase db = MakeTestDb(42);
  CancelToken token;
  token.RequestCancel();
  MiningRequest request = BaseRequest(42);
  request.cancel = &token;
  request.progress_interval = 1;
  std::size_t calls = 0;
  request.progress = [&calls](const MiningProgress&) { ++calls; };
  MemoryTraceSink sink;
  request.trace = &sink;
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kCancelled);
  EXPECT_GE(calls, 1u) << "final progress flush must fire when cancelled";
  const std::vector<TraceEvent> events = sink.TakeSnapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, TraceEvent::Kind::kRunBegin);
  EXPECT_EQ(events.back().kind, TraceEvent::Kind::kRunEnd);
  bool saw_truncated = false;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::kCounter &&
        event.name == "truncated") {
      saw_truncated = true;
      EXPECT_EQ(event.value, 1u);
    }
  }
  EXPECT_TRUE(saw_truncated);
}

TEST(RuntimeBudget, InvalidRequestReportsWithoutAborting) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request;
  request.params.min_sup = 0;
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.itemsets.empty());
  EXPECT_NE(result.status_message.find("min_sup"), std::string::npos)
      << result.status_message;
}

TEST(RuntimeBudget, ExactOraclesHonorNodeBudgets) {
  TransactionDatabase db;
  db.Add(Itemset{0, 1, 2, 3});
  db.Add(Itemset{0, 1, 2});
  db.Add(Itemset{1, 2, 3});
  db.Add(Itemset{0, 2, 3});
  db.Add(Itemset{0, 1});
  const std::vector<SupportedItemset> full_closed = MineClosedItemsets(db, 1);
  const std::vector<SupportedItemset> full_charm =
      CharmMineClosedItemsets(db, 1);
  ASSERT_GT(full_closed.size(), 2u);

  RunBudget budget;
  budget.max_nodes = 2;
  {
    RunController controller(budget, nullptr);
    std::vector<SupportedItemset> partial;
    MineClosedItemsetsInto(
        db, 1,
        [&partial](const Itemset& items, std::size_t support) {
          partial.push_back(SupportedItemset{items, support});
        },
        nullptr, &controller);
    EXPECT_EQ(controller.outcome(), Outcome::kBudgetExhausted);
    EXPECT_LT(partial.size(), full_closed.size());
  }
  {
    RunController controller(budget, nullptr);
    const std::vector<SupportedItemset> partial =
        CharmMineClosedItemsets(db, 1, nullptr, &controller);
    EXPECT_EQ(controller.outcome(), Outcome::kBudgetExhausted);
    EXPECT_LT(partial.size(), full_charm.size());
    for (const SupportedItemset& entry : partial) {
      bool found = false;
      for (const SupportedItemset& reference : full_charm) {
        if (entry == reference) found = true;
      }
      EXPECT_TRUE(found) << entry.items.ToString();
    }
  }
}

}  // namespace
}  // namespace pfci
