// Cross-validation of the CHARM-style closed miner against the LCM-style
// miner and the brute-force oracle — two independent algorithms agreeing
// over randomized inputs.
#include "src/exact/charm_miner.h"

#include <gtest/gtest.h>

#include "src/datagen/mushroom_generator.h"
#include "src/exact/closed_miner.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TransactionDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                             double density) {
  TransactionDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    db.Add(Itemset(std::move(row)));
  }
  return db;
}

TEST(CharmMiner, EmptyAndDegenerate) {
  TransactionDatabase db;
  EXPECT_TRUE(CharmMineClosedItemsets(db, 1).empty());
  db.Add(Itemset{0, 1});
  EXPECT_TRUE(CharmMineClosedItemsets(db, 2).empty());
  const auto closed = CharmMineClosedItemsets(db, 1);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].items, (Itemset{0, 1}));
  EXPECT_EQ(closed[0].support, 1u);
}

TEST(CharmMiner, MergesEqualTidsets) {
  // Items 0 and 1 always co-occur: only the merged closed set appears.
  TransactionDatabase db;
  db.Add(Itemset{0, 1, 2});
  db.Add(Itemset{0, 1});
  db.Add(Itemset{0, 1, 2});
  const auto closed = CharmMineClosedItemsets(db, 1);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].items, (Itemset{0, 1}));
  EXPECT_EQ(closed[0].support, 3u);
  EXPECT_EQ(closed[1].items, (Itemset{0, 1, 2}));
  EXPECT_EQ(closed[1].support, 2u);
}

class CharmAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CharmAgreement, MatchesLcmStyleMinerOnRandomData) {
  Rng rng(GetParam() * 31 + 17);
  const std::size_t n = 6 + rng.NextBelow(12);
  const std::size_t items = 4 + rng.NextBelow(4);
  const double density = 0.3 + 0.5 * rng.NextDouble();
  const TransactionDatabase db = RandomDb(rng, n, items, density);
  for (std::size_t min_sup : {1, 2, 3}) {
    EXPECT_EQ(CharmMineClosedItemsets(db, min_sup),
              MineClosedItemsets(db, min_sup))
        << "seed=" << GetParam() << " min_sup=" << min_sup;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, CharmAgreement,
                         ::testing::Range(0, 40));

TEST(CharmMiner, MatchesOnCorrelatedMushroomData) {
  MushroomParams params;
  params.num_transactions = 300;
  params.num_attributes = 7;
  params.values_per_attribute = 3;
  params.num_species = 5;
  const TransactionDatabase db = GenerateMushroomLike(params);
  for (double rel : {0.3, 0.15}) {
    const std::size_t min_sup =
        static_cast<std::size_t>(rel * static_cast<double>(db.size()));
    EXPECT_EQ(CharmMineClosedItemsets(db, min_sup),
              MineClosedItemsets(db, min_sup))
        << rel;
  }
}

}  // namespace
}  // namespace pfci
