// Checkpoint/resume determinism contract (DESIGN.md §14): a run
// suspended by a budget, snapshotted, and resumed must equal the
// uninterrupted run bit-for-bit — entries and deterministic work
// counters — for every resumable algorithm, across tid-set modes and
// thread counts, including resumes under a DIFFERENT thread count or
// tid-set mode than the suspended run. Also pins the refusal paths
// (fingerprint/algorithm mismatch, torn or missing snapshots,
// nondeterministic execution) and the round-trip of boundary
// probabilities (1e-12 and exactly 1.0).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mine.h"
#include "src/core/search/run_snapshot.h"
#include "src/data/database_io.h"
#include "src/datagen/probability_assigner.h"
#include "src/datagen/quest_generator.h"
#include "src/harness/dataset_factory.h"
#include "src/util/runtime.h"

namespace pfci {
namespace {

UncertainDatabase MakeTestDb(std::uint64_t seed) {
  QuestParams quest;
  quest.num_transactions = 60;
  quest.avg_transaction_length = 7.0;
  quest.avg_pattern_length = 4.0;
  quest.num_items = 18;
  quest.num_patterns = 10;
  quest.seed = seed;
  GaussianAssignerParams assign;
  assign.mean = 0.8;
  assign.spread = 0.1;
  assign.seed = seed + 1;
  return AssignGaussianProbabilities(GenerateQuest(quest), assign);
}

/// A fresh path per test case so parallel ctest invocations never race.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pfci_resume_" + name + "_" +
         std::to_string(::getpid()) + ".snapshot";
}

struct PathCleaner {
  std::string path;
  ~PathCleaner() { std::remove(path.c_str()); }
};

MiningRequest BaseRequest(Algorithm algorithm) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params.min_sup = 6;
  request.params.pfct = 0.3;
  request.params.epsilon = 0.2;
  request.params.delta = 0.2;
  request.params.seed = 99;
  if (algorithm == Algorithm::kTopK) request.top_k = 5;
  return request;
}

void ExpectBitIdentical(const MiningResult& full, const MiningResult& resumed,
                        const std::string& label) {
  ASSERT_EQ(full.itemsets.size(), resumed.itemsets.size()) << label;
  for (std::size_t i = 0; i < full.itemsets.size(); ++i) {
    const PfciEntry& a = full.itemsets[i];
    const PfciEntry& b = resumed.itemsets[i];
    EXPECT_EQ(a.items, b.items) << label << " entry " << i;
    EXPECT_EQ(a.fcp, b.fcp) << label << " entry " << i;
    EXPECT_EQ(a.pr_f, b.pr_f) << label << " entry " << i;
    EXPECT_EQ(a.fcp_lower, b.fcp_lower) << label << " entry " << i;
    EXPECT_EQ(a.fcp_upper, b.fcp_upper) << label << " entry " << i;
    EXPECT_EQ(a.method, b.method) << label << " entry " << i;
  }
  // Deterministic work counters carry across the suspend: snapshot base
  // plus resumed work must equal the uninterrupted totals. dp_runs and
  // the cache counters are per-run evaluator state, not snapshot state.
  EXPECT_EQ(full.stats.nodes_visited, resumed.stats.nodes_visited) << label;
  EXPECT_EQ(full.stats.intersections, resumed.stats.intersections) << label;
  EXPECT_EQ(full.stats.total_samples, resumed.stats.total_samples) << label;
  EXPECT_EQ(full.stats.exact_fcp_computations,
            resumed.stats.exact_fcp_computations)
      << label;
  EXPECT_EQ(full.stats.sampled_fcp_computations,
            resumed.stats.sampled_fcp_computations)
      << label;
  EXPECT_EQ(full.stats.pruned_by_chernoff, resumed.stats.pruned_by_chernoff)
      << label;
  EXPECT_EQ(full.stats.pruned_by_superset, resumed.stats.pruned_by_superset)
      << label;
  EXPECT_EQ(full.stats.pruned_by_subset, resumed.stats.pruned_by_subset)
      << label;
  EXPECT_EQ(full.stats.decided_by_bounds, resumed.stats.decided_by_bounds)
      << label;
  EXPECT_EQ(full.stats.zero_by_count, resumed.stats.zero_by_count) << label;
  EXPECT_EQ(resumed.outcome(), Outcome::kComplete) << label;
  EXPECT_TRUE(resumed.stats.resumed) << label;
}

/// Suspends `request` mid-run via a budget sized off the full run,
/// writes a snapshot, resumes it, and checks the bit-identical contract.
/// Returns false when the budget did not suspend (run too small) — the
/// caller treats that as "nothing to check", not a failure.
bool SuspendAndResume(const UncertainDatabase& db, const MiningRequest& base,
                      const MiningResult& full, std::size_t resume_threads,
                      TidSetMode resume_mode, const std::string& label) {
  const std::string path = TempPath(label);
  PathCleaner cleaner{path};

  MiningRequest suspending = base;
  if (full.stats.total_samples > 0) {
    suspending.budget.max_samples = full.stats.total_samples / 2;
  } else {
    suspending.budget.max_nodes = full.stats.nodes_visited / 2;
  }
  suspending.snapshot.save_path = path;
  const MiningResult part = Mine(db, suspending);
  if (part.ok()) return false;  // Budget never tripped: nothing to resume.
  EXPECT_EQ(part.outcome(), Outcome::kBudgetExhausted) << label;
  EXPECT_GT(part.stats.snapshot_bytes, 0u) << label;

  // The suspended run is a verified prefix of the full answer.
  for (const PfciEntry& entry : part.itemsets) {
    const PfciEntry* reference = full.Find(entry.items);
    EXPECT_NE(reference, nullptr)
        << label << ": suspended entry " << entry.items.ToString()
        << " is not in the uninterrupted run";
    if (reference != nullptr) {
      EXPECT_EQ(entry.fcp, reference->fcp) << label;
      EXPECT_EQ(entry.pr_f, reference->pr_f) << label;
    }
  }

  MiningRequest resuming = base;
  resuming.execution.num_threads = resume_threads;
  resuming.params.tidset_mode = resume_mode;
  resuming.snapshot.resume_path = path;
  ExpectBitIdentical(full, Mine(db, resuming), label);
  return true;
}

TEST(ResumeDeterminism, MatchesUninterruptedAcrossAlgorithmsModesThreads) {
  const UncertainDatabase db = MakeTestDb(7);
  const Algorithm algorithms[] = {Algorithm::kMpfci, Algorithm::kMpfciBfs,
                                  Algorithm::kNaive, Algorithm::kTopK};
  const TidSetMode modes[] = {TidSetMode::kAdaptive, TidSetMode::kSparse,
                              TidSetMode::kDense};
  std::size_t exercised = 0;
  for (const Algorithm algorithm : algorithms) {
    for (const TidSetMode mode : modes) {
      for (const std::size_t threads : {1u, 2u, 4u}) {
        MiningRequest base = BaseRequest(algorithm);
        base.params.tidset_mode = mode;
        base.execution.num_threads = threads;
        const MiningResult full = Mine(db, base);
        ASSERT_EQ(full.outcome(), Outcome::kComplete);
        const std::string label = std::string(AlgorithmName(algorithm)) +
                                  "_m" + std::to_string(static_cast<int>(mode)) +
                                  "_t" + std::to_string(threads);
        if (SuspendAndResume(db, base, full, threads, mode, label)) {
          ++exercised;
        }
      }
    }
  }
  // The budgets are sized at half the full run's work, so the matrix
  // must actually suspend on this database — an all-skipped pass would
  // silently test nothing.
  EXPECT_GT(exercised, 24u);
}

TEST(ResumeDeterminism, ResumesUnderDifferentThreadCountAndTidsetMode) {
  // The fingerprint deliberately excludes execution policy and
  // tidset_mode: a snapshot taken single-threaded/adaptive resumes
  // under 4 threads/dense with the same bit-identical result.
  const UncertainDatabase db = MakeTestDb(11);
  MiningRequest base = BaseRequest(Algorithm::kMpfci);
  base.execution.num_threads = 1;
  base.params.tidset_mode = TidSetMode::kAdaptive;
  const MiningResult full = Mine(db, base);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_TRUE(SuspendAndResume(db, base, full, /*resume_threads=*/4,
                               TidSetMode::kDense, "cross_thread_mode"));
}

TEST(ResumeDeterminism, ChainedSuspendsAreAdditive) {
  // Suspend, resume into a second suspension, resume again: base
  // counters accumulate across the chain and the final totals still
  // match the uninterrupted run.
  const UncertainDatabase db = MakeTestDb(13);
  const MiningRequest base = BaseRequest(Algorithm::kMpfci);
  const MiningResult full = Mine(db, base);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_GT(full.stats.nodes_visited, 8u);

  const std::string first = TempPath("chain_first");
  const std::string second = TempPath("chain_second");
  PathCleaner clean_first{first};
  PathCleaner clean_second{second};

  MiningRequest step1 = base;
  step1.budget.max_nodes = full.stats.nodes_visited / 3;
  step1.snapshot.save_path = first;
  const MiningResult part1 = Mine(db, step1);
  ASSERT_EQ(part1.outcome(), Outcome::kBudgetExhausted);
  ASSERT_GT(part1.stats.snapshot_bytes, 0u);

  MiningRequest step2 = base;
  step2.budget.max_nodes = full.stats.nodes_visited / 3;
  step2.snapshot.resume_path = first;
  step2.snapshot.save_path = second;
  const MiningResult part2 = Mine(db, step2);
  ASSERT_TRUE(part2.stats.resumed);
  // The second leg may or may not exhaust its own budget depending on
  // unit sizes; when it did suspend, finish from its snapshot.
  MiningRequest final_leg = base;
  if (part2.ok()) {
    ExpectBitIdentical(full, part2, "chain_completed_in_two");
    return;
  }
  ASSERT_GT(part2.stats.snapshot_bytes, 0u);
  final_leg.snapshot.resume_path = second;
  ExpectBitIdentical(full, Mine(db, final_leg), "chain_three_legs");
}

TEST(ResumeDeterminism, RestartMarkerAlgorithmsResumeFromScratch) {
  // Algorithms without frontier capture still honor save_path: a
  // pre-cancelled run writes a restart-only marker, and resuming from
  // it reruns from scratch — equal to a plain run, flagged resumed.
  const UncertainDatabase db = MakeTestDb(17);
  for (const Algorithm algorithm :
       {Algorithm::kPfi, Algorithm::kExpectedSupport}) {
    MiningRequest base = BaseRequest(algorithm);
    const MiningResult plain = Mine(db, base);
    ASSERT_EQ(plain.outcome(), Outcome::kComplete);

    const std::string path =
        TempPath(std::string("marker_") + AlgorithmName(algorithm));
    PathCleaner cleaner{path};
    CancelToken cancel;
    cancel.RequestCancel();
    MiningRequest cancelled = base;
    cancelled.cancel = &cancel;
    cancelled.snapshot.save_path = path;
    const MiningResult stopped = Mine(db, cancelled);
    ASSERT_EQ(stopped.outcome(), Outcome::kCancelled);
    ASSERT_GT(stopped.stats.snapshot_bytes, 0u);

    RunSnapshot marker;
    ASSERT_EQ(LoadRunSnapshot(path, &marker), "");
    EXPECT_FALSE(marker.has_frontier);

    MiningRequest resuming = base;
    resuming.snapshot.resume_path = path;
    const MiningResult resumed = Mine(db, resuming);
    ASSERT_EQ(resumed.outcome(), Outcome::kComplete);
    EXPECT_TRUE(resumed.stats.resumed);
    ASSERT_EQ(resumed.itemsets.size(), plain.itemsets.size());
    for (std::size_t i = 0; i < plain.itemsets.size(); ++i) {
      EXPECT_EQ(plain.itemsets[i].items, resumed.itemsets[i].items);
      EXPECT_EQ(plain.itemsets[i].pr_f, resumed.itemsets[i].pr_f);
    }
  }
}

TEST(ResumeDeterminism, MismatchedResumesAreRefused) {
  const UncertainDatabase db = MakeTestDb(19);
  const MiningRequest base = BaseRequest(Algorithm::kMpfci);
  const MiningResult full = Mine(db, base);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);

  const std::string path = TempPath("mismatch");
  PathCleaner cleaner{path};
  MiningRequest suspending = base;
  suspending.budget.max_nodes = full.stats.nodes_visited / 2;
  suspending.snapshot.save_path = path;
  ASSERT_EQ(Mine(db, suspending).outcome(), Outcome::kBudgetExhausted);

  // Different result-relevant parameter: refused.
  MiningRequest wrong_minsup = base;
  wrong_minsup.params.min_sup = base.params.min_sup + 1;
  wrong_minsup.snapshot.resume_path = path;
  const MiningResult r1 = Mine(db, wrong_minsup);
  EXPECT_EQ(r1.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(r1.status_message.find("fingerprint"), std::string::npos)
      << r1.status_message;

  // Different algorithm: refused by name before the fingerprint.
  MiningRequest wrong_algo = BaseRequest(Algorithm::kMpfciBfs);
  wrong_algo.snapshot.resume_path = path;
  const MiningResult r2 = Mine(db, wrong_algo);
  EXPECT_EQ(r2.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(r2.status_message.find("algorithm"), std::string::npos)
      << r2.status_message;

  // Different database: refused.
  const UncertainDatabase other = MakeTestDb(20);
  MiningRequest same = base;
  same.snapshot.resume_path = path;
  EXPECT_EQ(Mine(other, same).outcome(), Outcome::kInvalidRequest);

  // Missing snapshot file: refused as data, not a crash.
  MiningRequest missing = base;
  missing.snapshot.resume_path = path + ".does-not-exist";
  EXPECT_EQ(Mine(db, missing).outcome(), Outcome::kInvalidRequest);

  // Nondeterministic execution: refused up front for save AND resume.
  MiningRequest nondet = base;
  nondet.execution.deterministic = false;
  nondet.snapshot.resume_path = path;
  EXPECT_EQ(Mine(db, nondet).outcome(), Outcome::kInvalidRequest);
  nondet.snapshot.resume_path.clear();
  nondet.snapshot.save_path = path;
  EXPECT_EQ(Mine(db, nondet).outcome(), Outcome::kInvalidRequest);
}

TEST(ResumeDeterminism, BoundaryProbabilitiesRoundTripBitExactly) {
  // 1e-12 and exactly-1.0 atoms must survive the snapshot text format
  // bit-for-bit: the serialized doubles go through
  // FormatDoubleRoundTrip, so parse(serialize(x)) == x exactly.
  RunSnapshot snapshot;
  snapshot.algorithm = "mpfci";
  snapshot.fingerprint = 0x1234abcd5678ef00ULL;
  snapshot.has_frontier = true;
  snapshot.base.nodes_visited = 3;
  PfciEntry entry;
  entry.items = Itemset({0, 2});
  entry.fcp = 1e-12;
  entry.pr_f = 1.0;
  entry.fcp_lower = 1e-12;
  entry.fcp_upper = 1.0;
  entry.method = FcpMethod::kExact;
  snapshot.entries.push_back(entry);
  WeightedItemset element;
  element.items = Itemset({1});
  element.weight = 1.0 - 1e-12;
  snapshot.frontier.push_back(element);
  element.weight = 1e-12;
  snapshot.frontier.push_back(element);
  snapshot.done = {1, 0};

  RunSnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseRunSnapshot(SerializeRunSnapshot(snapshot), &parsed,
                               &error))
      << error;
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].fcp, 1e-12);
  EXPECT_EQ(parsed.entries[0].pr_f, 1.0);
  EXPECT_EQ(parsed.entries[0].fcp_lower, 1e-12);
  EXPECT_EQ(parsed.entries[0].fcp_upper, 1.0);
  ASSERT_EQ(parsed.frontier.size(), 2u);
  EXPECT_EQ(parsed.frontier[0].weight, 1.0 - 1e-12);
  EXPECT_EQ(parsed.frontier[1].weight, 1e-12);
  EXPECT_EQ(parsed.done, (std::vector<std::uint8_t>{1, 0}));
}

TEST(ResumeDeterminism, SuspendResumeOnVanishingAndCertainAtoms) {
  // End-to-end on a database mixing 1e-12 and certain (p=1) tuples: the
  // snapshot's serialized probabilities sit exactly on the boundary
  // values the text format must preserve.
  UncertainDatabase db;
  db.Add({0, 1, 2, 3}, 1e-12);
  db.Add({0, 1, 2}, 1.0);
  db.Add({0, 1, 3}, 1.0);
  db.Add({1, 2, 3}, 1.0);
  db.Add({0, 2}, 0.5);
  db.Add({2, 3}, 1.0);
  MiningRequest base;
  base.algorithm = Algorithm::kMpfci;
  base.params.min_sup = 2;
  base.params.pfct = 0.25;
  base.params.seed = 5;
  const MiningResult full = Mine(db, base);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);
  ASSERT_GT(full.stats.nodes_visited, 1u);
  SuspendAndResume(db, base, full, /*resume_threads=*/0,
                   TidSetMode::kAdaptive, "boundary_atoms");
}

}  // namespace
}  // namespace pfci
