// Unit and property tests for the exact-mining substrate: FP-growth,
// closed-itemset mining, Apriori, and their mutual consistency.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/exact/apriori.h"
#include "src/exact/closed_miner.h"
#include "src/exact/fp_growth.h"
#include "src/exact/fp_tree.h"
#include "src/exact/transaction_database.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TransactionDatabase ClassicBasketDb() {
  // The canonical FP-growth example (Han et al.), items remapped to ids:
  // f=0 c=1 a=2 b=3 m=4 p=5 i=6 o=7 ...
  TransactionDatabase db;
  db.Add(Itemset{0, 1, 2, 4, 5});     // f c a m p
  db.Add(Itemset{0, 1, 2, 3, 4});     // f c a b m
  db.Add(Itemset{0, 3});              // f b
  db.Add(Itemset{1, 3, 5});           // c b p
  db.Add(Itemset{0, 1, 2, 4, 5});     // f c a m p
  return db;
}

TransactionDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                             double density) {
  TransactionDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    db.Add(Itemset(std::move(row)));
  }
  return db;
}

TEST(TransactionDatabase, SupportAndUniverse) {
  const TransactionDatabase db = ClassicBasketDb();
  EXPECT_EQ(db.Support(Itemset{0, 1}), 3u);
  EXPECT_EQ(db.Support(Itemset{5}), 3u);
  EXPECT_EQ(db.Support(Itemset{9}), 0u);
  EXPECT_EQ(db.ItemUniverse(), (std::vector<Item>{0, 1, 2, 3, 4, 5}));
}

TEST(FpTree, SinglePathDetection) {
  std::vector<WeightedItemList> rows;
  rows.push_back({{0, 1, 2}, 2});
  rows.push_back({{0, 1}, 1});
  const FpTree tree(rows);
  EXPECT_TRUE(tree.IsSinglePath());

  rows.push_back({{3}, 1});
  const FpTree branching(rows);
  EXPECT_FALSE(branching.IsSinglePath());
}

TEST(FpTree, HeaderCountsAndPatternBase) {
  std::vector<WeightedItemList> rows;
  rows.push_back({{0, 1, 2}, 2});
  rows.push_back({{0, 2}, 1});
  rows.push_back({{1, 2}, 3});
  const FpTree tree(rows);
  // Total counts: item0=3, item1=5, item2=6.
  for (const auto& entry : tree.header()) {
    if (entry.item == 0) EXPECT_EQ(entry.total_count, 3u);
    if (entry.item == 1) EXPECT_EQ(entry.total_count, 5u);
    if (entry.item == 2) EXPECT_EQ(entry.total_count, 6u);
  }
  // Conditional pattern base of item 2: prefixes {0,1}x2, {0}x1, {1}x3.
  const auto base = tree.ConditionalPatternBase(2);
  std::size_t total = 0;
  for (const auto& row : base) total += row.count;
  EXPECT_EQ(total, 6u);
}

TEST(FpGrowth, ClassicExample) {
  const TransactionDatabase db = ClassicBasketDb();
  const auto frequent = MineFrequentItemsets(db, 3);
  // With min_sup=3 the frequent items are f,c,a,b,m,p and e.g. {f,c,a,m}
  // has support 3.
  const auto find = [&frequent](const Itemset& x) -> const SupportedItemset* {
    for (const auto& entry : frequent) {
      if (entry.items == x) return &entry;
    }
    return nullptr;
  };
  ASSERT_NE(find(Itemset{0}), nullptr);
  EXPECT_EQ(find(Itemset{0})->support, 4u);
  ASSERT_NE(find(Itemset{0, 1, 2, 4}), nullptr);
  EXPECT_EQ(find(Itemset{0, 1, 2, 4})->support, 3u);
  EXPECT_EQ(find(Itemset{3, 5}), nullptr);  // b,p co-occur only once.
}

TEST(FpGrowth, MinSupOneEnumeratesEverything) {
  TransactionDatabase db;
  db.Add(Itemset{0, 1});
  db.Add(Itemset{1, 2});
  const auto frequent = MineFrequentItemsets(db, 1);
  // Non-empty subsets of {0,1} plus of {1,2}: {0},{1},{2},{01},{12}.
  EXPECT_EQ(frequent.size(), 5u);
}

TEST(FpGrowth, EmptyAndUnsatisfiable) {
  TransactionDatabase db;
  EXPECT_TRUE(MineFrequentItemsets(db, 1).empty());
  db.Add(Itemset{0});
  EXPECT_TRUE(MineFrequentItemsets(db, 2).empty());
}

TEST(Apriori, CandidateGeneration) {
  const std::vector<Itemset> frequent2 = {Itemset{0, 1}, Itemset{0, 2},
                                          Itemset{1, 2}, Itemset{1, 3}};
  const auto candidates = AprioriGenCandidates(frequent2);
  // {0,1,2} has all 2-subsets frequent; {1,2,3} lacks {2,3}.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (Itemset{0, 1, 2}));
}

TEST(ClosedMiner, ClassicExample) {
  const TransactionDatabase db = ClassicBasketDb();
  const auto closed = MineClosedItemsets(db, 3);
  const auto brute = MineClosedItemsetsBruteForce(db, 3);
  EXPECT_EQ(closed, brute);
  // {f,c,a,m} support 3 is closed; {f,c,a} support 3 is NOT (m extends it
  // with equal support).
  bool has_fcam = false, has_fca = false;
  for (const auto& entry : closed) {
    if (entry.items == Itemset({0, 1, 2, 4})) has_fcam = true;
    if (entry.items == Itemset({0, 1, 2})) has_fca = true;
  }
  EXPECT_TRUE(has_fcam);
  EXPECT_FALSE(has_fca);
}

class ExactMinersAgree : public ::testing::TestWithParam<int> {};

TEST_P(ExactMinersAgree, FpGrowthMatchesApriori) {
  Rng rng(GetParam() * 13 + 1);
  const TransactionDatabase db = RandomDb(rng, 12, 6, 0.45);
  for (std::size_t min_sup : {1, 2, 3, 5}) {
    EXPECT_EQ(MineFrequentItemsets(db, min_sup), AprioriMine(db, min_sup))
        << "min_sup=" << min_sup;
  }
}

TEST_P(ExactMinersAgree, ClosedMinerMatchesBruteForce) {
  Rng rng(GetParam() * 29 + 2);
  const TransactionDatabase db = RandomDb(rng, 12, 6, 0.5);
  for (std::size_t min_sup : {1, 2, 4}) {
    EXPECT_EQ(MineClosedItemsets(db, min_sup),
              MineClosedItemsetsBruteForce(db, min_sup))
        << "min_sup=" << min_sup;
  }
}

TEST_P(ExactMinersAgree, ClosedSupportsMatchAndCompress) {
  Rng rng(GetParam() * 41 + 3);
  const TransactionDatabase db = RandomDb(rng, 14, 7, 0.5);
  const auto closed = MineClosedItemsets(db, 2);
  const auto frequent = MineFrequentItemsets(db, 2);
  EXPECT_LE(closed.size(), frequent.size());
  for (const auto& entry : closed) {
    EXPECT_EQ(db.Support(entry.items), entry.support);
  }
  // Every frequent itemset's support is witnessed by some closed superset
  // with the same support (the closure property).
  for (const auto& f : frequent) {
    bool witnessed = false;
    for (const auto& c : closed) {
      if (c.support == f.support && f.items.IsSubsetOf(c.items)) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << f.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, ExactMinersAgree,
                         ::testing::Range(0, 20));

TEST(ClosedMiner, FromWorldProjection) {
  // Closed mining over a possible-world projection of the paper example.
  UncertainDatabase udb;
  udb.Add(Itemset{0, 1, 2, 3}, 0.9);
  udb.Add(Itemset{0, 1, 2}, 0.6);
  PossibleWorld world(2);
  world.SetPresent(0, true);
  world.SetPresent(1, true);
  const TransactionDatabase db = TransactionDatabase::FromWorld(udb, world);
  const auto closed = MineClosedItemsets(db, 1);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].items, (Itemset{0, 1, 2}));
  EXPECT_EQ(closed[0].support, 2u);
  EXPECT_EQ(closed[1].items, (Itemset{0, 1, 2, 3}));
  EXPECT_EQ(closed[1].support, 1u);
}

}  // namespace
}  // namespace pfci
