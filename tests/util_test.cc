// Unit tests for the utility layer (RNG, strings, CSV).
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/csv_writer.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace pfci {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  Rng a2(42);
  EXPECT_NE(a2(), c());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(8);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.NextBelow(7)];
  for (int count : counts) {
    EXPECT_GT(count, 8000);  // Roughly uniform (expected 10000).
    EXPECT_LT(count, 12000);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(2.0, 3.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(12);
  for (double mean : {2.5, 60.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05) << mean;
  }
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> values = {1, 2, 3, 4, 5};
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(StringUtil, SplitTokens) {
  EXPECT_EQ(SplitTokens("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTokens("  "), std::vector<std::string>{});
  EXPECT_EQ(SplitTokens("x,y;z", ",;"),
            (std::vector<std::string>{"x", "y", "z"}));
}

TEST(StringUtil, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtil, ParseUint32) {
  unsigned int value = 0;
  EXPECT_TRUE(ParseUint32("123", &value));
  EXPECT_EQ(value, 123u);
  EXPECT_TRUE(ParseUint32(" 7 ", &value));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(ParseUint32("12x", &value));
  EXPECT_FALSE(ParseUint32("", &value));
  EXPECT_FALSE(ParseUint32("-3", &value));
}

TEST(StringUtil, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("0.25", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  EXPECT_TRUE(ParseDouble("1e-3", &value));
  EXPECT_DOUBLE_EQ(value, 1e-3);
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("", &value));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

TEST(CsvWriter, EscapesSpecialFields) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pfci_csv_test.csv").string();
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.Ok());
    csv.WriteRow({"a", "b,c"});
    csv.WriteRow({"1", "2"});
    EXPECT_EQ(csv.rows_written(), 2);
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a,\"b,c\"\n1,2\n");
  std::remove(path.c_str());
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch timer;
  const double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
}

}  // namespace
}  // namespace pfci
